"""Generated reference docs + the docstring-coverage gate.

Two jobs, both wired to ``repro docs``:

* :func:`render_isa_reference` renders ``docs/isa.md`` — the Tandem
  ISA reference — *from the ISA definitions themselves*
  (:mod:`repro.isa.opcodes`, :mod:`repro.isa.encoding`,
  :mod:`repro.isa.instructions`). Field bit-layouts are derived
  empirically by probing the real packers with one-hot values, so the
  document cannot drift from the encoder: if a field moves, the
  generated table moves with it and ``repro docs --check`` (run by CI
  and ``tests/test_docs.py``) flags the checked-in file as stale.
* :func:`docstring_coverage` is a lightweight ``ast``-based gate over
  the package: every module, public class and public function either
  has a docstring or counts against the coverage number that ``repro
  docs --coverage --fail-under N`` enforces in CI's lint job.

Everything here is a pure function of the source tree — no timestamps,
no environment — so generated output is byte-stable across runs.
"""

from __future__ import annotations

import ast
import inspect
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .isa import instructions as _instructions
from .isa.encoding import (
    has_immediate,
    is_compute_opcode,
    pack_common,
    pack_compute,
)
from .isa.opcodes import (
    FUNC_ENUMS,
    IMM_SLOTS,
    INSTRUCTION_BITS,
    ITER_TABLE_ENTRIES,
    MAX_LOOP_LEVELS,
    Namespace,
    Opcode,
)

# ---------------------------------------------------------------------------
# ISA reference
# ---------------------------------------------------------------------------
GENERATED_HEADER = (
    "<!-- GENERATED FILE - DO NOT EDIT.\n"
    "     Regenerate with: python -m repro docs\n"
    "     CI runs `repro docs --check` to keep this in sync with\n"
    "     src/repro/isa/. -->\n")

#: Builder helpers documented in the reference, in presentation order.
BUILDER_HELPERS = (
    "sync", "iterator_base", "iterator_stride", "set_immediate", "alu",
    "calculus", "comparison", "loop_iter", "loop_num_inst",
    "datatype_cast", "permute", "tile_ldst", "decode",
)


def _field_bits(pack: Callable[..., int], widths: Sequence[int],
                names: Sequence[str]) -> List[Tuple[str, int, int]]:
    """Empirical bit layout of one packer: (name, msb, lsb) per field.

    Packs one all-ones value per field (zeros elsewhere) and reads the
    set bits back out of the word — the layout the encoder *actually*
    uses, not the one a hand-written table claims.
    """
    layout = []
    for index, (width, name) in enumerate(zip(widths, names)):
        args = [0] * len(widths)
        args[index] = (1 << width) - 1
        word = pack(*args)
        lsb = (word & -word).bit_length() - 1
        msb = word.bit_length() - 1
        layout.append((name, msb, lsb))
    return layout


def _layout_rows(layout: Sequence[Tuple[str, int, int]]) -> List[str]:
    return [f"| `{name}` | `[{msb}:{lsb}]` | {msb - lsb + 1} |"
            for name, msb, lsb in layout]


def _enum_anchor(enum_cls) -> str:
    return enum_cls.__name__.lower()


def render_isa_reference() -> str:
    """The full ISA reference, as deterministic markdown."""
    lines: List[str] = [GENERATED_HEADER]
    lines += [
        "# Tandem Processor ISA reference",
        "",
        "Instruction encodings, opcode and function tables, and the",
        "iterator / Code Repeater configuration formats, generated from",
        "the executable definitions in `src/repro/isa/` (the paper's",
        "Figure 12 and Sections 4-5).",
        "",
        "## Hardware limits",
        "",
        "| constant | value | meaning |",
        "|---|---|---|",
        f"| `INSTRUCTION_BITS` | {INSTRUCTION_BITS} | "
        "width of every instruction word |",
        f"| `MAX_LOOP_LEVELS` | {MAX_LOOP_LEVELS} | "
        "Code Repeater nesting depth |",
        f"| `ITER_TABLE_ENTRIES` | {ITER_TABLE_ENTRIES} | "
        "iterator table rows (5-bit index) |",
        f"| `IMM_SLOTS` | {IMM_SLOTS} | "
        "immediate-buffer scratchpad slots |",
        "",
        "## Scratchpad namespaces",
        "",
        "3-bit namespace ids naming the scratchpads an operand can",
        "address (Section 4.1):",
        "",
        "| id | name | role |",
        "|---|---|---|",
    ]
    ns_roles = {
        Namespace.IBUF1: "Interim BUF 1",
        Namespace.IBUF2: "Interim BUF 2",
        Namespace.OBUF: "GEMM unit's Output BUF (fluid ownership)",
        Namespace.IMM: f"{IMM_SLOTS}-slot immediate buffer",
        Namespace.VMEM: "staging view of an off-chip tile "
                        "(Data Access Engine window)",
    }
    lines += [f"| `{ns.value:#x}` | `{ns.name}` | {ns_roles[ns]} |"
              for ns in Namespace]

    lines += [
        "",
        "## Opcodes",
        "",
        "4-bit major opcodes; each links to its function table below.",
        "",
        "| opcode | name | class | func table |",
        "|---|---|---|---|",
    ]
    for opcode in Opcode:
        if is_compute_opcode(opcode):
            klass = "compute"
        elif has_immediate(opcode):
            klass = "immediate"
        else:  # pragma: no cover - no such opcode today
            klass = "other"
        enum_cls = FUNC_ENUMS[opcode]
        lines.append(f"| `{opcode.value:#x}` | `{opcode.name}` | {klass} "
                     f"| [`{enum_cls.__name__}`]"
                     f"(#{_enum_anchor(enum_cls)}) |")

    lines += [
        "",
        "## Instruction encodings",
        "",
        "Every word is `opcode[31:28] func[27:24]` plus 24 class-specific",
        "bits. The layouts below are probed from the packers in",
        "`src/repro/isa/encoding.py` with one-hot field values, so they",
        "are the encodings the toolchain actually emits.",
        "",
        "### Common layout (`pack_common`)",
        "",
        "Synchronization, configuration, loop, data transformation and",
        "off-chip data movement classes. The 3-/5-bit fields are",
        "role-specific: namespace id + iterator index for configuration,",
        "loop id for LOOP, `func2` + loop index for TILE_LD_ST.",
        "",
        "| field | bits | width |",
        "|---|---|---|",
    ]
    lines += _layout_rows(_field_bits(
        pack_common, (4, 4, 3, 5, 16),
        ("opcode", "func", "field3", "field5", "imm16")))
    lines += [
        "",
        "The 16-bit immediate is two's-complement",
        "(`encode_imm16`/`decode_imm16`).",
        "",
        "### Compute layout (`pack_compute`)",
        "",
        "ALU, CALCULUS and COMPARISON: a destination and two source",
        "operands, each a (namespace, iterator-index) pair.",
        "",
        "| field | bits | width |",
        "|---|---|---|",
    ]
    lines += _layout_rows(_field_bits(
        pack_compute, (4, 4, 3, 5, 3, 5, 3, 5),
        ("opcode", "func", "dst_ns", "dst_iter", "src1_ns", "src1_iter",
         "src2_ns", "src2_iter")))

    lines += [
        "",
        "## Function tables",
        "",
        "4-bit `func` values per opcode.",
    ]
    seen = set()
    for opcode in Opcode:
        enum_cls = FUNC_ENUMS[opcode]
        if enum_cls in seen:
            continue
        seen.add(enum_cls)
        users = [op.name for op in Opcode if FUNC_ENUMS[op] is enum_cls]
        lines += [
            "",
            f"### {enum_cls.__name__}",
            "",
            f"Used by: {', '.join(f'`{u}`' for u in users)}.",
        ]
        doc = inspect.getdoc(enum_cls)
        if doc:
            lines += ["", doc.splitlines()[0]]
        lines += ["", "| value | name |", "|---|---|"]
        lines += [f"| `{member.value:#06b}` | `{member.name}` |"
                  for member in enum_cls]

    lines += [
        "",
        "## Iterator configuration format",
        "",
        "`ITERATOR_CONFIG` writes one row of the per-namespace iterator",
        f"table ({ITER_TABLE_ENTRIES} entries, addressed by the 5-bit",
        "`field5`): `BASE_ADDR` sets the starting scratchpad offset,",
        "`STRIDE` the per-trip step. `IMM_VALUE`/`IMM_HIGH` fill the",
        f"{IMM_SLOTS}-slot immediate buffer (low then high 16 bits of a",
        "32-bit value). `field3` carries the namespace id being",
        "configured.",
        "",
        "## Code Repeater configuration format",
        "",
        "`LOOP` programs the Code Repeater, which re-issues an",
        "instruction body across tile elements without re-fetching",
        f"(up to {MAX_LOOP_LEVELS} nested levels):",
        "",
        "* `SET_ITER` — trip count for loop `field3` (`imm16` trips;",
        "  zero trips is a protocol violation the static verifier",
        "  rejects).",
        "* `SET_NUM_INST` — body size in words; the verifier checks the",
        "  body stays inside the program.",
        "* `SET_INDEX` — binds a loop level to an iterator index so",
        "  strides advance per trip.",
        "",
        "## Builder helpers",
        "",
        "`repro.isa.instructions` wraps the raw packers in typed",
        "helpers (signatures reflect the current source):",
        "",
        "```python",
    ]
    for name in BUILDER_HELPERS:
        helper = getattr(_instructions, name)
        lines.append(f"{name}{inspect.signature(helper)}")
    lines += [
        "```",
        "",
        "See `docs/architecture.md` for how compiled programs flow",
        "through the simulators and the serving fleet.",
    ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Docstring coverage
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ModuleCoverage:
    """Docstring accounting for one module file."""
    module: str
    total: int
    documented: int
    missing: Tuple[str, ...] = ()

    @property
    def coverage(self) -> float:
        return self.documented / self.total if self.total else 1.0


@dataclass(frozen=True)
class CoverageReport:
    """Package-wide docstring coverage (the ``repro docs`` gate)."""
    modules: Tuple[ModuleCoverage, ...] = ()

    @property
    def total(self) -> int:
        return sum(m.total for m in self.modules)

    @property
    def documented(self) -> int:
        return sum(m.documented for m in self.modules)

    @property
    def coverage(self) -> float:
        return self.documented / self.total if self.total else 1.0

    def missing(self) -> List[str]:
        return [name for m in self.modules for name in m.missing]


def _public_defs(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """(qualified name, node) for every docstring-carrying public def."""
    defs: List[Tuple[str, ast.AST]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                defs.append((node.name, node))
        elif isinstance(node, ast.ClassDef) and \
                not node.name.startswith("_"):
            defs.append((node.name, node))
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and not sub.name.startswith("_"):
                    defs.append((f"{node.name}.{sub.name}", sub))
    return defs


def module_coverage(path: str, module: str) -> ModuleCoverage:
    """Docstring coverage of one source file (module + public defs)."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    total = 1
    documented = int(ast.get_docstring(tree) is not None)
    missing = [] if documented else [f"{module} (module)"]
    for name, node in _public_defs(tree):
        total += 1
        if ast.get_docstring(node) is not None:
            documented += 1
        else:
            missing.append(f"{module}.{name}")
    return ModuleCoverage(module, total, documented, tuple(missing))


def docstring_coverage(root: Optional[str] = None) -> CoverageReport:
    """Coverage over every module of the installed ``repro`` package."""
    if root is None:
        root = os.path.dirname(os.path.abspath(__file__))
    modules: List[ModuleCoverage] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if not d.startswith(("_", ".")))
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root)
            module = "repro." + rel[:-3].replace(os.sep, ".")
            module = module.replace(".__init__", "")
            modules.append(module_coverage(path, module))
    return CoverageReport(tuple(modules))


def coverage_table(report: CoverageReport, worst: int = 15) -> str:
    """Fixed-width rendering: the worst ``worst`` modules + the total."""
    from .harness.report import render_table
    ranked = sorted(report.modules,
                    key=lambda m: (m.coverage, m.module))[:worst]
    rows: List[Tuple] = [(m.module, m.total, m.documented,
                          f"{m.coverage * 100:.1f}%") for m in ranked]
    rows.append(("TOTAL", report.total, report.documented,
                 f"{report.coverage * 100:.1f}%"))
    return render_table(("module", "defs", "documented", "coverage"),
                        rows, title="docstring coverage (worst modules)")


__all__ = [
    "BUILDER_HELPERS",
    "GENERATED_HEADER",
    "CoverageReport",
    "ModuleCoverage",
    "coverage_table",
    "docstring_coverage",
    "module_coverage",
    "render_isa_reference",
]
