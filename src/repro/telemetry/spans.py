"""Structured spans: nested timed regions with stable identities.

A span covers one region of work (``compile``, ``verify``, one
experiment, one serving batch). Spans nest: the tracer keeps a
per-thread stack, stamps each span with its depth and a begin-order
sequence number, and records wall time relative to the tracer's origin.

Identity discipline — required for ``--jobs`` sweeps to merge cleanly:

* sequence numbers are assigned at span *entry* under a lock, so begin
  order is deterministic for a deterministic program;
* the OS thread id is recorded raw here and normalized to a small index
  at snapshot time (:meth:`repro.telemetry.Telemetry.snapshot`);
* process identity lives on the snapshot, not the span, and exporters
  renumber processes in merge order — so traces from different worker
  processes never collide.

:func:`span_tree` renders the timestamp-free canonical form used by the
determinism tests: two identical runs must produce identical trees even
though their wall-clock timings differ.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    cat: str
    tid: int
    ts_us: float
    dur_us: float
    depth: int          # 1 = root of its thread's stack
    seq: int            # begin-order sequence number (deterministic)
    args: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects nested spans; thread-safe, no global state."""

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_seq = 0
        self._finished: List[SpanRecord] = []

    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    @contextmanager
    def span(self, name: str, cat: str = "host", **args: Any):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        stack.append(name)
        depth = len(stack)
        start = self._now_us()
        try:
            yield
        finally:
            end = self._now_us()
            stack.pop()
            record = SpanRecord(
                name=name, cat=cat, tid=threading.get_ident(),
                ts_us=start, dur_us=end - start, depth=depth, seq=seq,
                args=dict(args))
            with self._lock:
                self._finished.append(record)

    def records(self) -> List[SpanRecord]:
        """Finished spans in begin order (deterministic)."""
        with self._lock:
            return sorted(self._finished, key=lambda r: r.seq)


def span_tree(snapshots: Iterable[Dict[str, Any]]) -> str:
    """Canonical, timestamp-free rendering of one or more snapshots.

    One header line per snapshot (its label), then one line per span in
    begin order, indented by nesting depth, with sorted-key args. Byte
    identical across runs whenever the traced work is deterministic.
    """
    lines: List[str] = []
    for snapshot in snapshots:
        lines.append(f"[{snapshot.get('label', 'session')}]")
        for span in snapshot.get("spans", ()):
            suffix = ""
            if span.get("args"):
                suffix = " " + json.dumps(span["args"], sort_keys=True,
                                          default=str)
            lines.append("  " * span["depth"] + span["name"] + suffix)
    return "\n".join(lines)
