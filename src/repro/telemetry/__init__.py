"""Unified telemetry: hardware counters, structured spans, trace export.

The reproduction's subsystems each accumulate private statistics — the
detailed machine counts scratchpad traffic, the NPU controller tracks
per-unit busy cycles, the runtime cache counts hits, the serving fleet
counts rejects. This package gives them one shared, **off-by-default**
sink so a single run can answer "where did the cycles/requests go?":

* :mod:`repro.telemetry.counters` — a registry of monotonic,
  hardware-style counters (``sim.*`` from the detailed machine,
  ``npu.*`` from the execution controller, ``cache.*`` from the runtime
  cache, ``serving.*`` from the fleet).
* :mod:`repro.telemetry.spans` — nested timed spans (compile → verify →
  lower → simulate, per-experiment, serving lifecycles) with
  process/thread-safe identities so ``--jobs`` sweeps merge cleanly.
* :mod:`repro.telemetry.export` — Chrome ``chrome://tracing`` /
  Perfetto trace-event JSON plus a flat counters table, wired into
  ``repro profile``, ``repro trace --json``, ``repro serve
  --trace-out`` and ``python -m repro.harness --trace-out``.

Discipline: telemetry is observational only. Enabling it must never
change a result, and disabling it (the default) must cost nothing but a
single attribute check on the instrumented paths — the eval-pipeline
benchmark asserts the warm-run time stays within 5 %. The process-wide
session is controlled by ``REPRO_TELEMETRY`` (default off) or installed
explicitly via :func:`set_telemetry` / :func:`scoped_telemetry`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager, nullcontext
from typing import Any, Dict, Optional

from .alerts import AlertEngine, AlertEvent
from .counters import CounterRegistry
from .slo import (
    BurnRateRule,
    SLOObjective,
    budget_burn,
    default_objective,
    default_rules,
)
from .spans import SpanRecord, Tracer, span_tree
from .timeseries import (
    GaugeSampler,
    RateSampler,
    SlidingWindowHistogram,
    StreamingHistogram,
    TimeSeries,
    nearest_rank,
    percentile,
)

#: Shared no-op context manager handed out by disabled sessions.
#: ``nullcontext`` keeps no per-enter state, so one instance is safe to
#: reuse across nested ``with`` blocks and threads.
_NULL_SPAN = nullcontext()


class Telemetry:
    """One telemetry session: a counter registry plus a span tracer."""

    def __init__(self, enabled: bool = False, label: str = "session"):
        self.enabled = enabled
        self.label = label
        self.counters = CounterRegistry()
        self.tracer = Tracer()

    # -- recording ---------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Bump the monotonic counter ``name`` (no-op while disabled)."""
        if self.enabled:
            self.counters.add(name, value)

    def span(self, name: str, cat: str = "host", **args: Any):
        """Context manager timing a nested span (no-op while disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, cat, **args)

    # -- extraction --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data dump of this session (picklable, mergeable).

        Thread ids are normalized to small indices in span-begin order,
        so two identical runs produce identical snapshots up to wall
        timestamps; :func:`repro.telemetry.spans.span_tree` strips those
        too.
        """
        tids: Dict[int, int] = {}
        spans = []
        for record in self.tracer.records():
            tid = tids.setdefault(record.tid, len(tids))
            spans.append({
                "name": record.name,
                "cat": record.cat,
                "tid": tid,
                "ts_us": round(record.ts_us, 3),
                "dur_us": round(record.dur_us, 3),
                "depth": record.depth,
                "seq": record.seq,
                "args": dict(record.args),
            })
        return {
            "label": self.label,
            "pid": os.getpid(),
            "counters": self.counters.as_dict(),
            "spans": spans,
        }


# ---------------------------------------------------------------------------
# Process-wide session
# ---------------------------------------------------------------------------
_session: Optional[Telemetry] = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "0").lower() in (
        "1", "on", "true", "yes")


def get_telemetry() -> Telemetry:
    """The process-wide session (created from ``REPRO_TELEMETRY``)."""
    global _session
    if _session is None:
        _session = Telemetry(enabled=_env_enabled())
    return _session


def set_telemetry(session: Optional[Telemetry]) -> None:
    """Install (or with ``None``, reset) the process-wide session."""
    global _session
    _session = session


@contextmanager
def scoped_telemetry(session: Optional[Telemetry] = None):
    """Install ``session`` (default: a fresh enabled one) for a block.

    The previous process-wide session is restored on exit, so analysis
    code can collect counters for one evaluation without disturbing an
    outer profiling session.
    """
    session = session if session is not None else Telemetry(enabled=True)
    previous = _session
    set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)


__all__ = [
    "AlertEngine",
    "AlertEvent",
    "BurnRateRule",
    "CounterRegistry",
    "GaugeSampler",
    "RateSampler",
    "SLOObjective",
    "SlidingWindowHistogram",
    "SpanRecord",
    "StreamingHistogram",
    "Telemetry",
    "TimeSeries",
    "Tracer",
    "budget_burn",
    "default_objective",
    "default_rules",
    "get_telemetry",
    "nearest_rank",
    "percentile",
    "scoped_telemetry",
    "set_telemetry",
    "span_tree",
]
