"""Declarative SLO objectives, error budgets, and burn-rate alert rules.

An SLO is a target fraction of *good* requests (completed within their
per-model latency deadline); the complement is the **error budget**.
The Google SRE workbook's multi-window, multi-burn-rate policy turns
the budget into actionable alerts: the **burn rate** is how many times
faster than budget-neutral the service is consuming its budget
(``error_rate / budget``; burn 1.0 exhausts the budget exactly at the
end of the SLO period), and a rule pages only when BOTH a long window
and a short window burn hot — the long window for significance, the
short window so a recovered incident stops paging immediately.

Everything here is declarative and frozen: rules are data evaluated by
:mod:`repro.telemetry.alerts`, picklable for ``--jobs`` fan-out, and
serialised verbatim into the ``repro-monitor-report-v1`` payload.

Window lengths are expressed in *simulated* seconds and default to a
scaled-down version of the SRE workbook's 1h/5m page and 6h/30m ticket
pairs — a fleet run simulates tens of seconds, not weeks, so the
defaults keep the same long:short ratios at sim scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "BurnRateRule",
    "SLOObjective",
    "budget_burn",
    "default_objective",
    "default_rules",
]

#: Severity levels a rule may carry, ordered from loudest to quietest.
SEVERITIES = ("page", "ticket")


@dataclass(frozen=True)
class SLOObjective:
    """A target fraction of good requests, e.g. 0.999 ("three nines").

    ``budget`` is the tolerated error fraction (``1 - target``).  The
    default target comes from ``REPRO_MONITOR_SLO_TARGET`` and is
    0.999: at three nines a single crashed device in a six-device
    round-robin fleet (~16% errors) burns ~160x budget — far above the
    page threshold — while a healthy run must keep every window at
    literally zero misses, which the fault-free zoo benchmarks assert.
    """

    name: str = "availability"
    target: float = 0.999
    description: str = "requests completed within their per-model SLO"

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {self.target}")

    @property
    def budget(self) -> float:
        """Tolerated error fraction: ``1 - target``."""
        return 1.0 - self.target


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert rule.

    Fires when the burn rate over BOTH ``long_window_s`` and
    ``short_window_s`` is at least ``factor``; the long window makes
    the signal statistically meaningful, the short window gates on
    "still happening right now".  Resolution is hysteretic: both
    windows must stay below ``factor * hysteresis`` for
    ``resolve_intervals`` consecutive intervals, so a burn rate
    oscillating around the threshold does not flap fire/resolve pairs.
    """

    name: str
    severity: str                 # one of SEVERITIES
    factor: float                 # burn-rate threshold (x budget-neutral)
    long_window_s: float
    short_window_s: float
    hysteresis: float = 0.9       # resolve below factor * hysteresis
    resolve_intervals: int = 3    # consecutive quiet intervals to resolve

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, "
                             f"got {self.severity!r}")
        if self.factor <= 0.0:
            raise ValueError(f"factor must be positive, got {self.factor}")
        if not 0.0 < self.short_window_s <= self.long_window_s:
            raise ValueError(
                f"need 0 < short <= long window, got "
                f"short={self.short_window_s} long={self.long_window_s}")
        if not 0.0 < self.hysteresis <= 1.0:
            raise ValueError(f"hysteresis must be in (0, 1], "
                             f"got {self.hysteresis}")
        if self.resolve_intervals < 1:
            raise ValueError("resolve_intervals must be >= 1")

    def as_dict(self) -> dict:
        """JSON-ready form for the monitor report payload."""
        return {
            "name": self.name,
            "severity": self.severity,
            "factor": self.factor,
            "long_window_s": self.long_window_s,
            "short_window_s": self.short_window_s,
            "hysteresis": self.hysteresis,
            "resolve_intervals": self.resolve_intervals,
        }


def budget_burn(good: int, bad: int, objective: SLOObjective) -> float:
    """Burn rate of a (good, bad) window: error rate over error budget.

    An empty window burns 0.0 — "no data" must never page (the
    no-data-window scenario in ``tests/test_monitoring.py`` pins this).
    """
    total = good + bad
    if total == 0:
        return 0.0
    return (bad / total) / objective.budget


def default_rules(scale: float = 1.0) -> Tuple[BurnRateRule, ...]:
    """The SRE-workbook page/ticket pair at simulated-seconds scale.

    ``scale`` stretches every window, for longer traces.  Factors are
    the canonical 14.4 (page: 2% of a 30-day budget in an hour) and
    6.0 (ticket: 5% in six hours); the windows keep the workbook's
    long:short ratio of 4 while fitting a tens-of-seconds sim run.
    """
    return (
        BurnRateRule(name="page-fast-burn", severity="page", factor=14.4,
                     long_window_s=2.0 * scale, short_window_s=0.5 * scale),
        BurnRateRule(name="ticket-slow-burn", severity="ticket", factor=6.0,
                     long_window_s=6.0 * scale, short_window_s=1.5 * scale),
    )


def default_objective() -> SLOObjective:
    """The availability objective, target from ``REPRO_MONITOR_SLO_TARGET``."""
    raw = os.environ.get("REPRO_MONITOR_SLO_TARGET", "").strip()
    if not raw:
        return SLOObjective()
    return SLOObjective(target=float(raw))
