"""Hardware-style performance counters.

A :class:`CounterRegistry` is a flat map of dotted counter names to
monotonically increasing numbers — the software analogue of an
accelerator's performance-counter file. Names are namespaced by the
emitting subsystem (``sim.spad.obuf.reads``, ``npu.tandem.busy_cycles``,
``cache.results.hits``, ``serving.requests.rejected``), values stay
``int`` as long as every increment is an ``int``, and dumps are sorted
so two identical runs serialize byte-identically.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Union

Number = Union[int, float]


class CounterRegistry:
    """Monotonic counters keyed by dotted names."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}

    def add(self, name: str, value: Number = 1) -> None:
        """Increment ``name`` by ``value`` (negative increments are a bug)."""
        if value < 0:
            raise ValueError(f"counter {name!r}: negative increment {value}")
        self._counters[name] = self._counters.get(name, 0) + value

    def get(self, name: str, default: Number = 0) -> Number:
        return self._counters.get(name, default)

    def merge(self, other: Mapping[str, Number]) -> None:
        """Fold another dump into this registry (``--jobs`` merging)."""
        for name, value in other.items():
            self.add(name, value)

    def clear(self) -> None:
        self._counters.clear()

    def __len__(self) -> int:
        return len(self._counters)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def as_dict(self) -> Dict[str, Number]:
        """Sorted plain-dict dump (deterministic serialization order)."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"


def format_counters(counters: Mapping[str, Number],
                    title: str = "") -> str:
    """Flat two-column text table of a counter dump."""
    if not counters:
        return (title + "\n" if title else "") + "(no counters)"
    names = sorted(counters)
    width = max(len(name) for name in names)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * max(len(title), width + 2))
    for name in names:
        value = counters[name]
        text = str(value) if isinstance(value, int) else f"{value:g}"
        lines.append(f"{name:<{width}}  {text}")
    return "\n".join(lines)
