"""ANSI terminal dashboard for monitor reports: sparklines + alert log.

Renders a ``repro-monitor-report-v1`` payload (live at the end of
``repro serve --monitor``, or replayed from disk by
``repro monitor <report>``) as a compact fixed-width dashboard:

* a header with the SLO objective, budget burned, and alert totals;
* one sparkline row per time series (gaps — ``·`` — where an interval
  had no data, so an empty latency window never reads as 0 ms);
* a chronological alert log with fire/resolve markers;
* the rules still firing when the run ended.

Colour is plain ANSI (red pages, yellow tickets, green resolves) and
is disabled with ``color=False`` (``--no-color``, or automatically
when stdout is not a TTY) so CI logs and golden outputs stay byte
stable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_dashboard", "sparkline"]

#: Eight-level Unicode bars, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"
#: Placeholder for a no-data interval.
_GAP = "·"

_RESET = "\x1b[0m"
_COLORS = {
    "page": "\x1b[31m",      # red
    "ticket": "\x1b[33m",    # yellow
    "resolve": "\x1b[32m",   # green
    "dim": "\x1b[2m",
    "bold": "\x1b[1m",
}


def _paint(text: str, style: str, color: bool) -> str:
    if not color:
        return text
    return f"{_COLORS[style]}{text}{_RESET}"


def sparkline(samples: Sequence[Optional[float]], width: int = 48) -> str:
    """Downsample a series into a ``width``-character sparkline.

    Each output cell covers a contiguous run of samples and shows the
    run's **maximum** (alerting cares about peaks, not means); a cell
    whose run is entirely ``None`` renders as a gap.  Scaling is
    min..max over the present samples, so a flat series renders as a
    flat low bar rather than dividing by zero.
    """
    if not samples:
        return _GAP * width
    width = max(1, min(width, len(samples)))
    cells: List[Optional[float]] = []
    for i in range(width):
        lo = i * len(samples) // width
        hi = max(lo + 1, (i + 1) * len(samples) // width)
        run = [s for s in samples[lo:hi] if s is not None]
        cells.append(max(run) if run else None)
    present = [c for c in cells if c is not None]
    if not present:
        return _GAP * width
    lo_v, hi_v = min(present), max(present)
    span = hi_v - lo_v
    out = []
    for cell in cells:
        if cell is None:
            out.append(_GAP)
        elif span <= 0.0:
            out.append(_SPARK[0])
        else:
            level = int((cell - lo_v) / span * (len(_SPARK) - 1))
            out.append(_SPARK[level])
    return "".join(out)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def _series_rows(series: Dict[str, dict], width: int,
                 color: bool) -> List[str]:
    rows = []
    name_w = max((len(n) for n in series), default=0)
    for name in series:
        column = series[name]
        samples = column["samples"]
        spark = sparkline(samples, width)
        present = [s for s in samples if s is not None]
        last = samples[-1] if samples else None
        stats = (f"last {_fmt(last):>8}  max "
                 f"{_fmt(max(present) if present else None):>8}")
        unit = column.get("unit", "")
        rows.append(f"  {name:<{name_w}}  {spark}  "
                    f"{_paint(stats, 'dim', color)}  {unit}")
    return rows


def render_dashboard(payload: dict, color: bool = True,
                     width: int = 48) -> str:
    """Render a monitor report payload as a terminal dashboard string."""
    slo = payload.get("slo", {})
    lines: List[str] = []
    title = (f"monitor · {payload.get('kind', '?')} · "
             f"{payload.get('intervals', 0)} x "
             f"{payload.get('interval_s', 0)}s intervals · "
             f"seed {payload.get('seed', '?')}")
    lines.append(_paint(title, "bold", color))
    if slo:
        burned = slo.get("budget_burned", 0.0)
        lines.append(
            f"  SLO {slo.get('name', '?')} target {slo.get('target', 0):g}"
            f" · good {slo.get('good', 0)} bad {slo.get('bad', 0)}"
            f" · budget burned {burned:.2f}x")
    counts = payload.get("counts", {})
    if counts:
        summary = "  alerts: " + "  ".join(
            f"{key}={counts[key]}" for key in sorted(counts))
        lines.append(summary)
    lines.append("")
    lines.extend(_series_rows(payload.get("series", {}), width, color))
    alerts = payload.get("alerts", [])
    if alerts:
        lines.append("")
        lines.append(_paint("alert log", "bold", color))
        for event in alerts:
            style = ("resolve" if event["kind"] == "resolve"
                     else event["severity"])
            marker = "FIRE   " if event["kind"] == "fire" else "RESOLVE"
            line = (f"  [{event['t_s']:8.2f}s] {marker} "
                    f"{event['severity']:<6} {event['rule']:<18} "
                    f"burn long {event['burn_long']:8.1f}x "
                    f"short {event['burn_short']:8.1f}x")
            lines.append(_paint(line, style, color))
    active = payload.get("active_alerts", [])
    lines.append("")
    if active:
        lines.append(_paint(f"  STILL FIRING: {', '.join(active)}",
                            "page", color))
    else:
        lines.append(_paint("  no active alerts", "dim", color))
    return "\n".join(lines)
