"""Fixed sim-time-interval samplers for streaming fleet monitoring.

The fleet simulator historically produced one :class:`ServingReport`
after the run: every latency was appended to a list, the list was
sorted once at report time, and a single p99 summarised the whole run.
That is a batch scorer, not a monitored service — tail latency is a
property of latency *over time under load*, and an autoscaling or
alerting policy needs a per-interval signal while the run is still in
flight.

This module provides the primitives the monitor samples on a fixed
simulated-time grid:

* :func:`percentile` — the exact nearest-rank estimator, moved here
  from ``serving/metrics.py`` so the end-of-run report and the
  streaming histogram share ONE implementation of the rank rule.
* :class:`StreamingHistogram` — fixed geometric-bin latency histogram.
  Observing is O(1), two histograms merge by adding bin counts, and a
  percentile query walks the (sparse) bins once — no per-interval
  re-sorting of raw samples. The bin growth factor bounds the relative
  error of any percentile at ``sqrt(growth) - 1``.
* :class:`SlidingWindowHistogram` — a deque of per-interval histograms;
  the windowed p99 is the percentile of the *merged* last-W intervals,
  which is exactly what the mergeable representation makes cheap.
* :class:`GaugeSampler` / :class:`RateSampler` — level vs. per-second
  event-count semantics for the non-latency series.
* :class:`TimeSeries` — one named, typed column of samples aligned to
  the interval grid (``None`` = no data, distinct from ``0.0``).

Everything here is pure Python over plain floats: deterministic for a
fixed seed, picklable, and byte-identical between serial and
``--jobs N`` runs.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "GaugeSampler",
    "RateSampler",
    "SlidingWindowHistogram",
    "StreamingHistogram",
    "TimeSeries",
    "nearest_rank",
    "percentile",
]


def nearest_rank(count: int, q: float) -> int:
    """0-based index of the nearest-rank ``q``-th percentile.

    For ``count`` samples in ascending order the nearest-rank estimator
    picks element ``ceil(q / 100 * count)`` (1-based), clamped to the
    valid range.  This is the single rank rule shared by the exact
    :func:`percentile` and :meth:`StreamingHistogram.percentile`.
    """
    if count <= 0:
        raise ValueError("nearest_rank needs at least one sample")
    rank = -(-q * count // 100)  # ceil(q * count / 100) without floats
    return int(min(count, max(1, rank))) - 1


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending-sorted sequence.

    Edge semantics (pinned by ``tests/test_serving.py``):

    * empty input returns ``0.0`` — callers that must distinguish
      "no samples" from "zero latency" (the :class:`ServingReport`
      table, empty monitor windows) check ``count`` themselves and
      render ``n/a``;
    * a single element is every percentile of itself
      (``percentile([5.0], 99) == 5.0``);
    * no interpolation ever happens — the result is always one of the
      observed values, which keeps p99 meaningful for multimodal
      latency distributions (retry humps, compile-miss spikes).
    """
    if not sorted_values:
        return 0.0
    return sorted_values[nearest_rank(len(sorted_values), q)]


class StreamingHistogram:
    """Mergeable fixed geometric-bin histogram with bounded-error percentiles.

    Values in ``[lo, hi)`` land in log-spaced bins whose edges grow by
    ``growth`` per bin; a value is reported back as the geometric mean
    of its bin's edges, so any percentile estimate is within a factor
    of ``sqrt(growth)`` of the exact nearest-rank answer
    (:attr:`max_relative_error`, ~2.5% at the default growth of 1.05).
    Values at or below ``lo`` clamp into an underflow bin reported as
    ``lo``; values at or above ``hi`` clamp into an overflow bin
    reported as ``hi``.

    Counts live in a sparse dict, so an interval that saw 3 distinct
    latencies costs 3 entries regardless of sample count, and merging
    two histograms is a dict-sum — the property the sliding window
    relies on to avoid re-sorting raw samples every interval.
    """

    __slots__ = ("lo", "hi", "growth", "_log_growth", "n_bins", "count",
                 "counts")

    def __init__(self, lo: float = 1e-3, hi: float = 1e7,
                 growth: float = 1.05) -> None:
        if not (lo > 0.0 and hi > lo):
            raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        # bin 0 = underflow, bins 1..n-2 = geometric, bin n-1 = overflow
        self.n_bins = 2 + int(math.ceil(
            math.log(self.hi / self.lo) / self._log_growth))
        self.count = 0
        self.counts: Dict[int, int] = {}

    @property
    def max_relative_error(self) -> float:
        """Worst-case relative error of any in-range percentile."""
        return math.sqrt(self.growth) - 1.0

    def _bin(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value >= self.hi:
            return self.n_bins - 1
        b = 1 + int(math.log(value / self.lo) / self._log_growth)
        return min(b, self.n_bins - 2)

    def _representative(self, b: int) -> float:
        if b <= 0:
            return self.lo
        if b >= self.n_bins - 1:
            return self.hi
        low = self.lo * self.growth ** (b - 1)
        return math.sqrt(low * (low * self.growth))

    def observe(self, value: float, n: int = 1) -> None:
        """Add ``n`` samples of ``value`` (O(1), no allocation when hot)."""
        b = self._bin(value)
        self.counts[b] = self.counts.get(b, 0) + n
        self.count += n

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram's counts into this one (same binning)."""
        if (other.lo, other.hi, other.growth) != (self.lo, self.hi,
                                                  self.growth):
            raise ValueError("cannot merge histograms with different bins")
        for b, n in other.counts.items():
            self.counts[b] = self.counts.get(b, 0) + n
        self.count += other.count

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank ``q``-th percentile, or ``None`` when empty.

        Unlike the exact :func:`percentile`, emptiness is reported as
        ``None`` rather than ``0.0``: an empty monitor window must not
        masquerade as a zero-latency window.
        """
        if self.count == 0:
            return None
        target = nearest_rank(self.count, q)
        running = 0
        for b in sorted(self.counts):
            running += self.counts[b]
            if running > target:
                return self._representative(b)
        raise AssertionError("unreachable: counts sum to count")

    def __len__(self) -> int:
        return self.count


class SlidingWindowHistogram:
    """Last-W-intervals latency window backed by mergeable histograms.

    Each monitor interval owns one small :class:`StreamingHistogram`;
    :meth:`roll` retires the current interval into a bounded deque, and
    a windowed percentile merges the retired intervals plus the live
    one.  Cost per query is O(window × occupied bins) — independent of
    how many raw samples the window saw.
    """

    def __init__(self, window_intervals: int, lo: float = 1e-3,
                 hi: float = 1e7, growth: float = 1.05) -> None:
        if window_intervals < 1:
            raise ValueError("window must span at least one interval")
        self.window_intervals = int(window_intervals)
        self._lo, self._hi, self._growth = lo, hi, growth
        self._closed: Deque[StreamingHistogram] = deque(
            maxlen=self.window_intervals - 1 or None)
        if self.window_intervals == 1:
            self._closed = deque(maxlen=0)
        self._live = StreamingHistogram(lo, hi, growth)

    def observe(self, value: float, n: int = 1) -> None:
        """Record a sample into the interval currently being filled."""
        self._live.observe(value, n)

    def roll(self) -> None:
        """Close the current interval and start the next one."""
        self._closed.append(self._live)
        self._live = StreamingHistogram(self._lo, self._hi, self._growth)

    def merged(self) -> StreamingHistogram:
        """Union of the live interval and the retained closed intervals."""
        total = StreamingHistogram(self._lo, self._hi, self._growth)
        for hist in self._closed:
            total.merge(hist)
        total.merge(self._live)
        return total

    def percentile(self, q: float) -> Optional[float]:
        """Windowed nearest-rank percentile; ``None`` when the window is empty."""
        return self.merged().percentile(q)

    def percentiles(self, qs: Sequence[float]) -> List[Optional[float]]:
        """Several windowed percentiles off a single merge.

        The monitor samples p50/p95/p99 every interval; merging the
        window once per boundary instead of once per quantile is the
        difference between 1 and 3 window walks per series.
        """
        merged = self.merged()
        return [merged.percentile(q) for q in qs]


class GaugeSampler:
    """A level: the sample is the value *at* the interval boundary.

    Queue depth, devices down, KV tokens reserved — quantities where
    the interesting number is the instantaneous state, not a flow.
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def sample(self, interval_s: float) -> float:
        """The level at the boundary (``interval_s`` is ignored)."""
        return self.value


class RateSampler:
    """A flow: the sample is events-per-second over the closing interval.

    Arrivals, completions, sheds, retries — :meth:`bump` during the
    interval, and :meth:`sample` converts the pending count to a rate
    and resets it for the next interval.
    """

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending = 0

    def bump(self, n: int = 1) -> None:
        self.pending += n

    def sample(self, interval_s: float) -> float:
        """Drain the pending count into a per-second rate."""
        rate = self.pending / interval_s
        self.pending = 0
        return rate


@dataclass
class TimeSeries:
    """One named column of interval-aligned samples.

    ``kind`` is ``gauge``/``rate``/``percentile``/``burn_rate`` and
    tells the dashboard how to label the series; ``None`` samples mean
    "no data this interval" and are rendered as gaps, never as zero.
    """

    name: str
    kind: str
    unit: str
    samples: List[Optional[float]] = field(default_factory=list)

    def append(self, value: Optional[float]) -> None:
        self.samples.append(None if value is None else float(value))

    def last(self) -> Optional[float]:
        """Most recent sample (``None`` when empty or no data)."""
        return self.samples[-1] if self.samples else None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form for the ``repro-monitor-report-v1`` payload."""
        return {"kind": self.kind, "unit": self.unit,
                "samples": list(self.samples)}
