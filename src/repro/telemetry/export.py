"""Exporters: Chrome trace-event JSON (Perfetto-loadable) + counters.

The trace file follows the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev: a top-level object
with a ``traceEvents`` list of ``X`` (complete), ``i`` (instant) and
``M`` (metadata) events. Host spans use real microseconds; device
timelines map one unit-cycle to one microsecond (recorded in
``otherData.timeUnits`` so readers can rescale). ``otherData`` also
carries the merged hardware-counter dump and the timestamp-free
canonical span tree — the two artifacts the determinism tests compare
byte for byte.

``validate_trace`` is the schema check shared by the tests and the CI
``profile-smoke`` step.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from .counters import CounterRegistry, format_counters
from .spans import span_tree

#: Event phases this exporter emits / the validator accepts.
KNOWN_PHASES = ("X", "B", "E", "i", "C", "M")

#: pid blocks: host snapshots take 0..N-1, device/serving tracks sit
#: far above so merged snapshots can never collide with them.
DEVICE_PID = 1000
SERVING_PID = 2000


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def chrome_trace(snapshots: Sequence[Mapping[str, Any]],
                 device_events: Iterable[Dict[str, Any]] = (),
                 extra_other_data: Optional[Mapping[str, Any]] = None,
                 ) -> Dict[str, Any]:
    """Merge telemetry snapshots (+ prebuilt device events) into a trace.

    Snapshots are renumbered ``pid = 0..N-1`` in merge order — callers
    pass them in a deterministic order (e.g. ``parallel_map`` output
    order), which keeps the merged trace stable across ``--jobs`` runs.
    """
    events: List[Dict[str, Any]] = []
    counters = CounterRegistry()
    for pid, snapshot in enumerate(snapshots):
        events.append(_metadata(pid, 0, "process_name",
                                snapshot.get("label", "session")))
        for span in snapshot.get("spans", ()):
            events.append({
                "ph": "X",
                "name": span["name"],
                "cat": span["cat"],
                "pid": pid,
                "tid": span["tid"],
                "ts": span["ts_us"],
                "dur": max(span["dur_us"], 0.0),
                "args": dict(span.get("args", {})),
            })
        counters.merge(snapshot.get("counters", {}))
    events.extend(device_events)
    other: Dict[str, Any] = {
        "counters": counters.as_dict(),
        "spanTree": span_tree(snapshots),
        "timeUnits": {"host": "us (wall clock)",
                      "device": "us (1 unit-cycle = 1 us)",
                      "serving": "us (simulated time)"},
    }
    if extra_other_data:
        other.update(extra_other_data)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def _metadata(pid: int, tid: int, kind: str, name: str) -> Dict[str, Any]:
    return {"ph": "M", "name": kind, "pid": pid, "tid": tid,
            "args": {"name": name}}


def tile_timeline_events(events: Iterable[Any],
                         pid: int = DEVICE_PID) -> List[Dict[str, Any]]:
    """The Figure 10 tile timeline as Chrome trace slices.

    ``events`` are :class:`repro.npu.trace.TraceEvent`-shaped objects
    (``block``/``unit``/``tile``/``start_cycle``/``end_cycle``); one
    track per unit, one slice per (block, tile), one cycle = one µs.
    """
    tids = {"gemm": 0, "tandem": 1}
    out = [
        _metadata(pid, 0, "process_name", "NPU device (cycles)"),
        _metadata(pid, 0, "thread_name", "GEMM unit"),
        _metadata(pid, 1, "thread_name", "Tandem Processor"),
    ]
    for event in events:
        out.append({
            "ph": "X",
            "name": f"{event.block}/t{event.tile}",
            "cat": "device",
            "pid": pid,
            "tid": tids[event.unit],
            "ts": float(event.start_cycle),
            "dur": float(event.end_cycle - event.start_cycle),
            "args": {"block": event.block, "unit": event.unit,
                     "tile": event.tile,
                     "start_cycle": event.start_cycle,
                     "end_cycle": event.end_cycle},
        })
    return out


#: tid of the reject track in the serving process group.
_REJECT_TID = 999
#: tid of the fault/retry lifecycle track in the serving process group.
_FAULT_TID = 998

#: Trace-log kinds that open/close a device-state window: crash..recover
#: pairs become "outage" slices, eject..readmit pairs become "ejected"
#: slices. True = opens the window.
_FAULT_WINDOWS = {"crash": ("outage", True), "recover": ("outage", False),
                  "eject": ("ejected", True), "readmit": ("ejected", False)}


def serving_trace_events(log: Iterable[Mapping[str, Any]],
                         pid: int = SERVING_PID) -> List[Dict[str, Any]]:
    """Fleet request lifecycles (from ``FleetSimulator`` trace logs).

    Batches become slices on per-device tracks in simulated time;
    rejects become instant events on a dedicated track. Fault and retry
    lifecycle entries land on a ``faults`` track: crash→recover and
    eject→readmit pairs as complete slices (windows still open when the
    log ends — e.g. a permanent crash — are closed at the last logged
    time), everything else (timeouts, retries, tile faults, corrupt
    downloads, ...) as instant events carrying the entry's fields.
    """
    out = [_metadata(pid, _REJECT_TID, "thread_name", "rejected"),
           _metadata(pid, _FAULT_TID, "thread_name", "faults"),
           _metadata(pid, 0, "process_name", "serving fleet (simulated)")]
    devices_seen = set()
    entries = list(log)
    end_s = max((e.get("finish_s", e["t_s"]) for e in entries), default=0.0)
    open_windows: Dict[Any, float] = {}
    for entry in entries:
        kind = entry["kind"]
        if kind == "batch":
            device = entry["device"]
            if device not in devices_seen:
                devices_seen.add(device)
                out.append(_metadata(pid, device, "thread_name",
                                     f"device {device}"))
            start_us = entry["start_s"] * 1e6
            out.append({
                "ph": "X",
                "name": f"{entry['model']} x{entry['batch']}",
                "cat": "serving",
                "pid": pid,
                "tid": device,
                "ts": start_us,
                "dur": max(entry["finish_s"] * 1e6 - start_us, 0.0),
                "args": {"model": entry["model"], "batch": entry["batch"],
                         "compile": entry.get("compile", False)},
            })
        elif kind in ("reject", "verify-reject", "queue-reject", "shed"):
            out.append({
                "ph": "i",
                "s": "t",
                "name": kind,
                "cat": "serving",
                "pid": pid,
                "tid": _REJECT_TID,
                "ts": entry["t_s"] * 1e6,
                "args": {"model": entry["model"]},
            })
        elif kind in _FAULT_WINDOWS:
            label, opens = _FAULT_WINDOWS[kind]
            key = (label, entry["device"])
            if opens:
                open_windows[key] = entry["t_s"]
            else:
                start_s = open_windows.pop(key, entry["t_s"])
                out.append(_fault_slice(pid, label, entry["device"],
                                        start_s, entry["t_s"]))
        else:  # timeout / retry / tile-fault / corrupt-* / queue-burst ...
            out.append({
                "ph": "i",
                "s": "t",
                "name": kind,
                "cat": "faults",
                "pid": pid,
                "tid": _FAULT_TID,
                "ts": entry["t_s"] * 1e6,
                "args": {k: v for k, v in entry.items()
                         if k not in ("kind", "t_s")},
            })
    for (label, device), start_s in sorted(open_windows.items()):
        out.append(_fault_slice(pid, label, device, start_s,
                                max(end_s, start_s)))
    return out


#: pid block for the LLM batching engine's simulated timeline.
LLM_PID = 3000
#: tid of the engine-wide decode-step track.
_LLM_STEP_TID = 0
#: tid of the completion/reject lifecycle track.
_LLM_LIFECYCLE_TID = 999


def llm_trace_events(log: Iterable[Mapping[str, Any]],
                     pid: int = LLM_PID) -> List[Dict[str, Any]]:
    """LLM batching timelines (from a batcher's ``trace_log``).

    Decode steps become slices on the engine track (one slice per
    iteration, named by its batch size); prefills become slices carrying
    the joining request id; completions and KV-budget rejects land as
    instants on a lifecycle track. Simulated seconds map to trace
    microseconds like the serving exporter.
    """
    out = [_metadata(pid, 0, "process_name", "llm engine (simulated)"),
           _metadata(pid, _LLM_STEP_TID, "thread_name", "decode steps"),
           _metadata(pid, _LLM_LIFECYCLE_TID, "thread_name", "lifecycle")]
    for entry in log:
        kind = entry["kind"]
        if kind == "step":
            start_us = entry["start_s"] * 1e6
            out.append({
                "ph": "X",
                "name": f"step x{entry['batch']}",
                "cat": "llm",
                "pid": pid,
                "tid": _LLM_STEP_TID,
                "ts": start_us,
                "dur": max(entry["finish_s"] * 1e6 - start_us, 0.0),
                "args": {"batch": entry["batch"],
                         "rids": list(entry.get("rids", ()))},
            })
        elif kind == "prefill":
            start_us = entry["start_s"] * 1e6
            out.append({
                "ph": "X",
                "name": f"prefill r{entry['rid']}",
                "cat": "llm",
                "pid": pid,
                "tid": _LLM_STEP_TID,
                "ts": start_us,
                "dur": max(entry["finish_s"] * 1e6 - start_us, 0.0),
                "args": {"rid": entry["rid"],
                         "tokens": entry.get("tokens", 0)},
            })
        else:  # complete / reject
            out.append({
                "ph": "i",
                "s": "t",
                "name": f"{kind} r{entry['rid']}",
                "cat": "llm",
                "pid": pid,
                "tid": _LLM_LIFECYCLE_TID,
                "ts": entry["t_s"] * 1e6,
                "args": {"rid": entry["rid"]},
            })
    return out


def _fault_slice(pid: int, label: str, device: int, start_s: float,
                 end_s: float) -> Dict[str, Any]:
    return {
        "ph": "X",
        "name": f"{label} d{device}",
        "cat": "faults",
        "pid": pid,
        "tid": _FAULT_TID,
        "ts": start_s * 1e6,
        "dur": max((end_s - start_s) * 1e6, 0.0),
        "args": {"device": device},
    }


#: pid block for the streaming monitor's counter tracks.
MONITOR_PID = 4000


def monitor_counter_events(payload: Mapping[str, Any],
                           pid: int = MONITOR_PID) -> List[Dict[str, Any]]:
    """Counter tracks (``ph: "C"``) from a ``repro-monitor-report-v1``.

    Every monitor time series becomes one Perfetto counter track in
    simulated microseconds — one counter sample per interval boundary
    — so the live queue depth, burn rates, and windowed tail latencies
    render *alongside* the batch/fault span tracks the serving exporter
    already emits.  ``None`` samples (no data) are skipped rather than
    emitted as zero, leaving honest gaps in the track.  Alert fire and
    resolve transitions ride along as instant events on an ``alerts``
    track.
    """
    out: List[Dict[str, Any]] = [
        _metadata(pid, 0, "process_name",
                  f"monitor ({payload.get('kind', '?')}, simulated)"),
    ]
    interval_s = payload.get("interval_s", 0.0)
    for name, column in payload.get("series", {}).items():
        for index, sample in enumerate(column.get("samples", [])):
            if sample is None:
                continue
            out.append({
                "ph": "C",
                "name": name,
                "cat": "monitor",
                "pid": pid,
                "tid": 0,
                "ts": (index + 1) * interval_s * 1e6,
                "args": {"value": sample},
            })
    for event in payload.get("alerts", []):
        out.append({
            "ph": "i",
            "s": "p",
            "name": f"{event['kind']}:{event['rule']}",
            "cat": "alerts",
            "pid": pid,
            "tid": 1,
            "ts": event["t_s"] * 1e6,
            "args": {"severity": event["severity"],
                     "burn_long": event["burn_long"],
                     "burn_short": event["burn_short"]},
        })
    return out


# ---------------------------------------------------------------------------
# Validation + IO
# ---------------------------------------------------------------------------
def validate_trace(payload: Any) -> None:
    """Check ``payload`` against the trace-event schema; raise on error.

    Covers what chrome://tracing / Perfetto actually require to load the
    file: the ``traceEvents`` list, known phases, string names, integer
    pid/tid, numeric non-negative timestamps, and durations on complete
    events.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        raise ValueError(f"trace must be a JSON object, got {type(payload).__name__}")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace must carry a non-empty traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    counters = payload.get("otherData", {}).get("counters")
    if counters is not None and not isinstance(counters, dict):
        problems.append("otherData.counters must be an object")
    if problems:
        raise ValueError("invalid trace-event JSON:\n  "
                         + "\n  ".join(problems[:20]))


def validate_trace_file(path: str) -> Dict[str, Any]:
    """Load + validate a trace file; returns the parsed payload."""
    with open(path) as handle:
        payload = json.load(handle)
    validate_trace(payload)
    return payload


def write_trace(path: str, payload: Mapping[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


__all__ = [
    "DEVICE_PID",
    "LLM_PID",
    "MONITOR_PID",
    "SERVING_PID",
    "chrome_trace",
    "format_counters",
    "llm_trace_events",
    "monitor_counter_events",
    "serving_trace_events",
    "tile_timeline_events",
    "validate_trace",
    "validate_trace_file",
    "write_trace",
]
