"""Deterministic burn-rate rule evaluation producing fire/resolve events.

The :class:`AlertEngine` consumes one ``(good, bad)`` observation per
monitor interval and evaluates every :class:`BurnRateRule` against the
window sums, emitting :class:`AlertEvent` fire/resolve pairs.  The
evaluation is a pure function of the observation sequence: integer
prefix sums, no wall-clock reads, no randomness — so the alert stream
for a seeded run is byte-identical between serial and ``--jobs N``
execution, which ``benchmarks/test_perf_monitoring.py`` asserts.

Semantics (each pinned by a hand-computed scenario in
``tests/test_monitoring.py``):

* **fire** — a rule fires at the first interval boundary where the
  burn rate over BOTH its long and short windows reaches its factor;
* **hysteresis** — a firing rule resolves only after both windows
  stay below ``factor * hysteresis`` for ``resolve_intervals``
  consecutive intervals, so threshold-straddling noise cannot flap;
* **no data** — an empty window burns 0.0 and can never fire (and
  counts toward resolving), because "the service saw no traffic" is
  not an SLO violation;
* windows shorter than one interval round **up** to one interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .slo import BurnRateRule, SLOObjective, budget_burn

__all__ = ["AlertEngine", "AlertEvent"]


@dataclass(frozen=True)
class AlertEvent:
    """One fire or resolve transition of one rule, at a boundary time."""

    kind: str            # "fire" | "resolve"
    rule: str
    severity: str
    t_s: float           # interval-boundary sim time of the transition
    burn_long: float
    burn_short: float

    def as_dict(self) -> dict:
        """JSON-ready form for the monitor report payload."""
        return {
            "kind": self.kind,
            "rule": self.rule,
            "severity": self.severity,
            "t_s": self.t_s,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
        }


class _RuleState:
    """Mutable evaluation state for one rule."""

    __slots__ = ("rule", "long_n", "short_n", "firing", "quiet_streak")

    def __init__(self, rule: BurnRateRule, interval_s: float) -> None:
        self.rule = rule
        # Windows round up to whole intervals so a short window never
        # degenerates to zero samples.
        self.long_n = max(1, -(-int(rule.long_window_s * 1e9)
                               // int(interval_s * 1e9)))
        self.short_n = max(1, -(-int(rule.short_window_s * 1e9)
                                // int(interval_s * 1e9)))
        self.firing = False
        self.quiet_streak = 0


class AlertEngine:
    """Evaluates burn-rate rules over per-interval good/bad counts.

    Call :meth:`observe` once per closed interval with the counts of
    requests that became good/bad during that interval; it returns the
    events that transitioned at that boundary (also accumulated on
    :attr:`events`).  :meth:`burn_rates` exposes the current window
    burns so the monitor can record them as time series.
    """

    def __init__(self, objective: SLOObjective,
                 rules: Tuple[BurnRateRule, ...], interval_s: float) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if len({r.name for r in rules}) != len(rules):
            raise ValueError("rule names must be unique")
        self.objective = objective
        self.interval_s = float(interval_s)
        self._states = [_RuleState(rule, interval_s) for rule in rules]
        # Prefix sums over intervals; index k holds totals of the first
        # k intervals, so a window of n intervals at interval k is
        # sums[k] - sums[k - n].
        self._good = [0]
        self._bad = [0]
        self.events: List[AlertEvent] = []

    @property
    def intervals(self) -> int:
        """Number of intervals observed so far."""
        return len(self._good) - 1

    @property
    def good_total(self) -> int:
        """Good events observed over the whole run."""
        return self._good[-1]

    @property
    def bad_total(self) -> int:
        """Bad events observed over the whole run."""
        return self._bad[-1]

    @property
    def any_firing(self) -> bool:
        """True while at least one rule is in the firing state."""
        return any(state.firing for state in self._states)

    def firing_rules(self) -> List[str]:
        """Names of the rules currently firing, in rule order."""
        return [s.rule.name for s in self._states if s.firing]

    def firing_severities(self) -> List[str]:
        """Severities with at least one firing rule, in rule order.

        Deduplicated, so a consumer reacting per severity class (the
        autoscaler scales out on *any* firing severity but reports the
        loudest) gets a stable, deterministic list.
        """
        out: List[str] = []
        for state in self._states:
            if state.firing and state.rule.severity not in out:
                out.append(state.rule.severity)
        return out

    def _window_burn(self, n_intervals: int) -> float:
        k = self.intervals
        start = max(0, k - n_intervals)
        good = self._good[k] - self._good[start]
        bad = self._bad[k] - self._bad[start]
        return budget_burn(good, bad, self.objective)

    def burn_rates(self, rule_name: str) -> Tuple[float, float]:
        """Current ``(burn_long, burn_short)`` for a rule by name."""
        for state in self._states:
            if state.rule.name == rule_name:
                return (self._window_burn(state.long_n),
                        self._window_burn(state.short_n))
        raise KeyError(f"unknown rule {rule_name!r}")

    def observe(self, good: int, bad: int, t_s: float) -> List[AlertEvent]:
        """Close one interval ending at ``t_s``; return its transitions."""
        self._good.append(self._good[-1] + int(good))
        self._bad.append(self._bad[-1] + int(bad))
        emitted: List[AlertEvent] = []
        for state in self._states:
            rule = state.rule
            burn_long = self._window_burn(state.long_n)
            burn_short = self._window_burn(state.short_n)
            if not state.firing:
                if burn_long >= rule.factor and burn_short >= rule.factor:
                    state.firing = True
                    state.quiet_streak = 0
                    emitted.append(AlertEvent(
                        "fire", rule.name, rule.severity, t_s,
                        burn_long, burn_short))
            else:
                clear = rule.factor * rule.hysteresis
                if burn_long < clear and burn_short < clear:
                    state.quiet_streak += 1
                    if state.quiet_streak >= rule.resolve_intervals:
                        state.firing = False
                        state.quiet_streak = 0
                        emitted.append(AlertEvent(
                            "resolve", rule.name, rule.severity, t_s,
                            burn_long, burn_short))
                else:
                    state.quiet_streak = 0
        self.events.extend(emitted)
        return emitted

    def counts(self) -> Dict[str, int]:
        """Fire/resolve totals by severity, for the report summary."""
        out: Dict[str, int] = {}
        for event in self.events:
            key = f"{event.severity}_{event.kind}"
            out[key] = out.get(key, 0) + 1
        return out
