"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``models`` — list the benchmark models.
* ``evaluate MODEL [--design NAME]`` — end-to-end latency/energy on one
  design point (``npu``, ``baseline1``, ``baseline2``, ``gemmini``,
  ``gemmini32``, ``vpu``, ``jetson``, ``rtx2080ti``, ``a100-tensorrt``,
  ``a100-cuda``).
* ``compare MODEL`` — one model across every design class.
* ``compile MODEL [--disassemble N] [--dump FILE]`` — compile and
  inspect/serialize the Tandem programs.
* ``experiment ID [ID...] [--jobs N]`` — regenerate paper
  figures/tables, optionally across worker processes.
* ``trace MODEL`` — ASCII timeline of the software-pipelined execution.
* ``cache {stats,clear,path}`` — inspect or drop the content-addressed
  evaluation cache (``.repro_cache``; see :mod:`repro.runtime.cache`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .baselines import (
    A100,
    JETSON_XAVIER_NX,
    RTX_2080_TI,
    CpuFallbackDesign,
    DedicatedUnitsDesign,
    GemminiDesign,
    GpuDesign,
    TpuVpuDesign,
)
from .harness import render_table, run_experiment
from .models import available_models
from .npu import NPUTandem, render_timeline, trace_model
from .runtime import cached_evaluate, default_jobs, get_cache, parallel_map

_DESIGNS: Dict[str, Callable[[], object]] = {
    "npu": NPUTandem,
    "baseline1": CpuFallbackDesign,
    "baseline2": DedicatedUnitsDesign,
    "gemmini": lambda: GemminiDesign(1),
    "gemmini32": lambda: GemminiDesign(32),
    "vpu": TpuVpuDesign,
    "jetson": lambda: GpuDesign(JETSON_XAVIER_NX),
    "rtx2080ti": lambda: GpuDesign(RTX_2080_TI),
    "a100-tensorrt": lambda: GpuDesign(A100, "tensorrt"),
    "a100-cuda": lambda: GpuDesign(A100, "cuda"),
}


def _result_row(result) -> tuple:
    return (result.design, result.total_seconds * 1e3,
            result.energy_joules * 1e3, result.average_power_watts)


def cmd_models(_args) -> int:
    for name in available_models():
        print(name)
    return 0


def cmd_evaluate(args) -> int:
    design = _DESIGNS[args.design]()
    result = cached_evaluate(design, args.model)
    print(render_table(("design", "latency (ms)", "energy (mJ)", "power (W)"),
                       [_result_row(result)],
                       title=f"{args.model} on {args.design}"))
    if args.per_op and result.per_op_seconds:
        rows = sorted(result.per_op_seconds.items(), key=lambda kv: -kv[1])
        print()
        print(render_table(("operator", "seconds"), rows,
                           title="non-GEMM time per operator"))
    return 0


def cmd_compare(args) -> int:
    rows = [_result_row(cached_evaluate(_DESIGNS[name](), args.model))
            for name in _DESIGNS]
    print(render_table(("design", "latency (ms)", "energy (mJ)", "power (W)"),
                       rows, title=f"{args.model} across design classes"))
    return 0


def cmd_compile(args) -> int:
    from .compiler import dump_model
    npu = NPUTandem()
    model = npu.compile(args.model)
    print(f"{args.model}: {len(model.blocks)} blocks, "
          f"{model.total_instructions()} Tandem instruction words")
    if args.disassemble:
        shown = 0
        for cb in model.blocks:
            if cb.tile is None:
                continue
            print(f"\n--- {cb.name} (tiles={cb.tiles}) ---")
            print(cb.tile.program.disassemble())
            shown += 1
            if shown >= args.disassemble:
                break
    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write(dump_model(model))
        print(f"wrote {args.dump}")
    return 0


def _render_experiment(exp_id: str) -> str:
    return run_experiment(exp_id).render()


def cmd_experiment(args) -> int:
    jobs = args.jobs if args.jobs is not None else default_jobs()
    for text in parallel_map(_render_experiment, args.ids, jobs=jobs):
        print(text)
        print()
    return 0


def cmd_cache(args) -> int:
    cache = get_cache()
    if args.action == "clear":
        cache.clear()
        print("cache cleared")
    elif args.action == "path":
        print(cache.directory if cache.directory is not None else "(memory)")
    else:  # stats
        counts = cache.entry_counts()
        rows = [(kind, counts[kind]) for kind in sorted(counts)] or \
            [("(empty)", 0)]
        print(render_table(("kind", "entries"), rows,
                           title=f"cache at {cache.directory}"))
        stats = cache.stats.as_dict()
        print()
        print(render_table(("counter", "value"),
                           [(k, stats[k]) for k in sorted(stats)],
                           title="this process"))
    return 0


def cmd_trace(args) -> int:
    events = trace_model(args.model)
    print(render_timeline(events[:args.events], width=args.width))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tandem Processor (ASPLOS 2024) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list benchmark models")

    evaluate = sub.add_parser("evaluate", help="run one model on one design")
    evaluate.add_argument("model")
    evaluate.add_argument("--design", choices=sorted(_DESIGNS),
                          default="npu")
    evaluate.add_argument("--per-op", action="store_true",
                          help="show the per-operator breakdown")

    compare = sub.add_parser("compare", help="one model, every design class")
    compare.add_argument("model")

    compile_cmd = sub.add_parser("compile", help="compile + inspect programs")
    compile_cmd.add_argument("model")
    compile_cmd.add_argument("--disassemble", type=int, default=0,
                             metavar="N", help="print N blocks' programs")
    compile_cmd.add_argument("--dump", metavar="FILE",
                             help="serialize the compiled model to JSON")

    experiment = sub.add_parser("experiment",
                                help="regenerate paper figures/tables")
    experiment.add_argument("ids", nargs="+")
    experiment.add_argument("--jobs", "-j", type=int, default=None,
                            metavar="N",
                            help="worker processes (default: $REPRO_JOBS)")

    trace = sub.add_parser("trace", help="ASCII execution timeline")
    trace.add_argument("model")
    trace.add_argument("--events", type=int, default=80)
    trace.add_argument("--width", type=int, default=72)

    cache = sub.add_parser("cache", help="inspect/clear the eval cache")
    cache.add_argument("action", choices=("stats", "clear", "path"),
                       nargs="?", default="stats")
    return parser


_COMMANDS = {
    "models": cmd_models,
    "evaluate": cmd_evaluate,
    "compare": cmd_compare,
    "compile": cmd_compile,
    "experiment": cmd_experiment,
    "trace": cmd_trace,
    "cache": cmd_cache,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
