"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``models`` — list the benchmark models.
* ``evaluate MODEL [--design NAME]`` — end-to-end latency/energy on one
  design point (``npu``, ``baseline1``, ``baseline2``, ``gemmini``,
  ``gemmini32``, ``vpu``, ``jetson``, ``rtx2080ti``, ``a100-tensorrt``,
  ``a100-cuda``).
* ``compare MODEL`` — one model across every design class.
* ``compile MODEL [--disassemble N] [--dump FILE]`` — compile and
  inspect/serialize the Tandem programs.
* ``experiment ID [ID...]`` — regenerate paper figures/tables.
* ``trace MODEL`` — ASCII timeline of the software-pipelined execution.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .baselines import (
    A100,
    JETSON_XAVIER_NX,
    RTX_2080_TI,
    CpuFallbackDesign,
    DedicatedUnitsDesign,
    GemminiDesign,
    GpuDesign,
    TpuVpuDesign,
)
from .harness import render_table, run_experiment
from .models import available_models
from .npu import NPUTandem, render_timeline, trace_model

_DESIGNS: Dict[str, Callable[[], object]] = {
    "npu": NPUTandem,
    "baseline1": CpuFallbackDesign,
    "baseline2": DedicatedUnitsDesign,
    "gemmini": lambda: GemminiDesign(1),
    "gemmini32": lambda: GemminiDesign(32),
    "vpu": TpuVpuDesign,
    "jetson": lambda: GpuDesign(JETSON_XAVIER_NX),
    "rtx2080ti": lambda: GpuDesign(RTX_2080_TI),
    "a100-tensorrt": lambda: GpuDesign(A100, "tensorrt"),
    "a100-cuda": lambda: GpuDesign(A100, "cuda"),
}


def _result_row(result) -> tuple:
    return (result.design, result.total_seconds * 1e3,
            result.energy_joules * 1e3, result.average_power_watts)


def cmd_models(_args) -> int:
    for name in available_models():
        print(name)
    return 0


def cmd_evaluate(args) -> int:
    design = _DESIGNS[args.design]()
    result = design.evaluate(args.model)
    print(render_table(("design", "latency (ms)", "energy (mJ)", "power (W)"),
                       [_result_row(result)],
                       title=f"{args.model} on {args.design}"))
    if args.per_op and result.per_op_seconds:
        rows = sorted(result.per_op_seconds.items(), key=lambda kv: -kv[1])
        print()
        print(render_table(("operator", "seconds"), rows,
                           title="non-GEMM time per operator"))
    return 0


def cmd_compare(args) -> int:
    rows = [_result_row(_DESIGNS[name]().evaluate(args.model))
            for name in _DESIGNS]
    print(render_table(("design", "latency (ms)", "energy (mJ)", "power (W)"),
                       rows, title=f"{args.model} across design classes"))
    return 0


def cmd_compile(args) -> int:
    from .compiler import dump_model
    npu = NPUTandem()
    model = npu.compile(args.model)
    print(f"{args.model}: {len(model.blocks)} blocks, "
          f"{model.total_instructions()} Tandem instruction words")
    if args.disassemble:
        shown = 0
        for cb in model.blocks:
            if cb.tile is None:
                continue
            print(f"\n--- {cb.name} (tiles={cb.tiles}) ---")
            print(cb.tile.program.disassemble())
            shown += 1
            if shown >= args.disassemble:
                break
    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write(dump_model(model))
        print(f"wrote {args.dump}")
    return 0


def cmd_experiment(args) -> int:
    for exp_id in args.ids:
        print(run_experiment(exp_id).render())
        print()
    return 0


def cmd_trace(args) -> int:
    events = trace_model(args.model)
    print(render_timeline(events[:args.events], width=args.width))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tandem Processor (ASPLOS 2024) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list benchmark models")

    evaluate = sub.add_parser("evaluate", help="run one model on one design")
    evaluate.add_argument("model")
    evaluate.add_argument("--design", choices=sorted(_DESIGNS),
                          default="npu")
    evaluate.add_argument("--per-op", action="store_true",
                          help="show the per-operator breakdown")

    compare = sub.add_parser("compare", help="one model, every design class")
    compare.add_argument("model")

    compile_cmd = sub.add_parser("compile", help="compile + inspect programs")
    compile_cmd.add_argument("model")
    compile_cmd.add_argument("--disassemble", type=int, default=0,
                             metavar="N", help="print N blocks' programs")
    compile_cmd.add_argument("--dump", metavar="FILE",
                             help="serialize the compiled model to JSON")

    experiment = sub.add_parser("experiment",
                                help="regenerate paper figures/tables")
    experiment.add_argument("ids", nargs="+")

    trace = sub.add_parser("trace", help="ASCII execution timeline")
    trace.add_argument("model")
    trace.add_argument("--events", type=int, default=80)
    trace.add_argument("--width", type=int, default=72)
    return parser


_COMMANDS = {
    "models": cmd_models,
    "evaluate": cmd_evaluate,
    "compare": cmd_compare,
    "compile": cmd_compile,
    "experiment": cmd_experiment,
    "trace": cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
