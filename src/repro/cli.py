"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``models`` — list the benchmark models.
* ``evaluate MODEL [--design NAME]`` — end-to-end latency/energy on one
  design point (``npu``, ``baseline1``, ``baseline2``, ``gemmini``,
  ``gemmini32``, ``vpu``, ``jetson``, ``rtx2080ti``, ``a100-tensorrt``,
  ``a100-cuda``).
* ``compare MODEL`` — one model across every design class.
* ``compile MODEL [--disassemble N] [--dump FILE] [--explain]
  [--autotune]`` — compile and inspect/serialize the Tandem programs;
  ``--explain`` narrates the pass pipeline, ``--autotune`` searches it
  first.
* ``autotune MODEL [--budget N] [--jobs N] [--json FILE]`` — search the
  compiler pass pipeline for one model, scored by the cycle model (see
  :mod:`repro.compiler.autotune`).
* ``experiment ID [ID...] [--jobs N]`` — regenerate paper
  figures/tables, optionally across worker processes.
* ``trace MODEL [--json FILE]`` — ASCII timeline of the
  software-pipelined execution, optionally also exported as a
  Perfetto-loadable Chrome trace-event file.
* ``profile MODEL [--trace-out FILE]`` — run one model with telemetry
  on: compile/verify/simulate spans, the hardware-counter dump, and
  optionally a merged Chrome trace (host spans + device tile timeline).
* ``cache {stats,clear,path}`` — inspect or drop the content-addressed
  evaluation cache (``.repro_cache``; see :mod:`repro.runtime.cache`).
* ``serve --model M --devices N --rate R`` — simulate a serving fleet
  of NPU-Tandem devices under load (see :mod:`repro.serving`).
  ``--faults plan.json`` injects a fault plan; ``--resilience
  {naive,resilient}`` picks the response policy (default: resilient
  when faults are injected, naive otherwise).
* ``serve --llm`` — LLM mode: sweep continuous vs one-shot batching
  over decode-step costs and report goodput at SLO, TTFT and
  inter-token latency percentiles (see :mod:`repro.llm.sweep`).
* ``decode CONFIG [--prompt N] [--tokens N]`` — autoregressive
  KV-cache decoding on the detailed machine (``tinyllm``) or the
  integer reference, one table row per prefill/decode step.
* ``chaos`` — sweep fault-rate scales x resilience policies and report
  goodput retention vs the fault-free control (see
  :mod:`repro.faults.chaos`).
* ``docs`` — regenerate the ISA reference (``docs/isa.md``) from the
  ISA definitions; ``--check`` fails when the checked-in file drifts,
  ``--coverage`` gates docstring coverage instead.
* ``verify TARGET... | --all`` — static verification of compiled Tandem
  programs (zoo model names, serialized ``compile --dump`` JSON, or raw
  program blobs); exit 1 on any error finding (``--strict``: warnings
  too). ``lint`` is the same pipeline showing the info tier as well.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from .baselines import (
    A100,
    JETSON_XAVIER_NX,
    RTX_2080_TI,
    CpuFallbackDesign,
    DedicatedUnitsDesign,
    GemminiDesign,
    GpuDesign,
    TpuVpuDesign,
)
from .harness import render_table, run_experiment
from .models import available_models
from .npu import NPUTandem, render_timeline, trace_model
from .runtime import cached_evaluate, default_jobs, get_cache, parallel_map

_DESIGNS: Dict[str, Callable[[], object]] = {
    "npu": NPUTandem,
    "baseline1": CpuFallbackDesign,
    "baseline2": DedicatedUnitsDesign,
    "gemmini": lambda: GemminiDesign(1),
    "gemmini32": lambda: GemminiDesign(32),
    "vpu": TpuVpuDesign,
    "jetson": lambda: GpuDesign(JETSON_XAVIER_NX),
    "rtx2080ti": lambda: GpuDesign(RTX_2080_TI),
    "a100-tensorrt": lambda: GpuDesign(A100, "tensorrt"),
    "a100-cuda": lambda: GpuDesign(A100, "cuda"),
}


def _result_row(result) -> tuple:
    return (result.design, result.total_seconds * 1e3,
            result.energy_joules * 1e3, result.average_power_watts)


def cmd_models(_args) -> int:
    """List the model-zoo names, one per line."""
    for name in available_models():
        print(name)
    return 0


def cmd_evaluate(args) -> int:
    """Evaluate one model on one design point; optional per-op breakdown."""
    design = _DESIGNS[args.design]()
    result = cached_evaluate(design, args.model)
    print(render_table(("design", "latency (ms)", "energy (mJ)", "power (W)"),
                       [_result_row(result)],
                       title=f"{args.model} on {args.design}"))
    if args.per_op and result.per_op_seconds:
        rows = sorted(result.per_op_seconds.items(), key=lambda kv: -kv[1])
        print()
        print(render_table(("operator", "seconds"), rows,
                           title="non-GEMM time per operator"))
    return 0


def cmd_compare(args) -> int:
    """Evaluate one model across every registered design class."""
    rows = [_result_row(cached_evaluate(_DESIGNS[name](), args.model))
            for name in _DESIGNS]
    print(render_table(("design", "latency (ms)", "energy (mJ)", "power (W)"),
                       rows, title=f"{args.model} across design classes"))
    return 0


def cmd_compile(args) -> int:
    """Compile a model; optionally explain, disassemble, or dump JSON."""
    from .compiler import dump_model
    npu = NPUTandem(autotune=True if args.autotune else None)
    if args.explain:
        from .compiler import autotune_model, explain_compile
        from .models import build_model
        graph = build_model(args.model)
        pipeline = None
        if npu._autotune_active():
            report = autotune_model(graph, npu.config, jobs=default_jobs(),
                                    special_functions=npu.special_functions)
            pipeline = report.best_pipeline()
        model, lines = explain_compile(
            graph, npu.config.sim, npu.config.gemm,
            special_functions=npu.special_functions, pipeline=pipeline)
        print("\n".join(lines))
    else:
        model = npu.compile(args.model)
    print(f"{args.model}: {len(model.blocks)} blocks, "
          f"{model.total_instructions()} Tandem instruction words")
    if args.disassemble:
        shown = 0
        for cb in model.blocks:
            if cb.tile is None:
                continue
            print(f"\n--- {cb.name} (tiles={cb.tiles}) ---")
            print(cb.tile.program.disassemble())
            shown += 1
            if shown >= args.disassemble:
                break
    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write(dump_model(model))
        print(f"wrote {args.dump}")
    return 0


def cmd_autotune(args) -> int:
    """Search the pass pipeline for one model; print/export the report."""
    import json

    from .compiler import autotune_model
    from .models import build_model

    npu = NPUTandem()
    graph = build_model(args.model)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    report = autotune_model(graph, npu.config, budget=args.budget, jobs=jobs,
                            special_functions=npu.special_functions)
    rows = []
    for cand in report.candidates:
        cycles = cand["cycles"]
        rows.append((cand["label"], cand["status"],
                     f"{cycles:.0f}" if cycles is not None else "-",
                     (f"{cycles / report.baseline_cycles:.4f}"
                      if cycles is not None else "-")))
    print(render_table(("pipeline", "status", "cycles", "vs default"), rows,
                       title=f"autotune {args.model} "
                             f"({report.strategy}, budget {report.budget}"
                             f"{', cached' if report.cached else ''})"))
    print(f"\nbest: {report.best_label} — {report.best_cycles:.0f} cycles, "
          f"{report.improvement * 100:.2f}% below the default pipeline "
          f"({report.counters['candidates']} candidates, "
          f"{report.counters['verifier_rejects']} verifier-rejected, "
          f"{report.counters['cache_hits']} cache hits)")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _render_experiment(exp_id: str) -> str:
    return run_experiment(exp_id).render()


def cmd_experiment(args) -> int:
    """Regenerate paper figures/tables, optionally across processes."""
    jobs = args.jobs if args.jobs is not None else default_jobs()
    for text in parallel_map(_render_experiment, args.ids, jobs=jobs):
        print(text)
        print()
    return 0


def cmd_cache(args) -> int:
    """Inspect, clear, or print the path of the evaluation cache."""
    cache = get_cache()
    if args.action == "clear":
        cache.clear()
        print("cache cleared")
    elif args.action == "path":
        print(cache.directory if cache.directory is not None else "(memory)")
    else:  # stats
        counts = cache.entry_counts()
        rows = [(kind, counts[kind]) for kind in sorted(counts)] or \
            [("(empty)", 0)]
        print(render_table(("kind", "entries"), rows,
                           title=f"cache at {cache.directory}"))
        stats = cache.stats.as_dict()
        print()
        print(render_table(("counter", "value"),
                           [(k, stats[k]) for k in sorted(stats)],
                           title="this process"))
    return 0


def cmd_trace(args) -> int:
    """Render the tile timeline; optionally export a Chrome trace."""
    events = trace_model(args.model)
    print(render_timeline(events[:args.events], width=args.width))
    if args.json:
        from .telemetry.export import (
            chrome_trace,
            tile_timeline_events,
            write_trace,
        )
        payload = chrome_trace(
            [], device_events=tile_timeline_events(events),
            extra_other_data={"model": args.model})
        write_trace(args.json, payload)
        print(f"wrote {args.json}")
    return 0


def cmd_profile(args) -> int:
    """Run one model with telemetry on: spans, counters, optional trace."""
    from .analysis.verifier import verify_model
    from .compiler import compile_model
    from .models import build_model
    from .telemetry import Telemetry, scoped_telemetry
    from .telemetry.export import (
        chrome_trace,
        format_counters,
        tile_timeline_events,
        write_trace,
    )

    npu = NPUTandem()
    graph = build_model(args.model)
    with scoped_telemetry(Telemetry(enabled=True,
                                    label=f"profile:{args.model}")) as tel:
        with tel.span("profile", cat="host", model=args.model):
            # Compile without the implicit verification pass, then verify
            # and simulate explicitly: each phase gets its own span even
            # when the compile cache is warm, and evaluating the
            # CompiledModel bypasses the result cache so the simulation
            # really runs and populates the npu.* counters.
            model = compile_model(graph, npu.config.sim, npu.config.gemm,
                                  special_functions=npu.special_functions,
                                  verify=False)
            with tel.span("verify", cat="compiler", model=args.model):
                report = verify_model(model)
            with tel.span("simulate", cat="npu", model=args.model):
                result = npu.evaluate(model)
        snapshot = tel.snapshot()

    print(f"{args.model} on {npu.name}: {result.total_seconds * 1e3:.4f} ms, "
          f"verification {'clean' if report.clean else 'DIRTY'}")
    print()
    print(format_counters(snapshot["counters"],
                          title=f"hardware counters: {args.model}"))
    if args.trace_out:
        payload = chrome_trace(
            [snapshot],
            device_events=tile_timeline_events(trace_model(model, npu)),
            extra_other_data={"model": args.model, "design": npu.name})
        write_trace(args.trace_out, payload)
        print(f"\nwrote {args.trace_out}")
    return 0


def cmd_decode(args) -> int:
    """Autoregressively decode on the detailed machine; print each step."""
    from .llm import DecodeSession, available_llm_configs, get_llm_config
    from .runtime import seeded_rng

    if args.config not in available_llm_configs():
        print(f"repro decode: unknown config {args.config!r}; available: "
              f"{', '.join(available_llm_configs())}", file=sys.stderr)
        return 2
    config = get_llm_config(args.config)
    if args.prompt + args.tokens > config.max_context:
        print(f"repro decode: prompt + tokens exceeds {args.config}'s "
              f"{config.max_context}-token context window", file=sys.stderr)
        return 2
    rng = seeded_rng("llm-prompt", args.config, args.prompt)
    prompt = [int(t) for t in rng.integers(0, config.vocab, args.prompt)]
    session = DecodeSession(config, executor=args.executor)
    session.prefill(prompt)
    generated = session.decode(args.tokens)
    rows = [(r.phase, r.past_len, r.n_new,
             " ".join(str(t) for t in r.tokens_in), r.next_token,
             r.blocks or "-", r.machine_cycles or "-")
            for r in session.records]
    print(render_table(
        ("phase", "past", "new", "tokens in", "argmax", "blocks", "cycles"),
        rows, title=f"{args.config} ({args.executor}): "
                    f"{args.prompt}-token prompt, {args.tokens} decoded"))
    print(f"\ngenerated: {' '.join(str(t) for t in generated)}")
    print(f"KV-cache: {session.past_len} tokens resident, "
          f"{session.past_len * config.kv_bytes_per_token} DRAM bytes")
    if args.json:
        import json
        payload = {
            "config": args.config,
            "executor": args.executor,
            "prompt": prompt,
            "generated": generated,
            "kv_tokens": session.past_len,
            "kv_bytes": session.past_len * config.kv_bytes_per_token,
            "steps": [{"phase": r.phase, "past_len": r.past_len,
                       "n_new": r.n_new, "tokens_in": list(r.tokens_in),
                       "next_token": r.next_token, "blocks": r.blocks,
                       "machine_cycles": r.machine_cycles}
                      for r in session.records],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_serve_llm(args) -> int:
    """The ``serve --llm`` path: continuous vs one-shot batching sweep."""
    from .llm import (
        llm_grid,
        llm_report,
        llm_report_json,
        llm_table,
        run_llm_sweep,
        validate_llm_report,
    )
    from .serving import LLM_SCHEDULERS, LLMServiceCosts, make_llm_batcher

    schedulers = tuple(s.strip() for s in args.schedulers.split(",")
                       if s.strip())
    unknown = [s for s in schedulers if s not in LLM_SCHEDULERS]
    if unknown:
        print(f"repro serve: unknown LLM schedulers {', '.join(unknown)}; "
              f"known: {', '.join(LLM_SCHEDULERS)}", file=sys.stderr)
        return 2
    rates = None
    if args.rates:
        try:
            rates = tuple(float(r) for r in args.rates.split(",")
                          if r.strip())
        except ValueError:
            print(f"repro serve: --rates must be comma-separated numbers, "
                  f"got {args.rates!r}", file=sys.stderr)
            return 2
    costs = LLMServiceCosts.resolve(args.llm_config,
                                    kv_budget_tokens=args.kv_budget)
    from .serving import default_max_slots
    max_slots = args.slots if args.slots else default_max_slots()
    points = llm_grid(costs=costs, schedulers=schedulers, rates=rates,
                      duration_s=args.duration, max_slots=max_slots)
    jobs = args.jobs if args.jobs is not None else 1
    reports = run_llm_sweep(points, jobs=jobs)
    payload = llm_report(points, reports)
    problems = validate_llm_report(payload)
    if problems:  # pragma: no cover - internal invariant
        print("repro serve: invalid LLM report:\n  " + "\n  ".join(problems),
              file=sys.stderr)
        return 1
    print(llm_table(payload))
    for scheduler in schedulers:
        entry = payload["summary"][scheduler]
        print(f"{scheduler}: goodput at "
              f">={payload['slo_attainment_bar']:.0%} SLO "
              f"{entry['goodput_at_slo_rps']:.2f} req/s "
              f"(best {entry['best_goodput_rps']:.2f})")
    if payload["summary"].get("continuous_beats_oneshot") is not None:
        verdict = ("continuous batching beats one-shot"
                   if payload["summary"]["continuous_beats_oneshot"]
                   else "continuous batching does NOT beat one-shot")
        print(verdict)
    from .serving import monitoring_enabled
    if monitoring_enabled(args.monitor):
        # Re-run the busiest continuous point with the monitor attached
        # (monitoring is observational, so the sweep numbers above are
        # untouched) and render its dashboard.
        from .serving import (
            LLMMonitor,
            MonitorConfig,
            llm_poisson_requests,
            validate_monitor_report,
        )
        from .telemetry.dashboard import render_dashboard
        monitored = max((p for p in points if p.scheduler == "continuous"),
                        default=points[-1], key=lambda p: p.rate_rps)
        monitor = LLMMonitor(
            MonitorConfig.from_env(interval_s=args.monitor_interval))
        requests = llm_poisson_requests(
            monitored.rate_rps, monitored.duration_s,
            monitored.prompt_range, monitored.output_range,
            monitored.stream)
        batcher = make_llm_batcher(monitored.scheduler, monitored.costs,
                                   max_slots=monitored.max_slots,
                                   monitor=monitor)
        batcher.run(requests, rate_rps=monitored.rate_rps,
                    duration_s=monitored.duration_s)
        monitor_payload = monitor.payload(context={
            "config": args.llm_config,
            "scheduler": monitored.scheduler,
            "rate_rps": monitored.rate_rps,
            "duration_s": monitored.duration_s,
        })
        problems = validate_monitor_report(monitor_payload)
        if problems:  # pragma: no cover - internal invariant
            print("repro serve: invalid monitor report:\n  "
                  + "\n  ".join(problems), file=sys.stderr)
            return 1
        print(render_dashboard(monitor_payload,
                               color=sys.stdout.isatty()))
        if args.monitor_out:
            with open(args.monitor_out, "w") as handle:
                json.dump(monitor_payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.monitor_out}")
    if args.trace_out:
        from .telemetry.export import (
            chrome_trace,
            llm_trace_events,
            write_trace,
        )
        # Re-run the busiest continuous point with tracing on.
        traced = max((p for p in points if p.scheduler == "continuous"),
                     default=points[-1], key=lambda p: p.rate_rps)
        from .serving import llm_poisson_requests
        requests = llm_poisson_requests(
            traced.rate_rps, traced.duration_s, traced.prompt_range,
            traced.output_range, traced.stream)
        batcher = make_llm_batcher(traced.scheduler, traced.costs,
                                   max_slots=traced.max_slots,
                                   collect_trace=True)
        batcher.run(requests, rate_rps=traced.rate_rps,
                    duration_s=traced.duration_s)
        trace_payload = chrome_trace(
            [], device_events=llm_trace_events(batcher.trace_log),
            extra_other_data={"config": args.llm_config,
                              "scheduler": traced.scheduler,
                              "rate_rps": traced.rate_rps})
        write_trace(args.trace_out, trace_payload)
        print(f"wrote {args.trace_out}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(llm_report_json(payload))
        print(f"wrote {args.json}")
    return 0


def cmd_serve(args) -> int:
    """Simulate a serving fleet; optional fault plan + resilience policy."""
    if args.llm:
        return _cmd_serve_llm(args)
    from .faults import FaultPlan
    from .serving import (
        AdmissionPolicy,
        BatchPolicy,
        ClosedLoop,
        FleetSimulator,
        MonitorConfig,
        OpenLoopPoisson,
        ResiliencePolicy,
        ServiceCosts,
        autoscaling_enabled,
        monitoring_enabled,
    )
    models = [m.strip() for m in args.model.split(",") if m.strip()]
    fault_plan = FaultPlan.from_file(args.faults) if args.faults else None
    autoscale_on = autoscaling_enabled(args.autoscale)
    scale_on = args.scale or autoscale_on or args.cells is not None
    if scale_on:
        return _cmd_serve_scale(args, models, fault_plan, autoscale_on)
    if args.trace or args.diurnal or args.save_trace:
        print("repro serve: --trace/--diurnal/--save-trace need the "
              "scaled core; add --scale", file=sys.stderr)
        return 2
    monitor_on = monitoring_enabled(args.monitor)
    monitor_config = (MonitorConfig.from_env(interval_s=args.monitor_interval)
                      if monitor_on else None)
    # Default policy: respond to injected faults, stay bit-identical to
    # the pre-fault fleet when nothing is being injected.
    resilience_kind = args.resilience or (
        "resilient" if fault_plan is not None else "naive")
    resilience = (ResiliencePolicy() if resilience_kind == "resilient"
                  else ResiliencePolicy.naive())
    config_rows = [
        ("models", "+".join(models)),
        ("devices", args.devices),
        ("batch policy", f"{args.batch_policy} (max_batch={args.max_batch}, "
                         f"wait={args.max_wait_ms}ms)"),
        ("routing", args.routing),
        ("workload", "closed-loop" if args.closed_loop else
                     f"open-loop poisson @ {args.rate} req/s"),
        ("duration (s)", args.duration),
        ("admission max queue", args.max_queue),
        ("SLO multiplier", args.slo_multiplier),
        ("fault plan", fault_plan.name if fault_plan else "(none)"),
        ("resilience", resilience_kind),
    ]
    if monitor_on:
        config_rows.append((
            "monitor",
            f"interval={monitor_config.interval_s}s "
            f"window={monitor_config.window_intervals} "
            f"target={monitor_config.objective.target}"))
    if args.dry_run:
        print(render_table(("parameter", "value"), config_rows,
                           title="serve --dry-run (no simulation)"))
        return 0
    costs = ServiceCosts.resolve(models)
    if args.closed_loop:
        workload = ClosedLoop(models, clients=args.clients,
                              duration_s=args.duration,
                              think_s=args.think_ms * 1e-3)
        rate = 0.0
    else:
        workload = OpenLoopPoisson(models, args.rate, args.duration)
        rate = args.rate
    sim = FleetSimulator(
        costs, devices=args.devices,
        batch_policy=BatchPolicy(args.batch_policy, args.max_batch,
                                 args.max_wait_ms),
        admission=AdmissionPolicy(args.max_queue),
        routing=args.routing,
        slo_multiplier=args.slo_multiplier,
        collect_trace=bool(args.trace_out),
        fault_plan=fault_plan,
        resilience=resilience,
        monitor_config=monitor_config)
    if args.trace_out:
        from .telemetry import Telemetry, scoped_telemetry
        from .telemetry.export import (
            chrome_trace,
            serving_trace_events,
            write_trace,
        )
        with scoped_telemetry(Telemetry(enabled=True,
                                        label="serve")) as tel:
            report = sim.run(workload, rate_rps=rate)
            snapshot = tel.snapshot()
        device_events = list(serving_trace_events(sim.trace_log))
        if monitor_on and sim.monitor_payload is not None:
            from .telemetry.export import monitor_counter_events
            device_events.extend(monitor_counter_events(sim.monitor_payload))
        payload = chrome_trace(
            [snapshot], device_events=device_events,
            extra_other_data={"models": models, "devices": args.devices})
        write_trace(args.trace_out, payload)
    else:
        report = sim.run(workload, rate_rps=rate)
    print(report.table())
    if monitor_on and sim.monitor_payload is not None:
        from .serving import validate_monitor_report
        from .telemetry.dashboard import render_dashboard
        monitor_payload = sim.monitor_payload
        problems = validate_monitor_report(monitor_payload)
        if problems:  # pragma: no cover - internal invariant
            print("repro serve: invalid monitor report:\n  "
                  + "\n  ".join(problems), file=sys.stderr)
            return 1
        print(render_dashboard(monitor_payload,
                               color=sys.stdout.isatty()))
        if args.monitor_out:
            with open(args.monitor_out, "w") as handle:
                json.dump(monitor_payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.monitor_out}")
    if args.trace_out:
        print(f"wrote {args.trace_out}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json}")
    return 0


def _cmd_serve_scale(args, models, fault_plan, autoscale_on) -> int:
    """The ``--scale`` path: interned-record core, cells, autoscaling."""
    from .serving import (
        AdmissionPolicy,
        AutoscaleConfig,
        BatchPolicy,
        ClosedLoop,
        DiurnalTrace,
        OpenLoopPoisson,
        ScaledFleetSimulator,
        ServiceCosts,
        load_trace,
        save_trace,
        scale_table,
        validate_fleet_scale_report,
    )
    if fault_plan is not None or args.resilience == "resilient":
        print("repro serve: --scale is the fault-free fast path; drop "
              "--faults/--resilience (chaos runs use the legacy core)",
              file=sys.stderr)
        return 2
    if args.monitor or args.trace_out:
        print("repro serve: --scale does not support --monitor/"
              "--trace-out; the scale report has its own timeline "
              "(--scale-out FILE)", file=sys.stderr)
        return 2
    cells = args.cells
    if cells is None:
        # Autoscaling needs multiple cells to act on; default to ~25
        # devices per cell, the sweet spot for the in-cell route scan.
        cells = max(2, args.devices // 25) if autoscale_on else 1
    config = None
    if autoscale_on:
        config = AutoscaleConfig.from_env()
    if args.trace:
        # A replayed trace names its own model mix; --model is ignored.
        workload = load_trace(args.trace)
        models = sorted({r.model for r in workload.initial()})
    config_rows = [
        ("models", "+".join(models)),
        ("devices", f"{args.devices} ({cells} cell(s) x "
                    f"{args.devices // cells if cells else 0})"),
        ("batch policy", f"{args.batch_policy} (max_batch={args.max_batch}, "
                         f"wait={args.max_wait_ms}ms)"),
        ("routing", args.routing),
        ("workload",
         f"trace replay from {args.trace}" if args.trace else
         "closed-loop" if args.closed_loop else
         (f"diurnal @ peak {args.rate} req/s, trough {args.trough:g}x"
          if args.diurnal else f"open-loop poisson @ {args.rate} req/s")),
        ("duration (s)", args.duration),
        ("admission max queue", args.max_queue),
        ("SLO multiplier", args.slo_multiplier),
        ("autoscale",
         (f"interval={config.interval_s}s min_cells={config.min_cells} "
          f"cooldown={config.cooldown_s}s "
          f"${config.price_per_device_hour}/dev-h") if config else "off"),
    ]
    if args.dry_run:
        print(render_table(("parameter", "value"), config_rows,
                           title="serve --dry-run (no simulation)"))
        return 0
    if args.trace:
        rate = 0.0
    elif args.closed_loop:
        workload = ClosedLoop(models, clients=args.clients,
                              duration_s=args.duration,
                              think_s=args.think_ms * 1e-3)
        rate = 0.0
    elif args.diurnal:
        workload = DiurnalTrace(models, args.rate, args.duration,
                                trough_fraction=args.trough)
        rate = args.rate
    else:
        workload = OpenLoopPoisson(models, args.rate, args.duration)
        rate = args.rate
    if args.save_trace:
        written = save_trace(workload, args.save_trace)
        print(f"wrote {args.save_trace} ({written} requests)")
    costs = ServiceCosts.resolve(models)
    sim = ScaledFleetSimulator(
        costs, devices=args.devices, cells=cells,
        batch_policy=BatchPolicy(args.batch_policy, args.max_batch,
                                 args.max_wait_ms),
        admission=AdmissionPolicy(args.max_queue),
        routing=args.routing,
        slo_multiplier=args.slo_multiplier,
        autoscale=config)
    report = sim.run(workload, rate_rps=rate)
    payload = sim.payload
    problems = validate_fleet_scale_report(payload)
    if problems:  # pragma: no cover - internal invariant
        print("repro serve: invalid fleet-scale report:\n  "
              + "\n  ".join(problems), file=sys.stderr)
        return 1
    print(report.table())
    print(scale_table(payload))
    if args.scale_out:
        with open(args.scale_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.scale_out}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json}")
    return 0


def cmd_monitor(args) -> int:
    """Replay a saved monitor report as the terminal dashboard."""
    from .serving import validate_monitor_report
    from .telemetry.dashboard import render_dashboard
    try:
        with open(args.report) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"repro monitor: cannot read {args.report}: {error}",
              file=sys.stderr)
        return 2
    problems = validate_monitor_report(payload)
    if problems:
        print(f"repro monitor: invalid report {args.report}:\n  "
              + "\n  ".join(problems), file=sys.stderr)
        return 1
    color = sys.stdout.isatty() and not args.no_color
    print(render_dashboard(payload, color=color))
    return 0


def cmd_chaos(args) -> int:
    """Sweep fault-rate scales x resilience policies; report retention."""
    from .faults import (
        FaultPlan,
        chaos_grid,
        chaos_report,
        chaos_report_json,
        chaos_table,
        default_plan,
        run_chaos,
        validate_chaos_report,
    )
    from .serving import RESILIENCE_POLICIES, ServiceCosts

    plan = FaultPlan.from_file(args.plan) if args.plan else default_plan()
    try:
        scales = tuple(float(s) for s in args.scales.split(",") if s.strip())
    except ValueError:
        print(f"repro chaos: --scales must be comma-separated numbers, "
              f"got {args.scales!r}", file=sys.stderr)
        return 2
    policies = tuple(p.strip() for p in args.policies.split(",")
                     if p.strip())
    unknown = [p for p in policies if p not in RESILIENCE_POLICIES]
    if unknown:
        print(f"repro chaos: unknown policies {', '.join(unknown)}; "
              f"known: {', '.join(RESILIENCE_POLICIES)}", file=sys.stderr)
        return 2
    models = [m.strip() for m in args.model.split(",") if m.strip()]
    costs = ServiceCosts.resolve(models)
    points = chaos_grid(plan=plan, scales=scales, policies=policies,
                        model=models[0], devices=args.devices,
                        rate_rps=args.rate, duration_s=args.duration,
                        costs=costs)
    jobs = args.jobs if args.jobs is not None else 1
    reports = run_chaos(points, jobs=jobs)
    payload = chaos_report(points, reports)
    problems = validate_chaos_report(payload)
    if problems:  # pragma: no cover - internal invariant
        print("repro chaos: invalid report:\n  " + "\n  ".join(problems),
              file=sys.stderr)
        return 1
    print(chaos_table(payload))
    for policy, entry in payload["summary"].items():
        print(f"{policy}: worst goodput retention "
              f"{entry['min_goodput_retention']:.4f} "
              f"(baseline {entry['baseline_goodput_rps']:.2f} req/s)")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(chaos_report_json(payload))
        print(f"wrote {args.json}")
    return 0


def cmd_docs(args) -> int:
    """Generate/check the ISA reference, or gate docstring coverage."""
    import difflib
    import os

    from .docsgen import (
        coverage_table,
        docstring_coverage,
        render_isa_reference,
    )

    if args.rules:
        from .analysis.verifier import rules_table
        rendered = rules_table()
        out = "docs/rules.md"
        if args.stdout:
            print(rendered, end="")
            return 0
        if args.check:
            try:
                with open(out) as handle:
                    on_disk = handle.read()
            except FileNotFoundError:
                print(f"repro docs: {out} does not exist; run "
                      f"`repro docs --rules` to generate it",
                      file=sys.stderr)
                return 1
            if on_disk != rendered:
                print(f"repro docs: {out} has drifted from the rule "
                      f"registry; run `repro docs --rules` to regenerate",
                      file=sys.stderr)
                return 1
            print(f"{out} is up to date")
            return 0
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(out, "w") as handle:
            handle.write(rendered)
        print(f"wrote {out}")
        return 0

    if args.coverage:
        report = docstring_coverage()
        print(coverage_table(report))
        if args.fail_under is not None and \
                report.coverage * 100 < args.fail_under:
            print(f"repro docs: docstring coverage "
                  f"{report.coverage * 100:.1f}% is below the "
                  f"--fail-under bar of {args.fail_under:.1f}%",
                  file=sys.stderr)
            return 1
        return 0

    rendered = render_isa_reference()
    if args.stdout:
        print(rendered, end="")
        return 0
    if args.check:
        try:
            with open(args.out) as handle:
                on_disk = handle.read()
        except FileNotFoundError:
            print(f"repro docs: {args.out} does not exist; "
                  f"run `repro docs` to generate it", file=sys.stderr)
            return 1
        if on_disk != rendered:
            diff = difflib.unified_diff(
                on_disk.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile=args.out, tofile="generated")
            sys.stderr.writelines(list(diff)[:60])
            print(f"repro docs: {args.out} has drifted from the ISA "
                  f"definitions; run `repro docs` to regenerate",
                  file=sys.stderr)
            return 1
        print(f"{args.out} is up to date")
        return 0
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(rendered)
    print(f"wrote {args.out}")
    return 0


def _verify_target(target: str, deps=None):
    """Verify one CLI target; returns a Model- or program VerifyReport.

    A target is a zoo model name (compiled, every block verified), an
    LLM decode step ``<config>:decode`` (a single-token step after a
    short prefix, compiled and verified like a model), a JSON file from
    ``repro compile --dump`` (verified without a graph), or anything
    else readable as a raw little-endian program blob.
    """
    import os

    from .analysis.verifier import verify_blob, verify_block_dicts
    from .compiler import compile_model, load_blocks
    from .models import build_model

    if target in available_models():
        from .analysis.verifier import verify_model
        npu = NPUTandem()
        model = compile_model(build_model(target), npu.config.sim,
                              npu.config.gemm,
                              special_functions=npu.special_functions,
                              verify=False)
        return verify_model(model, deps=deps)
    if target.endswith(":decode"):
        from .analysis.verifier import verify_model
        from .llm import build_step, get_llm_config
        step = build_step(get_llm_config(target[:-len(":decode")]),
                          past_len=4, n_new=1)
        model = compile_model(step.graph, verify=False)
        return verify_model(model, deps=deps)
    if not os.path.exists(target):
        raise FileNotFoundError(
            f"{target!r} is neither a zoo model ({', '.join(available_models())}) "
            f"nor a file")
    with open(target, "rb") as handle:
        payload = handle.read()
    name = os.path.basename(target)
    try:
        blocks = load_blocks(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError, KeyError, TypeError):
        return verify_blob(name, payload)
    return verify_block_dicts(name, blocks, deps=deps)


def _cmd_verify(args, lint_mode: bool) -> int:
    from .analysis.verifier import Severity, resolve_ignores

    try:
        ignores = resolve_ignores(args.ignore or [])
    except ValueError as err:
        print(f"repro verify: {err}", file=sys.stderr)
        return 2
    deps = "strict" if args.deps else None
    targets = list(args.targets)
    if args.all:
        targets.extend(m for m in available_models() if m not in targets)
        if args.deps:
            from .llm import available_llm_configs
            targets.extend(f"{cfg}:decode" for cfg in available_llm_configs()
                           if f"{cfg}:decode" not in targets)
    if not targets:
        print("repro verify: no targets (give model names, files, or --all)",
              file=sys.stderr)
        return 2
    reports = []
    for target in targets:
        try:
            report = _verify_target(target, deps=deps)
        except FileNotFoundError as err:
            print(f"repro verify: {err}", file=sys.stderr)
            return 2
        if ignores:
            report.suppress(ignores)
        reports.append(report)
    errors = sum(r.errors for r in reports)
    warnings = sum(r.warnings for r in reports)
    failed = errors > 0 or (args.strict and warnings > 0)
    if args.json:
        import json
        print(json.dumps({
            "targets": [r.as_dict() for r in reports],
            "errors": errors,
            "warnings": warnings,
            "infos": sum(r.infos for r in reports),
            "clean": errors == 0,
            "strict": bool(args.strict),
            "ok": not failed,
        }, indent=2, sort_keys=True))
        return 1 if failed else 0
    min_severity = Severity.INFO if lint_mode else Severity.WARN
    for report in reports:
        print(report.render(min_severity))
    verdict = "FAIL" if failed else "ok"
    print(f"\n{len(reports)} target(s): {errors} error(s), "
          f"{warnings} warning(s), {sum(r.infos for r in reports)} info(s) "
          f"— {verdict}")
    return 1 if failed else 0


def cmd_verify(args) -> int:
    """Static verification of compiled programs (errors fail)."""
    return _cmd_verify(args, lint_mode=False)


def cmd_lint(args) -> int:
    """Verification plus the info-tier findings."""
    return _cmd_verify(args, lint_mode=True)


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser with every subcommand registered."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tandem Processor (ASPLOS 2024) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list benchmark models")

    evaluate = sub.add_parser("evaluate", help="run one model on one design")
    evaluate.add_argument("model")
    evaluate.add_argument("--design", choices=sorted(_DESIGNS),
                          default="npu")
    evaluate.add_argument("--per-op", action="store_true",
                          help="show the per-operator breakdown")

    compare = sub.add_parser("compare", help="one model, every design class")
    compare.add_argument("model")

    compile_cmd = sub.add_parser("compile", help="compile + inspect programs")
    compile_cmd.add_argument("model")
    compile_cmd.add_argument("--disassemble", type=int, default=0,
                             metavar="N", help="print N blocks' programs")
    compile_cmd.add_argument("--dump", metavar="FILE",
                             help="serialize the compiled model to JSON")
    compile_cmd.add_argument("--explain", action="store_true",
                             help="narrate the pass pipeline's decisions")
    compile_cmd.add_argument("--autotune", action="store_true",
                             help="search the pass pipeline first "
                                  "(default: follow $REPRO_AUTOTUNE)")

    autotune = sub.add_parser("autotune",
                              help="search the compiler pass pipeline")
    autotune.add_argument("model")
    autotune.add_argument("--budget", type=int, default=None, metavar="N",
                          help="candidate evaluations "
                               "(default: $REPRO_AUTOTUNE_BUDGET or 16)")
    autotune.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                          help="worker processes (default: $REPRO_JOBS)")
    autotune.add_argument("--json", metavar="FILE",
                          help="write the schema-tagged report as JSON")

    experiment = sub.add_parser("experiment",
                                help="regenerate paper figures/tables")
    experiment.add_argument("ids", nargs="+")
    experiment.add_argument("--jobs", "-j", type=int, default=None,
                            metavar="N",
                            help="worker processes (default: $REPRO_JOBS)")

    trace = sub.add_parser("trace", help="ASCII execution timeline")
    trace.add_argument("model")
    trace.add_argument("--events", type=int, default=80)
    trace.add_argument("--width", type=int, default=72)
    trace.add_argument("--json", metavar="FILE",
                       help="also write a Perfetto-loadable trace file")

    profile = sub.add_parser("profile",
                             help="run one model with telemetry enabled")
    profile.add_argument("model")
    profile.add_argument("--trace-out", metavar="FILE",
                         help="write a Chrome/Perfetto trace-event file")

    cache = sub.add_parser("cache", help="inspect/clear the eval cache")
    cache.add_argument("action", choices=("stats", "clear", "path"),
                       nargs="?", default="stats")

    from .serving import (
        BATCH_POLICIES,
        RESILIENCE_POLICIES,
        ROUTING_POLICIES,
    )
    serve = sub.add_parser("serve", help="simulate a serving fleet")
    serve.add_argument("--model", default="bert",
                       help="zoo model, or comma-separated mix")
    serve.add_argument("--devices", type=int, default=4,
                       help="fleet size (replicated NPU-Tandem devices)")
    serve.add_argument("--rate", type=float, default=100.0,
                       help="open-loop offered rate (req/s)")
    serve.add_argument("--duration", type=float, default=5.0,
                       help="simulated traffic horizon (s)")
    serve.add_argument("--batch-policy", choices=BATCH_POLICIES,
                       default="dynamic")
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="dynamic batching hold time")
    serve.add_argument("--routing", choices=ROUTING_POLICIES,
                       default="least_loaded")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="per-device admission limit")
    serve.add_argument("--slo-multiplier", type=float, default=10.0,
                       help="SLO = multiplier x isolated model latency")
    serve.add_argument("--closed-loop", action="store_true",
                       help="closed-loop clients instead of Poisson")
    serve.add_argument("--clients", type=int, default=32,
                       help="closed-loop client count")
    serve.add_argument("--think-ms", type=float, default=1.0,
                       help="closed-loop think time")
    serve.add_argument("--json", metavar="FILE",
                       help="also write the report as JSON")
    serve.add_argument("--trace-out", metavar="FILE",
                       help="write request lifecycles as a Chrome trace")
    serve.add_argument("--faults", metavar="FILE",
                       help="inject a fault plan (JSON; see repro.faults)")
    serve.add_argument("--resilience", choices=RESILIENCE_POLICIES,
                       default=None,
                       help="fault response policy (default: resilient "
                            "with --faults, naive otherwise)")
    serve.add_argument("--dry-run", action="store_true",
                       help="print the configuration and exit")
    serve.add_argument("--llm", action="store_true",
                       help="LLM mode: continuous vs one-shot batching "
                            "sweep over decode-step costs")
    serve.add_argument("--llm-config", default="gpt2_rms",
                       help="decode config for --llm (see repro.llm)")
    serve.add_argument("--kv-budget", type=int, default=None, metavar="TOK",
                       help="KV-cache admission budget in tokens "
                            "(default: $REPRO_LLM_KV_BUDGET or 1024)")
    serve.add_argument("--slots", type=int, default=None, metavar="N",
                       help="decode-batch slots for --llm "
                            "(default: $REPRO_LLM_MAX_SLOTS or 8)")
    serve.add_argument("--schedulers", default="oneshot,continuous",
                       help="comma-separated LLM schedulers to sweep")
    serve.add_argument("--rates", default=None,
                       help="comma-separated offered rates (req/s) for "
                            "--llm (default: a saturation-anchored ladder)")
    serve.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                       help="worker processes for the --llm sweep")
    serve.add_argument("--monitor", action="store_true",
                       help="stream per-interval telemetry + SLO burn-rate "
                            "alerts (also REPRO_MONITOR=1; =0 force-off)")
    serve.add_argument("--monitor-out", metavar="FILE",
                       help="write the repro-monitor-report-v1 JSON")
    serve.add_argument("--monitor-interval", type=float, default=None,
                       metavar="S",
                       help="sampling interval in simulated seconds "
                            "(default: $REPRO_MONITOR_INTERVAL or 0.1)")
    serve.add_argument("--scale", action="store_true",
                       help="use the interned-record scaled core "
                            "(1000+ devices; fault-free only)")
    serve.add_argument("--cells", type=int, default=None, metavar="N",
                       help="device cells for hierarchical routing "
                            "(must divide --devices; default 1, or "
                            "devices/25 under --autoscale)")
    serve.add_argument("--autoscale", action="store_true",
                       help="scale cells out/in on SLO burn rate + queue "
                            "depth (implies --scale; also "
                            "REPRO_AUTOSCALE=1; =0 force-off)")
    serve.add_argument("--scale-out", metavar="FILE",
                       help="write the repro-fleet-scale-report-v1 JSON")
    serve.add_argument("--diurnal", action="store_true",
                       help="diurnal workload: cosine rate envelope with "
                            "--rate as the peak (see DiurnalTrace)")
    serve.add_argument("--trough", type=float, default=0.25,
                       metavar="FRAC",
                       help="diurnal trough rate as a fraction of peak")
    serve.add_argument("--trace", metavar="FILE",
                       help="replay a repro-request-trace-v1 JSON trace "
                            "instead of generating arrivals")
    serve.add_argument("--save-trace", metavar="FILE",
                       help="write the generated workload as a "
                            "repro-request-trace-v1 JSON trace")

    monitor = sub.add_parser(
        "monitor", help="replay a saved monitor report as a dashboard")
    monitor.add_argument("report", metavar="FILE",
                         help="repro-monitor-report-v1 JSON "
                              "(from serve --monitor-out)")
    monitor.add_argument("--no-color", action="store_true",
                         help="plain ASCII dashboard (no ANSI colors)")

    decode = sub.add_parser("decode",
                            help="autoregressive KV-cache decoding")
    decode.add_argument("config", nargs="?", default="tinyllm",
                        help="decode config (tinyllm runs the detailed "
                             "machine; see repro.llm)")
    decode.add_argument("--prompt", type=int, default=4, metavar="N",
                        help="seeded prompt length in tokens")
    decode.add_argument("--tokens", type=int, default=4, metavar="N",
                        help="tokens to greedy-decode after prefill")
    decode.add_argument("--executor", choices=("functional", "reference"),
                        default="functional",
                        help="detailed machine or integer reference")
    decode.add_argument("--json", metavar="FILE",
                        help="also write the per-step record as JSON")

    chaos = sub.add_parser("chaos",
                           help="sweep fault rates x resilience policies")
    chaos.add_argument("--model", default="bert",
                       help="zoo model for the chaos workload")
    chaos.add_argument("--devices", type=int, default=4)
    chaos.add_argument("--rate", type=float, default=120.0,
                       help="open-loop offered rate (req/s)")
    chaos.add_argument("--duration", type=float, default=8.0,
                       help="simulated traffic horizon (s)")
    chaos.add_argument("--plan", metavar="FILE",
                       help="fault plan JSON (default: built-in chaos plan)")
    chaos.add_argument("--scales", default="0,0.5,1,2",
                       help="comma-separated fault-rate multipliers")
    chaos.add_argument("--policies",
                       default=",".join(RESILIENCE_POLICIES),
                       help="comma-separated resilience policies to sweep")
    chaos.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                       help="worker processes for the sweep")
    chaos.add_argument("--json", metavar="FILE",
                       help="write the schema-tagged chaos report as JSON")

    docs = sub.add_parser("docs",
                          help="generate reference docs from the ISA")
    docs.add_argument("--out", default="docs/isa.md", metavar="FILE",
                      help="where the ISA reference lives")
    docs.add_argument("--check", action="store_true",
                      help="exit 1 if FILE drifts from generated output")
    docs.add_argument("--stdout", action="store_true",
                      help="print the generated reference instead")
    docs.add_argument("--coverage", action="store_true",
                      help="report docstring coverage instead of the ISA")
    docs.add_argument("--fail-under", type=float, default=None,
                      metavar="PCT",
                      help="with --coverage: exit 1 below this percentage")
    docs.add_argument("--rules", action="store_true",
                      help="generate the verifier rule reference "
                           "(docs/rules.md) instead of the ISA")

    for cmd_name, help_text in (
            ("verify", "statically verify compiled Tandem programs"),
            ("lint", "verify + show info-tier lint findings")):
        check = sub.add_parser(cmd_name, help=help_text)
        check.add_argument("targets", nargs="*",
                           help="zoo model, compile --dump JSON, raw blob, "
                                "or <llm-config>:decode")
        check.add_argument("--all", action="store_true",
                           help="verify the entire model zoo")
        check.add_argument("--json", action="store_true",
                           help="machine-readable report on stdout")
        check.add_argument("--strict", action="store_true",
                           help="exit 1 on warnings as well as errors")
        check.add_argument("--deps", action="store_true",
                           help="force strict dependence analysis "
                                "(translation validation + race checks); "
                                "with --all, also verify LLM decode steps")
        check.add_argument("--ignore", action="append", default=[],
                           metavar="RULE",
                           help="suppress findings by rule ID or name "
                                "(repeatable; see docs/rules.md)")
    return parser


_COMMANDS = {
    "models": cmd_models,
    "evaluate": cmd_evaluate,
    "compare": cmd_compare,
    "compile": cmd_compile,
    "autotune": cmd_autotune,
    "experiment": cmd_experiment,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "cache": cmd_cache,
    "monitor": cmd_monitor,
    "serve": cmd_serve,
    "decode": cmd_decode,
    "chaos": cmd_chaos,
    "docs": cmd_docs,
    "verify": cmd_verify,
    "lint": cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
