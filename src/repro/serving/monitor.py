"""Streaming fleet monitoring: interval sampling, SLO burn-rate alerts.

The fleet simulator used to be a batch scorer — one
:class:`~repro.serving.metrics.ServingReport` at the end of the run.
This module turns it into a *monitored service*: the event loop feeds
lifecycle hooks into a :class:`FleetMonitor` (or :class:`LLMMonitor`
for the continuous-batching engine), which samples every series on a
fixed simulated-time grid, evaluates Google-SRE multi-window
burn-rate rules over the SLO error budget, and emits a versioned
``repro-monitor-report-v1`` payload that the CLI renders as a terminal
dashboard (``repro serve --monitor`` / ``repro monitor <report>``) or
exports as Chrome-trace counter tracks.

Monitoring is strictly observational: the hooks never touch the event
heap, the RNG, or any decision the scheduler makes, so an instrumented
run produces a byte-identical :class:`ServingReport` — asserted by
``tests/test_monitoring.py`` and gated at ≤5% overhead by
``benchmarks/test_perf_eval_pipeline.py``.

The streaming error signal
--------------------------
End-of-run accounting learns that a request stuck on a crashed device
"failed" only when the event heap drains — useless for alerting.  The
monitor instead keeps a deadline heap: every first-attempt arrival
pushes ``arrival + slo_s(model)``, and when an interval boundary passes
a deadline whose request has not completed, the request becomes a
**bad** event *at its deadline* — so a crash shows up in the burn rate
one SLO after it happens, while the fleet is still running.  A request
settles exactly once (deadline miss, rejection, or completion —
whichever the monitor sees first), so good/bad totals never double
count.

Everything is a pure function of ``(REPRO_SEED, inputs)``: sample and
alert streams are byte-identical between serial and ``--jobs N`` runs,
which ``benchmarks/test_perf_monitoring.py`` asserts via the picklable
:class:`MonitorPoint` / :func:`run_monitor_point` pair.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..runtime.seed import repro_seed
from ..telemetry.alerts import AlertEngine
from ..telemetry.slo import (
    BurnRateRule,
    SLOObjective,
    default_objective,
    default_rules,
)
from ..telemetry.timeseries import (
    GaugeSampler,
    RateSampler,
    SlidingWindowHistogram,
    TimeSeries,
)

MONITOR_SCHEMA = "repro-monitor-report-v1"

#: Boundary comparison slack: an event stamped exactly on a boundary
#: must land deterministically despite float accumulation.
_EPS = 1e-9

#: Batch-launch trigger reasons recorded by ``plan_batch``.
LAUNCH_REASONS = ("full", "deadline", "greedy", "single")


def monitoring_enabled(flag: bool = False) -> bool:
    """Whether monitoring is on: ``--monitor`` or ``REPRO_MONITOR=1``.

    ``REPRO_MONITOR=0`` force-disables even when the flag is passed —
    the kill switch the overhead benchmark uses to prove a disabled
    run is byte-identical to a never-instrumented one.
    """
    raw = os.environ.get("REPRO_MONITOR", "").strip()
    if raw == "0":
        return False
    return bool(flag) or raw == "1"


def env_float(name: str, default: float) -> float:
    """A float environment knob, falling back on unset/garbage values.

    Shared by the monitor's ``REPRO_MONITOR_*`` and the autoscaler's
    ``REPRO_AUTOSCALE_*`` configuration surfaces so every knob parses
    (and fails soft) the same way.
    """
    raw = os.environ.get(name, "").strip()
    try:
        return float(raw)
    except ValueError:
        return default


def env_int(name: str, default: int) -> int:
    """An integer environment knob; see :func:`env_float`."""
    raw = os.environ.get(name, "").strip()
    try:
        return int(raw)
    except ValueError:
        return default


# Historical private names, kept for in-repo callers.
_env_float = env_float
_env_int = env_int


@dataclass(frozen=True)
class MonitorConfig:
    """Frozen monitoring parameters (picklable; env-overridable).

    ``interval_s`` is the sampling grid in *simulated* seconds;
    ``window_intervals`` sizes the sliding latency window (so the
    windowed p99 spans ``interval_s * window_intervals`` of sim time).
    ``drain`` keeps sampling empty intervals after the workload ends
    until every firing rule resolves (bounded by the longest rule
    window), so a run that ends mid-incident still records the
    resolve edge.
    """

    interval_s: float = 0.1
    window_intervals: int = 10
    objective: SLOObjective = field(default_factory=SLOObjective)
    rules: Tuple[BurnRateRule, ...] = field(default_factory=default_rules)
    drain: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise ValueError(f"interval_s must be positive, "
                             f"got {self.interval_s}")
        if self.window_intervals < 1:
            raise ValueError("window_intervals must be >= 1")
        if not self.rules:
            raise ValueError("need at least one burn-rate rule")

    @classmethod
    def from_env(cls, interval_s: Optional[float] = None,
                 window_intervals: Optional[int] = None,
                 drain: bool = True) -> "MonitorConfig":
        """Build a config from ``REPRO_MONITOR_*`` with CLI overrides."""
        return cls(
            interval_s=(interval_s if interval_s is not None
                        else _env_float("REPRO_MONITOR_INTERVAL", 0.1)),
            window_intervals=(window_intervals if window_intervals is not None
                              else _env_int("REPRO_MONITOR_WINDOW", 10)),
            objective=default_objective(),
            rules=default_rules(),
            drain=drain,
        )


class _MonitorBase:
    """Interval grid + series registry + settle-once SLO accounting.

    Subclasses register their series in ``__init__`` (registration
    order is the report order — keep it deterministic) and feed events
    through the hooks; the shared machinery closes interval boundaries,
    rolls the latency windows, evaluates the alert engine, and records
    per-rule burn-rate series.
    """

    kind = "base"

    def __init__(self, config: MonitorConfig) -> None:
        self.config = config
        self.engine = AlertEngine(config.objective, config.rules,
                                  config.interval_s)
        self._boundary = 0            # completed intervals
        self.series: Dict[str, TimeSeries] = {}
        self._gauges: Dict[str, GaugeSampler] = {}
        self._rates: Dict[str, RateSampler] = {}
        self._windows: Dict[str, SlidingWindowHistogram] = {}
        self._window_pcts: Dict[str, Tuple[int, ...]] = {}
        self._window_series: Dict[str, Tuple[TimeSeries, ...]] = {}
        self._next_boundary_s = config.interval_s
        self._deadlines: List[Tuple[float, int]] = []   # (deadline_s, rid)
        self._deadline_of: Dict[int, float] = {}
        self._settled: Set[int] = set()
        self._good_pending = 0
        self._bad_pending = 0
        self._finished = False
        for rule in config.rules:
            for window in ("long", "short"):
                name = f"burn.{rule.name}.{window}"
                self.series[name] = TimeSeries(name, "burn_rate", "x")

    # -- series registration (call from subclass __init__ only) ------------
    def _gauge(self, name: str, unit: str) -> None:
        self._gauges[name] = GaugeSampler()
        self.series[name] = TimeSeries(name, "gauge", unit)

    def _rate(self, name: str, unit: str = "req/s") -> None:
        self._rates[name] = RateSampler()
        self.series[name] = TimeSeries(name, "rate", unit)

    def _window(self, name: str, unit: str = "ms",
                pcts: Tuple[int, ...] = (50, 95, 99)) -> None:
        self._windows[name] = SlidingWindowHistogram(
            self.config.window_intervals)
        self._window_pcts[name] = pcts
        keys = []
        for q in pcts:
            key = f"{name}.p{q}"
            self.series[key] = TimeSeries(key, "percentile", unit)
            keys.append(self.series[key])
        self._window_series[name] = tuple(keys)

    # -- SLO accounting ----------------------------------------------------
    def push_deadline(self, rid: int, deadline_s: float) -> None:
        """Arm the streaming SLO deadline for one request."""
        heapq.heappush(self._deadlines, (deadline_s, rid))
        self._deadline_of[rid] = deadline_s

    def settle(self, rid: int, good: bool) -> bool:
        """Classify a request good/bad exactly once; False if already done."""
        if rid in self._settled:
            return False
        self._settled.add(rid)
        if good:
            self._good_pending += 1
        else:
            self._bad_pending += 1
        return True

    def within_deadline(self, rid: int, now_s: float) -> bool:
        """Whether ``now_s`` beats the request's armed SLO deadline."""
        deadline = self._deadline_of.get(rid)
        return deadline is not None and now_s <= deadline + _EPS

    # -- the interval grid -------------------------------------------------
    def advance(self, now_s: float) -> None:
        """Close every interval boundary at or before ``now_s``.

        The event loop calls this with the current event time *before*
        applying the event, so each boundary samples the state as it
        stood when simulated time passed it.  Idempotent: boundaries
        close at most once regardless of call pattern, which keeps the
        sample stream identical under any event batching.  The common
        case — an event inside the current interval — is a single
        comparison against the precomputed next boundary, which keeps
        the per-event cost of monitoring near zero.
        """
        if now_s + _EPS < self._next_boundary_s:
            return
        interval = self.config.interval_s
        while (self._boundary + 1) * interval <= now_s + _EPS:
            self._close_interval((self._boundary + 1) * interval)

    def _on_boundary(self, t_s: float) -> None:
        """Subclass hook, called first when a boundary closes."""

    def _close_interval(self, t_s: float) -> None:
        self._on_boundary(t_s)
        # Expired deadlines of unsettled requests become bad events at
        # their deadline — the streaming signal a crash produces while
        # the run is still in flight.
        while self._deadlines and self._deadlines[0][0] <= t_s + _EPS:
            _, rid = heapq.heappop(self._deadlines)
            if self.settle(rid, good=False):
                self._rates["rate.slo_misses"].bump()
        interval = self.config.interval_s
        for name, gauge in self._gauges.items():
            self.series[name].append(gauge.sample(interval))
        for name, rate in self._rates.items():
            self.series[name].append(rate.sample(interval))
        for name, window in self._windows.items():
            values = window.percentiles(self._window_pcts[name])
            for ts, value in zip(self._window_series[name], values):
                ts.append(value)
            window.roll()
        self.engine.observe(self._good_pending, self._bad_pending, t_s)
        for rule in self.config.rules:
            burn_long, burn_short = self.engine.burn_rates(rule.name)
            self.series[f"burn.{rule.name}.long"].append(burn_long)
            self.series[f"burn.{rule.name}.short"].append(burn_short)
        self._good_pending = 0
        self._bad_pending = 0
        self._boundary += 1
        self._next_boundary_s = (self._boundary + 1) * interval

    def finish(self, horizon_s: float) -> None:
        """Flush deadlines, close the final partial interval, drain alerts.

        Advances the grid to cover ``horizon_s`` and every outstanding
        deadline (so requests stuck forever on a dead device still
        register their miss), then — when ``config.drain`` — keeps
        closing empty intervals until every firing rule resolves, capped
        at the longest rule window plus its resolve streak, so a run
        that ends mid-incident deterministically records the resolve.
        """
        if self._finished:
            return
        self._finished = True
        last = horizon_s
        for deadline_s, rid in self._deadlines:
            if rid not in self._settled:
                last = max(last, deadline_s)
        interval = self.config.interval_s
        target = -(-int(last * 1e9) // int(interval * 1e9))  # ceil intervals
        while self._boundary < target:
            self._close_interval((self._boundary + 1) * interval)
        if self.config.drain:
            cap = max(
                -(-int(rule.long_window_s * 1e9) // int(interval * 1e9))
                + rule.resolve_intervals
                for rule in self.config.rules) + 1
            drained = 0
            while self.engine.any_firing and drained < cap:
                self._close_interval((self._boundary + 1) * interval)
                drained += 1

    # -- report ------------------------------------------------------------
    def payload(self, context: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Any]:
        """The ``repro-monitor-report-v1`` JSON payload."""
        engine = self.engine
        objective = self.config.objective
        total = engine.good_total + engine.bad_total
        error_rate = engine.bad_total / total if total else 0.0
        return {
            "schema": MONITOR_SCHEMA,
            "kind": self.kind,
            "seed": repro_seed(),
            "interval_s": self.config.interval_s,
            "window_intervals": self.config.window_intervals,
            "intervals": engine.intervals,
            "duration_s": engine.intervals * self.config.interval_s,
            "context": dict(context or {}),
            "slo": {
                "name": objective.name,
                "target": objective.target,
                "budget": objective.budget,
                "good": engine.good_total,
                "bad": engine.bad_total,
                "total": total,
                "error_rate": error_rate,
                "budget_burned": error_rate / objective.budget,
            },
            "rules": [rule.as_dict() for rule in self.config.rules],
            "series": {name: ts.as_dict()
                       for name, ts in self.series.items()},
            "alerts": [event.as_dict() for event in engine.events],
            "active_alerts": engine.firing_rules(),
            "counts": engine.counts(),
        }


class FleetMonitor(_MonitorBase):
    """Per-interval sampling hooks for the discrete-event device fleet.

    Series: fleet queue depth, devices down / circuit-breaker-ejected,
    arrival/completion/rejection/timeout/retry/batch rates, the
    batcher's launch-trigger mix, windowed p50/p95/p99 end-to-end
    latency (``None`` on empty windows, never 0), per-rule burn rates,
    and — filled in at :meth:`finish` from the recorded busy windows —
    per-device and fleet-mean utilization with crash-truncated busy
    time, matching the simulator's refund accounting.
    """

    kind = "fleet"

    def __init__(self, config: MonitorConfig, slo_s: Dict[str, float],
                 devices: int) -> None:
        super().__init__(config)
        self.slo_s = dict(slo_s)
        self.devices = devices
        self._gauge("queue.depth", "requests")
        self._gauge("devices.down", "devices")
        self._gauge("devices.ejected", "devices")
        self._rate("rate.arrivals")
        self._rate("rate.completions")
        self._rate("rate.rejections")
        self._rate("rate.slo_misses")
        self._rate("rate.timeouts")
        self._rate("rate.retries")
        self._rate("rate.batches", "batch/s")
        for reason in LAUNCH_REASONS:
            self._rate(f"rate.launch.{reason}", "batch/s")
        self._window("latency")
        # Utilization series are computed at finish() from the busy
        # windows; registered now so report order stays deterministic.
        self.series["util.mean"] = TimeSeries("util.mean", "gauge",
                                              "fraction")
        for index in range(devices):
            name = f"util.d{index}"
            self.series[name] = TimeSeries(name, "gauge", "fraction")
        self._busy: List[List[List[float]]] = [[] for _ in range(devices)]
        self._down: Set[int] = set()
        self._ejected: Set[int] = set()

    # -- lifecycle hooks (called by FleetSimulator) ------------------------
    def note_arrival(self, rid: int, model: str, now_s: float) -> None:
        """First-attempt arrival: count it and arm the SLO deadline."""
        self._rates["rate.arrivals"].bump()
        self.push_deadline(rid, now_s + self.slo_s[model])

    def note_reject(self, rid: int, now_s: float) -> None:
        """Any shed (verify, breaker, queue full): bad at reject time."""
        self._rates["rate.rejections"].bump()
        self.settle(rid, good=False)

    def note_queue(self, delta: int) -> None:
        self._gauges["queue.depth"].add(delta)

    def note_launch(self, device: int, start_s: float, finish_s: float,
                    batch: int) -> None:
        self._rates["rate.batches"].bump()
        self._busy[device].append([start_s, finish_s])

    def note_launch_reason(self, reason: str) -> None:
        """Which trigger fired the batch (from ``plan_batch``)."""
        self._rates[f"rate.launch.{reason}"].bump()

    def note_complete(self, rid: int, now_s: float, latency_ms: float,
                      bad: bool) -> None:
        self._rates["rate.completions"].bump()
        self._windows["latency"].observe(latency_ms)
        good = (not bad) and self.within_deadline(rid, now_s)
        if self.settle(rid, good=good) and not good:
            self._rates["rate.slo_misses"].bump()

    def note_timeout(self) -> None:
        self._rates["rate.timeouts"].bump()

    def note_retry(self) -> None:
        self._rates["rate.retries"].bump()

    def note_crash(self, device: int, now_s: float) -> None:
        """Device down; truncate its in-flight busy window (the refund)."""
        self._down.add(device)
        self._gauges["devices.down"].set(len(self._down))
        windows = self._busy[device]
        if windows and windows[-1][1] > now_s:
            windows[-1][1] = max(windows[-1][0], now_s)

    def note_recover(self, device: int) -> None:
        self._down.discard(device)
        self._gauges["devices.down"].set(len(self._down))

    def note_eject(self, device: int) -> None:
        self._ejected.add(device)
        self._gauges["devices.ejected"].set(len(self._ejected))

    def note_readmit(self, device: int) -> None:
        self._ejected.discard(device)
        self._gauges["devices.ejected"].set(len(self._ejected))

    def finish(self, horizon_s: float) -> None:
        super().finish(horizon_s)
        interval = self.config.interval_s
        n = self.engine.intervals
        per_device: List[List[float]] = []
        for device in range(self.devices):
            busy = [0.0] * n
            for start_s, end_s in self._busy[device]:
                lo = max(0, int(start_s / interval))
                for i in range(lo, n):
                    left = i * interval
                    if left >= end_s:
                        break
                    overlap = min(end_s, left + interval) - max(start_s,
                                                                left)
                    if overlap > 0.0:
                        busy[i] += overlap
            series = [b / interval for b in busy]
            self.series[f"util.d{device}"].samples = series
            per_device.append(series)
        self.series["util.mean"].samples = [
            sum(col) / self.devices for col in zip(*per_device)
        ] if per_device and n else []


class LLMMonitor(_MonitorBase):
    """Per-interval sampling hooks for the LLM batching engines.

    Series: active decode slots, KV tokens reserved, requests waiting,
    arrival/completion/rejection/token rates, windowed TTFT / ITL /
    end-to-end latency percentiles, and the burn-rate pair.  Deadlines
    (``arrival + slo_s(request)``) are armed up front in :meth:`start`
    because the whole request list is known before the engine runs.
    """

    kind = "llm"

    def __init__(self, config: MonitorConfig) -> None:
        super().__init__(config)
        self._gauge("slots.active", "slots")
        self._gauge("kv.reserved", "tokens")
        self._gauge("queue.pending", "requests")
        self._rate("rate.arrivals")
        self._rate("rate.completions")
        self._rate("rate.rejections")
        self._rate("rate.slo_misses")
        self._rate("rate.tokens", "tok/s")
        self._window("ttft")
        self._window("itl")
        self._window("latency")
        self._arrivals: List[float] = []
        self._arrival_head = 0

    def start(self, requests: Sequence[Any], slo_s_fn) -> None:
        """Arm every request's deadline and arrival time up front."""
        for request in requests:
            self.push_deadline(request.rid,
                               request.arrival_s + slo_s_fn(request))
        self._arrivals = sorted(r.arrival_s for r in requests)
        self._arrival_head = 0

    def _on_boundary(self, t_s: float) -> None:
        count = 0
        while (self._arrival_head < len(self._arrivals)
               and self._arrivals[self._arrival_head] <= t_s + _EPS):
            self._arrival_head += 1
            count += 1
        self._rates["rate.arrivals"].bump(count)

    # -- lifecycle hooks (called by the batchers) --------------------------
    def note_state(self, slots: int, kv_reserved: int,
                   pending: int) -> None:
        self._gauges["slots.active"].set(slots)
        self._gauges["kv.reserved"].set(kv_reserved)
        self._gauges["queue.pending"].set(pending)

    def note_reject(self, rid: int) -> None:
        self._rates["rate.rejections"].bump()
        self.settle(rid, good=False)

    def note_tokens(self, count: int) -> None:
        self._rates["rate.tokens"].bump(count)

    def note_ttft(self, ttft_s: float) -> None:
        self._windows["ttft"].observe(ttft_s * 1e3)

    def note_itl(self, itl_s: float) -> None:
        self._windows["itl"].observe(itl_s * 1e3)

    def note_complete(self, rid: int, now_s: float,
                      latency_ms: float) -> None:
        self._rates["rate.completions"].bump()
        self._windows["latency"].observe(latency_ms)
        good = self.within_deadline(rid, now_s)
        if self.settle(rid, good=good) and not good:
            self._rates["rate.slo_misses"].bump()


# ---------------------------------------------------------------------------
# Report validation + rendering
# ---------------------------------------------------------------------------
def validate_monitor_report(payload: Dict[str, Any]) -> List[str]:
    """Structural checks on a monitor report; returns problem strings."""
    problems: List[str] = []
    if payload.get("schema") != MONITOR_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, "
                        f"expected {MONITOR_SCHEMA!r}")
    if payload.get("kind") not in ("fleet", "llm"):
        problems.append(f"kind is {payload.get('kind')!r}")
    intervals = payload.get("intervals")
    if not isinstance(intervals, int) or intervals < 0:
        problems.append(f"intervals is {intervals!r}")
        intervals = None
    if not (isinstance(payload.get("interval_s"), (int, float))
            and payload.get("interval_s", 0) > 0):
        problems.append(f"interval_s is {payload.get('interval_s')!r}")
    slo = payload.get("slo")
    if not isinstance(slo, dict):
        problems.append("slo block missing")
    else:
        for key in ("name", "target", "budget", "good", "bad", "total",
                    "error_rate", "budget_burned"):
            if key not in slo:
                problems.append(f"slo.{key} missing")
        if isinstance(slo.get("good"), int) and isinstance(
                slo.get("bad"), int) and \
                slo.get("total") != slo["good"] + slo["bad"]:
            problems.append("slo.total != good + bad")
    rules = payload.get("rules")
    rule_names = set()
    if not isinstance(rules, list) or not rules:
        problems.append("rules list missing or empty")
    else:
        for rule in rules:
            for key in ("name", "severity", "factor", "long_window_s",
                        "short_window_s"):
                if key not in rule:
                    problems.append(f"rule missing {key}: {rule}")
            rule_names.add(rule.get("name"))
    series = payload.get("series")
    if not isinstance(series, dict) or not series:
        problems.append("series block missing or empty")
    else:
        for name, column in series.items():
            for key in ("kind", "unit", "samples"):
                if key not in column:
                    problems.append(f"series {name!r} missing {key}")
            samples = column.get("samples")
            if not isinstance(samples, list):
                problems.append(f"series {name!r} samples not a list")
            elif intervals is not None and len(samples) != intervals:
                problems.append(f"series {name!r} has {len(samples)} "
                                f"samples, expected {intervals}")
    alerts = payload.get("alerts")
    if not isinstance(alerts, list):
        problems.append("alerts list missing")
        alerts = []
    state: Dict[str, bool] = {}
    for event in alerts:
        if event.get("kind") not in ("fire", "resolve"):
            problems.append(f"alert kind {event.get('kind')!r}")
            continue
        rule = event.get("rule")
        if rule_names and rule not in rule_names:
            problems.append(f"alert references unknown rule {rule!r}")
        firing = state.get(rule, False)
        if event["kind"] == "fire" and firing:
            problems.append(f"rule {rule!r} fired twice without resolve")
        if event["kind"] == "resolve" and not firing:
            problems.append(f"rule {rule!r} resolved without firing")
        state[rule] = event["kind"] == "fire"
    active = payload.get("active_alerts")
    if not isinstance(active, list):
        problems.append("active_alerts list missing")
    else:
        expected = sorted(rule for rule, firing in state.items() if firing)
        if sorted(active) != expected:
            problems.append(f"active_alerts {active!r} inconsistent with "
                            f"alert stream (expected {expected!r})")
    return problems


def monitor_table(payload: Dict[str, Any]) -> str:
    """Fixed-width per-series summary table for a monitor report."""
    from ..harness.report import render_table
    rows = []
    for name, column in payload.get("series", {}).items():
        present = [s for s in column["samples"] if s is not None]
        rows.append((
            name,
            column["kind"],
            len(present),
            f"{max(present):.3f}" if present else "n/a",
            (f"{present[-1]:.3f}" if present else "n/a"),
        ))
    title = (f"monitor: {payload.get('kind')} · "
             f"{payload.get('intervals')} intervals · "
             f"{len(payload.get('alerts', []))} alert events")
    return render_table(("series", "kind", "samples", "max", "last"),
                        rows, title=title)


# ---------------------------------------------------------------------------
# Picklable sweep point (serial-vs-jobs determinism harness)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MonitorPoint:
    """One monitored fleet run, self-contained and picklable."""

    costs: Any                      # ServiceCosts (frozen)
    models: Tuple[str, ...]
    devices: int
    rate_rps: float
    duration_s: float
    routing: str = "round_robin"
    batch_kind: str = "dynamic"
    resilience_kind: str = "naive"
    fault_plan: Any = None          # Optional[FaultPlan]
    interval_s: float = 0.1
    window_intervals: int = 10
    slo_target: float = 0.999
    stream: int = 0


def run_monitor_point(point: MonitorPoint) -> Dict[str, Any]:
    """Run one monitored point (module-level so process pools pickle it).

    Returns ``{"serving": ServingReport.as_dict(), "monitor": payload}``
    — both pure functions of ``(REPRO_SEED, point)``.
    """
    from .fleet import FleetSimulator
    from .scheduler import BatchPolicy, ResiliencePolicy
    from .workload import OpenLoopPoisson
    config = MonitorConfig(
        interval_s=point.interval_s,
        window_intervals=point.window_intervals,
        objective=SLOObjective(target=point.slo_target),
        rules=default_rules(),
    )
    sim = FleetSimulator(
        point.costs,
        devices=point.devices,
        batch_policy=BatchPolicy(kind=point.batch_kind),
        routing=point.routing,
        fault_plan=point.fault_plan,
        resilience=ResiliencePolicy(kind=point.resilience_kind),
        monitor_config=config,
    )
    workload = OpenLoopPoisson(point.models, point.rate_rps,
                               point.duration_s, stream=point.stream)
    report = sim.run(workload, rate_rps=point.rate_rps)
    return {"serving": report.as_dict(), "monitor": sim.monitor_payload}
