"""Load generators for the serving simulator.

Three request sources, all pure functions of their parameters under the
shared ``REPRO_SEED`` discipline (:mod:`repro.runtime.seed`):

* :class:`OpenLoopPoisson` — open-loop arrivals with exponential
  inter-arrival times at a fixed offered rate; arrivals do not react to
  the system (the datacenter "heavy traffic" regime).
* :class:`ClosedLoop` — N clients that each keep exactly one request in
  flight, issuing the next one ``think_s`` after the previous response;
  the arrival rate self-limits to what the fleet sustains.
* :class:`TraceReplay` — replays an explicit ``(arrival_s, model)``
  trace, e.g. a recorded mix over the 7 zoo entries
  (:func:`zoo_mix_trace`).
* :class:`DiurnalTrace` — a day-cycle trace with a cosine rate envelope
  between a trough and a peak, plus optional square-wave bursts; the
  datacenter-scale workload the autoscaler is evaluated against.

Traces round-trip through JSON (:func:`save_trace` /
:func:`load_trace`, schema ``repro-request-trace-v1``) so a generated
diurnal day can be replayed byte-identically by ``repro serve
--trace``.

The simulator drives a workload through two hooks: :meth:`initial`
yields the requests known up front, and :meth:`on_complete` lets
closed-loop clients react to their own completions.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..runtime import seeded_rng

#: Schema tag for serialized request traces.
TRACE_SCHEMA = "repro-request-trace-v1"


@dataclass(frozen=True)
class Request:
    """One inference request against a zoo model."""
    rid: int
    model: str
    arrival_s: float
    client: int = -1


class Workload:
    """Base protocol: pre-known arrivals + a completion feedback hook."""

    #: Nominal traffic horizon; metrics normalize throughput against it.
    duration_s: float = 0.0

    def initial(self) -> List[Request]:
        raise NotImplementedError

    def on_complete(self, request: Request,
                    finish_s: float) -> Optional[Request]:
        """Next request triggered by this completion (closed loop only)."""
        return None


class OpenLoopPoisson(Workload):
    """Open-loop Poisson arrivals over a fixed model mix.

    Models are drawn uniformly from ``models`` per request (a single
    entry gives a single-model stream). The stream is fully determined
    by ``(REPRO_SEED, models, rate_rps, duration_s, stream)``.
    """

    def __init__(self, models: Sequence[str], rate_rps: float,
                 duration_s: float, stream: object = 0):
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        self.models = tuple(models)
        self.rate_rps = float(rate_rps)
        self.duration_s = float(duration_s)
        rng = seeded_rng("poisson", self.models, self.rate_rps,
                         self.duration_s, stream)
        requests: List[Request] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate_rps))
            if t >= self.duration_s:
                break
            model = self.models[int(rng.integers(len(self.models)))]
            requests.append(Request(len(requests), model, t))
        self._requests = requests

    def initial(self) -> List[Request]:
        return list(self._requests)


class ClosedLoop(Workload):
    """``clients`` concurrent clients, one outstanding request each.

    Client ``c`` always requests ``models[c % len(models)]``; its next
    request arrives ``think_s`` after (and never before) its previous
    response. Initial arrivals are staggered by one think time spread
    evenly so clients do not all hit an empty fleet at t=0.
    """

    def __init__(self, models: Sequence[str], clients: int,
                 duration_s: float, think_s: float = 0.0):
        if clients <= 0:
            raise ValueError(f"clients must be positive, got {clients}")
        self.models = tuple(models)
        self.clients = clients
        self.duration_s = float(duration_s)
        self.think_s = float(think_s)
        self._next_rid = clients

    def initial(self) -> List[Request]:
        stagger = self.think_s / self.clients if self.think_s else 0.0
        return [Request(c, self.models[c % len(self.models)], c * stagger,
                        client=c)
                for c in range(self.clients)]

    def on_complete(self, request: Request,
                    finish_s: float) -> Optional[Request]:
        arrival = finish_s + self.think_s
        if arrival >= self.duration_s:
            return None
        rid = self._next_rid
        self._next_rid += 1
        return replace(request, rid=rid, arrival_s=arrival)


class TraceReplay(Workload):
    """Replay an explicit ``(arrival_s, model)`` trace, in time order."""

    def __init__(self, entries: Iterable[Tuple[float, str]]):
        ordered = sorted(entries, key=lambda e: e[0])
        self._requests = [Request(i, model, float(t))
                          for i, (t, model) in enumerate(ordered)]
        self.duration_s = (self._requests[-1].arrival_s
                           if self._requests else 0.0)

    def initial(self) -> List[Request]:
        return list(self._requests)


def zoo_mix_trace(models: Sequence[str], rate_rps: float,
                  duration_s: float, stream: object = 0) -> TraceReplay:
    """A canned Poisson trace over a model mix, as a replayable trace."""
    source = OpenLoopPoisson(models, rate_rps, duration_s, stream=stream)
    return TraceReplay((r.arrival_s, r.model) for r in source.initial())


class DiurnalTrace(TraceReplay):
    """Diurnal load: a cosine rate envelope between trough and peak.

    Arrivals are generated by seeded thinning: Poisson candidates at
    ``peak_rps`` are accepted with probability ``trough_fraction +
    (1 - trough_fraction) * 0.5 * (1 - cos(2*pi*t / period_s))`` — the
    instantaneous rate starts at the trough, crests at ``peak_rps``
    mid-period, and returns to the trough, like a compressed day of
    datacenter traffic.  Optional square-wave *bursts* (every
    ``burst_every_s``, lasting ``burst_len_s``) force acceptance to 1,
    modelling flash crowds the autoscaler must absorb.  The trace is a
    pure function of ``(REPRO_SEED, models, peak_rps, duration_s,
    trough_fraction, period_s, burst_every_s, burst_len_s, stream)``.
    """

    def __init__(self, models: Sequence[str], peak_rps: float,
                 duration_s: float, trough_fraction: float = 0.25,
                 period_s: Optional[float] = None,
                 burst_every_s: float = 0.0, burst_len_s: float = 0.0,
                 stream: object = 0):
        if peak_rps <= 0:
            raise ValueError(f"peak_rps must be positive, got {peak_rps}")
        if not 0.0 <= trough_fraction <= 1.0:
            raise ValueError(f"trough_fraction must be in [0, 1], "
                             f"got {trough_fraction}")
        self.models = tuple(models)
        self.peak_rps = float(peak_rps)
        self.trough_fraction = float(trough_fraction)
        self.period_s = float(period_s) if period_s else float(duration_s)
        self.burst_every_s = float(burst_every_s)
        self.burst_len_s = float(burst_len_s)
        rng = seeded_rng("diurnal", self.models, self.peak_rps,
                         float(duration_s), self.trough_fraction,
                         self.period_s, self.burst_every_s,
                         self.burst_len_s, stream)
        two_pi = 2.0 * math.pi
        entries: List[Tuple[float, str]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.peak_rps))
            if t >= duration_s:
                break
            in_burst = (self.burst_every_s > 0.0
                        and t % self.burst_every_s < self.burst_len_s)
            accept = 1.0 if in_burst else (
                self.trough_fraction + (1.0 - self.trough_fraction)
                * 0.5 * (1.0 - math.cos(two_pi * t / self.period_s)))
            if float(rng.random()) >= accept:
                continue
            model = self.models[int(rng.integers(len(self.models)))]
            entries.append((t, model))
        super().__init__(entries)
        # The envelope's horizon, not the last accepted arrival: the
        # quiet tail after the final request is part of the day (and is
        # where the autoscaler earns its cost savings).
        self.duration_s = float(duration_s)


def save_trace(workload: Workload, path: str) -> int:
    """Serialize a workload's initial arrivals as a JSON trace file.

    Returns the number of requests written.  The file round-trips
    through :func:`load_trace` into a :class:`TraceReplay` that yields
    the identical arrival sequence.
    """
    requests = workload.initial()
    payload = {
        "schema": TRACE_SCHEMA,
        "duration_s": workload.duration_s,
        "requests": [[r.arrival_s, r.model] for r in requests],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return len(requests)


def load_trace(path: str) -> TraceReplay:
    """Load a ``repro-request-trace-v1`` JSON file as a trace replay."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(f"{path}: schema {schema!r}, "
                         f"expected {TRACE_SCHEMA!r}")
    entries = [(float(t), str(model)) for t, model in payload["requests"]]
    trace = TraceReplay(entries)
    duration = payload.get("duration_s")
    if isinstance(duration, (int, float)) and duration > trace.duration_s:
        trace.duration_s = float(duration)
    return trace
