"""Load generators for the serving simulator.

Three request sources, all pure functions of their parameters under the
shared ``REPRO_SEED`` discipline (:mod:`repro.runtime.seed`):

* :class:`OpenLoopPoisson` — open-loop arrivals with exponential
  inter-arrival times at a fixed offered rate; arrivals do not react to
  the system (the datacenter "heavy traffic" regime).
* :class:`ClosedLoop` — N clients that each keep exactly one request in
  flight, issuing the next one ``think_s`` after the previous response;
  the arrival rate self-limits to what the fleet sustains.
* :class:`TraceReplay` — replays an explicit ``(arrival_s, model)``
  trace, e.g. a recorded mix over the 7 zoo entries
  (:func:`zoo_mix_trace`).

The simulator drives a workload through two hooks: :meth:`initial`
yields the requests known up front, and :meth:`on_complete` lets
closed-loop clients react to their own completions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..runtime import seeded_rng


@dataclass(frozen=True)
class Request:
    """One inference request against a zoo model."""
    rid: int
    model: str
    arrival_s: float
    client: int = -1


class Workload:
    """Base protocol: pre-known arrivals + a completion feedback hook."""

    #: Nominal traffic horizon; metrics normalize throughput against it.
    duration_s: float = 0.0

    def initial(self) -> List[Request]:
        raise NotImplementedError

    def on_complete(self, request: Request,
                    finish_s: float) -> Optional[Request]:
        """Next request triggered by this completion (closed loop only)."""
        return None


class OpenLoopPoisson(Workload):
    """Open-loop Poisson arrivals over a fixed model mix.

    Models are drawn uniformly from ``models`` per request (a single
    entry gives a single-model stream). The stream is fully determined
    by ``(REPRO_SEED, models, rate_rps, duration_s, stream)``.
    """

    def __init__(self, models: Sequence[str], rate_rps: float,
                 duration_s: float, stream: object = 0):
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        self.models = tuple(models)
        self.rate_rps = float(rate_rps)
        self.duration_s = float(duration_s)
        rng = seeded_rng("poisson", self.models, self.rate_rps,
                         self.duration_s, stream)
        requests: List[Request] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate_rps))
            if t >= self.duration_s:
                break
            model = self.models[int(rng.integers(len(self.models)))]
            requests.append(Request(len(requests), model, t))
        self._requests = requests

    def initial(self) -> List[Request]:
        return list(self._requests)


class ClosedLoop(Workload):
    """``clients`` concurrent clients, one outstanding request each.

    Client ``c`` always requests ``models[c % len(models)]``; its next
    request arrives ``think_s`` after (and never before) its previous
    response. Initial arrivals are staggered by one think time spread
    evenly so clients do not all hit an empty fleet at t=0.
    """

    def __init__(self, models: Sequence[str], clients: int,
                 duration_s: float, think_s: float = 0.0):
        if clients <= 0:
            raise ValueError(f"clients must be positive, got {clients}")
        self.models = tuple(models)
        self.clients = clients
        self.duration_s = float(duration_s)
        self.think_s = float(think_s)
        self._next_rid = clients

    def initial(self) -> List[Request]:
        stagger = self.think_s / self.clients if self.think_s else 0.0
        return [Request(c, self.models[c % len(self.models)], c * stagger,
                        client=c)
                for c in range(self.clients)]

    def on_complete(self, request: Request,
                    finish_s: float) -> Optional[Request]:
        arrival = finish_s + self.think_s
        if arrival >= self.duration_s:
            return None
        rid = self._next_rid
        self._next_rid += 1
        return replace(request, rid=rid, arrival_s=arrival)


class TraceReplay(Workload):
    """Replay an explicit ``(arrival_s, model)`` trace, in time order."""

    def __init__(self, entries: Iterable[Tuple[float, str]]):
        ordered = sorted(entries, key=lambda e: e[0])
        self._requests = [Request(i, model, float(t))
                          for i, (t, model) in enumerate(ordered)]
        self.duration_s = (self._requests[-1].arrival_s
                           if self._requests else 0.0)

    def initial(self) -> List[Request]:
        return list(self._requests)


def zoo_mix_trace(models: Sequence[str], rate_rps: float,
                  duration_s: float, stream: object = 0) -> TraceReplay:
    """A canned Poisson trace over a model mix, as a replayable trace."""
    source = OpenLoopPoisson(models, rate_rps, duration_s, stream=stream)
    return TraceReplay((r.arrival_s, r.model) for r in source.initial())
