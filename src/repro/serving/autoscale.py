"""Cell autoscaling: SLO burn rate + queue depth in, scale decisions out.

PR 9 built the observability half of the SRE loop — the
:class:`~repro.telemetry.alerts.AlertEngine` turns per-interval
good/bad counts into page/ticket burn-rate alerts.  This module closes
the loop: an :class:`AutoscaleController` consumes those same signals
at fixed decision boundaries and tells the scaled fleet core
(:mod:`repro.serving.scale`) when to activate or drain whole *cells*
of devices, with a $/device-hour :class:`CostModel` so the headline
metric — tail-latency-bounded throughput per dollar — is comparable
against a static fleet sized for peak.

Decision policy (evaluated once per ``interval_s`` of simulated time):

* **scale-out** — any burn-rate rule firing (the service is eating its
  error budget) *or* the mean queue depth per active device at or above
  ``queue_high``.  Out-scaling is never cooldown-gated: capacity
  shortfalls hurt immediately.
* **scale-in** — no rule firing *and* queue depth per active device at
  or below ``queue_low`` *and* at least ``cooldown_s`` since the last
  scaling action, so a diurnal trough must be quiet for a while before
  capacity is released (no flapping around the threshold).
* at most one action per boundary; cells activate lowest-index first
  and drain highest-index first, so the decision sequence is a pure
  function of the observation stream.

Everything is deterministic and picklable: the controller holds only
integer counters, the alert engine's prefix sums, and plain-data
decision records that are serialised into the
``repro-fleet-scale-report-v1`` payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry.alerts import AlertEngine
from ..telemetry.slo import (
    BurnRateRule,
    SLOObjective,
    default_objective,
    default_rules,
)
from .monitor import env_float, env_int

#: Actions an autoscale decision stream may contain.
AUTOSCALE_ACTIONS = ("scale-out", "scale-in", "park")


def autoscaling_enabled(flag: bool = False) -> bool:
    """Whether autoscaling is on: ``--autoscale`` or ``REPRO_AUTOSCALE=1``.

    ``REPRO_AUTOSCALE=0`` force-disables even when the flag is passed —
    the same kill-switch discipline as ``REPRO_MONITOR``.
    """
    import os
    raw = os.environ.get("REPRO_AUTOSCALE", "").strip()
    if raw == "0":
        return False
    return bool(flag) or raw == "1"


@dataclass(frozen=True)
class CostModel:
    """Linear $/device-hour pricing for active device time."""

    price_per_device_hour: float = 2.5

    def dollars(self, device_seconds: float) -> float:
        """Cost of ``device_seconds`` of active device time."""
        return device_seconds / 3600.0 * self.price_per_device_hour


@dataclass(frozen=True)
class AutoscaleConfig:
    """Frozen autoscaling parameters (picklable; env-overridable).

    ``interval_s`` is the decision grid in *simulated* seconds; burn
    windows from ``rules`` are evaluated on the same grid (windows
    round up to whole intervals, exactly as in the monitor).
    ``min_cells``/``max_cells`` bound the active-cell count
    (``max_cells=None`` means "all cells the fleet has");
    ``queue_high``/``queue_low`` are mean queued requests per active
    device; ``cooldown_s`` gates scale-in only.
    """

    interval_s: float = 0.25
    min_cells: int = 1
    max_cells: Optional[int] = None
    cooldown_s: float = 1.0
    queue_high: float = 4.0
    queue_low: float = 0.5
    price_per_device_hour: float = 2.5
    objective: SLOObjective = field(default_factory=SLOObjective)
    rules: Tuple[BurnRateRule, ...] = field(default_factory=default_rules)

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise ValueError(f"interval_s must be positive, "
                             f"got {self.interval_s}")
        if self.min_cells < 1:
            raise ValueError("min_cells must be >= 1")
        if self.max_cells is not None and self.max_cells < self.min_cells:
            raise ValueError("max_cells must be >= min_cells")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be >= 0")
        if not 0.0 <= self.queue_low <= self.queue_high:
            raise ValueError(f"need 0 <= queue_low <= queue_high, got "
                             f"low={self.queue_low} high={self.queue_high}")
        if self.price_per_device_hour <= 0.0:
            raise ValueError("price_per_device_hour must be positive")
        if not self.rules:
            raise ValueError("need at least one burn-rate rule")

    @classmethod
    def from_env(cls, **overrides) -> "AutoscaleConfig":
        """Build a config from ``REPRO_AUTOSCALE_*`` with overrides.

        Recognised variables: ``REPRO_AUTOSCALE_INTERVAL`` (s),
        ``REPRO_AUTOSCALE_MIN_CELLS``, ``REPRO_AUTOSCALE_MAX_CELLS``
        (0 = unbounded), ``REPRO_AUTOSCALE_COOLDOWN`` (s),
        ``REPRO_AUTOSCALE_PRICE`` ($/device-hour),
        ``REPRO_AUTOSCALE_QUEUE_HIGH`` and ``REPRO_AUTOSCALE_QUEUE_LOW``
        (queued requests per active device).
        """
        max_cells = env_int("REPRO_AUTOSCALE_MAX_CELLS", 0)
        values = dict(
            interval_s=env_float("REPRO_AUTOSCALE_INTERVAL", 0.25),
            min_cells=env_int("REPRO_AUTOSCALE_MIN_CELLS", 1),
            max_cells=max_cells if max_cells > 0 else None,
            cooldown_s=env_float("REPRO_AUTOSCALE_COOLDOWN", 1.0),
            queue_high=env_float("REPRO_AUTOSCALE_QUEUE_HIGH", 4.0),
            queue_low=env_float("REPRO_AUTOSCALE_QUEUE_LOW", 0.5),
            price_per_device_hour=env_float("REPRO_AUTOSCALE_PRICE", 2.5),
            objective=default_objective(),
        )
        values.update(overrides)
        return cls(**values)

    def bounds(self, cells: int) -> Tuple[int, int]:
        """Clamp ``(min_cells, max_cells)`` against the fleet's cells."""
        lo = max(1, min(self.min_cells, cells))
        hi = cells if self.max_cells is None else min(self.max_cells, cells)
        return lo, max(lo, hi)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form for the fleet-scale report payload."""
        return {
            "interval_s": self.interval_s,
            "min_cells": self.min_cells,
            "max_cells": self.max_cells,
            "cooldown_s": self.cooldown_s,
            "queue_high": self.queue_high,
            "queue_low": self.queue_low,
            "price_per_device_hour": self.price_per_device_hour,
            "slo_target": self.objective.target,
            "rules": [rule.as_dict() for rule in self.rules],
        }


class AutoscaleController:
    """Evaluates one :class:`AutoscaleConfig` over decision boundaries.

    The scaled fleet core calls :meth:`decide` once per closed interval
    with the good/bad counts and queue state of that interval; the
    controller feeds its :class:`~repro.telemetry.alerts.AlertEngine`,
    applies the scale-out/scale-in policy, and returns the action (or
    ``None``).  The *mechanics* of activating/draining cells stay in
    the simulator; the controller only decides and records.
    """

    def __init__(self, config: AutoscaleConfig, cells: int) -> None:
        self.config = config
        self.min_cells, self.max_cells = config.bounds(cells)
        self.engine = AlertEngine(config.objective, config.rules,
                                  config.interval_s)
        self.cost = CostModel(config.price_per_device_hour)
        self.last_action_s: Optional[float] = None
        self.decisions: List[Dict[str, Any]] = []

    def decide(self, t_s: float, good: int, bad: int, queued: int,
               active_cells: int, active_devices: int
               ) -> Optional[Tuple[str, str]]:
        """One boundary: observe the interval, return ``(action, reason)``.

        ``queued`` is the fleet-wide queue depth at the boundary;
        ``active_devices`` excludes draining/parked cells.  Returns
        ``None`` when capacity should stay put.
        """
        self.engine.observe(good, bad, t_s)
        per_device = queued / active_devices if active_devices else 0.0
        firing = self.engine.firing_rules()
        if active_cells < self.max_cells:
            if firing:
                severity = self.engine.firing_severities()[0]
                return ("scale-out", f"burn:{severity}:{firing[0]}")
            if per_device >= self.config.queue_high:
                return ("scale-out",
                        f"queue:{per_device:.2f}>= {self.config.queue_high}")
        since = (t_s if self.last_action_s is None
                 else t_s - self.last_action_s)
        if (active_cells > self.min_cells and not firing
                and per_device <= self.config.queue_low
                and since >= self.config.cooldown_s):
            return ("scale-in",
                    f"quiet:{per_device:.2f}<= {self.config.queue_low}")
        return None

    def record(self, t_s: float, action: str, reason: str, cell: int,
               cells_active: int) -> None:
        """Append one applied action to the decision log."""
        if action in ("scale-out", "scale-in"):
            self.last_action_s = t_s
        self.decisions.append({
            "t_s": t_s,
            "action": action,
            "reason": reason,
            "cell": cell,
            "cells_active": cells_active,
        })
