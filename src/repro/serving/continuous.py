"""Prefill/decode-aware LLM batching: continuous vs one-shot dynamic.

Autoregressive requests are not one-invocation jobs: each owns a prompt
(prefill phase) and a token budget (decode phase), and its KV-cache
occupies device memory for its whole lifetime. Two schedulers over the
same frozen :class:`LLMServiceCosts`:

* :class:`ContinuousBatcher` — iteration-level scheduling. Slots join
  at decode-step boundaries as requests arrive (prefill briefly stalls
  the engine, the documented join cost), leave on EOS, and the KV-cache
  token budget is the admission constraint: a request is admitted only
  when its worst-case footprint (``prompt + output`` tokens) fits in
  the unreserved budget.
* :class:`OneShotBatcher` — the classic dynamic-batching baseline: form
  a batch once, pad every member to the longest prompt and the longest
  output, and return all results when the whole batch finishes. Short
  requests pay for long ones; empty slots decode padding.

Both simulations are pure functions of ``(REPRO_SEED, inputs)`` — the
workload generator draws from :func:`repro.runtime.seeded_rng` — so
serial and ``--jobs N`` sweeps stay byte-identical.

Service times follow the scheduler module's amortized-cost discipline
(:data:`~repro.serving.scheduler.DEFAULT_AMORTIZED_FRACTION`): a step
over ``B`` slots costs ``unit * (f + (1 - f) * B)``, so ``B = 1``
reproduces the isolated latency and batching amortizes exactly the
fixed fraction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..runtime import seeded_rng
from .metrics import LLMServingReport, percentile
from .scheduler import DEFAULT_AMORTIZED_FRACTION

#: SLO multiple over a request's *ideal* (isolated, unbatched) latency.
DEFAULT_LLM_SLO_MULTIPLIER = 5.0


def default_kv_budget() -> int:
    """KV-cache admission budget in tokens (``REPRO_LLM_KV_BUDGET``)."""
    value = os.environ.get("REPRO_LLM_KV_BUDGET", "")
    try:
        return max(1, int(value))
    except ValueError:
        return 1024


def default_max_slots() -> int:
    """Decode-batch slot count (``REPRO_LLM_MAX_SLOTS``)."""
    value = os.environ.get("REPRO_LLM_MAX_SLOTS", "")
    try:
        return max(1, int(value))
    except ValueError:
        return 8


@dataclass(frozen=True)
class LLMRequest:
    """One generation request: a prompt and an output-token budget."""
    rid: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int

    @property
    def kv_footprint(self) -> int:
        """Worst-case KV-cache tokens this request ever occupies."""
        return self.prompt_tokens + self.output_tokens


def llm_poisson_requests(rate_rps: float, duration_s: float,
                         prompt_range: Tuple[int, int] = (8, 64),
                         output_range: Tuple[int, int] = (4, 64),
                         stream: object = 0) -> List[LLMRequest]:
    """Open-loop Poisson arrivals with uniform prompt/output lengths."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    rng = seeded_rng("llm-poisson", rate_rps, duration_s,
                     tuple(prompt_range), tuple(output_range), stream)
    requests: List[LLMRequest] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_rps))
        if t >= duration_s:
            break
        prompt = int(rng.integers(prompt_range[0], prompt_range[1] + 1))
        output = int(rng.integers(output_range[0], output_range[1] + 1))
        requests.append(LLMRequest(len(requests), t, prompt, output))
    return requests


@dataclass(frozen=True)
class LLMServiceCosts:
    """Frozen per-config LLM service costs (plain data, picklable)."""
    config: str
    prefill_token_s: float
    decode_step_s: float
    kv_budget_tokens: int
    amortized_fraction: float = DEFAULT_AMORTIZED_FRACTION
    slo_multiplier: float = DEFAULT_LLM_SLO_MULTIPLIER

    @classmethod
    def resolve(cls, config: str = "gpt2_rms",
                kv_budget_tokens: Optional[int] = None,
                slo_multiplier: float = DEFAULT_LLM_SLO_MULTIPLIER,
                npu=None) -> "LLMServiceCosts":
        """Freeze one config's costs from content-cached NPU evaluations."""
        from ..llm import decode_step_costs
        costs = decode_step_costs(config, npu=npu)
        budget = (default_kv_budget() if kv_budget_tokens is None
                  else kv_budget_tokens)
        return cls(config=costs.config,
                   prefill_token_s=costs.prefill_token_s,
                   decode_step_s=costs.decode_step_s,
                   kv_budget_tokens=budget,
                   slo_multiplier=slo_multiplier)

    def batched_s(self, unit_s: float, batch: int) -> float:
        """Amortized time for one phase over ``batch`` slots."""
        if batch <= 0:
            return 0.0
        f = self.amortized_fraction
        return unit_s * (f + (1.0 - f) * batch)

    def prefill_s(self, prompt_tokens: int, batch: int = 1) -> float:
        return self.batched_s(self.prefill_token_s * prompt_tokens, batch)

    def ideal_latency_s(self, request: LLMRequest) -> float:
        """Isolated run-to-completion latency (batch 1, no queueing)."""
        return (self.prefill_token_s * request.prompt_tokens
                + self.decode_step_s * request.output_tokens)

    def slo_s(self, request: LLMRequest) -> float:
        return self.slo_multiplier * self.ideal_latency_s(request)

    def saturation_rps(self, max_slots: int, mean_prompt: float,
                       mean_output: float) -> float:
        """Rough full-batch request capacity (anchors sweep rate ladders)."""
        token_rate = max_slots / self.batched_s(self.decode_step_s,
                                                max_slots)
        per_request_s = (mean_output / token_rate
                         + self.prefill_token_s * mean_prompt)
        return 1.0 / per_request_s


@dataclass
class _Completion:
    request: LLMRequest
    finish_s: float
    ttft_s: float
    itls_s: List[float]


@dataclass
class _Collector:
    """Shared outcome accumulator for both schedulers."""
    completions: List[_Completion] = field(default_factory=list)
    rejected: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    kv_peak_tokens: int = 0
    trace: List[Dict[str, Any]] = field(default_factory=list)

    def report(self, costs: LLMServiceCosts, scheduler: str,
               max_slots: int, rate_rps: float,
               duration_s: float) -> LLMServingReport:
        done = self.completions
        offered = len(done) + self.rejected
        makespan = max((c.finish_s for c in done), default=duration_s)
        makespan = max(makespan, duration_s)
        good = sum(1 for c in done
                   if c.finish_s - c.request.arrival_s
                   <= costs.slo_s(c.request))
        latencies = sorted((c.finish_s - c.request.arrival_s) * 1e3
                           for c in done)
        ttfts = sorted(c.ttft_s * 1e3 for c in done)
        itls = sorted(itl * 1e3 for c in done for itl in c.itls_s)
        tokens = sum(c.request.output_tokens for c in done)
        return LLMServingReport(
            scheduler=scheduler,
            config=costs.config,
            max_slots=max_slots,
            kv_budget_tokens=costs.kv_budget_tokens,
            rate_rps=rate_rps,
            duration_s=duration_s,
            slo_multiplier=costs.slo_multiplier,
            offered=offered,
            completed=len(done),
            rejected=self.rejected,
            makespan_s=makespan,
            throughput_rps=len(done) / makespan if makespan else 0.0,
            goodput_rps=good / makespan if makespan else 0.0,
            slo_attainment=good / offered if offered else 0.0,
            tokens_generated=tokens,
            tokens_per_s=tokens / makespan if makespan else 0.0,
            mean_batch_size=(sum(self.batch_sizes) / len(self.batch_sizes)
                            if self.batch_sizes else 0.0),
            kv_peak_tokens=self.kv_peak_tokens,
            mean_latency_ms=(sum(latencies) / len(latencies)
                             if latencies else 0.0),
            p50_ms=percentile(latencies, 50),
            p95_ms=percentile(latencies, 95),
            p99_ms=percentile(latencies, 99),
            ttft_p50_ms=percentile(ttfts, 50),
            ttft_p95_ms=percentile(ttfts, 95),
            ttft_p99_ms=percentile(ttfts, 99),
            itl_p50_ms=percentile(itls, 50),
            itl_p95_ms=percentile(itls, 95),
            itl_p99_ms=percentile(itls, 99),
        )


@dataclass
class _Slot:
    request: LLMRequest
    emitted: int = 0
    ttft_s: Optional[float] = None
    last_token_s: float = 0.0
    itls_s: List[float] = field(default_factory=list)


class ContinuousBatcher:
    """Iteration-level scheduler with KV-budget admission control.

    The engine advances in decode steps. At every step boundary it
    admits arrived requests in FIFO order while (a) a slot is free and
    (b) the request's worst-case KV footprint fits in the unreserved
    budget; admission runs the joiner's prefill immediately (stalling
    the other slots — the join cost continuous batching pays). Each step
    then emits one token for every active slot; slots whose output
    budget is spent leave at the step boundary and release their KV
    reservation. A request whose footprint alone exceeds the whole
    budget can never run and is rejected outright.
    """

    def __init__(self, costs: LLMServiceCosts,
                 max_slots: Optional[int] = None,
                 collect_trace: bool = False,
                 monitor=None):
        self.costs = costs
        self.max_slots = (default_max_slots() if max_slots is None
                          else max_slots)
        if self.max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        self.collect_trace = collect_trace
        #: Optional :class:`~repro.serving.monitor.LLMMonitor`. Purely
        #: observational — the hooks never change admission or stepping,
        #: so the LLMServingReport is identical with or without it.
        self.monitor = monitor

    def run(self, requests: Sequence[LLMRequest],
            rate_rps: float = 0.0,
            duration_s: float = 0.0) -> LLMServingReport:
        costs = self.costs
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        collector = _Collector()
        monitor = self.monitor
        if monitor is not None:
            monitor.start(pending, costs.slo_s)
        active: List[_Slot] = []
        kv_reserved = 0
        clock = 0.0
        head = 0
        while head < len(pending) or active:
            if not active:
                if head >= len(pending):
                    break
                clock = max(clock, pending[head].arrival_s)
                if monitor is not None:
                    monitor.advance(clock)
            # Join at the step boundary, FIFO, budget permitting.
            while (head < len(pending)
                   and pending[head].arrival_s <= clock
                   and len(active) < self.max_slots):
                request = pending[head]
                if request.kv_footprint > costs.kv_budget_tokens:
                    head += 1
                    collector.rejected += 1
                    if monitor is not None:
                        monitor.note_reject(request.rid)
                    if self.collect_trace:
                        collector.trace.append(
                            {"kind": "reject", "rid": request.rid,
                             "t_s": clock})
                    continue
                if kv_reserved + request.kv_footprint \
                        > costs.kv_budget_tokens:
                    break   # head-of-line waits for KV space
                head += 1
                kv_reserved += request.kv_footprint
                prefill = costs.prefill_s(request.prompt_tokens)
                if self.collect_trace:
                    collector.trace.append(
                        {"kind": "prefill", "rid": request.rid,
                         "start_s": clock, "finish_s": clock + prefill,
                         "slot": len(active),
                         "tokens": request.prompt_tokens})
                clock += prefill
                if monitor is not None:
                    monitor.advance(clock)
                active.append(_Slot(request, last_token_s=clock))
            if not active:
                # Every arrival so far was rejected; take the next one.
                continue
            batch = len(active)
            collector.batch_sizes.append(batch)
            collector.kv_peak_tokens = max(collector.kv_peak_tokens,
                                           kv_reserved)
            step = costs.batched_s(costs.decode_step_s, batch)
            if self.collect_trace:
                collector.trace.append(
                    {"kind": "step", "start_s": clock,
                     "finish_s": clock + step, "batch": batch,
                     "rids": [s.request.rid for s in active]})
            if monitor is not None:
                monitor.note_state(batch, kv_reserved, len(pending) - head)
            clock += step
            if monitor is not None:
                monitor.advance(clock)
                monitor.note_tokens(batch)
            still_active: List[_Slot] = []
            for slot in active:
                slot.emitted += 1
                if slot.ttft_s is None:
                    slot.ttft_s = clock - slot.request.arrival_s
                    if monitor is not None:
                        monitor.note_ttft(slot.ttft_s)
                else:
                    itl = clock - slot.last_token_s
                    slot.itls_s.append(itl)
                    if monitor is not None:
                        monitor.note_itl(itl)
                slot.last_token_s = clock
                if slot.emitted >= slot.request.output_tokens:
                    kv_reserved -= slot.request.kv_footprint
                    collector.completions.append(_Completion(
                        slot.request, clock, slot.ttft_s, slot.itls_s))
                    if monitor is not None:
                        monitor.note_complete(
                            slot.request.rid, clock,
                            (clock - slot.request.arrival_s) * 1e3)
                    if self.collect_trace:
                        collector.trace.append(
                            {"kind": "complete", "rid": slot.request.rid,
                             "t_s": clock})
                else:
                    still_active.append(slot)
            active = still_active
        if monitor is not None:
            monitor.note_state(0, kv_reserved, 0)
            monitor.finish(max(clock, duration_s))
        self.trace_log = collector.trace
        return collector.report(costs, "continuous", self.max_slots,
                                rate_rps, duration_s)


class OneShotBatcher:
    """Batch-at-arrival baseline: padded batches run to completion.

    An idle device holds the head request up to ``max_wait_s`` (dynamic
    batching), takes up to ``max_slots`` arrived requests whose *padded*
    KV footprint fits the budget, prefills them as one padded batch and
    decodes ``max(output)`` steps at constant batch size. Everyone —
    including members that finished their own tokens long ago — gets
    their result when the batch retires.
    """

    def __init__(self, costs: LLMServiceCosts,
                 max_slots: Optional[int] = None,
                 max_wait_s: float = 2e-3,
                 collect_trace: bool = False,
                 monitor=None):
        self.costs = costs
        self.max_slots = (default_max_slots() if max_slots is None
                          else max_slots)
        if self.max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        self.max_wait_s = max_wait_s
        self.collect_trace = collect_trace
        self.monitor = monitor

    def run(self, requests: Sequence[LLMRequest],
            rate_rps: float = 0.0,
            duration_s: float = 0.0) -> LLMServingReport:
        costs = self.costs
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        collector = _Collector()
        monitor = self.monitor
        if monitor is not None:
            monitor.start(pending, costs.slo_s)
        clock = 0.0
        head = 0
        while head < len(pending):
            request = pending[head]
            if request.kv_footprint > costs.kv_budget_tokens:
                head += 1
                collector.rejected += 1
                if monitor is not None:
                    monitor.advance(max(clock, request.arrival_s))
                    monitor.note_reject(request.rid)
                if self.collect_trace:
                    collector.trace.append(
                        {"kind": "reject", "rid": request.rid,
                         "t_s": max(clock, request.arrival_s)})
                continue
            start = max(clock, request.arrival_s + self.max_wait_s)
            # Greedy padded batch: members must all fit the KV budget
            # at the padded (max prompt + max output) footprint.
            members: List[LLMRequest] = []
            max_prompt = 0
            max_output = 0
            scan = head
            while scan < len(pending) and len(members) < self.max_slots:
                cand = pending[scan]
                if cand.arrival_s > start:
                    break
                if cand.kv_footprint > costs.kv_budget_tokens:
                    scan += 1
                    collector.rejected += 1
                    if monitor is not None:
                        monitor.advance(start)
                        monitor.note_reject(cand.rid)
                    if self.collect_trace:
                        collector.trace.append(
                            {"kind": "reject", "rid": cand.rid,
                             "t_s": start})
                    continue
                padded_prompt = max(max_prompt, cand.prompt_tokens)
                padded_output = max(max_output, cand.output_tokens)
                padded = ((len(members) + 1)
                          * (padded_prompt + padded_output))
                if members and padded > costs.kv_budget_tokens:
                    break
                members.append(cand)
                max_prompt, max_output = padded_prompt, padded_output
                scan += 1
            head = scan
            batch = len(members)
            collector.batch_sizes.append(batch)
            collector.kv_peak_tokens = max(
                collector.kv_peak_tokens,
                batch * (max_prompt + max_output))
            prefill = costs.prefill_s(max_prompt, batch)
            step = costs.batched_s(costs.decode_step_s, batch)
            finish = start + prefill + max_output * step
            if monitor is not None:
                monitor.advance(start)
                monitor.note_state(batch,
                                   batch * (max_prompt + max_output),
                                   len(pending) - head)
            if self.collect_trace:
                collector.trace.append(
                    {"kind": "prefill", "rid": members[0].rid,
                     "start_s": start, "finish_s": start + prefill,
                     "slot": 0, "tokens": max_prompt, "batch": batch})
                collector.trace.append(
                    {"kind": "step", "start_s": start + prefill,
                     "finish_s": finish, "batch": batch,
                     "rids": [m.rid for m in members]})
            if monitor is not None:
                monitor.advance(finish)
                monitor.note_tokens(sum(m.output_tokens for m in members))
            for member in members:
                first = start + prefill + step
                itls = [step] * (member.output_tokens - 1)
                collector.completions.append(_Completion(
                    member, finish, first - member.arrival_s, itls))
                if monitor is not None:
                    monitor.note_ttft(first - member.arrival_s)
                    for itl in itls:
                        monitor.note_itl(itl)
                    monitor.note_complete(member.rid, finish,
                                          (finish - member.arrival_s) * 1e3)
                if self.collect_trace:
                    collector.trace.append(
                        {"kind": "complete", "rid": member.rid,
                         "t_s": finish})
            clock = finish
        if monitor is not None:
            monitor.note_state(0, 0, 0)
            monitor.finish(max(clock, duration_s))
        self.trace_log = collector.trace
        return collector.report(costs, "oneshot", self.max_slots,
                                rate_rps, duration_s)


#: Scheduler registry used by the sweep, the CLI, and the experiment.
LLM_SCHEDULERS = ("oneshot", "continuous")


def make_llm_batcher(kind: str, costs: LLMServiceCosts,
                     max_slots: Optional[int] = None,
                     collect_trace: bool = False,
                     monitor=None):
    if kind == "continuous":
        return ContinuousBatcher(costs, max_slots=max_slots,
                                 collect_trace=collect_trace,
                                 monitor=monitor)
    if kind == "oneshot":
        return OneShotBatcher(costs, max_slots=max_slots,
                              collect_trace=collect_trace,
                              monitor=monitor)
    raise ValueError(f"unknown LLM scheduler {kind!r}; "
                     f"known: {', '.join(LLM_SCHEDULERS)}")
