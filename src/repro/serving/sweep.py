"""The ``serving_sweep`` grid: batch-policy x fleet-size x arrival-rate.

Builds a grid of :class:`SweepPoint` work items (each carrying its own
frozen :class:`~repro.serving.scheduler.ServiceCosts`, so worker
processes never re-evaluate models), fans them out through
:func:`repro.runtime.parallel.parallel_map`, and reduces the reports to
the latency-throughput picture the TPU paper's 99th-percentile-SLO
argument predicts: p99 latency rises superlinearly once the offered
rate crosses a fleet's saturation throughput, and doubling the fleet
moves the knee right.

Every point is a pure function of ``(REPRO_SEED, point)``, so serial
and ``--jobs N`` sweeps are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime import parallel_map
from .fleet import FleetSimulator
from .metrics import DEFAULT_SLO_MULTIPLIER, ServingReport
from .scheduler import AdmissionPolicy, BatchPolicy, ServiceCosts
from .workload import OpenLoopPoisson

DEFAULT_POLICIES = ("single", "dynamic")
DEFAULT_FLEETS = (1, 2, 4)
DEFAULT_RATES = (25.0, 50.0, 100.0, 200.0, 400.0)
DEFAULT_SLO_ATTAINMENT = 0.95


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell; self-contained and picklable.

    ``use_scale`` routes the point through the interned-record
    :class:`~repro.serving.scale.ScaledFleetSimulator` (with ``cells``
    device groups) instead of the legacy core — bit-identical output at
    ``cells=1``, so big-fleet sweeps can opt into the fast core without
    changing the grid's results shape.
    """
    costs: ServiceCosts
    model: str
    policy_kind: str
    devices: int
    rate_rps: float
    duration_s: float = 4.0
    max_batch: int = 8
    max_wait_ms: float = 2.0
    routing: str = "least_loaded"
    max_queue: int = 4096
    slo_multiplier: float = DEFAULT_SLO_MULTIPLIER
    use_scale: bool = False
    cells: int = 1


def run_point(point: SweepPoint) -> ServingReport:
    """Simulate one grid cell (module-level so process pools can pickle)."""
    workload = OpenLoopPoisson((point.model,), point.rate_rps,
                               point.duration_s)
    batch_policy = BatchPolicy(point.policy_kind, point.max_batch,
                               point.max_wait_ms)
    admission = AdmissionPolicy(point.max_queue)
    if point.use_scale:
        from .scale import ScaledFleetSimulator
        scaled = ScaledFleetSimulator(
            point.costs,
            devices=point.devices,
            cells=point.cells,
            batch_policy=batch_policy,
            admission=admission,
            routing=point.routing,
            slo_multiplier=point.slo_multiplier)
        return scaled.run(workload, rate_rps=point.rate_rps)
    sim = FleetSimulator(
        point.costs,
        devices=point.devices,
        batch_policy=batch_policy,
        admission=admission,
        routing=point.routing,
        slo_multiplier=point.slo_multiplier)
    return sim.run(workload, rate_rps=point.rate_rps)


def default_grid(model: str = "bert",
                 policies: Sequence[str] = DEFAULT_POLICIES,
                 fleets: Sequence[int] = DEFAULT_FLEETS,
                 rates: Sequence[float] = DEFAULT_RATES,
                 duration_s: float = 4.0,
                 costs: Optional[ServiceCosts] = None) -> List[SweepPoint]:
    """The batch-policy x fleet-size x arrival-rate grid, in a stable order."""
    costs = costs or ServiceCosts.resolve([model])
    base = SweepPoint(costs=costs, model=model, policy_kind="dynamic",
                      devices=1, rate_rps=0.0, duration_s=duration_s)
    return [replace(base, policy_kind=policy, devices=devices,
                    rate_rps=rate)
            for policy in policies
            for devices in fleets
            for rate in rates]


def run_sweep(points: Sequence[SweepPoint],
              jobs: int = 1) -> List[ServingReport]:
    """All grid cells, in input order; ``jobs`` fans out across processes."""
    return parallel_map(run_point, list(points), jobs=jobs)


def sweep_table(reports: Sequence[ServingReport]) -> str:
    from ..harness.report import render_table
    rows = [(r.batch_policy, r.devices, r.rate_rps, r.throughput_rps,
             r.p50_ms, r.p99_ms, r.mean_batch_size, r.device_utilization,
             r.slo_attainment)
            for r in reports]
    return render_table(
        ("policy", "devices", "rate (req/s)", "throughput", "p50 (ms)",
         "p99 (ms)", "batch", "util", "SLO attain"),
        rows, title="serving_sweep: batch policy x fleet size x rate")


# ---------------------------------------------------------------------------
# Shape reductions (used by the experiment + perf benchmark)
# ---------------------------------------------------------------------------
def by_config(reports: Sequence[ServingReport]
              ) -> Dict[Tuple[str, int], List[ServingReport]]:
    """Group a sweep by (policy, fleet size), rate-ascending."""
    grouped: Dict[Tuple[str, int], List[ServingReport]] = {}
    for report in reports:
        grouped.setdefault((report.batch_policy, report.devices),
                           []).append(report)
    for ladder in grouped.values():
        ladder.sort(key=lambda r: r.rate_rps)
    return grouped


def max_throughput_at_slo(ladder: Sequence[ServingReport],
                          attainment: float = DEFAULT_SLO_ATTAINMENT
                          ) -> float:
    """Highest sustained throughput among points meeting the SLO bar."""
    eligible = [r.throughput_rps for r in ladder
                if r.slo_attainment >= attainment]
    return max(eligible, default=0.0)


def knee_sharpness(ladder: Sequence[ServingReport]) -> float:
    """p99 growth vs rate growth between the ladder's endpoints.

    A value above 1.0 means p99 latency grew faster than the offered
    rate — the superlinear blow-up past the saturation knee. Stable
    (underloaded) ladders stay near or below 1.0.
    """
    lo, hi = ladder[0], ladder[-1]
    if lo.p99_ms <= 0 or lo.rate_rps <= 0:
        return 0.0
    return (hi.p99_ms / lo.p99_ms) / (hi.rate_rps / lo.rate_rps)
