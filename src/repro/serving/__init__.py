"""Serving layer: a multi-device NPU-Tandem fleet simulator.

Layers a discrete-event serving simulation on top of the ``npu`` /
``runtime`` stack: load generators (:mod:`~repro.serving.workload`),
admission control + dynamic batching (:mod:`~repro.serving.scheduler`),
a routed device fleet (:mod:`~repro.serving.fleet`), SLO metrics
(:mod:`~repro.serving.metrics`) and the ``serving_sweep`` grid
(:mod:`~repro.serving.sweep`). Entry points: ``python -m repro serve``
and the ``serving_sweep`` harness experiment.

Datacenter scale lives in :mod:`~repro.serving.scale` (interned-record
event core, 1000+ devices, cell routing) and
:mod:`~repro.serving.autoscale` (burn-rate/queue-depth cell
autoscaling with a $/device-hour cost model); see
``docs/operations.md`` for the capacity-planning guide.
"""

from .autoscale import (
    AUTOSCALE_ACTIONS,
    AutoscaleConfig,
    AutoscaleController,
    CostModel,
    autoscaling_enabled,
)
from .continuous import (
    DEFAULT_LLM_SLO_MULTIPLIER,
    LLM_SCHEDULERS,
    ContinuousBatcher,
    LLMRequest,
    LLMServiceCosts,
    OneShotBatcher,
    default_kv_budget,
    default_max_slots,
    llm_poisson_requests,
    make_llm_batcher,
)
from .fleet import (
    ROUTING_POLICIES,
    DeviceState,
    FleetSimulator,
    Router,
    simulate,
)
from .metrics import (
    DEFAULT_SLO_MULTIPLIER,
    LLMServingReport,
    MetricsCollector,
    ServingReport,
    percentile,
)
from .monitor import (
    MONITOR_SCHEMA,
    FleetMonitor,
    LLMMonitor,
    MonitorConfig,
    MonitorPoint,
    monitor_table,
    monitoring_enabled,
    run_monitor_point,
    validate_monitor_report,
)
from .scale import (
    SCALE_SCHEMA,
    ScaledFleetSimulator,
    ScalePoint,
    run_scale_point,
    scale_table,
    tail_bounded_throughput,
    validate_fleet_scale_report,
)
from .scheduler import (
    BATCH_POLICIES,
    RESILIENCE_POLICIES,
    AdmissionPolicy,
    BatchPolicy,
    Launch,
    ModelCost,
    ResiliencePolicy,
    ServiceCosts,
    Wait,
    plan_batch,
)
from .sweep import (
    SweepPoint,
    by_config,
    default_grid,
    knee_sharpness,
    max_throughput_at_slo,
    run_point,
    run_sweep,
    sweep_table,
)
from .workload import (
    TRACE_SCHEMA,
    ClosedLoop,
    DiurnalTrace,
    OpenLoopPoisson,
    Request,
    TraceReplay,
    Workload,
    load_trace,
    save_trace,
    zoo_mix_trace,
)

__all__ = [
    "AUTOSCALE_ACTIONS",
    "BATCH_POLICIES",
    "DEFAULT_LLM_SLO_MULTIPLIER",
    "DEFAULT_SLO_MULTIPLIER",
    "LLM_SCHEDULERS",
    "RESILIENCE_POLICIES",
    "ROUTING_POLICIES",
    "SCALE_SCHEMA",
    "TRACE_SCHEMA",
    "AdmissionPolicy",
    "AutoscaleConfig",
    "AutoscaleController",
    "BatchPolicy",
    "ClosedLoop",
    "ContinuousBatcher",
    "CostModel",
    "DeviceState",
    "DiurnalTrace",
    "FleetSimulator",
    "FleetMonitor",
    "LLMMonitor",
    "LLMRequest",
    "LLMServiceCosts",
    "LLMServingReport",
    "Launch",
    "MONITOR_SCHEMA",
    "MetricsCollector",
    "ModelCost",
    "MonitorConfig",
    "MonitorPoint",
    "OneShotBatcher",
    "OpenLoopPoisson",
    "Request",
    "ResiliencePolicy",
    "Router",
    "ScalePoint",
    "ScaledFleetSimulator",
    "ServiceCosts",
    "ServingReport",
    "SweepPoint",
    "TraceReplay",
    "Wait",
    "Workload",
    "autoscaling_enabled",
    "default_kv_budget",
    "default_max_slots",
    "llm_poisson_requests",
    "make_llm_batcher",
    "monitor_table",
    "monitoring_enabled",
    "by_config",
    "default_grid",
    "knee_sharpness",
    "load_trace",
    "max_throughput_at_slo",
    "percentile",
    "plan_batch",
    "run_monitor_point",
    "run_point",
    "run_scale_point",
    "run_sweep",
    "save_trace",
    "scale_table",
    "simulate",
    "sweep_table",
    "tail_bounded_throughput",
    "validate_fleet_scale_report",
    "validate_monitor_report",
    "zoo_mix_trace",
]
