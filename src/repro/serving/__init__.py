"""Serving layer: a multi-device NPU-Tandem fleet simulator.

Layers a discrete-event serving simulation on top of the ``npu`` /
``runtime`` stack: load generators (:mod:`~repro.serving.workload`),
admission control + dynamic batching (:mod:`~repro.serving.scheduler`),
a routed device fleet (:mod:`~repro.serving.fleet`), SLO metrics
(:mod:`~repro.serving.metrics`) and the ``serving_sweep`` grid
(:mod:`~repro.serving.sweep`). Entry points: ``python -m repro serve``
and the ``serving_sweep`` harness experiment.
"""

from .continuous import (
    DEFAULT_LLM_SLO_MULTIPLIER,
    LLM_SCHEDULERS,
    ContinuousBatcher,
    LLMRequest,
    LLMServiceCosts,
    OneShotBatcher,
    default_kv_budget,
    default_max_slots,
    llm_poisson_requests,
    make_llm_batcher,
)
from .fleet import (
    ROUTING_POLICIES,
    DeviceState,
    FleetSimulator,
    Router,
    simulate,
)
from .metrics import (
    DEFAULT_SLO_MULTIPLIER,
    LLMServingReport,
    MetricsCollector,
    ServingReport,
    percentile,
)
from .monitor import (
    MONITOR_SCHEMA,
    FleetMonitor,
    LLMMonitor,
    MonitorConfig,
    MonitorPoint,
    monitor_table,
    monitoring_enabled,
    run_monitor_point,
    validate_monitor_report,
)
from .scheduler import (
    BATCH_POLICIES,
    RESILIENCE_POLICIES,
    AdmissionPolicy,
    BatchPolicy,
    Launch,
    ModelCost,
    ResiliencePolicy,
    ServiceCosts,
    Wait,
    plan_batch,
)
from .sweep import (
    SweepPoint,
    by_config,
    default_grid,
    knee_sharpness,
    max_throughput_at_slo,
    run_point,
    run_sweep,
    sweep_table,
)
from .workload import (
    ClosedLoop,
    OpenLoopPoisson,
    Request,
    TraceReplay,
    Workload,
    zoo_mix_trace,
)

__all__ = [
    "BATCH_POLICIES",
    "DEFAULT_LLM_SLO_MULTIPLIER",
    "DEFAULT_SLO_MULTIPLIER",
    "LLM_SCHEDULERS",
    "RESILIENCE_POLICIES",
    "ROUTING_POLICIES",
    "AdmissionPolicy",
    "BatchPolicy",
    "ClosedLoop",
    "ContinuousBatcher",
    "DeviceState",
    "FleetSimulator",
    "FleetMonitor",
    "LLMMonitor",
    "LLMRequest",
    "LLMServiceCosts",
    "LLMServingReport",
    "Launch",
    "MONITOR_SCHEMA",
    "MetricsCollector",
    "ModelCost",
    "MonitorConfig",
    "MonitorPoint",
    "OneShotBatcher",
    "OpenLoopPoisson",
    "Request",
    "ResiliencePolicy",
    "Router",
    "ServiceCosts",
    "ServingReport",
    "SweepPoint",
    "TraceReplay",
    "Wait",
    "Workload",
    "default_kv_budget",
    "default_max_slots",
    "llm_poisson_requests",
    "make_llm_batcher",
    "monitor_table",
    "monitoring_enabled",
    "by_config",
    "default_grid",
    "knee_sharpness",
    "max_throughput_at_slo",
    "percentile",
    "plan_batch",
    "run_monitor_point",
    "run_point",
    "run_sweep",
    "simulate",
    "sweep_table",
    "validate_monitor_report",
    "zoo_mix_trace",
]
