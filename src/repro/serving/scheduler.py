"""Admission control, dynamic batching, and the device service model.

The batcher is a pure decision function over ``(device queue, clock)``:
given the FIFO queue of one device it either launches a batch now or
names the deadline to wait for. Keeping it side-effect free makes the
policies unit-testable and keeps the event loop in
:mod:`repro.serving.fleet` trivial.

Service times come from :class:`ServiceCosts`, resolved once per sweep
from the content-cached :meth:`repro.npu.NPUTandem.evaluate` /
:meth:`~repro.npu.NPUTandem.compile` numbers and then frozen to plain
data — picklable, so ``--jobs`` workers never re-evaluate models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .workload import Request

#: Batching disciplines, in increasing sophistication:
#: ``single`` serves one request per launch; ``greedy`` takes whatever
#: same-model requests are already queued (up to ``max_batch``) without
#: waiting; ``dynamic`` additionally holds the head request up to
#: ``max_wait_ms`` hoping to fill the batch.
BATCH_POLICIES = ("single", "greedy", "dynamic")


@dataclass(frozen=True)
class BatchPolicy:
    kind: str = "dynamic"
    max_batch: int = 8
    max_wait_ms: float = 2.0

    def __post_init__(self):
        if self.kind not in BATCH_POLICIES:
            raise ValueError(f"unknown batch policy {self.kind!r}; "
                             f"known: {', '.join(BATCH_POLICIES)}")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")

    @property
    def effective_max_batch(self) -> int:
        return 1 if self.kind == "single" else self.max_batch


@dataclass(frozen=True)
class AdmissionPolicy:
    """Reject arrivals once a device's queue is this deep (load shedding)."""
    max_queue: int = 256


@dataclass(frozen=True)
class Launch:
    """Launch the first ``count`` queued requests as one batch."""
    count: int


@dataclass(frozen=True)
class Wait:
    """Hold the queue until ``until_s`` (or an earlier arrival/free)."""
    until_s: float


def plan_batch(queue: Sequence[Request], now_s: float,
               policy: BatchPolicy) -> Optional[object]:
    """Decide what an idle device should do with its queue at ``now_s``.

    Returns :class:`Launch`, :class:`Wait`, or ``None`` for an empty
    queue. Batches are same-model FIFO prefixes — requests for a second
    model never jump ahead of the head request.
    """
    if not queue:
        return None
    head = queue[0]
    limit = policy.effective_max_batch
    count = 0
    for request in queue:
        if request.model != head.model or count >= limit:
            break
        count += 1
    if count >= limit or policy.kind in ("single", "greedy"):
        return Launch(count)
    deadline = head.arrival_s + policy.max_wait_ms * 1e-3
    if now_s >= deadline:
        return Launch(count)
    return Wait(deadline)


# ---------------------------------------------------------------------------
# Service model
# ---------------------------------------------------------------------------
#: Fraction of a model's isolated latency that is per-invocation
#: overhead (weight residency establishment, dispatch, sync weaving)
#: rather than per-request compute; batching amortizes exactly this
#: share, so the asymptotic batching speedup is 1/(1-fraction).
DEFAULT_AMORTIZED_FRACTION = 0.35

#: Compile-penalty proxy: host-side lowering plus program download,
#: charged the first time a device serves a model whose compiled
#: program is not yet resident (the per-device "compile cache").
COMPILE_BASE_S = 50e-6
COMPILE_PER_INSTRUCTION_S = 0.5e-6


@dataclass(frozen=True)
class ModelCost:
    latency_s: float       # isolated batch-1 latency (NPUTandem.evaluate)
    compile_s: float       # first-touch compile + program-download cost
    verified: bool = True  # static-verification record present and clean


@dataclass(frozen=True)
class ServiceCosts:
    """Frozen per-model service costs (plain data, picklable)."""
    costs: Dict[str, ModelCost] = field(default_factory=dict)
    amortized_fraction: float = DEFAULT_AMORTIZED_FRACTION

    @classmethod
    def resolve(cls, models: Sequence[str], npu=None,
                amortized_fraction: float = DEFAULT_AMORTIZED_FRACTION,
                ) -> "ServiceCosts":
        """Evaluate/compile each model once (content-cached) and freeze."""
        from ..npu import NPUTandem
        npu = npu or NPUTandem()
        costs = {}
        for model in dict.fromkeys(models):
            latency = npu.evaluate(model).total_seconds
            instructions = npu.compile(model).total_instructions()
            compile_s = (COMPILE_BASE_S
                         + COMPILE_PER_INSTRUCTION_S * instructions)
            # The static-verification record rides along so fleet
            # admission control can refuse models whose programs never
            # passed (or failed) the verifier without touching the
            # compiler from inside the event loop.
            record = npu.verify_record(model)
            verified = bool(record.get("clean", False))
            costs[model] = ModelCost(latency, compile_s, verified)
        return cls(costs=costs, amortized_fraction=amortized_fraction)

    def models(self) -> Tuple[str, ...]:
        return tuple(self.costs)

    def latency_s(self, model: str) -> float:
        return self.costs[model].latency_s

    def compile_s(self, model: str) -> float:
        return self.costs[model].compile_s

    def is_verified(self, model: str) -> bool:
        """Whether the model's verification record is present and clean."""
        cost = self.costs.get(model)
        return cost is not None and cost.verified

    def batch_service_s(self, model: str, batch: int) -> float:
        """Service time for one batch: fixed overhead + linear compute.

        ``service(1)`` equals the isolated latency; the amortized
        fraction is charged once per launch instead of once per request.
        """
        latency = self.costs[model].latency_s
        fixed = self.amortized_fraction * latency
        return fixed + (latency - fixed) * batch

    def capacity_rps(self, model: str, max_batch: int) -> float:
        """Saturation throughput of one device at full batches."""
        return max_batch / self.batch_service_s(model, max_batch)
