"""Admission control, dynamic batching, and the device service model.

The batcher is a pure decision function over ``(device queue, clock)``:
given the FIFO queue of one device it either launches a batch now or
names the deadline to wait for. Keeping it side-effect free makes the
policies unit-testable and keeps the event loop in
:mod:`repro.serving.fleet` trivial.

Service times come from :class:`ServiceCosts`, resolved once per sweep
from the content-cached :meth:`repro.npu.NPUTandem.evaluate` /
:meth:`~repro.npu.NPUTandem.compile` numbers and then frozen to plain
data — picklable, so ``--jobs`` workers never re-evaluate models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .workload import Request

#: Batching disciplines, in increasing sophistication:
#: ``single`` serves one request per launch; ``greedy`` takes whatever
#: same-model requests are already queued (up to ``max_batch``) without
#: waiting; ``dynamic`` additionally holds the head request up to
#: ``max_wait_ms`` hoping to fill the batch.
BATCH_POLICIES = ("single", "greedy", "dynamic")


@dataclass(frozen=True)
class BatchPolicy:
    kind: str = "dynamic"
    max_batch: int = 8
    max_wait_ms: float = 2.0

    def __post_init__(self):
        if self.kind not in BATCH_POLICIES:
            raise ValueError(f"unknown batch policy {self.kind!r}; "
                             f"known: {', '.join(BATCH_POLICIES)}")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")

    @property
    def effective_max_batch(self) -> int:
        return 1 if self.kind == "single" else self.max_batch


@dataclass(frozen=True)
class AdmissionPolicy:
    """Reject arrivals once a device's queue is this deep (load shedding)."""
    max_queue: int = 256


#: Resilience disciplines: ``naive`` assumes nothing ever fails (the
#: pre-fault fleet: no timeouts, no retries, no health tracking, no
#: download verification); ``resilient`` turns on every mechanism below.
RESILIENCE_POLICIES = ("naive", "resilient")


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the fleet responds to injected faults.

    Mechanisms (all consulted only when ``kind == "resilient"``):

    * **Per-request timeouts + retry with exponential backoff.** A
      request not completed within ``timeout_slo_multiple`` x its SLO
      target is pulled back and re-routed after
      ``backoff_base_s * 2**attempt``, at most ``max_retries`` times.
      A request already executing on a *healthy* device is left to
      finish (no duplicate completions) — the timeout only feeds the
      health tracker.
    * **Retry budget.** Fleet-wide retries are capped at
      ``retry_budget_fraction`` x offered requests, so a mass outage
      degrades into load shedding instead of a retry storm.
    * **Circuit breaker.** ``eject_threshold`` consecutive failures
      (timeouts, faulted launches) eject a device from routing; it is
      re-admitted after a cooldown that doubles per consecutive eject
      (``cooldown_s * cooldown_growth**k``) and resets on a successful
      completion.
    * **Tile-granularity re-execution.** A transient tile fault re-runs
      only the faulted tiles (the paper's Fig. 10 tile unit) instead of
      the whole batch invocation.
    * **Download verification.** First-touch program downloads run the
      static verifier; a corrupted program is caught, re-compiled and
      re-downloaded instead of silently serving garbage.
    """
    kind: str = "resilient"
    timeout_slo_multiple: float = 2.0
    max_retries: int = 3
    backoff_base_s: float = 2e-3
    retry_budget_fraction: float = 0.25
    eject_threshold: int = 3
    cooldown_s: float = 0.5
    cooldown_growth: float = 2.0
    tile_retry: bool = True
    verify_downloads: bool = True

    def __post_init__(self):
        if self.kind not in RESILIENCE_POLICIES:
            raise ValueError(f"unknown resilience policy {self.kind!r}; "
                             f"known: {', '.join(RESILIENCE_POLICIES)}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_slo_multiple <= 0:
            raise ValueError("timeout_slo_multiple must be positive")

    @property
    def active(self) -> bool:
        return self.kind == "resilient"

    @classmethod
    def naive(cls) -> "ResiliencePolicy":
        """The do-nothing policy (also the default fleet behaviour)."""
        return cls(kind="naive")


@dataclass(frozen=True)
class Launch:
    """Launch the first ``count`` queued requests as one batch."""
    count: int


@dataclass(frozen=True)
class Wait:
    """Hold the queue until ``until_s`` (or an earlier arrival/free)."""
    until_s: float


def plan_batch(queue: Sequence[Request], now_s: float,
               policy: BatchPolicy, monitor=None) -> Optional[object]:
    """Decide what an idle device should do with its queue at ``now_s``.

    Returns :class:`Launch`, :class:`Wait`, or ``None`` for an empty
    queue. Batches are same-model FIFO prefixes — requests for a second
    model never jump ahead of the head request.

    ``monitor`` is an optional :class:`~repro.serving.monitor.FleetMonitor`;
    when present, every Launch records *which trigger* fired it
    (``full`` batch, ``single``/``greedy`` policy, or the ``deadline``
    of a dynamic hold) — the decision itself is unaffected, so
    monitored and unmonitored fleets batch identically.

    The scaled core (:mod:`repro.serving.scale`) inlines this decision
    rule over its slot arrays instead of calling it; the bit-identity
    tests in ``tests/test_scale.py`` pin the two implementations to the
    same behaviour, so changes here must be mirrored there.
    """
    if not queue:
        return None
    head = queue[0]
    limit = policy.effective_max_batch
    count = 0
    for request in queue:
        if request.model != head.model or count >= limit:
            break
        count += 1
    if count >= limit or policy.kind in ("single", "greedy"):
        if monitor is not None:
            monitor.note_launch_reason("full" if count >= limit
                                       else policy.kind)
        return Launch(count)
    deadline = head.arrival_s + policy.max_wait_ms * 1e-3
    if now_s >= deadline:
        if monitor is not None:
            monitor.note_launch_reason("deadline")
        return Launch(count)
    return Wait(deadline)


# ---------------------------------------------------------------------------
# Service model
# ---------------------------------------------------------------------------
#: Fraction of a model's isolated latency that is per-invocation
#: overhead (weight residency establishment, dispatch, sync weaving)
#: rather than per-request compute; batching amortizes exactly this
#: share, so the asymptotic batching speedup is 1/(1-fraction).
DEFAULT_AMORTIZED_FRACTION = 0.35

#: Compile-penalty proxy: host-side lowering plus program download,
#: charged the first time a device serves a model whose compiled
#: program is not yet resident (the per-device "compile cache").
COMPILE_BASE_S = 50e-6
COMPILE_PER_INSTRUCTION_S = 0.5e-6


@dataclass(frozen=True)
class ModelCost:
    latency_s: float       # isolated batch-1 latency (NPUTandem.evaluate)
    compile_s: float       # first-touch compile + program-download cost
    verified: bool = True  # static-verification record present and clean
    tiles: int = 1         # total tiles per invocation (re-execution unit)


@dataclass(frozen=True)
class ServiceCosts:
    """Frozen per-model service costs (plain data, picklable)."""
    costs: Dict[str, ModelCost] = field(default_factory=dict)
    amortized_fraction: float = DEFAULT_AMORTIZED_FRACTION

    @classmethod
    def resolve(cls, models: Sequence[str], npu=None,
                amortized_fraction: float = DEFAULT_AMORTIZED_FRACTION,
                ) -> "ServiceCosts":
        """Evaluate/compile each model once (content-cached) and freeze."""
        from ..npu import NPUTandem
        npu = npu or NPUTandem()
        costs = {}
        for model in dict.fromkeys(models):
            latency = npu.evaluate(model).total_seconds
            compiled = npu.compile(model)
            instructions = compiled.total_instructions()
            compile_s = (COMPILE_BASE_S
                         + COMPILE_PER_INSTRUCTION_S * instructions)
            # The static-verification record rides along so fleet
            # admission control can refuse models whose programs never
            # passed (or failed) the verifier without touching the
            # compiler from inside the event loop. The tile count is the
            # fault-recovery unit: a transient tile fault re-executes
            # tiles/total of the invocation, not the whole batch.
            record = npu.verify_record(model)
            verified = bool(record.get("clean", False))
            tiles = max(1, sum(cb.tiles for cb in compiled.blocks))
            costs[model] = ModelCost(latency, compile_s, verified, tiles)
        return cls(costs=costs, amortized_fraction=amortized_fraction)

    def models(self) -> Tuple[str, ...]:
        return tuple(self.costs)

    def latency_s(self, model: str) -> float:
        return self.costs[model].latency_s

    def compile_s(self, model: str) -> float:
        return self.costs[model].compile_s

    def is_verified(self, model: str) -> bool:
        """Whether the model's verification record is present and clean."""
        cost = self.costs.get(model)
        return cost is not None and cost.verified

    def tiles(self, model: str) -> int:
        """Total tiles per invocation (the tile-retry granularity)."""
        return self.costs[model].tiles

    def batch_service_s(self, model: str, batch: int) -> float:
        """Service time for one batch: fixed overhead + linear compute.

        ``service(1)`` equals the isolated latency; the amortized
        fraction is charged once per launch instead of once per request.
        """
        latency = self.costs[model].latency_s
        fixed = self.amortized_fraction * latency
        return fixed + (latency - fixed) * batch

    def capacity_rps(self, model: str, max_batch: int) -> float:
        """Saturation throughput of one device at full batches."""
        return max_batch / self.batch_service_s(model, max_batch)
