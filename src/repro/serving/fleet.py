"""A fleet of replicated NPU-Tandem devices under a discrete-event loop.

Each device owns a FIFO queue, a busy-until clock, a per-device
"compile cache" (the set of models whose programs are already resident)
and a busy-time accumulator. The simulator advances a heap of timed
events — request arrivals, device-free transitions, batch timers, and
(under a :class:`~repro.faults.plan.FaultPlan`) crashes, recoveries,
request timeouts and circuit-breaker re-admissions — and consults
:func:`repro.serving.scheduler.plan_batch` whenever a device might be
able to launch.

Routing policies (chosen at arrival time, deterministically):

* ``round_robin`` — arrival i goes to device i mod N.
* ``least_loaded`` — greedy dispatch to the device whose estimated
  backlog clears first (estimates use isolated latencies, so batching
  only makes them conservative).
* ``model_affinity`` — a stable hash of the model name pins each model
  to one device, maximizing per-device compile-cache hits when the
  request stream mixes models.

All three route only to devices the circuit breaker currently admits;
with every device ejected, arrivals are shed at admission instead of
queueing against a black hole (graceful degradation).

Fault handling is split between the injector (what goes wrong, decided
by the plan + ``REPRO_SEED``) and the
:class:`~repro.serving.scheduler.ResiliencePolicy` (how the fleet
responds: timeouts + retry with exponential backoff and a retry
budget, tile-granularity re-execution, compile retries, verified
downloads, eject/re-admit health tracking). The ``naive`` policy keeps
every mechanism off — the pre-fault fleet, kept as the chaos baseline.

Everything is deterministic: the event heap breaks time ties by
insertion order, and no wall clock or unseeded RNG is consulted — the
same workload and plan always produce byte-identical reports.

This core is the *semantics reference*. For 1000-device fleets use
:class:`~repro.serving.scale.ScaledFleetSimulator`, which replays the
exact fault-free event order through interned request records (pinned
bit-identical to this core at ``cells=1`` by ``tests/test_scale.py``);
chaos and resilience runs stay here.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from ..telemetry import get_telemetry

from .metrics import (
    DEFAULT_MIN_SLO_S,
    DEFAULT_SLO_MULTIPLIER,
    MetricsCollector,
    ServingReport,
)
from .scheduler import (
    AdmissionPolicy,
    BatchPolicy,
    Launch,
    ResiliencePolicy,
    ServiceCosts,
    Wait,
    plan_batch,
)
from .workload import Request, Workload

ROUTING_POLICIES = ("round_robin", "least_loaded", "model_affinity")

_ARRIVAL, _FREE, _TIMER, _CRASH, _RECOVER, _TIMEOUT, _READMIT = range(7)

#: rid block for injected queue-burst requests (never collides with
#: workload rids, which count up from 0).
_BURST_RID_BASE = -1


@dataclass
class DeviceState:
    queue: List[Request] = field(default_factory=list)
    busy_until_s: float = 0.0
    busy_s: float = 0.0
    compiled: Set[str] = field(default_factory=set)
    timer_at_s: Optional[float] = None
    backlog_clear_s: float = 0.0   # router's work-conserving estimate
    # -- fault/health state ------------------------------------------------
    healthy: bool = True           # hardware up (crash flips this)
    admitted: bool = True          # circuit breaker allows routing
    epoch: int = 0                 # bumps on crash; stale _FREE ignored
    failures: int = 0              # consecutive failures (breaker input)
    ejects: int = 0                # consecutive ejects (cooldown growth)
    launches: int = 0              # batch launches (fault-draw label)
    bad_models: Set[str] = field(default_factory=set)  # corrupt residents


class Router:
    """Arrival-time device choice over the admitted subset of the fleet."""

    def __init__(self, kind: str, devices: int, costs: ServiceCosts):
        if kind not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing {kind!r}; "
                             f"known: {', '.join(ROUTING_POLICIES)}")
        self.kind = kind
        self.devices = devices
        self.costs = costs
        self._next = 0

    def route(self, fleet: List[DeviceState], request: Request,
              now_s: float) -> Optional[int]:
        """The target device, or ``None`` when every device is ejected."""
        admitted = [d for d in range(self.devices) if fleet[d].admitted]
        if not admitted:
            return None
        if self.kind == "round_robin":
            index = next((self._next + probe) % self.devices
                         for probe in range(self.devices)
                         if fleet[(self._next + probe)
                                  % self.devices].admitted)
            self._next = (index + 1) % self.devices
        elif self.kind == "model_affinity":
            pin = zlib.crc32(request.model.encode("utf-8")) % self.devices
            index = next((pin + probe) % self.devices
                         for probe in range(self.devices)
                         if fleet[(pin + probe) % self.devices].admitted)
        else:  # least_loaded
            index = min(admitted,
                        key=lambda d: (fleet[d].backlog_clear_s,
                                       len(fleet[d].queue), d))
        device = fleet[index]
        start = max(device.backlog_clear_s, now_s)
        device.backlog_clear_s = start + self.costs.latency_s(request.model)
        return index


class FleetSimulator:
    """N devices + router + batcher, driven by one event heap."""

    def __init__(self, costs: ServiceCosts, devices: int = 1,
                 batch_policy: Optional[BatchPolicy] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 routing: str = "least_loaded",
                 slo_multiplier: float = DEFAULT_SLO_MULTIPLIER,
                 min_slo_s: float = DEFAULT_MIN_SLO_S,
                 require_verified: bool = True,
                 collect_trace: bool = False,
                 fault_plan=None,
                 resilience: Optional[ResiliencePolicy] = None,
                 monitor_config=None):
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing {routing!r}; "
                             f"known: {', '.join(ROUTING_POLICIES)}")
        self.costs = costs
        self.devices = devices
        self.policy = batch_policy or BatchPolicy()
        self.admission = admission or AdmissionPolicy()
        self.routing = routing
        self.slo_multiplier = slo_multiplier
        self.min_slo_s = min_slo_s
        #: Admission control refuses models whose cached static
        #: verification record is missing or dirty (ServiceCosts.resolve
        #: stamps each ModelCost with the record's ``clean`` bit) — a
        #: program the verifier never blessed must not reach a device.
        self.require_verified = require_verified
        #: Request-lifecycle event log (batch launches, rejects, fault
        #: and retry lifecycles) for the trace exporter; populated only
        #: when ``collect_trace`` — all entries are simulated-time, so
        #: the log is deterministic.
        self.collect_trace = collect_trace
        self.trace_log: List[Dict[str, Any]] = []
        #: The fault plan to inject (None = nothing ever fails) and the
        #: response discipline (default: the legacy ``naive`` fleet, so
        #: fault-free behaviour is bit-identical to earlier versions).
        self.fault_plan = fault_plan
        self.resilience = resilience or ResiliencePolicy.naive()
        #: Streaming monitoring (:mod:`repro.serving.monitor`): when a
        #: :class:`~repro.serving.monitor.MonitorConfig` is given, the
        #: run feeds a :class:`~repro.serving.monitor.FleetMonitor` and
        #: leaves its ``repro-monitor-report-v1`` payload on
        #: ``self.monitor_payload``. Strictly observational — the hooks
        #: never influence scheduling, so the ServingReport is
        #: byte-identical with monitoring on or off.
        self.monitor_config = monitor_config
        self.monitor = None
        self.monitor_payload = None

    # -- event plumbing ----------------------------------------------------
    def _push(self, when_s: float, kind: int, payload) -> None:
        heapq.heappush(self._events, (when_s, self._seq, kind, payload))
        self._seq += 1

    def _trace(self, kind: str, t_s: float, **extra) -> None:
        if self.collect_trace:
            self.trace_log.append({"kind": kind, "t_s": t_s, **extra})

    def run(self, workload: Workload, rate_rps: float = 0.0
            ) -> ServingReport:
        fleet = [DeviceState() for _ in range(self.devices)]
        router = Router(self.routing, self.devices, self.costs)
        self.trace_log = []
        collector = MetricsCollector(self.costs, self.slo_multiplier,
                                     self.min_slo_s)
        monitor = None
        if self.monitor_config is not None:
            from .monitor import FleetMonitor
            monitor = FleetMonitor(self.monitor_config, collector.slo_s,
                                   self.devices)
        self.monitor = monitor
        self.monitor_payload = None
        self._monitor = monitor
        self._events: List[Tuple] = []
        self._seq = 0
        # -- per-request lifecycle state ----------------------------------
        self._status: Dict[int, str] = {}     # queued/flight/retrying/...
        self._loc: Dict[int, int] = {}        # rid -> device index
        self._born: Dict[int, float] = {}     # rid -> first arrival time
        self._attempts: Dict[int, int] = {}   # rid -> retry attempts
        self._request: Dict[int, Request] = {}
        self._compile_tries: Dict[Tuple[int, str], int] = {}
        self._retries_used = 0

        initial = sorted(workload.initial(),
                         key=lambda r: (r.arrival_s, r.rid))
        for request in initial:
            self._push(request.arrival_s, _ARRIVAL, request)

        injector = None
        if self.fault_plan is not None and not self.fault_plan.quiet:
            from ..faults import FaultInjector
            horizon = workload.duration_s or (
                initial[-1].arrival_s if initial else 1.0)
            injector = FaultInjector(self.fault_plan, self.devices, horizon)
            for t_s, device in injector.crashes:
                self._push(t_s, _CRASH, device)
            if injector.slowdowns:
                collector.note_fault("device_slowdown",
                                     len(injector.slowdowns))
            models = self.costs.models()
            rid = _BURST_RID_BASE
            for t_s in injector.bursts:
                collector.note_fault("queue_burst")
                self._trace("queue-burst", t_s,
                            size=self.fault_plan.burst.size)
                for i in range(self.fault_plan.burst.size):
                    self._push(t_s, _ARRIVAL,
                               Request(rid, models[i % len(models)], t_s))
                    rid -= 1
        self._injector = injector

        while self._events:
            now_s, _, kind, payload = heapq.heappop(self._events)
            if monitor is not None:
                # Close interval boundaries BEFORE applying the event,
                # so each boundary samples the state as simulated time
                # actually passed it.
                monitor.advance(now_s)
            if kind == _ARRIVAL:
                self._on_arrival(fleet, router, collector, workload,
                                 payload, now_s)
            elif kind == _FREE:
                self._on_free(fleet, collector, workload, payload, now_s)
            elif kind == _TIMER:
                fleet[payload].timer_at_s = None
                self._dispatch(fleet, collector, payload, now_s)
            elif kind == _CRASH:
                self._on_crash(fleet, collector, payload, now_s)
            elif kind == _RECOVER:
                self._on_recover(fleet, collector, payload, now_s)
            elif kind == _TIMEOUT:
                self._on_timeout(fleet, router, collector, payload, now_s)
            else:  # _READMIT
                self._on_readmit(fleet, collector, payload, now_s)

        # Requests still queued or in flight when the event heap drains
        # never completed (stuck on a dead device with no retry policy).
        for rid, status in sorted(self._status.items()):
            if status in ("queued", "flight"):
                collector.note_failed(self._request[rid])

        if monitor is not None:
            monitor.finish(max(collector.last_finish_s,
                               workload.duration_s))
            self.monitor_payload = monitor.payload(context={
                "models": list(self.costs.models()),
                "devices": self.devices,
                "routing": self.routing,
                "batch_policy": self.policy.kind,
                "resilience": self.resilience.kind,
                "fault_plan": (self.fault_plan.name
                               if self.fault_plan is not None else None),
                "rate_rps": rate_rps,
                "duration_s": workload.duration_s,
            })

        tel = get_telemetry()
        if tel.enabled:
            tel.count("serving.requests.offered", collector.offered)
            tel.count("serving.requests.completed",
                      len(collector.latencies_ms))
            tel.count("serving.requests.rejected", collector.rejected)
            tel.count("serving.requests.verify_rejected",
                      collector.verify_rejected)
            tel.count("serving.requests.failed", collector.failed)
            tel.count("serving.batches.launched", len(collector.batches))
            tel.count("serving.batches.requests", sum(collector.batches))
            tel.count("serving.compiles", collector.compiles)
            tel.count("serving.retries.requests", collector.retries)
            tel.count("serving.retries.compile", collector.compile_retries)
            tel.count("serving.timeouts", collector.timeouts)
            tel.count("serving.completions.bad", collector.bad_completions)
            tel.count("serving.circuit.ejects", collector.devices_ejected)
            tel.count("serving.circuit.readmits",
                      collector.devices_readmitted)
            for fault_kind, count in sorted(collector.faults.items()):
                name = ("faults.detected.corrupt_program"
                        if fault_kind == "corrupt_detected"
                        else f"faults.injected.{fault_kind}")
                tel.count(name, count)

        return collector.report(
            models=self.costs.models(),
            devices=self.devices,
            batch_policy=self.policy.kind,
            max_batch=self.policy.effective_max_batch,
            max_wait_ms=self.policy.max_wait_ms,
            routing=self.routing,
            rate_rps=rate_rps,
            duration_s=workload.duration_s,
            busy_s=[device.busy_s for device in fleet])

    # -- timeouts ----------------------------------------------------------
    def _timeout_s(self, model: str) -> float:
        slo = max(self.min_slo_s,
                  self.slo_multiplier * self.costs.latency_s(model))
        # The batcher may hold a request up to max_wait_ms before it
        # even launches; a timeout tighter than that window would fire
        # on perfectly healthy requests that are still aggregating.
        # Charge the window on top so fast models (SLO ~ the floor)
        # don't retry-storm a fault-free fleet.
        wait_s = self.policy.max_wait_ms * 1e-3
        return self.resilience.timeout_slo_multiple * slo + wait_s

    def _follow_up(self, workload, request: Request, now_s: float) -> None:
        follow_up = workload.on_complete(request, now_s)
        if follow_up is not None:
            self._push(follow_up.arrival_s, _ARRIVAL, follow_up)

    # -- handlers ----------------------------------------------------------
    def _on_arrival(self, fleet, router, collector, workload,
                    request: Request, now_s: float) -> None:
        rid = request.rid
        mon = self._monitor
        first_attempt = rid not in self._born
        if first_attempt:
            self._born[rid] = now_s
            self._request[rid] = request
            collector.note_arrival(sum(len(d.queue) for d in fleet))
            if mon is not None:
                mon.note_arrival(rid, request.model, now_s)
        if self.require_verified and not self.costs.is_verified(request.model):
            collector.note_verify_reject(request, now_s)
            self._status[rid] = "rejected"
            self._trace("verify-reject", now_s, model=request.model)
            if mon is not None:
                mon.note_reject(rid, now_s)
            self._follow_up(workload, request, now_s)
            return
        index = router.route(fleet, request, now_s)
        if index is None:
            # Circuit breaker has every device ejected: shed instead of
            # queueing against a black hole (graceful degradation).
            collector.note_reject(request, now_s)
            self._status[rid] = "rejected"
            self._trace("shed", now_s, model=request.model)
            if mon is not None:
                mon.note_reject(rid, now_s)
            self._follow_up(workload, request, now_s)
            return
        device = fleet[index]
        if len(device.queue) >= self.admission.max_queue:
            collector.note_reject(request, now_s)
            self._status[rid] = "rejected"
            self._trace("queue-reject", now_s, model=request.model)
            if mon is not None:
                mon.note_reject(rid, now_s)
            self._follow_up(workload, request, now_s)
            return
        self._status[rid] = "queued"
        self._loc[rid] = index
        self._request[rid] = request
        device.queue.append(request)
        if mon is not None:
            mon.note_queue(+1)
        if self.resilience.active:
            self._push(now_s + self._timeout_s(request.model), _TIMEOUT,
                       (rid, self._attempts.get(rid, 0)))
        self._dispatch(fleet, collector, index, now_s)

    def _first_touch_s(self, collector, index: int, model: str,
                       device: DeviceState, now_s: float) -> Optional[float]:
        """Compile + download time for a first touch (None = launch fails).

        Under a fault plan the compile may flake (retried in place when
        resilient, fatal to the batch when naive) and the downloaded
        program may arrive corrupted (caught by the static verifier and
        re-compiled when resilient; silently resident — and poisoning
        every completion — when not).
        """
        policy = self.resilience
        compile_s = self.costs.compile_s(model)
        spent = compile_s
        key = (index, model)
        attempt = self._compile_tries.get(key, 0)
        while self._injector.flaky_compile(index, model, attempt):
            collector.note_fault("flaky_compile")
            attempt += 1
            self._compile_tries[key] = attempt
            if not policy.active or attempt > policy.max_retries:
                self._trace("compile-fail", now_s, device=index, model=model)
                return None
            collector.compile_retries += 1
            self._trace("compile-retry", now_s, device=index, model=model)
            spent += compile_s
        self._compile_tries[key] = attempt + 1

        download = attempt
        while self._injector.corrupt_download(index, model, download):
            collector.note_fault("corrupt_program")
            if not (policy.active and policy.verify_downloads) or \
                    not self._injector.corruption_detected(index, model,
                                                           download):
                # Undetected (or unverified) corruption: the resident
                # program silently produces garbage from now on.
                device.bad_models.add(model)
                self._trace("corrupt-undetected", now_s, device=index,
                            model=model)
                break
            collector.note_fault("corrupt_detected")
            self._trace("corrupt-detected", now_s, device=index, model=model)
            download += 1
            if download - attempt > policy.max_retries:
                self._trace("compile-fail", now_s, device=index, model=model)
                return None
            spent += compile_s   # re-compile + re-download
        return spent

    def _dispatch(self, fleet, collector, index: int, now_s: float) -> None:
        device = fleet[index]
        if not device.healthy or device.busy_until_s > now_s or \
                not device.queue:
            return
        decision = plan_batch(device.queue, now_s, self.policy,
                              monitor=self._monitor)
        if isinstance(decision, Wait):
            if device.timer_at_s is None or \
                    device.timer_at_s > decision.until_s:
                device.timer_at_s = decision.until_s
                self._push(decision.until_s, _TIMER, index)
            return
        if not isinstance(decision, Launch):
            return
        batch = device.queue[:decision.count]
        del device.queue[:decision.count]
        if self._monitor is not None:
            self._monitor.note_queue(-len(batch))
        model = batch[0].model
        device.launches += 1
        slow = (self._injector.slow_factor(index, now_s)
                if self._injector else 1.0)
        base_s = self.costs.batch_service_s(model, len(batch)) * slow
        service_s = base_s
        first_touch = model not in device.compiled
        if first_touch:
            if self._injector is not None:
                touch_s = self._first_touch_s(collector, index, model,
                                              device, now_s)
                if touch_s is None:
                    # Compile never succeeded: the batch is lost.
                    for request in batch:
                        self._status[request.rid] = "failed"
                        collector.note_failed(request)
                    self._dispatch(fleet, collector, index, now_s)
                    return
            else:
                touch_s = self.costs.compile_s(model)
            service_s += touch_s
            device.compiled.add(model)
            collector.compiles += 1
        if self._injector is not None and \
                self._injector.tile_fault(index, model, device.launches):
            collector.note_fault("tile_fault")
            total_tiles = self.costs.tiles(model)
            faulted = min(self.fault_plan.tile_fault.tiles, total_tiles)
            if self.resilience.active and self.resilience.tile_retry:
                # Tile-granularity re-execution: only the faulted tiles
                # re-run (the paper's Fig. 10 unit of in-tandem work).
                penalty_s = base_s * faulted / total_tiles
            else:
                # No tile scoping: the whole batch invocation re-runs.
                penalty_s = base_s
            service_s += penalty_s
            self._trace("tile-fault", now_s, device=index, model=model,
                        tiles=faulted, penalty_s=penalty_s)
        finish_s = now_s + service_s
        device.busy_until_s = finish_s
        device.busy_s += service_s
        collector.note_batch(len(batch))
        if self._monitor is not None:
            self._monitor.note_launch(index, now_s, finish_s, len(batch))
        self._trace("batch", now_s, device=index, model=model,
                    batch=len(batch), start_s=now_s, finish_s=finish_s,
                    compile=first_touch)
        for request in batch:
            self._status[request.rid] = "flight"
            self._loc[request.rid] = index
        self._push(finish_s, _FREE, (index, batch, device.epoch))

    def _on_free(self, fleet, collector, workload, payload,
                 now_s: float) -> None:
        index, batch, epoch = payload
        device = fleet[index]
        if epoch != device.epoch:
            return   # the device crashed mid-batch; nothing completed
        bad = batch[0].model in device.bad_models
        device.failures = 0
        device.ejects = 0
        mon = self._monitor
        for request in batch:
            if self._status.get(request.rid) != "flight":
                continue
            self._status[request.rid] = "done"
            born_s = self._born.get(request.rid)
            collector.note_complete(request, now_s, born_s=born_s, bad=bad)
            if mon is not None:
                start_s = request.arrival_s if born_s is None else born_s
                mon.note_complete(request.rid, now_s,
                                  (now_s - start_s) * 1e3, bad=bad)
            self._follow_up(workload, request, now_s)
        self._dispatch(fleet, collector, index, now_s)

    def _on_crash(self, fleet, collector, index: int, now_s: float) -> None:
        device = fleet[index]
        if not device.healthy:
            return   # overlapping crash on an already-dead device
        collector.note_fault("device_crash")
        self._trace("crash", now_s, device=index)
        if self._monitor is not None:
            self._monitor.note_crash(index, now_s)
        device.healthy = False
        device.epoch += 1
        if device.busy_until_s > now_s:
            # Refund the un-served remainder of the in-flight batch.
            device.busy_s -= device.busy_until_s - now_s
            device.busy_until_s = now_s
        end_s = self._injector.outage_end(now_s)
        if end_s is not None:
            self._push(end_s, _RECOVER, index)

    def _on_recover(self, fleet, collector, index: int,
                    now_s: float) -> None:
        device = fleet[index]
        if device.healthy:
            return
        device.healthy = True
        self._trace("recover", now_s, device=index)
        if self._monitor is not None:
            self._monitor.note_recover(index)
        self._dispatch(fleet, collector, index, now_s)

    def _on_timeout(self, fleet, router, collector, payload,
                    now_s: float) -> None:
        rid, attempt = payload
        if self._attempts.get(rid, 0) != attempt:
            return   # a newer attempt owns this request
        status = self._status.get(rid)
        if status not in ("queued", "flight"):
            return
        index = self._loc[rid]
        device = fleet[index]
        request = self._request[rid]
        collector.timeouts += 1
        self._trace("timeout", now_s, device=index, model=request.model,
                    rid=rid)
        if self._monitor is not None:
            self._monitor.note_timeout()
        self._note_failure(fleet, collector, index, now_s)
        if status == "flight" and device.healthy:
            # Still executing on a live device: it will finish — retrying
            # now would complete the request twice. The timeout only
            # feeds the health tracker (latency breach).
            return
        if status == "queued":
            before = len(device.queue)
            device.queue = [r for r in device.queue if r.rid != rid]
            if self._monitor is not None:
                self._monitor.note_queue(len(device.queue) - before)
        policy = self.resilience
        budget = int(policy.retry_budget_fraction * collector.offered)
        self._attempts[rid] = attempt + 1
        if attempt >= policy.max_retries or self._retries_used >= budget:
            self._status[rid] = "failed"
            collector.note_failed(request)
            self._trace("retry-exhausted", now_s, model=request.model,
                        rid=rid)
            return
        self._retries_used += 1
        collector.retries += 1
        if self._monitor is not None:
            self._monitor.note_retry()
        backoff_s = policy.backoff_base_s * (2 ** attempt)
        retry = replace(request, arrival_s=now_s + backoff_s)
        self._status[rid] = "retrying"
        self._request[rid] = retry
        self._trace("retry", now_s, model=request.model, rid=rid,
                    attempt=attempt + 1, backoff_s=backoff_s)
        self._push(retry.arrival_s, _ARRIVAL, retry)

    def _note_failure(self, fleet, collector, index: int,
                      now_s: float) -> None:
        """Circuit-breaker bookkeeping for one observed failure."""
        policy = self.resilience
        if not policy.active or policy.eject_threshold <= 0:
            return
        device = fleet[index]
        device.failures += 1
        if device.admitted and device.failures >= policy.eject_threshold:
            device.admitted = False
            device.ejects += 1
            collector.devices_ejected += 1
            if self._monitor is not None:
                self._monitor.note_eject(index)
            cooldown_s = policy.cooldown_s * (
                policy.cooldown_growth ** (device.ejects - 1))
            self._trace("eject", now_s, device=index,
                        cooldown_s=cooldown_s)
            self._push(now_s + cooldown_s, _READMIT, index)

    def _on_readmit(self, fleet, collector, index: int,
                    now_s: float) -> None:
        device = fleet[index]
        if device.admitted:
            return
        device.admitted = True
        device.failures = 0
        collector.devices_readmitted += 1
        self._trace("readmit", now_s, device=index)
        if self._monitor is not None:
            self._monitor.note_readmit(index)


def simulate(workload: Workload, costs: ServiceCosts, *, devices: int = 1,
             batch_policy: Optional[BatchPolicy] = None,
             admission: Optional[AdmissionPolicy] = None,
             routing: str = "least_loaded",
             slo_multiplier: float = DEFAULT_SLO_MULTIPLIER,
             rate_rps: float = 0.0,
             fault_plan=None,
             resilience: Optional[ResiliencePolicy] = None) -> ServingReport:
    """One-call convenience wrapper around :class:`FleetSimulator`."""
    sim = FleetSimulator(costs, devices=devices, batch_policy=batch_policy,
                         admission=admission, routing=routing,
                         slo_multiplier=slo_multiplier,
                         fault_plan=fault_plan, resilience=resilience)
    return sim.run(workload, rate_rps=rate_rps)
