"""A fleet of replicated NPU-Tandem devices under a discrete-event loop.

Each device owns a FIFO queue, a busy-until clock, a per-device
"compile cache" (the set of models whose programs are already resident)
and a busy-time accumulator. The simulator advances a heap of timed
events — request arrivals, device-free transitions, and batch timers —
and consults :func:`repro.serving.scheduler.plan_batch` whenever a
device might be able to launch.

Routing policies (chosen at arrival time, deterministically):

* ``round_robin`` — arrival i goes to device i mod N.
* ``least_loaded`` — greedy dispatch to the device whose estimated
  backlog clears first (estimates use isolated latencies, so batching
  only makes them conservative).
* ``model_affinity`` — a stable hash of the model name pins each model
  to one device, maximizing per-device compile-cache hits when the
  request stream mixes models.

Everything is deterministic: the event heap breaks time ties by
insertion order, and no wall clock or unseeded RNG is consulted — the
same workload always produces byte-identical reports.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..telemetry import get_telemetry

from .metrics import (
    DEFAULT_MIN_SLO_S,
    DEFAULT_SLO_MULTIPLIER,
    MetricsCollector,
    ServingReport,
)
from .scheduler import (
    AdmissionPolicy,
    BatchPolicy,
    Launch,
    ServiceCosts,
    Wait,
    plan_batch,
)
from .workload import Request, Workload

ROUTING_POLICIES = ("round_robin", "least_loaded", "model_affinity")

_ARRIVAL, _FREE, _TIMER = 0, 1, 2


@dataclass
class DeviceState:
    queue: List[Request] = field(default_factory=list)
    busy_until_s: float = 0.0
    busy_s: float = 0.0
    compiled: Set[str] = field(default_factory=set)
    timer_at_s: Optional[float] = None
    backlog_clear_s: float = 0.0   # router's work-conserving estimate


class Router:
    def __init__(self, kind: str, devices: int, costs: ServiceCosts):
        if kind not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing {kind!r}; "
                             f"known: {', '.join(ROUTING_POLICIES)}")
        self.kind = kind
        self.devices = devices
        self.costs = costs
        self._next = 0

    def route(self, fleet: List[DeviceState], request: Request,
              now_s: float) -> int:
        if self.kind == "round_robin":
            index = self._next
            self._next = (self._next + 1) % self.devices
        elif self.kind == "model_affinity":
            index = zlib.crc32(request.model.encode("utf-8")) % self.devices
        else:  # least_loaded
            index = min(range(self.devices),
                        key=lambda d: (fleet[d].backlog_clear_s,
                                       len(fleet[d].queue), d))
        device = fleet[index]
        start = max(device.backlog_clear_s, now_s)
        device.backlog_clear_s = start + self.costs.latency_s(request.model)
        return index


class FleetSimulator:
    """N devices + router + batcher, driven by one event heap."""

    def __init__(self, costs: ServiceCosts, devices: int = 1,
                 batch_policy: Optional[BatchPolicy] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 routing: str = "least_loaded",
                 slo_multiplier: float = DEFAULT_SLO_MULTIPLIER,
                 min_slo_s: float = DEFAULT_MIN_SLO_S,
                 require_verified: bool = True,
                 collect_trace: bool = False):
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing {routing!r}; "
                             f"known: {', '.join(ROUTING_POLICIES)}")
        self.costs = costs
        self.devices = devices
        self.policy = batch_policy or BatchPolicy()
        self.admission = admission or AdmissionPolicy()
        self.routing = routing
        self.slo_multiplier = slo_multiplier
        self.min_slo_s = min_slo_s
        #: Admission control refuses models whose cached static
        #: verification record is missing or dirty (ServiceCosts.resolve
        #: stamps each ModelCost with the record's ``clean`` bit) — a
        #: program the verifier never blessed must not reach a device.
        self.require_verified = require_verified
        #: Request-lifecycle event log (batch launches, rejects) for the
        #: trace exporter; populated only when ``collect_trace`` — all
        #: entries are simulated-time, so the log is deterministic.
        self.collect_trace = collect_trace
        self.trace_log: List[Dict[str, Any]] = []

    # -- event plumbing ----------------------------------------------------
    def _push(self, when_s: float, kind: int, payload) -> None:
        heapq.heappush(self._events, (when_s, self._seq, kind, payload))
        self._seq += 1

    def run(self, workload: Workload, rate_rps: float = 0.0
            ) -> ServingReport:
        fleet = [DeviceState() for _ in range(self.devices)]
        router = Router(self.routing, self.devices, self.costs)
        self.trace_log = []
        collector = MetricsCollector(self.costs, self.slo_multiplier,
                                     self.min_slo_s)
        self._events: List[Tuple] = []
        self._seq = 0
        for request in sorted(workload.initial(),
                              key=lambda r: (r.arrival_s, r.rid)):
            self._push(request.arrival_s, _ARRIVAL, request)

        while self._events:
            now_s, _, kind, payload = heapq.heappop(self._events)
            if kind == _ARRIVAL:
                self._on_arrival(fleet, router, collector, workload,
                                 payload, now_s)
            elif kind == _FREE:
                index, batch = payload
                for request in batch:
                    follow_up = workload.on_complete(request, now_s)
                    if follow_up is not None:
                        self._push(follow_up.arrival_s, _ARRIVAL, follow_up)
                self._dispatch(fleet, collector, index, now_s)
            else:  # _TIMER
                fleet[payload].timer_at_s = None
                self._dispatch(fleet, collector, payload, now_s)

        tel = get_telemetry()
        if tel.enabled:
            tel.count("serving.requests.offered", collector.offered)
            tel.count("serving.requests.completed",
                      len(collector.latencies_ms))
            tel.count("serving.requests.rejected", collector.rejected)
            tel.count("serving.requests.verify_rejected",
                      collector.verify_rejected)
            tel.count("serving.batches.launched", len(collector.batches))
            tel.count("serving.batches.requests", sum(collector.batches))
            tel.count("serving.compiles", collector.compiles)

        return collector.report(
            models=self.costs.models(),
            devices=self.devices,
            batch_policy=self.policy.kind,
            max_batch=self.policy.effective_max_batch,
            max_wait_ms=self.policy.max_wait_ms,
            routing=self.routing,
            rate_rps=rate_rps,
            duration_s=workload.duration_s,
            busy_s=[device.busy_s for device in fleet])

    # -- handlers ----------------------------------------------------------
    def _on_arrival(self, fleet, router, collector, workload,
                    request: Request, now_s: float) -> None:
        collector.note_arrival(sum(len(d.queue) for d in fleet))
        if self.require_verified and not self.costs.is_verified(request.model):
            collector.note_verify_reject(request, now_s)
            if self.collect_trace:
                self.trace_log.append({"kind": "verify-reject",
                                       "model": request.model, "t_s": now_s})
            follow_up = workload.on_complete(request, now_s)
            if follow_up is not None:
                self._push(follow_up.arrival_s, _ARRIVAL, follow_up)
            return
        index = router.route(fleet, request, now_s)
        device = fleet[index]
        if len(device.queue) >= self.admission.max_queue:
            collector.note_reject(request, now_s)
            if self.collect_trace:
                self.trace_log.append({"kind": "queue-reject",
                                       "model": request.model, "t_s": now_s})
            follow_up = workload.on_complete(request, now_s)
            if follow_up is not None:
                self._push(follow_up.arrival_s, _ARRIVAL, follow_up)
            return
        device.queue.append(request)
        self._dispatch(fleet, collector, index, now_s)

    def _dispatch(self, fleet, collector, index: int, now_s: float) -> None:
        device = fleet[index]
        if device.busy_until_s > now_s or not device.queue:
            return
        decision = plan_batch(device.queue, now_s, self.policy)
        if isinstance(decision, Wait):
            if device.timer_at_s is None or \
                    device.timer_at_s > decision.until_s:
                device.timer_at_s = decision.until_s
                self._push(decision.until_s, _TIMER, index)
            return
        if not isinstance(decision, Launch):
            return
        batch = device.queue[:decision.count]
        del device.queue[:decision.count]
        model = batch[0].model
        service_s = self.costs.batch_service_s(model, len(batch))
        first_touch = model not in device.compiled
        if first_touch:
            service_s += self.costs.compile_s(model)
            device.compiled.add(model)
            collector.compiles += 1
        finish_s = now_s + service_s
        device.busy_until_s = finish_s
        device.busy_s += service_s
        collector.note_batch(len(batch))
        if self.collect_trace:
            self.trace_log.append({"kind": "batch", "device": index,
                                   "model": model, "batch": len(batch),
                                   "start_s": now_s, "finish_s": finish_s,
                                   "compile": first_touch})
        for request in batch:
            collector.note_complete(request, finish_s)
        self._push(finish_s, _FREE, (index, batch))


def simulate(workload: Workload, costs: ServiceCosts, *, devices: int = 1,
             batch_policy: Optional[BatchPolicy] = None,
             admission: Optional[AdmissionPolicy] = None,
             routing: str = "least_loaded",
             slo_multiplier: float = DEFAULT_SLO_MULTIPLIER,
             rate_rps: float = 0.0) -> ServingReport:
    """One-call convenience wrapper around :class:`FleetSimulator`."""
    sim = FleetSimulator(costs, devices=devices, batch_policy=batch_policy,
                         admission=admission, routing=routing,
                         slo_multiplier=slo_multiplier)
    return sim.run(workload, rate_rps=rate_rps)
