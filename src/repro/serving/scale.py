"""The datacenter-scale fleet core: interned records, one merged stream.

:class:`~repro.serving.fleet.FleetSimulator` is the *semantics
reference*: per-request ``Request`` objects, dict-keyed lifecycle
state, an O(devices) router probe and an O(devices) queue-depth sample
on every arrival.  That is fine at 4–6 devices and untenable at 1000.
:class:`ScaledFleetSimulator` is the same fault-free machine rebuilt
for scale:

* **Interned request records** — requests live in parallel arrays
  (arrival time, model index, one status byte), not objects; a request
  *is* its slot index.  Follow-up requests (closed loop) append slots.
* **One merged event stream** — the initial arrivals are already a
  sorted array, so they are consumed through a pointer instead of being
  materialised as heap entries; only *dynamic* events (batch
  completions, batch timers, follow-up arrivals) touch the heap.  The
  pointer/heap merge preserves the legacy ``(time, push-order)`` total
  order exactly: arrival *i* carries implicit sequence number *i* and
  dynamic events count up from *n*, which is precisely the order the
  legacy core's eager pushes produce.
* **Batched, incremental accounting** — fleet queue depth, batch-size
  and queue-depth statistics are O(1) running aggregates instead of
  per-arrival fleet scans and per-event list appends.
* **Hierarchical cell routing** — devices are grouped into equal
  contiguous *cells*; routing picks a cell (round-robin over active
  cells, or a stable model hash), then a device inside it, so the
  per-arrival cost is O(cell size), not O(fleet).  With ``cells=1``
  every policy degenerates to the legacy router's exact decision
  sequence.

**Bit-identity contract**: with ``cells=1`` and autoscaling off, a run
is *bit-identical* to the legacy ``FleetSimulator`` on the same
workload — same event order, same float arithmetic, byte-identical
:class:`~repro.serving.metrics.ServingReport` JSON (pinned by
``tests/test_scale.py`` and ``BENCH_fleet_scale.json``).  The scaled
core therefore refuses fault plans and resilient policies — chaos runs
stay on the legacy core, which remains the only implementation of
crash/retry/breaker semantics.

On top of the fast core, an optional
:class:`~repro.serving.autoscale.AutoscaleConfig` activates cells on
SLO burn-rate and queue-depth signals and drains them in quiet
troughs; the run then carries a ``repro-fleet-scale-report-v1``
payload with the decision log, cell timeline, and the $/device-hour
cost accounting (:func:`validate_fleet_scale_report` checks its
shape).
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..runtime.seed import repro_seed
from ..telemetry import get_telemetry
from ..telemetry.timeseries import percentile
from .autoscale import AUTOSCALE_ACTIONS, AutoscaleConfig, AutoscaleController
from .fleet import ROUTING_POLICIES
from .metrics import (
    DEFAULT_MIN_SLO_S,
    DEFAULT_SLO_MULTIPLIER,
    ServingReport,
)
from .scheduler import AdmissionPolicy, BatchPolicy, ServiceCosts
from .workload import Workload

SCALE_SCHEMA = "repro-fleet-scale-report-v1"

#: Request status bytes (slot-indexed; 0 = not yet arrived).
_QUEUED, _FLIGHT, _DONE, _REJECTED = 1, 2, 3, 4

#: Cell states under autoscaling.
_PARKED, _ACTIVE, _DRAINING = 0, 1, 2

_EPS = 1e-9


class ScaledFleetSimulator:
    """N devices in C cells under the interned-record event core.

    Constructor arguments mirror :class:`~repro.serving.fleet.FleetSimulator`
    minus the fault surface (``fault_plan``/``resilience``/``monitor``),
    plus ``cells`` (device grouping for hierarchical routing; must
    divide ``devices``) and ``autoscale`` (an
    :class:`~repro.serving.autoscale.AutoscaleConfig`, or ``None`` for
    a static fleet).  After :meth:`run`, :attr:`payload` holds the
    ``repro-fleet-scale-report-v1`` dictionary.
    """

    def __init__(self, costs: ServiceCosts, devices: int = 1,
                 cells: int = 1,
                 batch_policy: Optional[BatchPolicy] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 routing: str = "least_loaded",
                 slo_multiplier: float = DEFAULT_SLO_MULTIPLIER,
                 min_slo_s: float = DEFAULT_MIN_SLO_S,
                 require_verified: bool = True,
                 autoscale: Optional[AutoscaleConfig] = None):
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if cells < 1:
            raise ValueError("cells must be >= 1")
        if devices % cells != 0:
            raise ValueError(f"cells must divide devices evenly, got "
                             f"{devices} devices / {cells} cells")
        if routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing {routing!r}; "
                             f"known: {', '.join(ROUTING_POLICIES)}")
        if autoscale is not None and cells < 2:
            raise ValueError("autoscaling needs cells >= 2 "
                             "(one cell cannot scale)")
        self.costs = costs
        self.devices = devices
        self.cells = cells
        self.policy = batch_policy or BatchPolicy()
        self.admission = admission or AdmissionPolicy()
        self.routing = routing
        self.slo_multiplier = slo_multiplier
        self.min_slo_s = min_slo_s
        self.require_verified = require_verified
        self.autoscale = autoscale
        #: ``repro-fleet-scale-report-v1`` payload of the last run.
        self.payload: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def run(self, workload: Workload, rate_rps: float = 0.0
            ) -> ServingReport:
        """Simulate the workload; return the legacy-shaped report.

        The hot loop is deliberately monolithic: device state lives in
        flat parallel lists, every per-event step is a handful of list
        index operations, and the only per-request allocations are one
        latency float and (amortised 1/batch) the completion event.
        """
        costs = self.costs
        models = costs.models()
        midx = {m: i for i, m in enumerate(models)}
        lat = [costs.latency_s(m) for m in models]
        comp = [costs.compile_s(m) for m in models]
        verified = [costs.is_verified(m) for m in models]
        crc = [zlib.crc32(m.encode("utf-8")) for m in models]
        # batch_service_s(model, b) == fixed + (latency - fixed) * b;
        # precomputing the two terms reproduces the legacy floats bit
        # for bit (same multiply, same subtraction).
        fixed = [costs.amortized_fraction * v for v in lat]
        var = [v - f for v, f in zip(lat, fixed)]
        slo = [max(self.min_slo_s, self.slo_multiplier * v) for v in lat]

        ndev = self.devices
        ncell = self.cells
        csize = ndev // ncell
        policy = self.policy
        limit = policy.effective_max_batch
        launch_now = policy.kind in ("single", "greedy")
        wait_s = policy.max_wait_ms * 1e-3
        max_queue = self.admission.max_queue
        require_verified = self.require_verified
        routing = self.routing
        one_cell = ncell == 1
        route_rr = routing == "round_robin"
        route_ll = routing == "least_loaded"

        # -- device state: flat parallel lists -------------------------
        dq: List[List[int]] = [[] for _ in range(ndev)]
        qlen = [0] * ndev
        busy_until = [0.0] * ndev
        busy_acc = [0.0] * ndev
        timer_at: List[Optional[float]] = [None] * ndev
        backlog = [0.0] * ndev
        compiled: List[set] = [set() for _ in range(ndev)]

        # -- interned request records ----------------------------------
        from operator import attrgetter
        initial = sorted(workload.initial(),
                         key=attrgetter("arrival_s", "rid"))
        try:
            arr_t = [r.arrival_s for r in initial]
            arr_m = [midx[r.model] for r in initial]
        except KeyError as err:
            raise ValueError(f"workload model {err} not in ServiceCosts")
        n0 = len(arr_t)
        status = bytearray(n0)
        has_follow = type(workload).on_complete is not Workload.on_complete
        req_of = list(initial) if has_follow else None

        # -- running aggregates (the interned MetricsCollector) --------
        offered = rejected = verify_rejected = 0
        queue_sum = queue_n = queue_max = 0
        batches_sum = batches_n = compiles = 0
        slo_met = 0
        latencies: List[float] = []
        last_finish = 0.0
        queued_total = 0
        events = 0

        # -- routing state ---------------------------------------------
        rr_next = 0                  # cells == 1: the legacy rr pointer
        rr_cell = 0                  # cells > 1: active-cell pointer
        ll_cell = 0                  # least_loaded cell pointer
        rr_in = [0] * ncell          # per-cell device pointer

        # -- cells + autoscaling ---------------------------------------
        auto = self.autoscale
        auto_on = auto is not None
        if auto_on:
            ctrl = AutoscaleController(auto, ncell)
            start_cells = ctrl.min_cells
            interval = auto.interval_s
        else:
            ctrl = None
            start_cells = ncell
            interval = 0.0
        cell_state = bytearray(ncell)
        for c in range(start_cells):
            cell_state[c] = _ACTIVE
        active_list = list(range(start_cells))
        # Cost windows: per cell, [activate_s, park_s] pairs (park_s is
        # None while the window is open).
        cost_windows: List[List[List[Optional[float]]]] = [
            [[0.0, None]] if c < start_cells else [] for c in range(ncell)]
        good_pending = bad_pending = 0
        boundary = 0
        next_b = interval if auto_on else float("inf")
        tl_t: List[float] = []
        tl_cells: List[int] = []
        tl_queue: List[int] = []
        tl_burn: List[float] = []
        burn_rule = auto.rules[0].name if auto_on else None

        heap: List[tuple] = []
        push = heapq.heappush
        pop = heapq.heappop
        seq = n0
        ai = 0

        # The legacy ``plan_batch`` decision rule (same-model FIFO prefix,
        # capped at the batch limit; launch immediately for single/greedy
        # policies, otherwise arm a deadline timer) is inlined at all
        # three dispatch sites in the event loop below — arrival, batch
        # completion, and batch timer.  In the shallow-queue regime every
        # request visits two of the three, so the call overhead of a
        # shared helper is measurable at the 50x-speedup scale this core
        # is pinned to.  Changes to the rule must be mirrored at every
        # site (the bit-identity tests in tests/test_scale.py catch
        # divergence from the legacy fleet).

        def follow_up(s: int, now: float) -> None:
            """Closed-loop feedback: intern the next request as a slot."""
            nonlocal seq
            nxt = workload.on_complete(req_of[s], now)
            if nxt is None:
                return
            m = midx.get(nxt.model)
            if m is None:
                raise ValueError(f"workload model {nxt.model!r} "
                                 f"not in ServiceCosts")
            slot = len(arr_t)
            arr_t.append(nxt.arrival_s)
            arr_m.append(m)
            status.append(0)
            req_of.append(nxt)
            push(heap, (nxt.arrival_s, seq, 0, slot, None))
            seq += 1

        def activate_cell(t_s: float) -> int:
            """Bring one more cell into routing (drainers first)."""
            for c in range(ncell):
                if cell_state[c] == _DRAINING:
                    cell_state[c] = _ACTIVE
                    active_list.append(c)
                    active_list.sort()
                    return c
            for c in range(ncell):
                if cell_state[c] == _PARKED:
                    cell_state[c] = _ACTIVE
                    cost_windows[c].append([t_s, None])
                    active_list.append(c)
                    active_list.sort()
                    return c
            raise AssertionError("scale-out with no cell available")

        def drain_cell() -> int:
            """Close the highest-index active cell to routing."""
            c = active_list.pop()
            cell_state[c] = _DRAINING
            return c

        def close_boundary(t_b: float) -> None:
            """One autoscale decision boundary at simulated ``t_b``."""
            nonlocal good_pending, bad_pending, boundary, next_b
            decision = ctrl.decide(t_b, good_pending, bad_pending,
                                   queued_total, len(active_list),
                                   len(active_list) * csize)
            good_pending = bad_pending = 0
            if decision is not None:
                action, reason = decision
                cell = (activate_cell(t_b) if action == "scale-out"
                        else drain_cell())
                ctrl.record(t_b, action, reason, cell, len(active_list))
            # Draining cells whose devices have gone idle park (and stop
            # costing money) at this boundary.
            for c in range(ncell):
                if cell_state[c] != _DRAINING:
                    continue
                base = c * csize
                idle = True
                for d in range(base, base + csize):
                    if qlen[d] or busy_until[d] > t_b:
                        idle = False
                        break
                if idle:
                    cell_state[c] = _PARKED
                    cost_windows[c][-1][1] = t_b
                    ctrl.decisions.append({
                        "t_s": t_b, "action": "park", "reason": "drained",
                        "cell": c, "cells_active": len(active_list)})
            tl_t.append(t_b)
            tl_cells.append(len(active_list))
            tl_queue.append(queued_total)
            tl_burn.append(ctrl.engine.burn_rates(burn_rule)[0])
            boundary += 1
            next_b = (boundary + 1) * interval

        # ------------------------------------------------------------------
        # The merged event loop: sorted-arrival pointer vs dynamic heap.
        # ------------------------------------------------------------------
        while True:
            if heap:
                if ai < n0 and arr_t[ai] <= heap[0][0]:
                    now = arr_t[ai]
                    kind = 0
                    s = ai
                    ai += 1
                else:
                    now, _, kind, s, batch = pop(heap)
            elif ai < n0:
                now = arr_t[ai]
                kind = 0
                s = ai
                ai += 1
            else:
                break
            if now + _EPS >= next_b:
                while next_b <= now + _EPS:
                    close_boundary(next_b)
            events += 1
            if kind == 0:
                # ---- arrival of slot s -------------------------------
                offered += 1
                qt = queued_total
                queue_sum += qt
                queue_n += 1
                if qt > queue_max:
                    queue_max = qt
                m = arr_m[s]
                if require_verified and not verified[m]:
                    rejected += 1
                    verify_rejected += 1
                    status[s] = _REJECTED
                    if auto_on:
                        bad_pending += 1
                    if has_follow:
                        follow_up(s, now)
                    continue
                if route_rr:
                    if one_cell:
                        dev = rr_next
                        rr_next = dev + 1
                        if rr_next == ndev:
                            rr_next = 0
                    else:
                        ci = active_list[rr_cell % len(active_list)]
                        rr_cell += 1
                        o = rr_in[ci]
                        dev = ci * csize + o
                        o += 1
                        rr_in[ci] = 0 if o == csize else o
                elif route_ll:
                    if one_cell:
                        base, top = 0, ndev
                    else:
                        ci = active_list[ll_cell % len(active_list)]
                        ll_cell += 1
                        base = ci * csize
                        top = base + csize
                    dev = base
                    bb = backlog[base]
                    bq = qlen[base]
                    for d in range(base + 1, top):
                        v = backlog[d]
                        if v < bb or (v == bb and qlen[d] < bq):
                            dev = d
                            bb = v
                            bq = qlen[d]
                else:  # model_affinity
                    h = crc[m]
                    if one_cell:
                        dev = h % ndev
                    else:
                        ci = active_list[h % len(active_list)]
                        dev = ci * csize + h % csize
                b = backlog[dev]
                backlog[dev] = (b if b > now else now) + lat[m]
                if qlen[dev] >= max_queue:
                    rejected += 1
                    status[s] = _REJECTED
                    if auto_on:
                        bad_pending += 1
                    if has_follow:
                        follow_up(s, now)
                    continue
                status[s] = _QUEUED
                q = dq[dev]
                q.append(s)
                lq = qlen[dev] + 1
                qlen[dev] = lq
                queued_total += 1
                if busy_until[dev] <= now:
                    # ``dispatch(dev, now)`` inlined — this site fires
                    # once per admitted request; see the timer branch for
                    # the annotated decision rule.
                    head = q[0]
                    hm = arr_m[head]
                    n = 1
                    top = limit if limit < lq else lq
                    while n < top and arr_m[q[n]] == hm:
                        n += 1
                    if n < limit and not launch_now:
                        deadline = arr_t[head] + wait_s
                        if now < deadline:
                            t = timer_at[dev]
                            if t is None or t > deadline:
                                timer_at[dev] = deadline
                                push(heap, (deadline, seq, 2, dev, None))
                                seq += 1
                            continue
                    batch = q[:n]
                    del q[:n]
                    qlen[dev] = lq - n
                    queued_total -= n
                    service = fixed[hm] + var[hm] * n
                    resident = compiled[dev]
                    if hm not in resident:
                        service += comp[hm]
                        resident.add(hm)
                        compiles += 1
                    finish = now + service
                    busy_until[dev] = finish
                    busy_acc[dev] += service
                    batches_sum += n
                    batches_n += 1
                    if n == 1:
                        status[head] = _FLIGHT
                    else:
                        for x in batch:
                            status[x] = _FLIGHT
                    push(heap, (finish, seq, 1, dev, batch))
                    seq += 1
            elif kind == 1:
                # ---- batch completion on device s --------------------
                if now > last_finish:
                    last_finish = now
                for r in batch:
                    status[r] = _DONE
                    lt = now - arr_t[r]
                    latencies.append(lt * 1e3)
                    if lt <= slo[arr_m[r]]:
                        slo_met += 1
                        if auto_on:
                            good_pending += 1
                    elif auto_on:
                        bad_pending += 1
                    if has_follow:
                        follow_up(r, now)
                q = dq[s]
                if q and busy_until[s] <= now:
                    # ``dispatch(s, now)`` inlined — fires once per
                    # completion with a backlog.
                    head = q[0]
                    hm = arr_m[head]
                    n = 1
                    lq = qlen[s]
                    top = limit if limit < lq else lq
                    while n < top and arr_m[q[n]] == hm:
                        n += 1
                    if n < limit and not launch_now:
                        deadline = arr_t[head] + wait_s
                        if now < deadline:
                            t = timer_at[s]
                            if t is None or t > deadline:
                                timer_at[s] = deadline
                                push(heap, (deadline, seq, 2, s, None))
                                seq += 1
                            continue
                    batch = q[:n]
                    del q[:n]
                    qlen[s] = lq - n
                    queued_total -= n
                    service = fixed[hm] + var[hm] * n
                    resident = compiled[s]
                    if hm not in resident:
                        service += comp[hm]
                        resident.add(hm)
                        compiles += 1
                    finish = now + service
                    busy_until[s] = finish
                    busy_acc[s] += service
                    batches_sum += n
                    batches_n += 1
                    if n == 1:
                        status[head] = _FLIGHT
                    else:
                        for x in batch:
                            status[x] = _FLIGHT
                    push(heap, (finish, seq, 1, s, batch))
                    seq += 1
            else:
                # ---- batch timer on device s -------------------------
                timer_at[s] = None
                q = dq[s]
                if q and busy_until[s] <= now:
                    # ``dispatch(s, now)`` inlined — in the shallow-queue
                    # regime (many devices, light per-device load) every
                    # request takes this arm-then-fire path, so it is as
                    # hot as the arrival path.
                    head = q[0]
                    hm = arr_m[head]
                    n = 1
                    lq = qlen[s]
                    top = limit if limit < lq else lq
                    while n < top and arr_m[q[n]] == hm:
                        n += 1
                    if n < limit and not launch_now:
                        deadline = arr_t[head] + wait_s
                        if now < deadline:
                            t = timer_at[s]
                            if t is None or t > deadline:
                                timer_at[s] = deadline
                                push(heap, (deadline, seq, 2, s, None))
                                seq += 1
                            continue
                    batch = q[:n]
                    del q[:n]
                    qlen[s] = lq - n
                    queued_total -= n
                    service = fixed[hm] + var[hm] * n
                    resident = compiled[s]
                    if hm not in resident:
                        service += comp[hm]
                        resident.add(hm)
                        compiles += 1
                    finish = now + service
                    busy_until[s] = finish
                    busy_acc[s] += service
                    batches_sum += n
                    batches_n += 1
                    if n == 1:
                        status[head] = _FLIGHT
                    else:
                        for x in batch:
                            status[x] = _FLIGHT
                    push(heap, (finish, seq, 1, s, batch))
                    seq += 1

        failed = sum(1 for b in status if b == _QUEUED or b == _FLIGHT)
        makespan = max(last_finish, workload.duration_s)
        if auto_on:
            # Keep closing (empty) boundaries through the tail so the
            # trough after the last completion can still scale in/park
            # — that idle capacity release is exactly the cost win.
            while next_b <= makespan + _EPS:
                close_boundary(next_b)
            for c in range(ncell):
                for window in cost_windows[c]:
                    if window[1] is None:
                        window[1] = makespan
            device_seconds = sum(
                (end - start) * csize
                for windows in cost_windows for start, end in windows)
        else:
            device_seconds = float(ndev) * makespan

        horizon = makespan if makespan > 0 else 1.0
        latencies.sort()
        completed = len(latencies)
        report = ServingReport(
            models=models,
            devices=ndev,
            batch_policy=policy.kind,
            max_batch=policy.effective_max_batch,
            max_wait_ms=policy.max_wait_ms,
            routing=routing,
            rate_rps=rate_rps,
            duration_s=workload.duration_s,
            offered=offered,
            completed=completed,
            rejected=rejected,
            verify_rejected=verify_rejected,
            failed=failed,
            faults={},
            makespan_s=makespan,
            throughput_rps=completed / horizon,
            goodput_rps=slo_met / horizon,
            mean_latency_ms=(sum(latencies) / completed
                             if completed else 0.0),
            p50_ms=percentile(latencies, 50),
            p95_ms=percentile(latencies, 95),
            p99_ms=percentile(latencies, 99),
            mean_queue_depth=(queue_sum / queue_n if queue_n else 0.0),
            max_queue_depth=queue_max,
            mean_batch_size=(batches_sum / batches_n
                             if batches_n else 0.0),
            device_utilization=(sum(busy_acc) / (ndev * horizon)),
            per_device_utilization=[v / horizon for v in busy_acc],
            compiles=compiles,
            compile_cache_hit_rate=(1.0 - compiles / batches_n
                                    if batches_n else 0.0),
            slo_multiplier=self.slo_multiplier,
            slo_ms={m: s * 1e3 for m, s in zip(models, slo)},
            slo_attainment=(slo_met / offered if offered else 0.0),
        )
        self._emit_telemetry(report, batches_n, batches_sum)
        self.payload = self._build_payload(
            report, ctrl, events=events, device_seconds=device_seconds,
            slo_met=slo_met,
            timeline={"t_s": tl_t, "cells_active": tl_cells,
                      "queue_depth": tl_queue, "burn_long": tl_burn})
        return report

    # ------------------------------------------------------------------
    def _emit_telemetry(self, report: ServingReport, batches_n: int,
                        batches_sum: int) -> None:
        """Mirror the legacy core's ``serving.*`` counters."""
        tel = get_telemetry()
        if not tel.enabled:
            return
        tel.count("serving.requests.offered", report.offered)
        tel.count("serving.requests.completed", report.completed)
        tel.count("serving.requests.rejected", report.rejected)
        tel.count("serving.requests.verify_rejected",
                  report.verify_rejected)
        tel.count("serving.requests.failed", report.failed)
        tel.count("serving.batches.launched", batches_n)
        tel.count("serving.batches.requests", batches_sum)
        tel.count("serving.compiles", report.compiles)

    def _build_payload(self, report: ServingReport,
                       ctrl: Optional[AutoscaleController], *,
                       events: int, device_seconds: float, slo_met: int,
                       timeline: Dict[str, List]) -> Dict[str, Any]:
        """Assemble the ``repro-fleet-scale-report-v1`` dictionary."""
        auto = self.autoscale
        if ctrl is not None:
            dollars = ctrl.cost.dollars(device_seconds)
            price = ctrl.cost.price_per_device_hour
        else:
            from .autoscale import CostModel
            cost = CostModel()
            dollars = cost.dollars(device_seconds)
            price = cost.price_per_device_hour
        static_seconds = float(self.devices) * report.makespan_s
        static_dollars = dollars if device_seconds == static_seconds else (
            dollars * static_seconds / device_seconds
            if device_seconds else 0.0)
        bounded = tail_bounded_throughput(report)
        return {
            "schema": SCALE_SCHEMA,
            "seed": repro_seed(),
            "devices": self.devices,
            "cells": self.cells,
            "cell_size": self.devices // self.cells,
            "routing": self.routing,
            "autoscale": auto.as_dict() if auto is not None else None,
            "serving": report.as_dict(),
            "sim": {"events": events, "requests": report.offered},
            "cost": {
                "price_per_device_hour": price,
                "device_seconds": device_seconds,
                "dollars": dollars,
                "static_device_seconds": static_seconds,
                "static_dollars": static_dollars,
                "savings_fraction": (1.0 - device_seconds / static_seconds
                                     if static_seconds else 0.0),
            },
            "slo": {
                "good": slo_met,
                "bad": report.offered - slo_met,
                "p99_ms": report.p99_ms,
                "goodput_rps": report.goodput_rps,
                "tail_bounded_throughput_rps": bounded,
                "bounded_throughput_per_dollar": (bounded / dollars
                                                  if dollars else 0.0),
            },
            "autoscale_events": (list(ctrl.decisions)
                                 if ctrl is not None else []),
            "alerts": ([e.as_dict() for e in ctrl.engine.events]
                       if ctrl is not None else []),
            "timeline": timeline,
        }


def tail_bounded_throughput(report: ServingReport) -> float:
    """Tail-latency-bounded throughput of one run (req/s).

    The In-Datacenter-TPU metric: a run's throughput only counts in
    full while its p99 latency respects the (tightest per-model) SLO
    bound; past the bound, credit falls back to the SLO-met goodput —
    so saturating a fleet beyond its tail budget cannot inflate the
    headline number.
    """
    if not report.completed:
        return 0.0
    bound_ms = min(report.slo_ms.values()) if report.slo_ms else 0.0
    if report.p99_ms <= bound_ms:
        return report.throughput_rps
    return report.goodput_rps


def validate_fleet_scale_report(payload: Dict[str, Any]) -> List[str]:
    """Structural checks on a fleet-scale report; returns problems."""
    problems: List[str] = []
    if payload.get("schema") != SCALE_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, "
                        f"expected {SCALE_SCHEMA!r}")
    for key in ("devices", "cells", "cell_size"):
        value = payload.get(key)
        if not isinstance(value, int) or value < 1:
            problems.append(f"{key} is {value!r}")
    devices = payload.get("devices")
    cells = payload.get("cells")
    if isinstance(devices, int) and isinstance(cells, int) and cells >= 1:
        if payload.get("cell_size") != devices // cells:
            problems.append("cell_size != devices // cells")
    serving = payload.get("serving")
    if not isinstance(serving, dict):
        problems.append("serving block missing")
    else:
        for key in ("offered", "completed", "rejected", "p99_ms",
                    "throughput_rps", "goodput_rps", "slo_attainment",
                    "makespan_s"):
            if key not in serving:
                problems.append(f"serving.{key} missing")
    sim = payload.get("sim")
    if not isinstance(sim, dict) or not all(
            isinstance(sim.get(k), int) and sim.get(k) >= 0
            for k in ("events", "requests")):
        problems.append(f"sim block malformed: {sim!r}")
    cost = payload.get("cost")
    if not isinstance(cost, dict):
        problems.append("cost block missing")
    else:
        for key in ("price_per_device_hour", "device_seconds", "dollars",
                    "static_device_seconds", "static_dollars",
                    "savings_fraction"):
            if not isinstance(cost.get(key), (int, float)):
                problems.append(f"cost.{key} missing or non-numeric")
        if isinstance(cost.get("device_seconds"), (int, float)) and \
                isinstance(cost.get("static_device_seconds"), (int, float)) \
                and cost["device_seconds"] > cost["static_device_seconds"] \
                + 1e-6:
            problems.append("cost.device_seconds exceeds the static fleet")
    slo = payload.get("slo")
    if not isinstance(slo, dict):
        problems.append("slo block missing")
    else:
        for key in ("good", "bad", "p99_ms", "goodput_rps",
                    "tail_bounded_throughput_rps",
                    "bounded_throughput_per_dollar"):
            if key not in slo:
                problems.append(f"slo.{key} missing")
    events = payload.get("autoscale_events")
    if not isinstance(events, list):
        problems.append("autoscale_events list missing")
        events = []
    last_t = float("-inf")
    for event in events:
        action = event.get("action")
        if action not in AUTOSCALE_ACTIONS:
            problems.append(f"autoscale action {action!r}")
        t_s = event.get("t_s")
        if not isinstance(t_s, (int, float)) or t_s < last_t:
            problems.append(f"autoscale event out of order at {t_s!r}")
        else:
            last_t = t_s
        active = event.get("cells_active")
        if isinstance(cells, int) and (not isinstance(active, int)
                                       or not 0 <= active <= cells):
            problems.append(f"cells_active {active!r} outside [0, {cells}]")
    timeline = payload.get("timeline")
    if not isinstance(timeline, dict):
        problems.append("timeline block missing")
    else:
        lengths = {key: len(timeline.get(key, []))
                   for key in ("t_s", "cells_active", "queue_depth",
                               "burn_long")}
        if len(set(lengths.values())) > 1:
            problems.append(f"timeline series lengths differ: {lengths}")
    return problems


def scale_table(payload: Dict[str, Any]) -> str:
    """Fixed-width summary of a fleet-scale report for the CLI."""
    from ..harness.report import render_table
    serving = payload["serving"]
    cost = payload["cost"]
    slo = payload["slo"]
    rows = [
        ("devices (cells x size)",
         f"{payload['devices']} ({payload['cells']} x "
         f"{payload['cell_size']})"),
        ("routing", payload["routing"]),
        ("autoscale", "on" if payload["autoscale"] else "off"),
        ("events processed", payload["sim"]["events"]),
        ("offered / completed", f"{serving['offered']} / "
                                f"{serving['completed']}"),
        ("p99 latency (ms)", serving["p99_ms"]),
        ("tail-bounded throughput (req/s)",
         slo["tail_bounded_throughput_rps"]),
        ("device-hours", round(cost["device_seconds"] / 3600.0, 4)),
        ("cost ($)", round(cost["dollars"], 4)),
        ("static-fleet cost ($)", round(cost["static_dollars"], 4)),
        ("cost savings", f"{cost['savings_fraction']:.1%}"),
        ("bounded throughput per $",
         round(slo["bounded_throughput_per_dollar"], 3)),
        ("scale events", len(payload["autoscale_events"])),
    ]
    title = (f"fleet scale: {payload['devices']} devices, "
             f"autoscale {'on' if payload['autoscale'] else 'off'}")
    return render_table(("metric", "value"), rows, title=title)


# ---------------------------------------------------------------------------
# Picklable sweep point (serial-vs-jobs determinism harness)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScalePoint:
    """One scaled-fleet run over a diurnal trace; picklable."""

    costs: Any                      # ServiceCosts (frozen)
    models: Tuple[str, ...]
    devices: int
    cells: int
    peak_rps: float
    duration_s: float
    trough_fraction: float = 0.25
    routing: str = "round_robin"
    batch_kind: str = "dynamic"
    autoscale: bool = False
    min_cells: int = 1
    interval_s: float = 0.25
    cooldown_s: float = 1.0
    price_per_device_hour: float = 2.5
    stream: int = 0


def run_scale_point(point: ScalePoint) -> Dict[str, Any]:
    """Run one scaled point (module-level so process pools pickle it).

    Returns the ``repro-fleet-scale-report-v1`` payload — a pure
    function of ``(REPRO_SEED, point)``, so serial and ``--jobs N``
    sweeps are byte-identical.
    """
    from .workload import DiurnalTrace
    config = None
    if point.autoscale:
        config = AutoscaleConfig(
            interval_s=point.interval_s,
            min_cells=point.min_cells,
            cooldown_s=point.cooldown_s,
            price_per_device_hour=point.price_per_device_hour)
    sim = ScaledFleetSimulator(
        point.costs, devices=point.devices, cells=point.cells,
        batch_policy=BatchPolicy(kind=point.batch_kind),
        routing=point.routing, autoscale=config)
    trace = DiurnalTrace(point.models, point.peak_rps, point.duration_s,
                         trough_fraction=point.trough_fraction,
                         stream=point.stream)
    sim.run(trace, rate_rps=point.peak_rps)
    return sim.payload
