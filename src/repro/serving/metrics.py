"""Serving metrics: latency percentiles, utilization, SLO attainment.

The collector receives completion/rejection callbacks from the fleet
event loop and reduces them to a :class:`ServingReport`: throughput,
p50/p95/p99 latency, queue depth, device utilization and SLO
attainment, renderable as a fixed-width table (via
:func:`repro.harness.report.render_table`) or exportable as JSON.

SLO targets are per model: ``max(min_slo_s, slo_multiplier x isolated
latency)``, i.e. a request meets its SLO when end-to-end latency stays
within a fixed multiple of the model's unloaded service time. Rejected
requests count as SLO violations — shedding load does not launder the
attainment number.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# The exact nearest-rank estimator lives in telemetry.timeseries so the
# end-of-run report and the streaming monitor histograms share ONE rank
# rule; re-exported here because this module is its historical home.
from ..telemetry.timeseries import percentile
from .scheduler import ServiceCosts
from .workload import Request

DEFAULT_SLO_MULTIPLIER = 10.0
DEFAULT_MIN_SLO_S = 1e-3


@dataclass
class ServingReport:
    """One simulation's results (plain data; picklable, JSON-able)."""
    # -- configuration echo -------------------------------------------------
    models: Tuple[str, ...]
    devices: int
    batch_policy: str
    max_batch: int
    max_wait_ms: float
    routing: str
    rate_rps: float                 # offered rate (0 for closed loop)
    duration_s: float
    # -- outcomes -----------------------------------------------------------
    offered: int = 0
    completed: int = 0
    rejected: int = 0
    verify_rejected: int = 0        # refused: verification record dirty/missing
    #: Requests that never completed: stuck on a crashed device with no
    #: retry policy, or retried until the attempt/budget limit.
    failed: int = 0
    #: Completions whose outputs came from a corrupted resident program
    #: (counted in ``completed`` but excluded from goodput and SLO).
    bad_completions: int = 0
    retries: int = 0                # request re-routes after a timeout
    timeouts: int = 0               # per-request timeout expiries
    compile_retries: int = 0        # flaky compiles retried in place
    devices_ejected: int = 0        # circuit-breaker ejections
    devices_readmitted: int = 0     # cooldown re-admissions
    #: Injected-fault counts by kind (``device_crash``, ``tile_fault``,
    #: ``corrupt_program``, ...), plus ``corrupt_detected`` for the
    #: verifier's catches.
    faults: Dict[str, int] = field(default_factory=dict)
    makespan_s: float = 0.0
    throughput_rps: float = 0.0
    #: Good completions per second: completed, within SLO, and not
    #: produced by a corrupted program — the resilience headline number.
    goodput_rps: float = 0.0
    mean_latency_ms: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_queue_depth: float = 0.0
    max_queue_depth: int = 0
    mean_batch_size: float = 0.0
    device_utilization: float = 0.0
    per_device_utilization: List[float] = field(default_factory=list)
    compiles: int = 0
    #: Fraction of launched batches that found their model's programs
    #: already resident on the device (no first-touch compile charge).
    compile_cache_hit_rate: float = 0.0
    slo_multiplier: float = DEFAULT_SLO_MULTIPLIER
    slo_ms: Dict[str, float] = field(default_factory=dict)
    slo_attainment: float = 0.0

    def as_dict(self) -> Dict:
        """Plain-dict form (models tuple flattened to a list)."""
        payload = dataclasses.asdict(self)
        payload["models"] = list(self.models)
        return payload

    def to_json(self) -> str:
        """Canonical JSON: sorted keys + trailing newline.

        Byte-equality of two reports' ``to_json`` output is the
        bit-identity oracle used by the determinism and legacy-vs-scaled
        tests — any float that differs in the last ulp shows up here.
        """
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def table(self) -> str:
        """Fixed-width metric/value table for the CLI."""
        from ..harness.report import render_table
        slo = ", ".join(f"{m} {ms:.2f}ms" for m, ms in self.slo_ms.items())

        def latency(value_ms: float):
            # percentile() returns 0.0 on an empty list; with zero
            # completions that is "no data", not a zero-millisecond
            # tail — render n/a so monitoring comparisons can't confuse
            # an idle fleet with an infinitely fast one.
            return value_ms if self.completed else "n/a"

        rows = [
            ("models", "+".join(self.models)),
            ("devices", self.devices),
            ("batch policy", f"{self.batch_policy} (max_batch="
                             f"{self.max_batch}, wait={self.max_wait_ms}ms)"),
            ("routing", self.routing),
            ("offered requests", self.offered),
            ("completed", self.completed),
            ("rejected", self.rejected),
            ("verify-rejected", self.verify_rejected),
            ("failed", self.failed),
            ("bad completions", self.bad_completions),
            ("retries (timeouts)", f"{self.retries} ({self.timeouts})"),
            ("faults injected",
             ", ".join(f"{k} {v}" for k, v in sorted(self.faults.items()))
             or "(none)"),
            ("devices ejected/readmitted",
             f"{self.devices_ejected} / {self.devices_readmitted}"),
            ("throughput (req/s)", self.throughput_rps),
            ("goodput (req/s)", self.goodput_rps),
            ("mean latency (ms)", latency(self.mean_latency_ms)),
            ("p50 latency (ms)", latency(self.p50_ms)),
            ("p95 latency (ms)", latency(self.p95_ms)),
            ("p99 latency (ms)", latency(self.p99_ms)),
            ("mean/max queue depth", f"{self.mean_queue_depth:.2f} / "
                                     f"{self.max_queue_depth}"),
            ("mean batch size", self.mean_batch_size),
            ("device utilization", self.device_utilization),
            ("per-device utilization",
             ", ".join(f"d{i} {u:.3f}"
                       for i, u in enumerate(self.per_device_utilization))
             or "(none)"),
            ("first-touch compiles", self.compiles),
            ("compile-cache hit rate", self.compile_cache_hit_rate),
            ("SLO target", slo or "(none)"),
            ("SLO attainment", self.slo_attainment),
        ]
        title = (f"serving: {'+'.join(self.models)} on {self.devices} "
                 f"device(s), {self.batch_policy} batching")
        return render_table(("metric", "value"), rows, title=title)


@dataclass
class LLMServingReport:
    """One LLM batching simulation's results (plain data, JSON-able).

    Decode-phase telemetry follows the LLM-serving convention: **TTFT**
    (time to first token — arrival through prefill and the first decode
    step) and **ITL** (inter-token latency — gaps between a request's
    consecutive tokens, which absorb other requests' prefill stalls
    under continuous batching). Goodput counts completions within
    ``slo_multiplier`` x the request's isolated (ideal) latency.
    """
    # -- configuration echo -------------------------------------------------
    scheduler: str                  # "continuous" | "oneshot"
    config: str                     # LLM config name
    max_slots: int
    kv_budget_tokens: int
    rate_rps: float
    duration_s: float
    slo_multiplier: float
    # -- outcomes -----------------------------------------------------------
    offered: int = 0
    completed: int = 0
    rejected: int = 0
    makespan_s: float = 0.0
    throughput_rps: float = 0.0
    goodput_rps: float = 0.0
    slo_attainment: float = 0.0
    tokens_generated: int = 0
    tokens_per_s: float = 0.0
    mean_batch_size: float = 0.0    # mean active slots per decode step
    kv_peak_tokens: int = 0
    mean_latency_ms: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    ttft_p50_ms: float = 0.0
    ttft_p95_ms: float = 0.0
    ttft_p99_ms: float = 0.0
    itl_p50_ms: float = 0.0
    itl_p95_ms: float = 0.0
    itl_p99_ms: float = 0.0

    def as_dict(self) -> Dict:
        """Plain-dict form for JSON export."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys + trailing newline."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def table(self) -> str:
        """Fixed-width metric/value table for the CLI."""
        from ..harness.report import render_table
        rows = [
            ("scheduler", self.scheduler),
            ("config", self.config),
            ("slots / KV budget (tokens)",
             f"{self.max_slots} / {self.kv_budget_tokens}"),
            ("offered rate (req/s)", self.rate_rps),
            ("offered / completed / rejected",
             f"{self.offered} / {self.completed} / {self.rejected}"),
            ("throughput (req/s)", self.throughput_rps),
            ("goodput (req/s)", self.goodput_rps),
            ("SLO attainment", self.slo_attainment),
            ("tokens/s", self.tokens_per_s),
            ("mean decode batch", self.mean_batch_size),
            ("KV peak (tokens)", self.kv_peak_tokens),
            ("latency p50/p95/p99 (ms)",
             f"{self.p50_ms:.3f} / {self.p95_ms:.3f} / {self.p99_ms:.3f}"),
            ("TTFT p50/p95/p99 (ms)",
             f"{self.ttft_p50_ms:.3f} / {self.ttft_p95_ms:.3f} / "
             f"{self.ttft_p99_ms:.3f}"),
            ("ITL p50/p95/p99 (ms)",
             f"{self.itl_p50_ms:.3f} / {self.itl_p95_ms:.3f} / "
             f"{self.itl_p99_ms:.3f}"),
        ]
        title = (f"llm serving: {self.config}, {self.scheduler} batching "
                 f"@ {self.rate_rps:g} req/s")
        return render_table(("metric", "value"), rows, title=title)


class MetricsCollector:
    """Accumulates per-request outcomes during one simulation."""

    def __init__(self, costs: ServiceCosts,
                 slo_multiplier: float = DEFAULT_SLO_MULTIPLIER,
                 min_slo_s: float = DEFAULT_MIN_SLO_S):
        """Derive per-model SLO targets; zero all counters."""
        self.costs = costs
        self.slo_multiplier = slo_multiplier
        self.slo_s = {m: max(min_slo_s,
                             slo_multiplier * costs.latency_s(m))
                      for m in costs.models()}
        self.latencies_ms: List[float] = []
        self.offered = 0
        self.rejected = 0
        self.verify_rejected = 0
        self.failed = 0
        self.bad_completions = 0
        self.retries = 0
        self.timeouts = 0
        self.compile_retries = 0
        self.devices_ejected = 0
        self.devices_readmitted = 0
        self.faults: Dict[str, int] = {}
        self.slo_met = 0
        self.batches: List[int] = []
        self.queue_samples: List[int] = []
        self.max_queue = 0
        self.compiles = 0
        self.last_finish_s = 0.0

    def note_arrival(self, fleet_queue_depth: int) -> None:
        """One offered request, sampling fleet queue depth at arrival."""
        self.offered += 1
        self.queue_samples.append(fleet_queue_depth)
        self.max_queue = max(self.max_queue, fleet_queue_depth)

    def note_reject(self, request: Request, now_s: float) -> None:
        """Admission-control shed: the queue was full."""
        self.rejected += 1

    def note_verify_reject(self, request: Request, now_s: float) -> None:
        """Admission refusal: no clean static-verification record.

        Counts toward ``rejected`` too — an unverified model's requests
        are shed load, and they fail their SLO like any other reject.
        """
        self.rejected += 1
        self.verify_rejected += 1

    def note_batch(self, size: int) -> None:
        """One launched batch of ``size`` requests."""
        self.batches.append(size)

    def note_complete(self, request: Request, finish_s: float,
                      born_s: Optional[float] = None,
                      bad: bool = False) -> None:
        """One completion; latency runs from the *original* arrival.

        ``born_s`` is the first-attempt arrival time for retried
        requests — a retry must not launder its queueing history out of
        the latency distribution. ``bad`` marks a completion produced
        by a corrupted resident program: it counts as completed (the
        device did the work) but never as good.
        """
        start_s = request.arrival_s if born_s is None else born_s
        latency_s = finish_s - start_s
        self.latencies_ms.append(latency_s * 1e3)
        if bad:
            self.bad_completions += 1
        elif latency_s <= self.slo_s[request.model]:
            self.slo_met += 1
        self.last_finish_s = max(self.last_finish_s, finish_s)

    def note_failed(self, request: Request) -> None:
        """A request that will never complete (crash loss / retries out)."""
        self.failed += 1

    def note_fault(self, kind: str, count: int = 1) -> None:
        """Tally an injected fault by kind (chaos runs only)."""
        self.faults[kind] = self.faults.get(kind, 0) + count

    def report(self, *, models: Tuple[str, ...], devices: int,
               batch_policy: str, max_batch: int, max_wait_ms: float,
               routing: str, rate_rps: float, duration_s: float,
               busy_s: List[float]) -> ServingReport:
        """Reduce the accumulated counters to a :class:`ServingReport`.

        All rates normalize against ``max(last_finish, duration)`` so
        runs that drain past the traffic horizon are not flattered; the
        scaled core (:mod:`repro.serving.scale`) replicates this
        arithmetic term for term to stay bit-identical.
        """
        latencies = sorted(self.latencies_ms)
        completed = len(latencies)
        makespan = max(self.last_finish_s, duration_s)
        horizon = makespan if makespan > 0 else 1.0
        return ServingReport(
            models=models,
            devices=devices,
            batch_policy=batch_policy,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            routing=routing,
            rate_rps=rate_rps,
            duration_s=duration_s,
            offered=self.offered,
            completed=completed,
            rejected=self.rejected,
            verify_rejected=self.verify_rejected,
            failed=self.failed,
            bad_completions=self.bad_completions,
            retries=self.retries,
            timeouts=self.timeouts,
            compile_retries=self.compile_retries,
            devices_ejected=self.devices_ejected,
            devices_readmitted=self.devices_readmitted,
            faults=dict(sorted(self.faults.items())),
            makespan_s=makespan,
            throughput_rps=completed / horizon,
            goodput_rps=self.slo_met / horizon,
            mean_latency_ms=(sum(latencies) / completed
                             if completed else 0.0),
            p50_ms=percentile(latencies, 50),
            p95_ms=percentile(latencies, 95),
            p99_ms=percentile(latencies, 99),
            mean_queue_depth=(sum(self.queue_samples)
                              / len(self.queue_samples)
                              if self.queue_samples else 0.0),
            max_queue_depth=self.max_queue,
            mean_batch_size=(sum(self.batches) / len(self.batches)
                             if self.batches else 0.0),
            device_utilization=(sum(busy_s) / (len(busy_s) * horizon)
                                if busy_s else 0.0),
            per_device_utilization=[b / horizon for b in busy_s],
            compiles=self.compiles,
            compile_cache_hit_rate=(1.0 - self.compiles / len(self.batches)
                                    if self.batches else 0.0),
            slo_multiplier=self.slo_multiplier,
            slo_ms={m: s * 1e3 for m, s in self.slo_s.items()},
            slo_attainment=(self.slo_met / self.offered
                            if self.offered else 0.0),
        )
