"""repro — a reproduction of *Tandem Processor: Grappling with Emerging
Operators in Neural Networks* (ASPLOS 2024).

Quickstart::

    from repro import NPUTandem, build_model

    npu = NPUTandem()                      # Table 3 configuration
    result = npu.evaluate("bert")          # end-to-end analytic run
    print(result.total_seconds, result.energy_joules)

Subpackages:

* :mod:`repro.graph` — ONNX-like graph IR;
* :mod:`repro.models` — the seven benchmark DNNs;
* :mod:`repro.isa` — the Figure 12 instruction set;
* :mod:`repro.simulator` — functional + cycle-level Tandem Processor;
* :mod:`repro.gemm` — systolic-array GEMM unit;
* :mod:`repro.compiler` — ONNX graph -> Tandem ISA (Figure 13);
* :mod:`repro.npu` — the integrated NPU-Tandem (Figures 10/11);
* :mod:`repro.baselines` — every Section 2.3 comparison design point;
* :mod:`repro.analysis` — characterization + breakdowns;
* :mod:`repro.harness` — per-figure experiment registry.
"""

from .compiler import CompiledModel, ReferenceExecutor, compile_model
from .graph import Graph, GraphBuilder, OpClass, TensorSpec
from .models import MODEL_ORDER, available_models, build_model
from .npu import FunctionalRunner, NPUConfig, NPUTandem, iso_a100_config, table3_config
from .results import RunResult, geomean

__version__ = "1.0.0"

__all__ = [
    "CompiledModel",
    "FunctionalRunner",
    "Graph",
    "GraphBuilder",
    "MODEL_ORDER",
    "NPUConfig",
    "NPUTandem",
    "OpClass",
    "ReferenceExecutor",
    "RunResult",
    "TensorSpec",
    "available_models",
    "build_model",
    "compile_model",
    "geomean",
    "iso_a100_config",
    "table3_config",
    "__version__",
]
