"""PCIe transfer model (Baselines 1 and 2 attach the GEMM unit over PCIe).

Section 7: third-generation PCIe with eight lanes, measured on a Xilinx
Alveo U280; transaction energy per Beck et al., 'Zeppelin' (ISSCC'18).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PcieParams:
    """PCIe Gen3 x8: 8 GT/s x 8 lanes x 128b/130b, minus protocol overhead."""

    bandwidth_bytes_per_s: float = 6.8e9   # effective, as measured on U280
    latency_s: float = 2.0e-6              # per-transfer round-up (DMA setup)
    energy_pj_per_byte: float = 12.0       # ~1.5 pJ/bit serdes + controller


class PcieLink:
    def __init__(self, params: PcieParams = PcieParams()):
        self.params = params

    def transfer_seconds(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.params.latency_s + nbytes / self.params.bandwidth_bytes_per_s

    def transfer_joules(self, nbytes: int) -> float:
        return nbytes * self.params.energy_pj_per_byte * 1e-12
