"""Baseline (2): GEMM unit + dedicated on-chip units, CPU fallback.

Class (2) of Section 2.3 / Section 7: dedicated hardware blocks for
Relu, Clip, Residual Add, MaxPool, and scale & shift (the Gemmini-style
peripheral set). Anything else still round-trips to the off-chip CPU
over PCIe.
"""

from __future__ import annotations

from ..graph import Graph, Node
from .cpu_fallback import CpuFallbackDesign

#: Operators the dedicated blocks implement directly.
_DEDICATED_TYPES = frozenset({"Relu", "Clip", "Add", "MaxPool", "Cast",
                              "BitShift"})
#: Scale (element-wise multiply/divide by a per-tensor scalar parameter).
_SCALE_TYPES = frozenset({"Mul", "Div"})


class DedicatedUnitsDesign(CpuFallbackDesign):
    """GEMM unit + Relu/Clip/ResAdd/MaxPool/scale&shift blocks + CPU."""

    name = "gemm+dedicated-units"

    #: Streaming width of each dedicated block (elements per cycle); the
    #: blocks sit on the GEMM unit's output path.
    DEDICATED_LANES = 32

    def on_chip_nongemm(self, node: Node, graph: Graph) -> bool:
        if node.op_type in _DEDICATED_TYPES:
            return True
        if node.op_type in _SCALE_TYPES:
            # Only per-tensor scale: one operand must be a scalar param.
            operands = list(node.inputs) + list(node.params)
            if len(operands) >= 2:
                second = graph.tensor(operands[1])
                return second.numel == 1
        return False

    def dedicated_seconds(self, node: Node, graph: Graph) -> float:
        numel = graph.out_spec(node).numel
        cycles = -(-numel // self.DEDICATED_LANES)
        if node.op_type == "MaxPool":
            kh, kw = node.attrs["kernel_shape"]
            cycles *= kh * kw
        compute_s = cycles / self.array.params.frequency_hz
        # The blocks sit behind the same DRAM interface as the GEMM unit
        # and stream their operands from memory (no fused tiling).
        memory_s = (graph.node_cost(node).bytes_total
                    / self.array.params.dram_bandwidth_bytes_per_s)
        return max(compute_s, memory_s)
