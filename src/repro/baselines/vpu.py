"""Class (4): TPU-like design — GEMM unit + general-purpose VPU.

Modeled per Google's VPU patent, exactly as Section 7 describes: the
VPU keeps (1) strided DRAM<->scratchpad address generation, (2) strided
scratchpad<->vector-register-file LD/ST, (3) GEMM->VPU software
pipelining through FIFOs, and (4) single-instruction special functions.
What it lacks relative to the Tandem Processor: register-file-free
execution, the specialized Code Repeater loops, and direct Output BUF
ownership.

``design_points`` yields the cumulative Figure 18 ablation ladder, from
the full VPU to the Tandem Processor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Union

from ..graph import Graph
from ..npu import NPUConfig, NPUTandem, table3_config
from ..results import RunResult
from ..simulator.params import SimParams, VpuOverlay


@dataclass(frozen=True)
class VpuFlags:
    """Which conventional overheads this design point pays."""

    regfile: bool = True
    conventional_loops: bool = True
    fifo: bool = True
    special_functions: bool = True

    def label(self) -> str:
        parts = []
        if self.regfile:
            parts.append("rf")
        if self.conventional_loops:
            parts.append("loops")
        if self.fifo:
            parts.append("fifo")
        if self.special_functions:
            parts.append("sf")
        return "+".join(parts) or "tandem"


class TpuVpuDesign:
    """Evaluate the TPU+VPU point (or any intermediate ablation)."""

    name = "tpu+vpu"

    def __init__(self, config: Optional[NPUConfig] = None):
        self.config = config or table3_config()

    def _npu_for(self, flags: VpuFlags) -> NPUTandem:
        overlay = VpuOverlay(
            regfile_loads=flags.regfile,
            conventional_loops=flags.conventional_loops,
            fifo_coupling=flags.fifo,
            special_functions=flags.special_functions,
        )
        sim = self.config.sim.with_overlay(overlay)
        config = replace(self.config, sim=sim, name=f"vpu[{flags.label()}]")
        return NPUTandem(config, fifo_coupling=flags.fifo,
                         special_functions=flags.special_functions)

    def evaluate(self, graph: Union[str, Graph],
                 flags: VpuFlags = VpuFlags()) -> RunResult:
        result = self._npu_for(flags).evaluate(graph)
        result.design = self.name if flags == VpuFlags() else result.design
        return result

    def ablation_ladder(self, graph: Union[str, Graph]) -> Dict[str, RunResult]:
        """The Figure 18 bars: each step removes one conventional overhead.

        Keys, in order: ``vpu`` (full baseline), ``no_regfile``,
        ``no_regfile_loops`` (+ specialized loops), ``no_regfile_loops_fifo``
        (+ Output BUF ownership), ``tandem`` (also loses the VPU's
        special-function instructions — the final design point).
        """
        ladder = {
            "vpu": VpuFlags(),
            "no_regfile": VpuFlags(regfile=False),
            "no_regfile_loops": VpuFlags(regfile=False,
                                         conventional_loops=False),
            "no_regfile_loops_fifo": VpuFlags(regfile=False,
                                              conventional_loops=False,
                                              fifo=False),
            "tandem": VpuFlags(regfile=False, conventional_loops=False,
                               fifo=False, special_functions=False),
        }
        return {label: self.evaluate(graph, flags)
                for label, flags in ladder.items()}
