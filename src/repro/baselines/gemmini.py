"""Class (3): Gemmini-like design — systolic array + dedicated units +
on-chip RISC-V core(s).

Section 7 methodology: same peripheral dedicated-unit set as Baseline 2,
but unsupported non-GEMM operators run on an on-chip in-order RISC-V
core with a single ALU (no PCIe, no big CPU). Depth-wise convolutions
are handled the way Gemmini handles them: an im2col dedicated unit
expands them into (badly utilized) GEMM operations — the paper measures
this at ~90 % of MobileNetV2/EfficientNet runtime (Figure 17).

``cores > 1`` models the paper's optimistic iso-resource scale-up: "we
optimistically scale down the CPU runtime ... with the number of
integrated cores".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..gemm import SystolicArray, SystolicParams, gemm_dims
from ..graph import Graph, Node
from ..models import build_model
from ..results import RunResult
from .dedicated import DedicatedUnitsDesign


@dataclass(frozen=True)
class RiscvParams:
    """A Rocket-class in-order scalar core."""

    frequency_hz: float = 1.0e9
    #: Effective instructions per element for simple element-wise work:
    #: load, compute, store, plus addressing and loop bookkeeping.
    insts_per_simple_element: float = 10.0
    #: Newlib-style soft math for exp/erf/tanh/... per element.
    insts_per_complex_element: float = 80.0
    ipc: float = 0.9
    core_watts: float = 0.30


_COMPLEX_OPS = frozenset({
    "Exp", "Erf", "Gelu", "Sigmoid", "Tanh", "Sqrt", "Softmax", "Pow",
    "Reciprocal", "Div", "LeakyRelu", "ReduceMean", "GlobalAveragePool",
})


class GemminiDesign(DedicatedUnitsDesign):
    """Gemmini: systolic GEMM + dedicated units + N RISC-V cores."""

    #: Cycles per expanded im2col element: read, duplicate, and write the
    #: kh*kw-times-larger matrix back through the memory system.
    IM2COL_CYCLES_PER_ELEM = 3

    def __init__(self, cores: int = 1,
                 gemm_params: Optional[SystolicParams] = None,
                 riscv: RiscvParams = RiscvParams()):
        super().__init__(gemm_params=gemm_params)
        self.cores = max(1, cores)
        self.riscv = riscv
        self.name = ("gemmini" if self.cores == 1
                     else f"gemmini-{self.cores}core")

    def evaluate(self, graph: Union[str, Graph]) -> RunResult:
        if isinstance(graph, str):
            graph = build_model(graph)
        freq = self.array.params.frequency_hz

        gemm_s = dedicated_s = im2col_s = riscv_s = 0.0
        gemm_j = 0.0
        per_op: Dict[str, float] = {}

        for node in graph.topological_order():
            if node.is_gemm:
                out = graph.out_spec(node)
                m, n, k = gemm_dims(node, out, graph.tensor(node.inputs[0]))
                cost = self.array.layer_cost(
                    m, n, k,
                    sum(graph.tensor(t).nbytes for t in node.inputs),
                    sum(graph.tensor(t).nbytes for t in node.params),
                    out.nbytes)
                gemm_s += cost.cycles / freq
                gemm_j += cost.energy_pj * 1e-12
            elif node.op_type == "DepthwiseConv":
                seconds = self._depthwise_seconds(node, graph)
                im2col_s += seconds
                per_op[node.op_type] = per_op.get(node.op_type, 0.0) + seconds
            elif self.on_chip_nongemm(node, graph):
                dedicated_s += self.dedicated_seconds(node, graph)
            elif node.info.is_layout_only:
                seconds = self._riscv_move_seconds(node, graph)
                riscv_s += seconds
                per_op[node.op_type] = per_op.get(node.op_type, 0.0) + seconds
            else:
                seconds = self._riscv_seconds(node, graph)
                riscv_s += seconds
                per_op[node.op_type] = per_op.get(node.op_type, 0.0) + seconds

        riscv_s /= self.cores  # the paper's optimistic multi-core scaling
        total = gemm_s + dedicated_s + im2col_s + riscv_s
        energy = (gemm_j
                  + riscv_s * self.riscv.core_watts * self.cores
                  + (dedicated_s + im2col_s) * 1.0  # peripheral power ~1 W
                  + total * self.STATIC_WATTS)
        return RunResult(
            design=self.name,
            model=graph.name,
            total_seconds=total,
            gemm_seconds=gemm_s,
            nongemm_seconds=dedicated_s + im2col_s + riscv_s,
            energy_joules=energy,
            energy_breakdown={
                "gemm_unit": gemm_j,
                "riscv": riscv_s * self.riscv.core_watts * self.cores,
                "peripherals": (dedicated_s + im2col_s) * 1.0,
            },
            per_op_seconds=per_op,
        )

    # -- component models -----------------------------------------------------
    def _depthwise_seconds(self, node: Node, graph: Graph) -> float:
        """im2col expansion + a barely-utilized GEMM pass.

        Each output channel's "GEMM" reduces over only kh*kw values of a
        single input channel, so the systolic array utilization is
        kh*kw / (rows*cols) — the reason Gemmini burns ~90 % of
        MobileNetV2/EfficientNet runtime here (Figure 17).
        """
        out = graph.out_spec(node)
        kh, kw = node.attrs["kernel_shape"]
        expanded = out.numel * kh * kw
        im2col_cycles = expanded * self.IM2COL_CYCLES_PER_ELEM
        macs = out.numel * kh * kw
        utilization = (kh * kw) / self.array.params.macs_per_cycle
        gemm_cycles = macs / (self.array.params.macs_per_cycle * utilization)
        return (im2col_cycles + gemm_cycles) / self.array.params.frequency_hz

    def _riscv_seconds(self, node: Node, graph: Graph) -> float:
        numel = graph.out_spec(node).numel
        per_elem = (self.riscv.insts_per_complex_element
                    if node.op_type in _COMPLEX_OPS
                    else self.riscv.insts_per_simple_element)
        if node.info.is_reduction:
            numel = graph.tensor(node.inputs[0]).numel
        insts = numel * per_elem
        return insts / (self.riscv.ipc * self.riscv.frequency_hz)

    def _riscv_move_seconds(self, node: Node, graph: Graph) -> float:
        """Layout ops: load + store per element on the scalar core."""
        numel = graph.out_spec(node).numel
        return numel * 6.0 / (self.riscv.ipc * self.riscv.frequency_hz)


def runtime_breakdown(design: GemminiDesign,
                      graph: Union[str, Graph]) -> Dict[str, float]:
    """Fractions of runtime on (gemm, dedicated+im2col, riscv) — Figure 17."""
    if isinstance(graph, str):
        graph = build_model(graph)
    result = design.evaluate(graph)
    gemm = result.gemm_seconds
    im2col = result.per_op_seconds.get("DepthwiseConv", 0.0)
    riscv = sum(v for k, v in result.per_op_seconds.items()
                if k != "DepthwiseConv") / design.cores
    dedicated = max(result.total_seconds - gemm - im2col - riscv, 0.0)
    total = result.total_seconds
    return {
        "gemm": gemm / total,
        "im2col_dedicated": (im2col + dedicated) / total,
        "riscv": riscv / total,
    }
