"""Off-chip CPU execution model for non-GEMM operators.

Models the paper's Intel Core i9-9980XE running ONNX Runtime: per-node
framework dispatch overhead plus a roofline over effective vector
throughput and memory bandwidth. Non-GEMM operators under ONNX Runtime
are dominated by dispatch for small tensors and by memory bandwidth for
large ones, with complex math (exp/erf/tanh) limited by the scalar-ish
special-function throughput — all three regimes matter for Figure 3's
shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import Graph, Node, OpClass


@dataclass(frozen=True)
class CpuParams:
    """i9-9980XE-class workstation CPU (Skylake-X, 18C, AVX-512)."""

    name: str = "i9-9980XE"
    #: Effective element-wise arithmetic throughput for framework-driven
    #: single-stream inference (far below peak: one to a few cores busy).
    simple_gops: float = 20.0
    #: Effective throughput for special functions (exp, erf, tanh, ...).
    complex_gops: float = 4.5
    #: Streaming memory bandwidth seen by one inference stream.
    bandwidth_bytes_per_s: float = 28.0e9
    #: ONNX Runtime per-node dispatch latency.
    dispatch_s: float = 5.0e-6
    tdp_watts: float = 165.0
    #: Sustained package power while running single-stream inference
    #: kernels (energy accounting; the TDP is the design-power quote).
    active_watts: float = 75.0

    #: Datatype conversion throughput when crossing the accelerator
    #: boundary (INT32 accumulators <-> the CPU's float kernels).
    convert_bytes_per_s: float = 20.0e9


#: Operators whose CPU kernels go through special functions.
_COMPLEX_OPS = frozenset({
    "Exp", "Erf", "Gelu", "Sigmoid", "Tanh", "Sqrt", "Softmax", "Pow",
    "Reciprocal", "Div",
})


class CpuModel:
    def __init__(self, params: CpuParams = CpuParams()):
        self.params = params

    def node_seconds(self, graph: Graph, node: Node) -> float:
        """Wall-clock for one non-GEMM node under ONNX Runtime."""
        cost = graph.node_cost(node)
        if node.info.is_layout_only:
            compute_s = 0.0
        else:
            gops = (self.params.complex_gops if node.op_type in _COMPLEX_OPS
                    else self.params.simple_gops)
            compute_s = cost.flops / (gops * 1e9)
        memory_s = cost.bytes_total / self.params.bandwidth_bytes_per_s
        return self.params.dispatch_s + max(compute_s, memory_s)

    def convert_seconds(self, nbytes: int) -> float:
        """INT32 <-> FP32 conversion at the accelerator boundary."""
        return nbytes / self.params.convert_bytes_per_s

    def joules(self, seconds: float) -> float:
        return seconds * self.params.active_watts
