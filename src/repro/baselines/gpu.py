"""GPU baselines: Jetson Xavier NX, RTX 2080 Ti, A100 (Class (4)).

Analytical per-layer roofline with framework behaviour switches:

* ``tensorrt`` execution fuses element-wise/activation chains into the
  producing GEMM kernel (their cost folds into the GEMM's memory
  traffic), leaving standalone kernels only for reductions, layout ops
  and complex math;
* ``cuda`` (ONNX Runtime CUDA EP) launches one kernel per node, paying a
  per-kernel launch overhead plus a memory-bandwidth-bound pass over the
  operands — the behaviour behind the paper's Figure 21/22 gap between
  the two modes.

Vendor numbers: A100 (624 INT8 TOPS dense, 1.555 TB/s, 400 W), RTX 2080
Ti (~215 INT8 TOPS, 616 GB/s, 250 W), Jetson Xavier NX (~21 INT8 TOPS,
59.7 GB/s, 15 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..graph import Graph, Node, OpClass
from ..models import build_model
from ..results import RunResult

#: Operator classes TensorRT folds into the preceding GEMM kernel.
_FUSABLE_CLASSES = (OpClass.ELEMENTWISE_MATH, OpClass.ACTIVATION,
                    OpClass.TYPE_CONVERSION)
_COMPLEX_OPS = frozenset({
    "Exp", "Erf", "Gelu", "Sigmoid", "Tanh", "Sqrt", "Softmax", "Pow",
    "Reciprocal",
})


@dataclass(frozen=True)
class GpuParams:
    """Datasheet parameters of one GPU (peak TOPS, bandwidth, power)."""
    name: str
    int8_tops: float                  # tensor-core peak, INT8
    fp_tflops: float                  # CUDA-core throughput for non-GEMM
    bandwidth_bytes_per_s: float
    launch_overhead_s: float
    tdp_watts: float
    #: Achievable fraction of peak for well-shaped GEMMs at batch 1.
    gemm_efficiency: float = 0.35
    #: Achievable fraction of peak bandwidth for element-wise kernels.
    mem_efficiency: float = 0.65
    #: Depth-wise convolutions utilize tensor cores terribly; they run
    #: on CUDA cores with this efficiency (thread-starved on mobile).
    depthwise_efficiency: float = 0.10
    #: Fraction of TDP drawn while sustaining inference.
    sustained_power_fraction: float = 0.7
    #: ONNX Runtime's CUDA EP pays a heavier per-node cost than
    #: TensorRT's pre-built engine (allocator, stream sync, Python hop).
    cuda_launch_multiplier: float = 2.5


JETSON_XAVIER_NX = GpuParams(
    name="jetson-xavier-nx", int8_tops=21.0, fp_tflops=0.9,
    bandwidth_bytes_per_s=59.7e9, launch_overhead_s=15.0e-6,
    tdp_watts=15.0, gemm_efficiency=0.15, mem_efficiency=0.5,
    depthwise_efficiency=0.03, sustained_power_fraction=0.85)

RTX_2080_TI = GpuParams(
    name="rtx-2080-ti", int8_tops=215.0, fp_tflops=13.4,
    bandwidth_bytes_per_s=616.0e9, launch_overhead_s=6.0e-6,
    tdp_watts=250.0, gemm_efficiency=0.25, depthwise_efficiency=0.12)

A100 = GpuParams(
    name="a100", int8_tops=624.0, fp_tflops=19.5,
    bandwidth_bytes_per_s=1555.0e9, launch_overhead_s=5.0e-6,
    tdp_watts=400.0, gemm_efficiency=0.12, depthwise_efficiency=0.10)


class GpuDesign:
    """One GPU under one execution mode ('tensorrt' or 'cuda')."""

    def __init__(self, params: GpuParams, mode: str = "tensorrt"):
        if mode not in ("tensorrt", "cuda"):
            raise ValueError(f"unknown GPU execution mode {mode!r}")
        self.params = params
        self.mode = mode
        self.launch_s = params.launch_overhead_s
        if mode == "cuda":
            self.launch_s *= params.cuda_launch_multiplier

    @property
    def name(self) -> str:
        """Design label used in reports (gpu:<chip>[-runtime])."""
        return f"{self.params.name}-{self.mode}"

    # -- per-node costs ---------------------------------------------------------
    def gemm_seconds(self, graph: Graph, node: Node) -> float:
        """GEMM time from the roofline over the datasheet peaks."""
        cost = graph.node_cost(node)
        compute = cost.flops / (self.params.int8_tops * 1e12
                                * self.params.gemm_efficiency)
        memory = cost.bytes_total / (self.params.bandwidth_bytes_per_s
                                     * self.params.mem_efficiency)
        return self.launch_s + max(compute, memory)

    def nongemm_seconds(self, graph: Graph, node: Node) -> float:
        """Non-GEMM time: kernel-launch floor + memory-bound sweeps."""
        cost = graph.node_cost(node)
        if node.op_type == "DepthwiseConv":
            compute = cost.flops / (self.params.fp_tflops * 1e12
                                    * self.params.depthwise_efficiency)
        elif node.op_type in _COMPLEX_OPS:
            compute = cost.flops / (self.params.fp_tflops * 1e12 * 0.5)
        elif node.info.is_layout_only:
            compute = 0.0
        else:
            compute = cost.flops / (self.params.fp_tflops * 1e12)
        memory = cost.bytes_total / (self.params.bandwidth_bytes_per_s
                                     * self.params.mem_efficiency)
        return self.launch_s + max(compute, memory)

    def _fused(self, node: Node) -> bool:
        return (self.mode == "tensorrt"
                and node.op_class in _FUSABLE_CLASSES)

    # -- end to end ----------------------------------------------------------------
    def evaluate(self, graph: Union[str, Graph]) -> RunResult:
        """Latency/energy of one model on this GPU's analytic model."""
        if isinstance(graph, str):
            graph = build_model(graph)
        gemm_s = 0.0
        nongemm_s = 0.0
        per_op: Dict[str, float] = {}
        for node in graph.topological_order():
            if node.is_gemm:
                gemm_s += self.gemm_seconds(graph, node)
            elif self._fused(node):
                # Folded into the producer kernel: pays only its extra
                # output traffic, no launch.
                extra = (graph.out_spec(node).nbytes
                         / (self.params.bandwidth_bytes_per_s
                            * self.params.mem_efficiency))
                gemm_s += extra
            else:
                seconds = self.nongemm_seconds(graph, node)
                nongemm_s += seconds
                per_op[node.op_type] = per_op.get(node.op_type, 0.0) + seconds
        total = gemm_s + nongemm_s
        energy = (total * self.params.tdp_watts
                  * self.params.sustained_power_fraction)
        return RunResult(
            design=self.name,
            model=graph.name,
            total_seconds=total,
            gemm_seconds=gemm_s,
            nongemm_seconds=nongemm_s,
            energy_joules=energy,
            energy_breakdown={"gpu": energy},
            per_op_seconds=per_op,
        )
