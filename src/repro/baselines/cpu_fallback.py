"""Baseline (1): PCIe-attached GEMM unit + off-chip CPU for non-GEMM.

Class (1) of Section 2.3. Every non-GEMM operator runs on the host CPU;
activations cross PCIe (with INT<->FP datatype conversion) at every
GEMM/non-GEMM boundary, and nothing overlaps.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Union

from ..gemm import SystolicArray, SystolicParams, gemm_dims
from ..graph import Graph, Node
from ..models import build_model
from ..results import RunResult
from .cpu import CpuModel, CpuParams
from .pcie import PcieLink, PcieParams

#: Unit labels for boundary-crossing accounting.
NPU, CPU = "npu", "cpu"


class CpuFallbackDesign:
    """GEMM unit on the accelerator, everything else on the host CPU."""

    name = "gemm+offchip-cpu"
    #: Accelerator-card static power (same class of NPU as the proposed
    #: design), charged against wall-clock time.
    STATIC_WATTS = 1.0

    def __init__(self, gemm_params: Optional[SystolicParams] = None,
                 cpu_params: Optional[CpuParams] = None,
                 pcie_params: Optional[PcieParams] = None):
        self.array = SystolicArray(gemm_params or SystolicParams())
        self.cpu = CpuModel(cpu_params or CpuParams())
        self.pcie = PcieLink(pcie_params or PcieParams())

    # Subclasses (Baseline 2) override this to keep some operators on-chip.
    def on_chip_nongemm(self, node: Node, graph: Graph) -> bool:
        return False

    def dedicated_seconds(self, node: Node, graph: Graph) -> float:
        raise NotImplementedError

    def _unit(self, node: Node, graph: Graph) -> str:
        if node.is_gemm or self.on_chip_nongemm(node, graph):
            return NPU
        return CPU

    def evaluate(self, graph: Union[str, Graph]) -> RunResult:
        if isinstance(graph, str):
            graph = build_model(graph)
        freq = self.array.params.frequency_hz

        gemm_s = 0.0
        nongemm_s = 0.0
        comm_s = 0.0
        gemm_j = 0.0
        cpu_s = 0.0
        pcie_j = 0.0
        dedicated_j = 0.0
        per_op: Dict[str, float] = {}

        units = {name: NPU for name in graph.graph_inputs}
        for node in graph.topological_order():
            unit = self._unit(node, graph)
            # PCIe crossings for activation inputs produced on the other
            # side (each crossing also pays datatype conversion on the
            # CPU side, Section 2.3).
            for inp in node.inputs:
                src_unit = units.get(inp, NPU)
                if src_unit != unit:
                    nbytes = graph.tensor(inp).nbytes
                    comm_s += self.pcie.transfer_seconds(nbytes)
                    pcie_j += self.pcie.transfer_joules(nbytes)
                    convert = self.cpu.convert_seconds(nbytes)
                    nongemm_s += convert
                    cpu_s += convert
            for out in node.outputs:
                units[out] = unit

            if node.is_gemm:
                out = graph.out_spec(node)
                m, n, k = gemm_dims(node, out, graph.tensor(node.inputs[0]))
                cost = self.array.layer_cost(
                    m, n, k,
                    sum(graph.tensor(t).nbytes for t in node.inputs),
                    sum(graph.tensor(t).nbytes for t in node.params),
                    out.nbytes)
                gemm_s += cost.cycles / freq
                gemm_j += cost.energy_pj * 1e-12
            elif unit == NPU:
                seconds = self.dedicated_seconds(node, graph)
                nongemm_s += seconds
                dedicated_j += graph.out_spec(node).numel * 2.0e-12
                per_op[node.op_type] = per_op.get(node.op_type, 0.0) + seconds
            else:
                seconds = self.cpu.node_seconds(graph, node)
                nongemm_s += seconds
                cpu_s += seconds
                per_op[node.op_type] = per_op.get(node.op_type, 0.0) + seconds

        total = gemm_s + nongemm_s + comm_s
        static_j = total * self.STATIC_WATTS
        energy = (gemm_j + self.cpu.joules(cpu_s) + pcie_j + dedicated_j
                  + static_j)
        return RunResult(
            design=self.name,
            model=graph.name,
            total_seconds=total,
            gemm_seconds=gemm_s,
            nongemm_seconds=nongemm_s,
            comm_seconds=comm_s,
            energy_joules=energy,
            energy_breakdown={
                "gemm_unit": gemm_j,
                "cpu": self.cpu.joules(cpu_s),
                "pcie": pcie_j,
                "dedicated": dedicated_j,
                "static": static_j,
            },
            per_op_seconds=per_op,
        )
