"""Comparison design points (Section 2.3 classes)."""

from .cpu import CpuModel, CpuParams
from .cpu_fallback import CpuFallbackDesign
from .dedicated import DedicatedUnitsDesign
from .gemmini import GemminiDesign, RiscvParams, runtime_breakdown
from .gpu import A100, JETSON_XAVIER_NX, RTX_2080_TI, GpuDesign, GpuParams
from .pcie import PcieLink, PcieParams
from .vpu import TpuVpuDesign, VpuFlags

__all__ = [
    "A100",
    "CpuFallbackDesign",
    "CpuModel",
    "CpuParams",
    "DedicatedUnitsDesign",
    "GemminiDesign",
    "GpuDesign",
    "GpuParams",
    "JETSON_XAVIER_NX",
    "PcieLink",
    "PcieParams",
    "RTX_2080_TI",
    "RiscvParams",
    "TpuVpuDesign",
    "VpuFlags",
    "runtime_breakdown",
]
