"""Ground-truth executor: integer semantics of every operator, in numpy.

This is the "ground truth software implementation" of Section 7 the
paper validates its simulator and RTL against: the Tandem machine's
output for every compiled operator must match this module bit-exactly,
because both implement the same integer algorithms
(:mod:`repro.compiler.integer_ops`).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gemm import SystolicArray
from ..graph import Graph, Node
from .integer_ops import (
    CAUSAL_MASK_SHIFT,
    FRAC_BITS,
    w32,
    UNARY_RECIPES,
    ceil_recipe,
    clip_recipe,
    floor_recipe,
    i_exp,
    i_sqrt,
    leaky_relu_recipe,
    run_recipe,
    silu_recipe,
    square_recipe,
    v_add,
    v_div,
    v_lshift,
    v_mul,
    v_rshift,
    v_sub,
)

INT32_MIN = -(1 << 31)


def _saturate(x: np.ndarray, bits: int) -> np.ndarray:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return np.clip(x, lo, hi)


class ReferenceExecutor:
    """Executes a graph on integer tensors with the compiler's semantics."""

    def __init__(self, graph: Graph, frac_bits: int = FRAC_BITS):
        self.graph = graph
        self.frac_bits = frac_bits

    def run(self, bindings: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """``bindings`` must cover graph inputs and all parameters."""
        values: Dict[str, np.ndarray] = {
            name: np.asarray(v, dtype=np.int64) for name, v in bindings.items()
        }
        for node in self.graph.topological_order():
            out = self._execute(node, values)
            values[node.outputs[0]] = out
        return values

    # -- dispatch -------------------------------------------------------------
    def _execute(self, node: Node, values: Dict[str, np.ndarray]) -> np.ndarray:
        op = node.op_type
        get = lambda name: values[name]
        x = get(node.inputs[0]) if node.inputs else None
        handler = getattr(self, f"_op_{op.lower()}", None)
        if handler is not None:
            return handler(node, values)
        if op in UNARY_RECIPES:
            return run_recipe(UNARY_RECIPES[op](self.frac_bits), x)
        raise NotImplementedError(f"reference semantics missing for {op}")

    # -- GEMM class -------------------------------------------------------------
    def _op_conv(self, node, values):
        x = values[node.inputs[0]]
        w = values[node.params[0]]
        out = SystolicArray.conv2d(x, w, stride=node.attrs["strides"][0],
                                   pad=node.attrs["pads"][0])
        if len(node.params) > 1:
            out = out + values[node.params[1]].reshape(1, -1, 1, 1)
        return w32(out)  # INT32 accumulators (Table 3)

    def _op_gemm(self, node, values):
        x = values[node.inputs[0]]
        w = values[node.params[0]]
        out = x.astype(np.int64) @ w.astype(np.int64)
        if len(node.params) > 1:
            out = out + values[node.params[1]]
        return w32(out)

    def _op_matmul(self, node, values):
        a = values[node.inputs[0]]
        if len(node.inputs) > 1:
            b = values[node.inputs[1]]
        else:
            b = values[node.params[0]]
        return w32(a.astype(np.int64) @ b.astype(np.int64))

    # -- element-wise math ---------------------------------------------------------
    def _two_operands(self, node, values):
        names = list(node.inputs) + list(node.params)
        return values[names[0]], values[names[1]]

    def _op_add(self, node, values):
        a, b = self._two_operands(node, values)
        return w32(a + b)  # the ALU write-back path is 32 bits wide

    def _op_sub(self, node, values):
        a, b = self._two_operands(node, values)
        return w32(a - b)

    def _op_mul(self, node, values):
        a, b = self._two_operands(node, values)
        return w32(a * b)

    def _op_div(self, node, values):
        a, b = self._two_operands(node, values)
        return v_div(a, b)

    def _op_min(self, node, values):
        a, b = self._two_operands(node, values)
        return np.minimum(a, b)

    def _op_max(self, node, values):
        a, b = self._two_operands(node, values)
        return np.maximum(a, b)

    def _op_bitshift(self, node, values):
        a, b = self._two_operands(node, values)
        return v_rshift(a, b)

    def _op_greater(self, node, values):
        a, b = self._two_operands(node, values)
        return (a > b).astype(np.int64)

    def _op_equal(self, node, values):
        a, b = self._two_operands(node, values)
        return (a == b).astype(np.int64)

    def _op_less(self, node, values):
        a, b = self._two_operands(node, values)
        return (a < b).astype(np.int64)

    def _op_where(self, node, values):
        names = list(node.inputs) + list(node.params)
        cond, a, b = (values[n] for n in names[:3])
        return np.where(cond != 0, a, b).astype(np.int64)

    def _op_pow(self, node, values):
        x = values[node.inputs[0]]
        return run_recipe(square_recipe(self.frac_bits), x)

    def _op_abs(self, node, values):
        return np.abs(values[node.inputs[0]])

    def _op_sign(self, node, values):
        return np.sign(values[node.inputs[0]]).astype(np.int64)

    def _op_floor(self, node, values):
        return run_recipe(floor_recipe(self.frac_bits), values[node.inputs[0]])

    def _op_ceil(self, node, values):
        return run_recipe(ceil_recipe(self.frac_bits), values[node.inputs[0]])

    # -- activations --------------------------------------------------------------
    def _op_relu(self, node, values):
        return np.maximum(values[node.inputs[0]], 0)

    def _op_leakyrelu(self, node, values):
        steps = leaky_relu_recipe(node.attr("alpha", 0.01), self.frac_bits)
        return run_recipe(steps, values[node.inputs[0]])

    def _op_clip(self, node, values):
        one = 1 << self.frac_bits
        lo = int(round(node.attr("min", 0.0) * one))
        hi = int(round(node.attr("max", 6.0) * one))
        return run_recipe(clip_recipe(lo, hi), values[node.inputs[0]])

    # -- reductions ---------------------------------------------------------------
    def _op_softmax(self, node, values):
        from .integer_ops import v_sub
        x = values[node.inputs[0]]
        m = x.max(axis=-1, keepdims=True)
        # The row-max subtraction goes through the 32-bit ALU datapath,
        # so it wraps exactly like the machine (visible only on
        # saturated inputs, e.g. after a divide-by-zero upstream).
        e = i_exp(v_sub(x, m), self.frac_bits)
        s = e.sum(axis=-1, keepdims=True)
        return v_div(v_lshift(e, self.frac_bits), s)

    def _op_swiglu(self, node, values):
        gate, up = self._two_operands(node, values)
        s = run_recipe(silu_recipe(self.frac_bits), gate)
        return v_rshift(v_mul(s, up), self.frac_bits)

    def _op_rope(self, node, values):
        x = values[node.inputs[0]]
        cos = values[node.params[0]]
        sin = values[node.params[1]]
        xe, xo = x[..., 0::2], x[..., 1::2]
        oe = v_rshift(v_sub(v_mul(xe, cos), v_mul(xo, sin)), self.frac_bits)
        oo = v_rshift(v_add(v_mul(xe, sin), v_mul(xo, cos)), self.frac_bits)
        out = np.empty_like(x)
        out[..., 0::2] = oe
        out[..., 1::2] = oo
        return out

    def _op_rmsnorm(self, node, values):
        x = values[node.inputs[0]]
        gamma = values[node.params[0]]
        # Per-element >> f before accumulation, exactly like the nest
        # (keeps the running sum in 32 bits for wide hidden dims).
        sq = v_rshift(v_mul(x, x), self.frac_bits)
        total = w32(sq.sum(axis=-1, keepdims=True))
        mean = v_add(v_div(total, x.shape[-1]), 1)
        rms = i_sqrt(mean, self.frac_bits)
        t = v_div(v_lshift(x, self.frac_bits), rms)
        return v_rshift(v_mul(t, gamma), self.frac_bits)

    def _op_causalsoftmax(self, node, values):
        x = values[node.inputs[0]]
        offset = node.attr("offset", 0)
        mask = -(1 << (self.frac_bits + CAUSAL_MASK_SHIFT))
        q_len, cols = x.shape[-2], x.shape[-1]
        invisible = (np.arange(cols)[None, :]
                     > np.arange(q_len)[:, None] + offset)
        x = np.where(invisible, mask, x)
        m = x.max(axis=-1, keepdims=True)
        e = i_exp(v_sub(x, m), self.frac_bits)
        s = e.sum(axis=-1, keepdims=True)
        return v_div(v_lshift(e, self.frac_bits), s)

    def _op_reducemean(self, node, values):
        x = values[node.inputs[0]]
        total = x.sum(axis=-1, keepdims=node.attr("keepdims", True))
        return v_div(total, x.shape[-1])

    def _op_globalaveragepool(self, node, values):
        x = values[node.inputs[0]]
        total = x.sum(axis=(2, 3), keepdims=True)
        return v_div(total, x.shape[2] * x.shape[3])

    def _pool_views(self, node, x, pad_value):
        kh, kw = node.attrs["kernel_shape"]
        stride = node.attrs["strides"][0]
        pad = node.attrs["pads"][0]
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                    constant_values=pad_value)
        n, c, hp, wp = xp.shape
        oh = (hp - kh) // stride + 1
        ow = (wp - kw) // stride + 1
        return xp, kh, kw, stride, oh, ow

    def _op_maxpool(self, node, values):
        x = values[node.inputs[0]]
        xp, kh, kw, stride, oh, ow = self._pool_views(node, x, INT32_MIN)
        out = np.full((x.shape[0], x.shape[1], oh, ow), INT32_MIN, dtype=np.int64)
        for i in range(kh):
            for j in range(kw):
                window = xp[:, :, i:i + stride * oh:stride,
                            j:j + stride * ow:stride]
                out = np.maximum(out, window)
        return out

    def _op_averagepool(self, node, values):
        x = values[node.inputs[0]]
        xp, kh, kw, stride, oh, ow = self._pool_views(node, x, 0)
        out = np.zeros((x.shape[0], x.shape[1], oh, ow), dtype=np.int64)
        for i in range(kh):
            for j in range(kw):
                out += xp[:, :, i:i + stride * oh:stride,
                          j:j + stride * ow:stride]
        return v_div(out, kh * kw)

    def _op_depthwiseconv(self, node, values):
        x = values[node.inputs[0]]
        w = values[node.params[0]]  # (C, 1, kh, kw)
        xp, kh, kw, stride, oh, ow = self._pool_views(node, x, 0)
        out = np.zeros((x.shape[0], x.shape[1], oh, ow), dtype=np.int64)
        for i in range(kh):
            for j in range(kw):
                window = xp[:, :, i:i + stride * oh:stride,
                            j:j + stride * ow:stride]
                out += window * w[:, 0, i, j].reshape(1, -1, 1, 1)
        return out

    # -- layout ----------------------------------------------------------------------
    def _op_transpose(self, node, values):
        return values[node.inputs[0]].transpose(node.attrs["perm"])

    def _op_reshape(self, node, values):
        return values[node.inputs[0]].reshape(self.graph.out_spec(node).shape)

    def _op_flatten(self, node, values):
        return values[node.inputs[0]].reshape(self.graph.out_spec(node).shape)

    def _op_split(self, node, values):
        return values[node.inputs[0]].reshape(self.graph.out_spec(node).shape)

    def _op_concat(self, node, values):
        parts = [values[name] for name in node.inputs]
        return np.concatenate(parts, axis=node.attr("axis", 1))

    def _op_cacheappend(self, node, values):
        cache = values[node.inputs[0]]
        new = values[node.inputs[1]]
        axis = node.attr("axis", 0) % cache.ndim
        offset = node.attr("offset", 0)
        perm = node.attrs.get("perm")
        if perm:
            new = new.transpose(perm)
        out = np.array(cache, dtype=np.int64)
        index = tuple(
            slice(offset, offset + new.shape[d]) if d == axis else slice(None)
            for d in range(cache.ndim))
        out[index] = new
        return out

    def _op_resize(self, node, values):
        x = values[node.inputs[0]]
        scale = node.attr("scale", 2)
        return x.repeat(scale, axis=2).repeat(scale, axis=3)

    def _op_slice(self, node, values):
        x = values[node.inputs[0]]
        out_shape = self.graph.out_spec(node).shape
        axis = node.attr("axis", 0) % x.ndim
        start = node.attr("start", 0)
        index = tuple(
            slice(start, start + out_shape[d]) if d == axis else slice(None)
            for d in range(x.ndim))
        return x[index]

    def _op_gather(self, node, values):
        ids = values[node.inputs[0]].reshape(-1)
        table = values[node.params[0]]
        out_shape = self.graph.out_spec(node).shape
        return table[ids].reshape(out_shape)

    # -- type conversion ------------------------------------------------------------
    def _op_cast(self, node, values):
        x = values[node.inputs[0]]
        shift = node.attr("shift", 0)
        if shift:
            x = v_rshift(x, shift)
        bits = {"int8": 8, "fxp8": 8, "int16": 16, "fxp16": 16,
                "fxp4": 4}.get(self.graph.out_spec(node).dtype, 32)
        return _saturate(x, bits)
