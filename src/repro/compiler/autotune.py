"""Per-model search over the compiler pass pipeline.

The fixed compile flow is one point in the knob space
:data:`repro.compiler.pipeline.KNOB_SPACE`; this module searches that
space per (model, architecture) pair and returns the cheapest
verifier-clean pipeline, scored by the existing analytic cycle model.

Search mechanics:

* **exhaustive** when the evaluation budget covers the whole space,
  **greedy coordinate descent** otherwise — one knob at a time, in an
  order drawn from :func:`repro.runtime.seed.seeded_rng`, repeated until
  a pass changes nothing or the budget runs out.
* every candidate compiles through the normal content-addressed cache
  (:mod:`repro.runtime.cache`) with the pipeline-extended compile key,
  and the finished report itself is cached (kind ``"autotune"``), so a
  warm re-search costs one cache read.
* candidate batches are fully determined before they are dispatched
  through :func:`repro.runtime.parallel.parallel_map` and reduced by
  ``(cycles, submission index)``, so ``--jobs N`` results are
  byte-identical to serial runs.
* every candidate is compiled with the static verifier on; a dirty
  program is recorded as ``verify-rejected`` and can never win.

Telemetry (``compiler.autotune.*`` counters and an ``autotune`` span) is
accounted in the calling process from the workers' returned statuses,
which keeps traces identical between serial and parallel searches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..graph import Graph
from .integer_ops import FRAC_BITS
from .ir import CompileError
from .pipeline import (KNOB_SPACE, PIPELINE_VERSION, PipelineConfig,
                       all_configs, knob_space_size)

#: Schema tag stamped into every report (validated by the CI smoke job).
REPORT_SCHEMA = "repro-autotune-report-v1"

#: Default candidate budget when ``REPRO_AUTOTUNE_BUDGET`` is unset.
DEFAULT_BUDGET = 16


def autotune_enabled() -> bool:
    """Whether ``REPRO_AUTOTUNE`` opts harness/serving compiles in."""
    return os.environ.get("REPRO_AUTOTUNE", "0").lower() in (
        "1", "on", "true", "yes")


def autotune_budget() -> int:
    """Candidate budget from ``REPRO_AUTOTUNE_BUDGET`` (default 16)."""
    value = os.environ.get("REPRO_AUTOTUNE_BUDGET", "")
    try:
        return max(1, int(value))
    except ValueError:
        return DEFAULT_BUDGET


@dataclass
class AutotuneReport:
    """Outcome of one pipeline search for one (model, architecture).

    ``candidates`` preserves submission order; ``counters`` holds the
    search-wide tallies (``candidates``, ``verifier_rejects``,
    ``cache_hits``) that :mod:`tests.test_telemetry` cross-checks
    against the ``compiler.autotune.*`` trace counters. ``cached`` marks
    a report served from the runtime cache (not part of the serialized
    form, so warm and cold reports stay byte-identical).
    """

    model: str
    budget: int
    strategy: str
    space_size: int
    seed: int
    baseline_cycles: float
    best_config: Dict
    best_label: str
    best_cycles: float
    improvement: float
    candidates: List[Dict] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    cached: bool = False

    def best_pipeline(self) -> PipelineConfig:
        """The winning config, ready for ``compile_model(pipeline=...)``."""
        return PipelineConfig.from_dict(self.best_config)

    def as_dict(self) -> Dict:
        """JSON-ready report (the ``repro autotune --json`` payload)."""
        return {
            "schema": REPORT_SCHEMA,
            "model": self.model,
            "budget": self.budget,
            "strategy": self.strategy,
            "space_size": self.space_size,
            "seed": self.seed,
            "baseline_cycles": self.baseline_cycles,
            "best": {
                "config": self.best_config,
                "label": self.best_label,
                "cycles": self.best_cycles,
            },
            "improvement": self.improvement,
            "candidates": self.candidates,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AutotuneReport":
        """Rehydrate a report from its :meth:`as_dict` payload."""
        best = data["best"]
        return cls(model=data["model"], budget=data["budget"],
                   strategy=data["strategy"], space_size=data["space_size"],
                   seed=data["seed"],
                   baseline_cycles=data["baseline_cycles"],
                   best_config=best["config"], best_label=best["label"],
                   best_cycles=best["cycles"],
                   improvement=data["improvement"],
                   candidates=list(data["candidates"]),
                   counters=dict(data["counters"]))


def _score_candidate(work: Tuple) -> Dict:
    """Compile, verify and cycle-score one config (worker-process safe).

    ``work`` is ``(graph, npu_config, frac_bits, special_functions,
    config_dict)``; the return value is a small picklable status dict the
    parent folds into the report and the telemetry counters.
    """
    graph, npu_config, frac_bits, special_functions, config_dict = work
    from ..analysis.verifier import VerificationError
    from ..npu import NPUTandem
    from ..runtime.cache import get_cache
    from .compiler import _compile_key, compile_model

    config = PipelineConfig.from_dict(config_dict)
    key = _compile_key(graph, npu_config.sim, npu_config.gemm, frac_bits,
                       special_functions,
                       None if config.is_default else config)
    cache_hit = get_cache().has("compiled", key)
    try:
        model = compile_model(graph, npu_config.sim, npu_config.gemm,
                              frac_bits, special_functions, verify=True,
                              pipeline=config)
    except VerificationError as err:
        return {"status": "verify-rejected", "cycles": None,
                "error": str(err)[:300], "cache_hit": cache_hit}
    except CompileError as err:
        return {"status": "compile-error", "cycles": None,
                "error": str(err)[:300], "cache_hit": cache_hit}
    result = NPUTandem(npu_config,
                       special_functions=special_functions).evaluate(model)
    cycles = result.total_seconds * npu_config.frequency_hz
    return {"status": "ok", "cycles": cycles, "error": None,
            "cache_hit": cache_hit}


def _report_key(graph: Graph, npu_config, frac_bits: int,
                special_functions: bool, budget: int) -> str:
    """Content address of a finished report (kind ``"autotune"``)."""
    from ..runtime.cache import (fingerprint, graph_fingerprint,
                                 object_fingerprint)
    from ..runtime.seed import repro_seed
    return fingerprint("autotune-report", PIPELINE_VERSION, REPORT_SCHEMA,
                       graph_fingerprint(graph),
                       object_fingerprint(npu_config), frac_bits,
                       special_functions, budget, repro_seed(),
                       {k: list(v) for k, v in KNOB_SPACE.items()})


def autotune_model(graph: Graph, npu_config=None, budget: Optional[int] = None,
                   jobs: int = 1, frac_bits: int = FRAC_BITS,
                   special_functions: bool = False) -> AutotuneReport:
    """Search the pipeline knob space for ``graph`` on ``npu_config``.

    ``budget`` caps candidate evaluations (default
    :func:`autotune_budget`); the whole space is enumerated when it
    fits, else greedy coordinate descent explores one knob per batch.
    ``jobs > 1`` fans candidate compiles across worker processes without
    changing any result byte. Returns the (possibly cached)
    :class:`AutotuneReport`; the winner is always verifier-clean and
    never worse than the default pipeline.
    """
    from ..npu import table3_config
    from ..runtime.cache import get_cache
    from ..runtime.parallel import parallel_map
    from ..runtime.seed import repro_seed, seeded_rng
    from ..telemetry import get_telemetry

    npu_config = npu_config or table3_config()
    budget = budget if budget is not None else autotune_budget()
    tel = get_telemetry()
    cache = get_cache()
    key = None
    with tel.span("autotune", cat="compiler", model=graph.name):
        tel_on = tel.enabled
        if tel_on:
            tel.count("compiler.autotune.searches")
        if cache.enabled:
            key = _report_key(graph, npu_config, frac_bits,
                              special_functions, budget)
            hit = cache.get("autotune", key)
            if hit is not None:
                if tel_on:
                    tel.count("compiler.autotune.report_hits")
                report = AutotuneReport.from_dict(hit)
                report.cached = True
                return report

        default = PipelineConfig()
        scores: Dict[PipelineConfig, Dict] = {}
        order: List[PipelineConfig] = []
        counters = {"candidates": 0, "verifier_rejects": 0, "cache_hits": 0}

        def evaluate(batch: List[PipelineConfig]) -> None:
            """Score a deduplicated batch; fold statuses into counters."""
            batch = [c for c in batch if c not in scores][:max(
                0, budget - counters["candidates"])]
            if not batch:
                return
            work = [(graph, npu_config, frac_bits, special_functions,
                     c.as_dict()) for c in batch]
            with tel.span("autotune.batch", cat="compiler",
                          model=graph.name, size=len(batch)):
                results = parallel_map(_score_candidate, work, jobs=jobs)
            for config, status in zip(batch, results):
                scores[config] = status
                order.append(config)
                counters["candidates"] += 1
                counters["cache_hits"] += int(status["cache_hit"])
                counters["verifier_rejects"] += int(
                    status["status"] == "verify-rejected")
            if tel_on:
                tel.count("compiler.autotune.candidates", len(batch))

        space = all_configs()
        if budget >= len(space):
            strategy = "exhaustive"
            evaluate([default] + [c for c in space if c != default])
        else:
            strategy = "greedy"
            evaluate([default])
            knobs = list(KNOB_SPACE)
            seeded_rng("autotune", graph.name, budget).shuffle(knobs)
            best = default
            improved = True
            while improved and counters["candidates"] < budget:
                improved = False
                for knob in knobs:
                    evaluate([replace(best, **{knob: value})
                              for value in KNOB_SPACE[knob]
                              if value != getattr(best, knob)])
                    new_best = _best_config(order, scores)
                    if new_best is not None and new_best != best:
                        best, improved = new_best, True

        if tel_on and counters["verifier_rejects"]:
            tel.count("compiler.autotune.verifier_rejects",
                      counters["verifier_rejects"])
        if tel_on and counters["cache_hits"]:
            tel.count("compiler.autotune.cache_hits",
                      counters["cache_hits"])

        baseline = scores.get(default)
        if baseline is None or baseline["status"] != "ok":
            raise CompileError(
                f"default pipeline failed for {graph.name}: "
                f"{(baseline or {}).get('error')}")
        winner = _best_config(order, scores) or default
        best_cycles = scores[winner]["cycles"]
        report = AutotuneReport(
            model=graph.name, budget=budget, strategy=strategy,
            space_size=knob_space_size(), seed=repro_seed(),
            baseline_cycles=baseline["cycles"],
            best_config=winner.as_dict(), best_label=winner.label(),
            best_cycles=best_cycles,
            improvement=1.0 - best_cycles / baseline["cycles"],
            candidates=[{"config": c.as_dict(), "label": c.label(),
                         **scores[c]} for c in order],
            counters=counters)
        if key is not None:
            cache.put("autotune", key, report.as_dict())
        return report


def _best_config(order: List[PipelineConfig],
                 scores: Dict[PipelineConfig, Dict]
                 ) -> Optional[PipelineConfig]:
    """Cheapest ``ok`` config so far; submission order breaks ties."""
    best = None
    best_cycles = None
    for config in order:
        status = scores[config]
        if status["status"] != "ok":
            continue
        if best_cycles is None or status["cycles"] < best_cycles:
            best, best_cycles = config, status["cycles"]
    return best
