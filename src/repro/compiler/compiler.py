"""Top-level compilation (Figure 13).

``compile_model`` turns a graph into a list of :class:`CompiledBlock`:
per block, the tile count, one tile's lowered Tandem program (+ analytic
metadata), and the GEMM layer's cost dimensions. The NPU executor
(:mod:`repro.npu`) consumes this to produce end-to-end time/energy; the
functional runner replays the same programs on real data.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional

from ..gemm import GemmCost, SystolicArray, SystolicParams, gemm_dims
from ..graph import DTYPE_BYTES, Graph, Node
from ..isa import Namespace
from ..simulator.params import SimParams
from .fusion import Block, external_outputs, form_blocks, split_block
from .integer_ops import FRAC_BITS
from .ir import CompileError, Resident, TileContext
from .lowering import LoweredTile, lower_tile
from .pipeline import PIPELINE_VERSION, PassPipeline, PipelineConfig, \
    PipelineState
from .templates import emit_op
from .tiling import search_tiles


@dataclass
class CompiledBlock:
    """One execution block, ready for the execution controller."""

    block: Block
    tiles: int
    tile: Optional[LoweredTile]          # None for GEMM-only blocks
    gemm_cost: Optional[GemmCost]        # full-layer cost (all tiles)
    stores: List[str] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.block.kind

    @property
    def name(self) -> str:
        return self.block.name


@dataclass
class CompiledModel:
    graph: Graph
    blocks: List[CompiledBlock]
    sim_params: SimParams
    gemm_params: SystolicParams

    @property
    def name(self) -> str:
        return self.graph.name

    def total_instructions(self) -> int:
        return sum(len(b.tile.program) for b in self.blocks if b.tile is not None)


def _gemm_layer_cost(node: Node, graph: Graph,
                     array: SystolicArray) -> GemmCost:
    out = graph.out_spec(node)
    in_spec = graph.tensor(node.inputs[0])
    m, n, k = gemm_dims(node, out, in_spec)
    input_bytes = sum(graph.tensor(t).nbytes for t in node.inputs)
    weight_bytes = sum(graph.tensor(t).nbytes for t in node.params)
    return array.layer_cost(m, n, k, input_bytes, weight_bytes, out.nbytes)


def _compile_block_tile(block: Block, graph: Graph, params: SimParams,
                        tiles: int, frac_bits: int,
                        special_functions: bool = False,
                        pipeline: Optional[PassPipeline] = None,
                        pass_log: Optional[Dict[str, int]] = None) -> LoweredTile:
    ctx = TileContext(params.tandem, frac_bits, strict=(tiles == 1),
                      special_functions=special_functions)
    if block.gemm is not None:
        out_name = block.gemm.outputs[0]
        out_elems = graph.tensor(out_name).numel
        tile_elems = max(1, ceil(out_elems / tiles))
        if tile_elems > params.tandem.obuf_words:
            raise CompileError(
                f"GEMM tile of {tile_elems} words exceeds the Output BUF")
        ctx.set_resident(out_name, Resident(Namespace.OBUF, 0,
                                            (tile_elems,), (0,)))
    op_ranges = []
    for op in block.ops:
        start = len(ctx.events)
        emit_op(ctx, op, graph, tiles)
        op_ranges.append((op.op_type, start, len(ctx.events)))
    for name in external_outputs(block, graph):
        if ctx.resident(name) is not None:
            dtype = graph.tensor(name).dtype
            ctx.store(name, element_bytes=DTYPE_BYTES[dtype])
        elif pipeline is not None and name in ctx.dram_alias:
            # A pure DRAM rename (reshape of off-chip data) escaping the
            # block: consumers compiled into later blocks load ``name``
            # itself, so the rename must be materialized with a real
            # DAE round-trip. The seed's maximal fusion never splits a
            # rename from its consumer, so this only arises (and only
            # costs) under a pipeline that caps fusion depth.
            spec = graph.tensor(name)
            ctx.source(name, spec.shape,
                       element_bytes=DTYPE_BYTES[spec.dtype])
            ctx.store(name, element_bytes=DTYPE_BYTES[spec.dtype])
        # Other non-resident outputs (e.g. DAE-forwarded Concat) are
        # already off-chip under their own name.
    if pipeline is not None and (pipeline.config.fission
                                 or pipeline.config.interchange):
        state = PipelineState(config=pipeline.config, ctx=ctx,
                              op_ranges=op_ranges)
        pipeline.run_nests(state)
        op_ranges = state.op_ranges
        if pass_log is not None:
            for stage, applied in state.log:
                pass_log[stage] = pass_log.get(stage, 0) + applied
    return lower_tile(ctx, f"{block.name}_tile",
                      reads_obuf=block.gemm is not None,
                      op_ranges=op_ranges)


def _compile_key(graph: Graph, sim_params: SimParams,
                 gemm_params: SystolicParams, frac_bits: int,
                 special_functions: bool,
                 pipeline: Optional[PipelineConfig] = None) -> str:
    """Content address of the compiled artifact.

    Lowering and tiling read only ``sim_params.tandem`` (scratchpad
    capacities, lanes, iterator-table sizes); DRAM, energy and overlay
    parameters shape evaluation, not the artifact, so they stay out of
    the key and a cache hit is rebound to the requested ``sim_params``.

    A default (or absent) pass pipeline contributes nothing to the key,
    so artifacts compiled before pipelines existed keep hitting;
    non-default pipelines extend the fingerprint with their knob dict.
    """
    from ..runtime.cache import fingerprint, graph_fingerprint
    from .serialize import FORMAT_VERSION
    if pipeline is not None and not pipeline.is_default:
        return fingerprint("compiled-model", FORMAT_VERSION,
                           graph_fingerprint(graph), sim_params.tandem,
                           gemm_params, frac_bits, special_functions,
                           PIPELINE_VERSION, pipeline.as_dict())
    return fingerprint("compiled-model", FORMAT_VERSION,
                       graph_fingerprint(graph), sim_params.tandem,
                       gemm_params, frac_bits, special_functions)


def _verify_default() -> bool:
    return os.environ.get("REPRO_VERIFY", "1").lower() not in (
        "0", "off", "false", "no")


def compile_model(graph: Graph, sim_params: Optional[SimParams] = None,
                  gemm_params: Optional[SystolicParams] = None,
                  frac_bits: int = FRAC_BITS,
                  special_functions: bool = False,
                  verify: Optional[bool] = None,
                  pipeline: Optional[PipelineConfig] = None) -> CompiledModel:
    """Compile a graph for the NPU-Tandem (Table 3 defaults).

    Compilation is content-cached (see :mod:`repro.runtime.cache`): a
    structurally identical (graph, Tandem core, GEMM array, options)
    request returns the cached artifact, rebound to the requested
    ``graph`` object and full ``sim_params``.

    Every freshly compiled model is statically verified
    (:mod:`repro.analysis.verifier`) before it is published to the
    cache; a program with error-severity findings raises
    :class:`~repro.analysis.verifier.VerificationError`. The
    verification record is cached under the same content key (kind
    ``"verified"``), so warm cache hits skip re-verification entirely.
    ``verify=None`` follows the ``REPRO_VERIFY`` environment variable
    (default on); pass ``verify=False`` to bypass explicitly.

    ``pipeline`` selects a non-default pass pipeline
    (:class:`~repro.compiler.pipeline.PipelineConfig`), typically one
    chosen by :func:`repro.compiler.autotune.autotune_model`. Omitted or
    default, the output is bit-identical to the fixed seed flow.
    """
    from ..runtime.cache import get_cache
    from ..telemetry import get_telemetry
    from .serialize import dump_model, load_model

    sim_params = sim_params or SimParams()
    gemm_params = gemm_params or SystolicParams()
    if pipeline is not None and pipeline.is_default:
        pipeline = None
    if verify is None:
        verify = _verify_default()
    tel = get_telemetry()
    with tel.span("compile", cat="compiler", model=graph.name):
        cache = get_cache()
        key = None
        if cache.enabled:
            key = _compile_key(graph, sim_params, gemm_params, frac_bits,
                               special_functions, pipeline)
            hit = cache.get(
                "compiled", key,
                decode=lambda text: load_model(text, graph, sim_params,
                                               gemm_params))
            if hit is not None:
                # Blocks are shared, read-only artifacts; the wrapper binds
                # this caller's graph object and evaluation parameters.
                return CompiledModel(graph=graph, blocks=hit.blocks,
                                     sim_params=sim_params,
                                     gemm_params=gemm_params)
        with tel.span("lower", cat="compiler", model=graph.name):
            model = _compile_model_uncached(graph, sim_params, gemm_params,
                                            frac_bits, special_functions,
                                            pipeline)
        if verify:
            # Imported lazily: repro.analysis pulls in the DSE/NPU stack.
            from ..analysis.verifier import VerificationError, verify_model
            with tel.span("verify", cat="compiler", model=graph.name):
                report = verify_model(model)
            if key is not None:
                # The record is cached even when dirty so serving admission
                # control can distinguish "failed verification" from
                # "never verified".
                cache.put("verified", key, report.record())
            if not report.clean:
                raise VerificationError(report)
        if key is not None:
            cache.put("compiled", key, model, encode=dump_model)
        return model


def verify_record_for(graph: Graph, sim_params: Optional[SimParams] = None,
                      gemm_params: Optional[SystolicParams] = None,
                      frac_bits: int = FRAC_BITS,
                      special_functions: bool = False) -> Dict:
    """The cached verification record for a model, computing it if absent.

    Returns the compact dict produced by
    :meth:`~repro.analysis.verifier.ModelVerifyReport.record`; its
    ``"clean"`` field is what serving admission control gates on. A
    missing record is recomputed (compiling the model if necessary) and
    published under the model's compile key.
    """
    from ..runtime.cache import get_cache

    sim_params = sim_params or SimParams()
    gemm_params = gemm_params or SystolicParams()
    cache = get_cache()
    key = None
    if cache.enabled:
        key = _compile_key(graph, sim_params, gemm_params, frac_bits,
                           special_functions)
        record = cache.get("verified", key)
        if record is not None:
            return record
    from ..analysis.verifier import verify_model
    model = compile_model(graph, sim_params, gemm_params, frac_bits,
                          special_functions, verify=False)
    record = verify_model(model).record()
    if key is not None:
        cache.put("verified", key, record)
    return record


def explain_compile(graph: Graph, sim_params: Optional[SimParams] = None,
                    gemm_params: Optional[SystolicParams] = None,
                    frac_bits: int = FRAC_BITS,
                    special_functions: bool = False,
                    pipeline: Optional[PipelineConfig] = None):
    """Compile uncached and narrate the pass pipeline's decisions.

    Returns ``(model, lines)`` where ``lines`` is the human-readable
    account behind ``repro compile --explain``: the pipeline config,
    each stage's description, how many times each pass actually applied,
    and the resulting block/tile/instruction shape. Always runs the real
    (uncached) flow so the log reflects this compile, not a cache hit.
    """
    sim_params = sim_params or SimParams()
    gemm_params = gemm_params or SystolicParams()
    config = pipeline or PipelineConfig()
    pass_log: Dict[str, int] = {}
    model = _compile_model_uncached(
        graph, sim_params, gemm_params, frac_bits, special_functions,
        None if config.is_default else config, pass_log)
    lines = [f"pipeline: {config.label()}"]
    lines.extend("  " + line for line in config.describe())
    lines.append("applied:")
    for stage in ("fuse_blocks", "loop_fission", "loop_interchange"):
        lines.append(f"  {stage}: {pass_log.get(stage, 0)}")
    tiles = sum(b.tiles for b in model.blocks)
    lines.append(f"result: {len(model.blocks)} blocks, {tiles} tiles, "
                 f"{model.total_instructions()} instructions")
    return model, lines


def _compile_model_uncached(graph: Graph, sim_params: SimParams,
                            gemm_params: SystolicParams, frac_bits: int,
                            special_functions: bool,
                            pipeline: Optional[PipelineConfig] = None,
                            pass_log: Optional[Dict[str, int]] = None
                            ) -> CompiledModel:
    array = SystolicArray(gemm_params)
    passes = PassPipeline(pipeline) if pipeline is not None else None
    strategy = pipeline.tile_search if pipeline is not None else "pow2"

    compiled: List[CompiledBlock] = []
    pending = form_blocks(graph)
    if passes is not None:
        state = PipelineState(config=pipeline, blocks=pending)
        pending = passes.run_blocks(state)
        if pass_log is not None:
            for stage, applied in state.log:
                pass_log[stage] = pass_log.get(stage, 0) + applied
    while pending:
        block = pending.pop(0)
        gemm_cost = (None if block.gemm is None
                     else _gemm_layer_cost(block.gemm, graph, array))
        if not block.ops:
            compiled.append(CompiledBlock(block=block, tiles=1, tile=None,
                                          gemm_cost=gemm_cost))
            continue
        # Per-attempt pass logs: only the chosen tile count's log counts
        # toward the model-level summary.
        attempt_logs: Dict[int, Dict[str, int]] = {}

        def try_compile(t, block=block, attempt_logs=attempt_logs):
            """Compile one tile-count candidate, capturing its pass log."""
            tile_log: Dict[str, int] = {}
            tile = _compile_block_tile(block, graph, sim_params, t,
                                       frac_bits, special_functions,
                                       pipeline=passes, pass_log=tile_log)
            attempt_logs[t] = tile_log
            return tile

        try:
            tiles, tile = search_tiles(block, graph, sim_params.tandem,
                                       try_compile, strategy=strategy)
        except CompileError as err:
            if "IMM BUF" in str(err) and len(block.ops) > 1:
                # Too many distinct constants for one bundle: split it.
                pending = split_block(block) + pending
                continue
            raise
        if pass_log is not None:
            for stage, applied in attempt_logs.get(tiles, {}).items():
                pass_log[stage] = pass_log.get(stage, 0) + applied
        compiled.append(CompiledBlock(
            block=block, tiles=tiles, tile=tile, gemm_cost=gemm_cost,
            stores=external_outputs(block, graph)))
    return CompiledModel(graph=graph, blocks=compiled,
                         sim_params=sim_params, gemm_params=gemm_params)
