"""Top-level compilation (Figure 13).

``compile_model`` turns a graph into a list of :class:`CompiledBlock`:
per block, the tile count, one tile's lowered Tandem program (+ analytic
metadata), and the GEMM layer's cost dimensions. The NPU executor
(:mod:`repro.npu`) consumes this to produce end-to-end time/energy; the
functional runner replays the same programs on real data.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional

from ..gemm import GemmCost, SystolicArray, SystolicParams, gemm_dims
from ..graph import DTYPE_BYTES, Graph, Node
from ..isa import Namespace
from ..simulator.params import SimParams
from .fusion import Block, external_outputs, form_blocks, split_block
from .integer_ops import FRAC_BITS
from .ir import CompileError, Resident, TileContext
from .lowering import LoweredTile, lower_tile
from .templates import emit_op
from .tiling import search_tiles


@dataclass
class CompiledBlock:
    """One execution block, ready for the execution controller."""

    block: Block
    tiles: int
    tile: Optional[LoweredTile]          # None for GEMM-only blocks
    gemm_cost: Optional[GemmCost]        # full-layer cost (all tiles)
    stores: List[str] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.block.kind

    @property
    def name(self) -> str:
        return self.block.name


@dataclass
class CompiledModel:
    graph: Graph
    blocks: List[CompiledBlock]
    sim_params: SimParams
    gemm_params: SystolicParams

    @property
    def name(self) -> str:
        return self.graph.name

    def total_instructions(self) -> int:
        return sum(len(b.tile.program) for b in self.blocks if b.tile is not None)


def _gemm_layer_cost(node: Node, graph: Graph,
                     array: SystolicArray) -> GemmCost:
    out = graph.out_spec(node)
    in_spec = graph.tensor(node.inputs[0])
    m, n, k = gemm_dims(node, out, in_spec)
    input_bytes = sum(graph.tensor(t).nbytes for t in node.inputs)
    weight_bytes = sum(graph.tensor(t).nbytes for t in node.params)
    return array.layer_cost(m, n, k, input_bytes, weight_bytes, out.nbytes)


def _compile_block_tile(block: Block, graph: Graph, params: SimParams,
                        tiles: int, frac_bits: int,
                        special_functions: bool = False) -> LoweredTile:
    ctx = TileContext(params.tandem, frac_bits, strict=(tiles == 1),
                      special_functions=special_functions)
    if block.gemm is not None:
        out_name = block.gemm.outputs[0]
        out_elems = graph.tensor(out_name).numel
        tile_elems = max(1, ceil(out_elems / tiles))
        if tile_elems > params.tandem.obuf_words:
            raise CompileError(
                f"GEMM tile of {tile_elems} words exceeds the Output BUF")
        ctx.set_resident(out_name, Resident(Namespace.OBUF, 0,
                                            (tile_elems,), (0,)))
    op_ranges = []
    for op in block.ops:
        start = len(ctx.events)
        emit_op(ctx, op, graph, tiles)
        op_ranges.append((op.op_type, start, len(ctx.events)))
    for name in external_outputs(block, graph):
        if ctx.resident(name) is not None:
            dtype = graph.tensor(name).dtype
            ctx.store(name, element_bytes=DTYPE_BYTES[dtype])
        # Tensors that were pure DRAM renames (reshape of off-chip data)
        # or DAE-forwarded (Concat) are already off-chip.
    return lower_tile(ctx, f"{block.name}_tile",
                      reads_obuf=block.gemm is not None,
                      op_ranges=op_ranges)


def _compile_key(graph: Graph, sim_params: SimParams,
                 gemm_params: SystolicParams, frac_bits: int,
                 special_functions: bool) -> str:
    """Content address of the compiled artifact.

    Lowering and tiling read only ``sim_params.tandem`` (scratchpad
    capacities, lanes, iterator-table sizes); DRAM, energy and overlay
    parameters shape evaluation, not the artifact, so they stay out of
    the key and a cache hit is rebound to the requested ``sim_params``.
    """
    from ..runtime.cache import fingerprint, graph_fingerprint
    from .serialize import FORMAT_VERSION
    return fingerprint("compiled-model", FORMAT_VERSION,
                       graph_fingerprint(graph), sim_params.tandem,
                       gemm_params, frac_bits, special_functions)


def _verify_default() -> bool:
    return os.environ.get("REPRO_VERIFY", "1").lower() not in (
        "0", "off", "false", "no")


def compile_model(graph: Graph, sim_params: Optional[SimParams] = None,
                  gemm_params: Optional[SystolicParams] = None,
                  frac_bits: int = FRAC_BITS,
                  special_functions: bool = False,
                  verify: Optional[bool] = None) -> CompiledModel:
    """Compile a graph for the NPU-Tandem (Table 3 defaults).

    Compilation is content-cached (see :mod:`repro.runtime.cache`): a
    structurally identical (graph, Tandem core, GEMM array, options)
    request returns the cached artifact, rebound to the requested
    ``graph`` object and full ``sim_params``.

    Every freshly compiled model is statically verified
    (:mod:`repro.analysis.verifier`) before it is published to the
    cache; a program with error-severity findings raises
    :class:`~repro.analysis.verifier.VerificationError`. The
    verification record is cached under the same content key (kind
    ``"verified"``), so warm cache hits skip re-verification entirely.
    ``verify=None`` follows the ``REPRO_VERIFY`` environment variable
    (default on); pass ``verify=False`` to bypass explicitly.
    """
    from ..runtime.cache import get_cache
    from ..telemetry import get_telemetry
    from .serialize import dump_model, load_model

    sim_params = sim_params or SimParams()
    gemm_params = gemm_params or SystolicParams()
    if verify is None:
        verify = _verify_default()
    tel = get_telemetry()
    with tel.span("compile", cat="compiler", model=graph.name):
        cache = get_cache()
        key = None
        if cache.enabled:
            key = _compile_key(graph, sim_params, gemm_params, frac_bits,
                               special_functions)
            hit = cache.get(
                "compiled", key,
                decode=lambda text: load_model(text, graph, sim_params,
                                               gemm_params))
            if hit is not None:
                # Blocks are shared, read-only artifacts; the wrapper binds
                # this caller's graph object and evaluation parameters.
                return CompiledModel(graph=graph, blocks=hit.blocks,
                                     sim_params=sim_params,
                                     gemm_params=gemm_params)
        with tel.span("lower", cat="compiler", model=graph.name):
            model = _compile_model_uncached(graph, sim_params, gemm_params,
                                            frac_bits, special_functions)
        if verify:
            # Imported lazily: repro.analysis pulls in the DSE/NPU stack.
            from ..analysis.verifier import VerificationError, verify_model
            with tel.span("verify", cat="compiler", model=graph.name):
                report = verify_model(model)
            if key is not None:
                # The record is cached even when dirty so serving admission
                # control can distinguish "failed verification" from
                # "never verified".
                cache.put("verified", key, report.record())
            if not report.clean:
                raise VerificationError(report)
        if key is not None:
            cache.put("compiled", key, model, encode=dump_model)
        return model


def verify_record_for(graph: Graph, sim_params: Optional[SimParams] = None,
                      gemm_params: Optional[SystolicParams] = None,
                      frac_bits: int = FRAC_BITS,
                      special_functions: bool = False) -> Dict:
    """The cached verification record for a model, computing it if absent.

    Returns the compact dict produced by
    :meth:`~repro.analysis.verifier.ModelVerifyReport.record`; its
    ``"clean"`` field is what serving admission control gates on. A
    missing record is recomputed (compiling the model if necessary) and
    published under the model's compile key.
    """
    from ..runtime.cache import get_cache

    sim_params = sim_params or SimParams()
    gemm_params = gemm_params or SystolicParams()
    cache = get_cache()
    key = None
    if cache.enabled:
        key = _compile_key(graph, sim_params, gemm_params, frac_bits,
                           special_functions)
        record = cache.get("verified", key)
        if record is not None:
            return record
    from ..analysis.verifier import verify_model
    model = compile_model(graph, sim_params, gemm_params, frac_bits,
                          special_functions, verify=False)
    record = verify_model(model).record()
    if key is not None:
        cache.put("verified", key, record)
    return record


def _compile_model_uncached(graph: Graph, sim_params: SimParams,
                            gemm_params: SystolicParams, frac_bits: int,
                            special_functions: bool) -> CompiledModel:
    array = SystolicArray(gemm_params)

    compiled: List[CompiledBlock] = []
    pending = form_blocks(graph)
    while pending:
        block = pending.pop(0)
        gemm_cost = (None if block.gemm is None
                     else _gemm_layer_cost(block.gemm, graph, array))
        if not block.ops:
            compiled.append(CompiledBlock(block=block, tiles=1, tile=None,
                                          gemm_cost=gemm_cost))
            continue
        try:
            tiles, tile = search_tiles(
                block, graph, sim_params.tandem,
                lambda t: _compile_block_tile(block, graph, sim_params, t,
                                              frac_bits, special_functions))
        except CompileError as err:
            if "IMM BUF" in str(err) and len(block.ops) > 1:
                # Too many distinct constants for one bundle: split it.
                pending = split_block(block) + pending
                continue
            raise
        compiled.append(CompiledBlock(
            block=block, tiles=tiles, tile=tile, gemm_cost=gemm_cost,
            stores=external_outputs(block, graph)))
    return CompiledModel(graph=graph, blocks=compiled,
                         sim_params=sim_params, gemm_params=gemm_params)
