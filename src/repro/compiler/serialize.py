"""Serialization of compiled models (the deployable artifact).

A :class:`~repro.compiler.compiler.CompiledModel` is flattened into a
JSON-friendly dictionary: instruction words as hex, transfer/permute
bindings, tile counts, and GEMM costs. ``load_compiled`` restores an
executable-equivalent object (programs decode from their packed words,
so this also proves the binary encoding is lossless for every compiled
benchmark).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..gemm import GemmCost
from ..isa import Namespace, TandemProgram
from ..simulator.analytic import AnalyticNest, ProgramMeta
from ..simulator.pipeline import BodyOpMeta
from .ir import PermuteSlot, TransferSlot
from .lowering import LoweredTile

# Version 2 adds per-block node references (``gemm_node``/``op_nodes``)
# so a full CompiledModel can be rebuilt against a deterministic graph.
# Version 3 adds per-tile access metadata (``access_meta``) so the
# verifier's translation-validation pass can re-check reloaded
# artifacts, not just fresh compiles.
FORMAT_VERSION = 3


def _json_scalar(value):
    """JSON fallback for numpy scalars (graphs built from numpy shapes)."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def _transfer_to_dict(slot: TransferSlot) -> Dict:
    return {
        "direction": slot.direction,
        "tensor": slot.tensor,
        "ns": slot.ns.name,
        "base": slot.base,
        "elements": slot.elements,
        "element_bytes": slot.element_bytes,
        "pre_reshape": slot.pre_reshape,
        "perm": slot.perm,
        "pad": slot.pad,
        "pad_value": slot.pad_value,
        "region": slot.region,
        "data_elements": slot.data_elements,
    }


def _transfer_from_dict(data: Dict) -> TransferSlot:
    def tup(value):
        if value is None:
            return None
        return tuple(tuple(v) if isinstance(v, list) else v for v in value)

    return TransferSlot(
        direction=data["direction"], tensor=data["tensor"],
        ns=Namespace[data["ns"]], base=data["base"],
        elements=data["elements"], element_bytes=data["element_bytes"],
        pre_reshape=tup(data["pre_reshape"]), perm=tup(data["perm"]),
        pad=tup(data["pad"]), pad_value=data["pad_value"],
        region=tup(data["region"]), data_elements=data["data_elements"])


def _permute_to_dict(slot: PermuteSlot) -> Dict:
    return {
        "src_ns": slot.src_ns.name, "src_base": slot.src_base,
        "dst_ns": slot.dst_ns.name, "dst_base": slot.dst_base,
        "shape": list(slot.shape), "perm": list(slot.perm),
        "cross_lane": slot.cross_lane,
    }


def _permute_from_dict(data: Dict) -> PermuteSlot:
    return PermuteSlot(
        src_ns=Namespace[data["src_ns"]], src_base=data["src_base"],
        dst_ns=Namespace[data["dst_ns"]], dst_base=data["dst_base"],
        shape=tuple(data["shape"]), perm=tuple(data["perm"]),
        cross_lane=data["cross_lane"])


def _meta_to_dict(meta: ProgramMeta) -> Dict:
    return {
        "nests": [
            {"counts": list(nest.counts),
             "body": [[op.dst_inner_stride, list(op.src_inner_strides),
                       op.mem_reads, op.mem_writes] for op in nest.body]}
            for nest in meta.nests
        ],
        "config_instructions": meta.config_instructions,
        "dram_loads": list(meta.dram_loads),
        "dram_stores": list(meta.dram_stores),
        "permute_words": meta.permute_words,
        "permute_count": meta.permute_count,
        "permute_cross_lane": meta.permute_cross_lane,
    }


def _meta_from_dict(data: Dict) -> ProgramMeta:
    nests = [
        AnalyticNest(
            counts=tuple(nest["counts"]),
            body=tuple(BodyOpMeta(dst, tuple(srcs), reads, writes)
                       for dst, srcs, reads, writes in nest["body"]))
        for nest in data["nests"]
    ]
    meta = ProgramMeta(nests=nests,
                       config_instructions=data["config_instructions"],
                       dram_loads=list(data["dram_loads"]),
                       dram_stores=list(data["dram_stores"]),
                       permute_words=data["permute_words"],
                       permute_count=data.get("permute_count", 0),
                       permute_cross_lane=data["permute_cross_lane"])
    return meta


def tile_to_dict(tile: LoweredTile) -> Dict:
    return {
        "program_name": tile.program.name,
        "words": [f"{w:08x}" for w in tile.program.pack()],
        "meta": _meta_to_dict(tile.meta),
        "transfers": [_transfer_to_dict(t) for t in tile.transfers],
        "permutes": [_permute_to_dict(p) for p in tile.permutes],
        "imm_values": list(tile.imm_values),
        "peak_words": tile.peak_words,
        "op_metas": [[label, _meta_to_dict(meta)]
                     for label, meta in tile.op_metas],
        "obuf_release_fraction": tile.obuf_release_fraction,
        "access_meta": (None if tile.access_meta is None
                        else tile.access_meta.to_dict()),
    }


def tile_from_dict(data: Dict) -> LoweredTile:
    # Imported lazily: the analysis package pulls the compiler in.
    from ..analysis.deps.access import TileAccessMeta

    program = TandemProgram.unpack(
        data["program_name"], [int(w, 16) for w in data["words"]])
    meta_dict = data.get("access_meta")
    return LoweredTile(
        program=program,
        meta=_meta_from_dict(data["meta"]),
        transfers=[_transfer_from_dict(t) for t in data["transfers"]],
        permutes=[_permute_from_dict(p) for p in data["permutes"]],
        imm_values=list(data["imm_values"]),
        peak_words=data["peak_words"],
        op_metas=[(label, _meta_from_dict(meta))
                  for label, meta in data["op_metas"]],
        obuf_release_fraction=data["obuf_release_fraction"],
        access_meta=(None if meta_dict is None
                     else TileAccessMeta.from_dict(meta_dict)))


def dump_model(model) -> str:
    """Serialize the deployable parts of a compiled model to JSON."""
    blocks = []
    for cb in model.blocks:
        blocks.append({
            "name": cb.name,
            "kind": cb.kind,
            "gemm_node": (cb.block.gemm.name
                          if cb.block.gemm is not None else None),
            "op_nodes": [op.name for op in cb.block.ops],
            "tiles": cb.tiles,
            "tile": tile_to_dict(cb.tile) if cb.tile is not None else None,
            "gemm_cost": (None if cb.gemm_cost is None else {
                "compute_cycles": cb.gemm_cost.compute_cycles,
                "dram_cycles": cb.gemm_cost.dram_cycles,
                "macs": cb.gemm_cost.macs,
                "dram_bytes": cb.gemm_cost.dram_bytes,
                "energy_pj": cb.gemm_cost.energy_pj,
            }),
            "stores": list(cb.stores),
        })
    return json.dumps({
        "format_version": FORMAT_VERSION,
        "model": model.name,
        "blocks": blocks,
    }, indent=1, default=_json_scalar)


def load_blocks(text: str) -> List[Dict]:
    """Load the serialized form; returns block dicts with live objects.

    Each block dict carries ``tile`` (a :class:`LoweredTile` or None),
    ``tiles``, ``kind``, ``gemm_cost`` (a :class:`GemmCost` or None).
    """
    data = json.loads(text)
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported compiled-model format {data.get('format_version')}")
    blocks = []
    for blk in data["blocks"]:
        cost = None
        if blk["gemm_cost"] is not None:
            raw = blk["gemm_cost"]
            cost = GemmCost(compute_cycles=raw["compute_cycles"],
                            dram_cycles=raw["dram_cycles"], macs=raw["macs"],
                            dram_bytes=raw["dram_bytes"],
                            energy_pj=raw["energy_pj"])
        blocks.append({
            "name": blk["name"],
            "kind": blk["kind"],
            "gemm_node": blk.get("gemm_node"),
            "op_nodes": blk.get("op_nodes", []),
            "tiles": blk["tiles"],
            "tile": tile_from_dict(blk["tile"]) if blk["tile"] else None,
            "gemm_cost": cost,
            "stores": blk["stores"],
        })
    return blocks


def load_model(text: str, graph, sim_params, gemm_params):
    """Rebuild a full :class:`CompiledModel` from its serialized form.

    ``graph`` must be structurally identical to the graph the artifact
    was compiled from (the content-addressed cache guarantees this);
    block node objects are re-resolved by name against it.
    """
    from .compiler import CompiledBlock, CompiledModel
    from .fusion import Block

    by_name = {node.name: node for node in graph.nodes}
    blocks = []
    for blk in load_blocks(text):
        gemm = by_name[blk["gemm_node"]] if blk["gemm_node"] else None
        block = Block(gemm=gemm,
                      ops=[by_name[name] for name in blk["op_nodes"]])
        blocks.append(CompiledBlock(
            block=block, tiles=blk["tiles"], tile=blk["tile"],
            gemm_cost=blk["gemm_cost"], stores=list(blk["stores"])))
    return CompiledModel(graph=graph, blocks=blocks,
                         sim_params=sim_params, gemm_params=gemm_params)
