"""Block formation (Figure 10, step 0).

The compiler breaks the DNN graph into *execution blocks*: (1) a single
GEMM layer, (2) a group of bundled non-GEMM layers, or (3) a GEMM layer
followed by a group of bundled non-GEMM layers. Blocks are the unit the
execution controller dispatches and tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..graph import Graph, Node


@dataclass
class Block:
    """One execution block: optional GEMM node + bundled non-GEMM nodes."""

    gemm: Optional[Node] = None
    ops: List[Node] = field(default_factory=list)

    @property
    def kind(self) -> str:
        if self.gemm is not None and self.ops:
            return "gemm_tandem"
        if self.gemm is not None:
            return "gemm"
        return "tandem"

    @property
    def nodes(self) -> List[Node]:
        return ([self.gemm] if self.gemm is not None else []) + self.ops

    @property
    def name(self) -> str:
        anchor = self.gemm or (self.ops[0] if self.ops else None)
        return f"block_{anchor.name}" if anchor else "block_empty"

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"Block({self.kind}, gemm={getattr(self.gemm, 'name', None)}, ops={len(self.ops)})"


def form_blocks(graph: Graph) -> List[Block]:
    """Greedy sequential bundling in topological order.

    Every GEMM-class node opens a new block; the non-GEMM nodes that
    follow it (until the next GEMM node) are fused into the block. Leading
    non-GEMM nodes (e.g. embeddings) form a non-GEMM-only block.
    """
    blocks: List[Block] = []
    current: Optional[Block] = None
    for node in graph.topological_order():
        if node.is_gemm:
            if current is not None:
                blocks.append(current)
            current = Block(gemm=node)
        else:
            if current is None:
                current = Block()
            current.ops.append(node)
    if current is not None:
        blocks.append(current)
    return blocks


def external_outputs(block: Block, graph: Graph) -> List[str]:
    """Tensors produced in the block that are consumed outside it."""
    block_nodes: Set[str] = {n.name for n in block.nodes}
    outputs: List[str] = []
    graph_outputs = set(graph.graph_outputs)
    for node in block.ops:
        for out in node.outputs:
            consumers = graph.consumers(out)
            external = any(c.name not in block_nodes for c in consumers)
            if external or out in graph_outputs or not consumers:
                outputs.append(out)
    return outputs


def split_block(block: Block) -> List[Block]:
    """Halve an over-capacity non-GEMM bundle (IMM BUF pressure)."""
    if len(block.ops) <= 1:
        raise ValueError(f"cannot split block {block.name} further")
    mid = max(1, len(block.ops) // 2)
    first = Block(gemm=block.gemm, ops=block.ops[:mid])
    second = Block(gemm=None, ops=block.ops[mid:])
    return [first, second]


def split_at_depth(block: Block, depth: int) -> List[Block]:
    """Cap fusion depth: at most ``depth`` non-GEMM ops ride per block.

    The first block keeps the GEMM (if any) plus the first ``depth``
    bundled operators; the remaining operators are chunked into
    Tandem-only blocks of at most ``depth`` ops each, preserving the
    topological order ``form_blocks`` established. Blocks already within
    the cap are returned unchanged.
    """
    if depth < 1:
        raise ValueError(f"fusion depth must be >= 1, got {depth}")
    if len(block.ops) <= depth:
        return [block]
    parts = [Block(gemm=block.gemm, ops=block.ops[:depth])]
    rest = block.ops[depth:]
    for i in range(0, len(rest), depth):
        parts.append(Block(gemm=None, ops=rest[i:i + depth]))
    return parts
