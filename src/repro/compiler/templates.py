"""Per-operator compilation templates (Figure 13, "operation templates").

Each template lowers one non-GEMM graph node into the compiler IR for a
single tile: Data Access Engine transfers, permute-engine activations,
and Code Repeater loop nests of primitive INT32 statements. Complex
operators are expanded through the integer recipes in
:mod:`repro.compiler.integer_ops` (I-BERT / gemmlowp style).

Layout conventions (the loop-interchange optimization of Section 6):
reductions and window operators are compiled with the *parallel*
dimension innermost and unit-stride so the SIMD lanes vectorize over
independent outputs, never over a dependence chain:

* Softmax / ReduceMean over the last axis: tiles are stored transposed
  (columns-major), so lanes sweep rows.
* Pooling / depth-wise convolution: tiles are stored channel-last
  (H, W, C), so lanes sweep channels; the kernel window loops are the
  outer levels of a 5-deep nest.
"""

from __future__ import annotations

from math import ceil, prod
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graph import Graph, Node
from ..isa import AluFunc, ComparisonFunc, Namespace, Opcode
from .integer_ops import (
    CAUSAL_MASK_SHIFT,
    FRAC_BITS,
    UNARY_RECIPES,
    Step,
    abs_recipe,
    ceil_recipe,
    clip_recipe,
    exp_recipe,
    floor_recipe,
    leaky_relu_recipe,
    relu_recipe,
    sign_recipe,
    silu_recipe,
    sqrt_recipe,
    square_recipe,
)
from .ir import (
    CompileError,
    Resident,
    Stmt,
    TileContext,
    TRef,
    broadcast_views,
    c_strides,
    recipe_body,
    view_ref,
)

INT32_MIN = -(1 << 31)

TemplateFn = Callable[[TileContext, Node, Graph, int], None]
TEMPLATES: Dict[str, TemplateFn] = {}


def template(*op_types: str):
    """Register a lowering template for one operator type."""
    def wrap(fn: TemplateFn) -> TemplateFn:
        for op in op_types:
            TEMPLATES[op] = fn
        return fn
    return wrap


def emit_op(ctx: TileContext, node: Node, graph: Graph, tiles: int = 1) -> None:
    """Lower one non-GEMM node into ``ctx`` for one of ``tiles`` tiles."""
    try:
        fn = TEMPLATES[node.op_type]
    except KeyError:
        raise CompileError(
            f"no template for operator {node.op_type!r}") from None
    fn(ctx, node, graph, max(1, tiles))


def _split(count: int, tiles: int) -> int:
    return max(1, ceil(count / tiles))


def _flat_ref(res: Resident, var: str) -> TRef:
    return TRef(res.ns, res.base, {var: 1})


# ---------------------------------------------------------------------------
# Element-wise operators (flat layout, broadcast-aware)
# ---------------------------------------------------------------------------
_BINARY_ALU = {
    "Add": AluFunc.ADD,
    "Sub": AluFunc.SUB,
    "Mul": AluFunc.MUL,
    "Div": AluFunc.DIV,
    "Min": AluFunc.MIN,
    "Max": AluFunc.MAX,
    "BitShift": AluFunc.RSHIFT,
}
_BINARY_CMP = {
    "Greater": ComparisonFunc.GT,
    "Equal": ComparisonFunc.EQ,
    "Less": ComparisonFunc.LT,
}


def _binary_operands(node: Node, graph: Graph) -> List[Tuple[str, Tuple[int, ...]]]:
    """(name, shape) of the two operands: activations first, then params."""
    names = list(node.inputs) + list(node.params)
    if len(names) < 2:
        raise CompileError(f"{node.op_type} node {node.name} has <2 operands")
    a, b = names[0], names[1]
    return [(a, graph.tensor(a).shape), (b, graph.tensor(b).shape)]


def _tiled_elementwise_views(ctx: TileContext, node: Node, graph: Graph,
                             tiles: int, operands):
    """Shared machinery: tiled loop nest + operand/output references."""
    out = graph.out_spec(node)
    loops, in_maps, out_map = broadcast_views(
        out.shape, [shape for _, shape in operands])
    # Distribute the tile split across loop levels, outermost first
    # (one level may not have enough iterations to absorb it).
    factors = {}
    remaining = tiles
    tiled_loops = []
    for var, count in loops:
        factor = min(remaining, count)
        factors[var] = factor
        tiled_loops.append((var, _split(count, factor)))
        remaining = ceil(remaining / factor)
    loops = tiled_loops
    tile_points = prod(c for _, c in loops)

    refs = []
    for (name, shape), strides in zip(operands, in_maps):
        full = prod(shape)
        # An operand shrinks by the split factors of every loop it
        # actually walks; broadcast axes (stride 0) keep it whole there.
        shrink = prod(f for v, f in factors.items() if strides.get(v, 0) != 0)
        elems = max(1, ceil(full / shrink))
        res = ctx.source(name, (elems,))
        refs.append(TRef(res.ns, res.base, strides))
    out_res = ctx.dest(node.outputs[0], (tile_points,))
    out_ref = TRef(out_res.ns, out_res.base, out_map)
    return loops, refs, out_ref, tile_points


def _emit_binary(ctx, node, graph, tiles, opcode, func):
    operands = _binary_operands(node, graph)
    loops, refs, out_ref, _pts = _tiled_elementwise_views(
        ctx, node, graph, tiles, operands)
    ctx.nest(loops, [Stmt(opcode, int(func), out_ref, refs[0], refs[1])])


@template("Add", "Sub", "Mul", "Div", "Min", "Max", "BitShift")
def t_binary(ctx, node, graph, tiles):
    """Elementwise binary ops (Add/Sub/Mul/Div/Pow) over tiles."""
    _emit_binary(ctx, node, graph, tiles, Opcode.ALU, _BINARY_ALU[node.op_type])


@template("Greater", "Equal", "Less")
def t_compare(ctx, node, graph, tiles):
    """Elementwise comparisons writing 0/1 masks."""
    _emit_binary(ctx, node, graph, tiles, Opcode.COMPARISON,
                 _BINARY_CMP[node.op_type])


@template("Where")
def t_where(ctx, node, graph, tiles):
    """Mask-select between two operands (COND_MOVE)."""
    names = list(node.inputs) + list(node.params)
    cond, a, b = names[0], names[1], names[2]
    operands = [(cond, graph.tensor(cond).shape),
                (a, graph.tensor(a).shape),
                (b, graph.tensor(b).shape)]
    loops, refs, out_ref, _pts = _tiled_elementwise_views(
        ctx, node, graph, tiles, operands)
    cond_ref, a_ref, b_ref = refs
    ctx.nest(loops, [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), out_ref, b_ref),
        Stmt(Opcode.ALU, int(AluFunc.COND_MOVE), out_ref, a_ref, cond_ref),
    ])


def _unary_recipe_steps(ctx: TileContext, node: Node) -> List[Step]:
    op = node.op_type
    if op in UNARY_RECIPES:
        return UNARY_RECIPES[op](ctx.frac_bits)
    if op == "Relu":
        return relu_recipe()
    if op == "LeakyRelu":
        return leaky_relu_recipe(node.attr("alpha", 0.01), ctx.frac_bits)
    if op == "Clip":
        one = 1 << ctx.frac_bits
        lo = int(round(node.attr("min", 0.0) * one))
        hi = int(round(node.attr("max", 6.0) * one))
        return clip_recipe(lo, hi)
    if op == "Floor":
        return floor_recipe(ctx.frac_bits)
    if op == "Ceil":
        return ceil_recipe(ctx.frac_bits)
    if op == "Abs":
        return abs_recipe()
    if op == "Sign":
        return sign_recipe()
    if op == "Pow":
        exponent = node.attr("exponent", 2.0)
        if abs(exponent - 2.0) > 1e-9:
            raise CompileError(f"Pow exponent {exponent} unsupported")
        return square_recipe(ctx.frac_bits)
    raise CompileError(f"no unary recipe for {op!r}")


#: Operators a VPU-style special-function unit covers in one instruction.
SPECIAL_FUNCTION_OPS = frozenset({
    "Exp", "Erf", "Gelu", "Sigmoid", "Silu", "Tanh", "Sqrt", "Reciprocal",
})


@template("Relu", "LeakyRelu", "Clip", "Floor", "Ceil", "Abs", "Sign", "Pow",
          "Exp", "Erf", "Gelu", "Sigmoid", "Silu", "Tanh", "Sqrt",
          "Reciprocal")
def t_unary(ctx, node, graph, tiles):
    """Unary ops + activation recipes from integer_ops."""
    out = graph.out_spec(node)
    elems = _split(out.numel, tiles)
    in_res = ctx.source(node.inputs[0], (elems,))
    out_res = ctx.dest(node.outputs[0], (elems,))
    var = "i"
    loops = [(var, elems)]
    if ctx.special_functions and node.op_type in SPECIAL_FUNCTION_OPS:
        # One special-function instruction per element (VPU emulation).
        body = [Stmt(Opcode.ALU, int(AluFunc.MOVE), _flat_ref(out_res, var),
                     _flat_ref(in_res, var))]
    else:
        steps = _unary_recipe_steps(ctx, node)
        body = recipe_body(ctx, steps, _flat_ref(in_res, var),
                           _flat_ref(out_res, var), loops, elems)
    ctx.nest(loops, body)


# ---------------------------------------------------------------------------
# Reductions over the last axis: Softmax, ReduceMean
# ---------------------------------------------------------------------------
def _rows_cols(shape: Sequence[int], axis: int) -> Tuple[int, int]:
    axis = axis % len(shape)
    if axis != len(shape) - 1:
        raise CompileError(f"only last-axis reductions supported, got {axis}")
    cols = shape[-1]
    rows = prod(shape) // cols
    return rows, cols


@template("Softmax")
def t_softmax(ctx, node, graph, tiles):
    """Softmax: max-subtract, i_exp, sum, reciprocal-multiply."""
    spec = graph.tensor(node.inputs[0])
    rows, cols = _rows_cols(spec.shape, node.attr("axis", -1))
    rows_t = _split(rows, tiles)
    # Column-major tile so lanes vectorize over rows.
    x = ctx.source(node.inputs[0], (rows_t, cols), layout=(1, 0))
    out = ctx.dest(node.outputs[0], (rows_t, cols), layout=(1, 0))
    x_ref = view_ref(x, ("c", "r"), {"c": rows_t, "r": 1})
    out_ref = view_ref(out, ("c", "r"), {"c": rows_t, "r": 1})

    m_ns, m_base = ctx.alloc(rows_t)
    m_ref = TRef(m_ns, m_base, {"r": 1})
    s_ns, s_base = ctx.alloc(rows_t)
    s_ref = TRef(s_ns, s_base, {"r": 1})
    e_ns, e_base = ctx.alloc(rows_t * cols)
    e_ref = TRef(e_ns, e_base, {"c": rows_t, "r": 1})

    # 1. Row maxima (for numerical stability, as I-BERT does).
    ctx.nest([("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), m_ref, ctx.imm(INT32_MIN))])
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MAX), m_ref, m_ref, x_ref)])
    # 2. e = i_exp(x - m).
    t_ns, t_base = ctx.alloc(rows_t)
    t_ref = TRef(t_ns, t_base, {"r": 1})
    loops = [("c", cols), ("r", rows_t)]
    body = [Stmt(Opcode.ALU, int(AluFunc.SUB), t_ref, x_ref, m_ref)]
    if ctx.special_functions:
        body.append(Stmt(Opcode.ALU, int(AluFunc.MOVE), e_ref, t_ref))
    else:
        body += recipe_body(ctx, exp_recipe(ctx.frac_bits), t_ref, e_ref,
                            loops, rows_t * cols, temp_strides={"r": 1},
                            temp_elements=rows_t)
    ctx.nest(loops, body)
    # 3. Row sums.
    ctx.nest([("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), s_ref, ctx.imm(0))])
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.ADD), s_ref, s_ref, e_ref)])
    # 4. out = (e << f) / s.
    u_ns, u_base = ctx.alloc(rows_t)
    u_ref = TRef(u_ns, u_base, {"r": 1})
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.LSHIFT), u_ref, e_ref,
             ctx.imm(ctx.frac_bits)),
        Stmt(Opcode.ALU, int(AluFunc.DIV), out_ref, u_ref, s_ref),
    ])


@template("SwiGLU")
def t_swiglu(ctx, node, graph, tiles):
    """SwiGLU: silu(gate) * up, the gate expanded through silu_recipe."""
    operands = _binary_operands(node, graph)
    loops, refs, out_ref, tile_points = _tiled_elementwise_views(
        ctx, node, graph, tiles, operands)
    gate_ref, up_ref = refs
    s_ns, s_base = ctx.alloc(tile_points)
    s_ref = TRef(s_ns, s_base, dict(out_ref.strides))
    if ctx.special_functions:
        body = [Stmt(Opcode.ALU, int(AluFunc.MOVE), s_ref, gate_ref)]
    else:
        body = recipe_body(ctx, silu_recipe(ctx.frac_bits), gate_ref, s_ref,
                           loops, tile_points)
    body += [
        Stmt(Opcode.ALU, int(AluFunc.MUL), s_ref, s_ref, up_ref),
        Stmt(Opcode.ALU, int(AluFunc.RSHIFT), out_ref, s_ref,
             ctx.imm(ctx.frac_bits)),
    ]
    ctx.nest(loops, body)


@template("Rope")
def t_rope(ctx, node, graph, tiles):
    """Rotary embedding: paired rotation of (even, odd) lanes.

    The cos/sin tables live on-chip like any other parameter; the decode
    step binds tables already sliced at the cache offset, so the nest is
    position-agnostic.
    """
    spec = graph.tensor(node.inputs[0])
    shape = spec.shape
    seq, hd = shape[-2], shape[-1]
    half = node.attr("half", hd // 2)
    lead = prod(shape) // (seq * hd)
    f = ctx.imm(ctx.frac_bits)
    if tiles == 1:
        x = ctx.source(node.inputs[0], (lead, seq, hd))
        out = ctx.dest(node.outputs[0], (lead, seq, hd))
        cos = ctx.source(node.params[0], (seq, half))
        sin = ctx.source(node.params[1], (seq, half))
        loops = [("b", lead), ("p", seq), ("i", half)]
        pair = {"b": seq * hd, "p": hd, "i": 2}
        tab = {"b": 0, "p": half, "i": 1}
        cos_ref = TRef(cos.ns, cos.base, tab)
        sin_ref = TRef(sin.ns, sin.base, tab)
    else:
        # Cost mode: a flat sweep with broadcast table reads — the same
        # instruction count per rotated pair, capacity-bounded buffers.
        pairs = _split(lead * seq * half, tiles)
        x = ctx.source(node.inputs[0], (pairs * 2,))
        out = ctx.dest(node.outputs[0], (pairs * 2,))
        cos = ctx.source(node.params[0], (seq, half))
        sin = ctx.source(node.params[1], (seq, half))
        loops = [("i", pairs)]
        pair = {"i": 2}
        cos_ref = TRef(cos.ns, cos.base, {"i": 0})
        sin_ref = TRef(sin.ns, sin.base, {"i": 0})
    xe = TRef(x.ns, x.base, pair)
    xo = TRef(x.ns, x.base + 1, pair)
    oe = TRef(out.ns, out.base, pair)
    oo = TRef(out.ns, out.base + 1, pair)
    t1_ns, t1_base = ctx.alloc(half)
    t2_ns, t2_base = ctx.alloc(half)
    t1 = TRef(t1_ns, t1_base, {"i": 1} if tiles == 1 else {})
    t2 = TRef(t2_ns, t2_base, {"i": 1} if tiles == 1 else {})
    ctx.nest(loops, [
        Stmt(Opcode.ALU, int(AluFunc.MUL), t1, xe, cos_ref),
        Stmt(Opcode.ALU, int(AluFunc.MUL), t2, xo, sin_ref),
        Stmt(Opcode.ALU, int(AluFunc.SUB), t1, t1, t2),
        Stmt(Opcode.ALU, int(AluFunc.RSHIFT), oe, t1, f),
        Stmt(Opcode.ALU, int(AluFunc.MUL), t1, xe, sin_ref),
        Stmt(Opcode.ALU, int(AluFunc.MUL), t2, xo, cos_ref),
        Stmt(Opcode.ALU, int(AluFunc.ADD), t1, t1, t2),
        Stmt(Opcode.ALU, int(AluFunc.RSHIFT), oo, t1, f),
    ])


@template("RMSNorm")
def t_rmsnorm(ctx, node, graph, tiles):
    """RMSNorm: mean-of-squares, i_sqrt, scale by gamma (column-major)."""
    spec = graph.tensor(node.inputs[0])
    rows, cols = _rows_cols(spec.shape, node.attr("axis", -1))
    rows_t = _split(rows, tiles)
    x = ctx.source(node.inputs[0], (rows_t, cols), layout=(1, 0))
    out = ctx.dest(node.outputs[0], (rows_t, cols), layout=(1, 0))
    gamma = ctx.source(node.params[0], (cols,))
    x_ref = view_ref(x, ("c", "r"), {"c": rows_t, "r": 1})
    out_ref = view_ref(out, ("c", "r"), {"c": rows_t, "r": 1})
    g_ref = TRef(gamma.ns, gamma.base, {"c": 1, "r": 0})

    # 1. sq = (x * x) >> f (per-element shift keeps the running sum in
    #    32 bits for wide hidden dims).
    sq_ns, sq_base = ctx.alloc(rows_t * cols)
    sq_ref = TRef(sq_ns, sq_base, {"c": rows_t, "r": 1})
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MUL), sq_ref, x_ref, x_ref),
        Stmt(Opcode.ALU, int(AluFunc.RSHIFT), sq_ref, sq_ref,
             ctx.imm(ctx.frac_bits)),
    ])
    # 2. Row accumulation and mean (+1 ULP so all-zero rows stay finite).
    acc_ns, acc_base = ctx.alloc(rows_t)
    acc_ref = TRef(acc_ns, acc_base, {"r": 1})
    ctx.nest([("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), acc_ref, ctx.imm(0))])
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.ADD), acc_ref, acc_ref, sq_ref)])
    ctx.nest([("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.DIV), acc_ref, acc_ref, ctx.imm(cols)),
        Stmt(Opcode.ALU, int(AluFunc.ADD), acc_ref, acc_ref, ctx.imm(1)),
    ])
    # 3. rms = i_sqrt(mean).
    d_ns, d_base = ctx.alloc(rows_t)
    d_ref = TRef(d_ns, d_base, {"r": 1})
    loops = [("r", rows_t)]
    if ctx.special_functions:
        ctx.nest(loops, [Stmt(Opcode.ALU, int(AluFunc.MOVE), d_ref, acc_ref)])
    else:
        ctx.nest(loops, recipe_body(ctx, sqrt_recipe(ctx.frac_bits),
                                    acc_ref, d_ref, loops, rows_t))
    # 4. out = (((x << f) / rms) * gamma) >> f.
    t_ns, t_base = ctx.alloc(rows_t)
    t_ref = TRef(t_ns, t_base, {"r": 1})
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.LSHIFT), t_ref, x_ref,
             ctx.imm(ctx.frac_bits)),
        Stmt(Opcode.ALU, int(AluFunc.DIV), t_ref, t_ref, d_ref),
        Stmt(Opcode.ALU, int(AluFunc.MUL), t_ref, t_ref, g_ref),
        Stmt(Opcode.ALU, int(AluFunc.RSHIFT), out_ref, t_ref,
             ctx.imm(ctx.frac_bits)),
    ])


@template("CausalSoftmax")
def t_causal_softmax(ctx, node, graph, tiles):
    """Fused causal mask + softmax over attention scores.

    Key column ``j`` is visible to query row ``p`` iff
    ``j <= p + offset``; invisible columns (including the unwritten tail
    of a max-context KV-cache) are stamped with a large negative constant
    whose i_exp is exactly zero, then the standard softmax tail runs.
    """
    spec = graph.tensor(node.inputs[0])
    shape = spec.shape
    q_len, cols = shape[-2], shape[-1]
    rows = prod(shape) // cols
    rows_t = _split(rows, tiles)
    offset = node.attr("offset", 0)
    mask = -(1 << (ctx.frac_bits + CAUSAL_MASK_SHIFT))
    x = ctx.source(node.inputs[0], (rows_t, cols), layout=(1, 0))
    out = ctx.dest(node.outputs[0], (rows_t, cols), layout=(1, 0))
    x_ref = view_ref(x, ("c", "r"), {"c": rows_t, "r": 1})
    out_ref = view_ref(out, ("c", "r"), {"c": rows_t, "r": 1})

    # 0. Copy the scores into scratch and stamp the mask.
    scr_ns, scr_base = ctx.alloc(rows_t * cols)
    scr_ref = TRef(scr_ns, scr_base, {"c": rows_t, "r": 1})
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), scr_ref, x_ref)])
    if rows_t == rows:
        # Exact triangle: one nest per query position (decode steps have
        # q_len == 1, so a single nest covers the whole unwritten tail).
        batch = rows // q_len
        for p in range(q_len):
            start = p + offset + 1
            if start >= cols:
                continue
            ctx.nest([("b", batch), ("j", cols - start)], [
                Stmt(Opcode.ALU, int(AluFunc.MOVE),
                     TRef(scr_ns, scr_base + start * rows_t + p,
                          {"j": rows_t, "b": q_len}),
                     ctx.imm(mask))])
    else:
        # Cost mode (tiles > 1): stamp this tile's share of the masked
        # element count without exact per-row addressing.
        masked = (rows // q_len) * sum(
            max(0, cols - (p + offset + 1)) for p in range(q_len))
        masked_t = min(rows_t * cols, _split(masked, tiles)) if masked else 0
        if masked_t:
            ctx.nest([("m", masked_t)], [
                Stmt(Opcode.ALU, int(AluFunc.MOVE),
                     TRef(scr_ns, scr_base, {"m": 1}), ctx.imm(mask))])

    # 1-4. The standard softmax tail over the masked scratch.
    m_ns, m_base = ctx.alloc(rows_t)
    m_ref = TRef(m_ns, m_base, {"r": 1})
    ctx.nest([("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), m_ref, ctx.imm(INT32_MIN))])
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MAX), m_ref, m_ref, scr_ref)])
    e_ns, e_base = ctx.alloc(rows_t * cols)
    e_ref = TRef(e_ns, e_base, {"c": rows_t, "r": 1})
    t_ns, t_base = ctx.alloc(rows_t)
    t_ref = TRef(t_ns, t_base, {"r": 1})
    loops = [("c", cols), ("r", rows_t)]
    body = [Stmt(Opcode.ALU, int(AluFunc.SUB), t_ref, scr_ref, m_ref)]
    if ctx.special_functions:
        body.append(Stmt(Opcode.ALU, int(AluFunc.MOVE), e_ref, t_ref))
    else:
        body += recipe_body(ctx, exp_recipe(ctx.frac_bits), t_ref, e_ref,
                            loops, rows_t * cols, temp_strides={"r": 1},
                            temp_elements=rows_t)
    ctx.nest(loops, body)
    s_ns, s_base = ctx.alloc(rows_t)
    s_ref = TRef(s_ns, s_base, {"r": 1})
    ctx.nest([("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), s_ref, ctx.imm(0))])
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.ADD), s_ref, s_ref, e_ref)])
    u_ns, u_base = ctx.alloc(rows_t)
    u_ref = TRef(u_ns, u_base, {"r": 1})
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.LSHIFT), u_ref, e_ref,
             ctx.imm(ctx.frac_bits)),
        Stmt(Opcode.ALU, int(AluFunc.DIV), out_ref, u_ref, s_ref),
    ])


@template("ReduceMean")
def t_reduce_mean(ctx, node, graph, tiles):
    """Mean reduction over the trailing axis."""
    spec = graph.tensor(node.inputs[0])
    rows, cols = _rows_cols(spec.shape, node.attr("axis", -1))
    rows_t = _split(rows, tiles)
    x = ctx.source(node.inputs[0], (rows_t, cols), layout=(1, 0))
    out = ctx.dest(node.outputs[0], (rows_t,))
    x_ref = view_ref(x, ("c", "r"), {"c": rows_t, "r": 1})
    out_ref = _flat_ref(out, "r")
    ctx.nest([("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), out_ref, ctx.imm(0))])
    ctx.nest([("c", cols), ("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.ADD), out_ref, out_ref, x_ref)])
    ctx.nest([("r", rows_t)], [
        Stmt(Opcode.ALU, int(AluFunc.DIV), out_ref, out_ref, ctx.imm(cols))])


@template("GlobalAveragePool")
def t_global_avgpool(ctx, node, graph, tiles):
    """Global average pooling via accumulate + scale."""
    n, c, h, w = graph.tensor(node.inputs[0]).shape
    hw = h * w
    c_t = _split(c, tiles)
    out = ctx.dest(node.outputs[0], (c_t,))
    out_ref = _flat_ref(out, "c")
    ctx.nest([("c", c_t)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE), out_ref, ctx.imm(0))])
    existing = ctx.resident(node.inputs[0])
    if existing is not None and existing.elements >= c_t * hw:
        # In-place reduction over the producer's NCHW buffer: lanes
        # vectorize over HW and combine through the lane-reduce tree —
        # no relayout copy, no extra capacity.
        x = ctx.source(node.inputs[0], (c_t, hw))
        x_ref = view_ref(x, ("c", "k"), {"c": hw, "k": 1})
        sum_ref = TRef(out.ns, out.base, {"c": 1, "k": 0})
        ctx.nest([("c", c_t), ("k", hw)], [
            Stmt(Opcode.ALU, int(AluFunc.ADD), sum_ref, sum_ref, x_ref)])
    else:
        # Off-chip input, streamed: HW is a reduction dimension (never
        # tiled across blocks, Section 6), so it is consumed in row
        # chunks with partial accumulation into out[c]. Each chunk is a
        # channel-last (rows*W, C) tile so lanes vectorize over channels.
        from .ir import TransferSlot
        budget = max(c_t, ctx.params.interim_buf_words // 4)
        rows_per_chunk = max(1, min(h, budget // max(1, c_t * w)))
        ns, base = ctx.alloc(c_t * rows_per_chunk * w)
        tensor = ctx.dram_alias.get(node.inputs[0], node.inputs[0])
        row = 0
        while row < h:
            rows = min(rows_per_chunk, h - row)
            chunk_hw = rows * w
            ctx.add_transfer(TransferSlot(
                direction="ld", tensor=tensor, ns=ns, base=base,
                elements=c_t * chunk_hw,
                pre_reshape=(c_t, chunk_hw), perm=(1, 0),
                region=((0, n), (0, c_t), (row, row + rows), (0, w))
                if tiles == 1 else None))
            x_ref = TRef(ns, base, {"k": c_t, "c": 1})
            acc_ref = TRef(out.ns, out.base, {"k": 0, "c": 1})
            ctx.nest([("k", chunk_hw), ("c", c_t)], [
                Stmt(Opcode.ALU, int(AluFunc.ADD), acc_ref, acc_ref, x_ref)])
            row += rows
    ctx.nest([("c", c_t)], [
        Stmt(Opcode.ALU, int(AluFunc.DIV), out_ref, out_ref, ctx.imm(hw))])


# ---------------------------------------------------------------------------
# Window operators: MaxPool / AveragePool / DepthwiseConv (5-deep nests)
# ---------------------------------------------------------------------------
def _window_setup(ctx, node, graph, tiles, pad_value):
    """Load a channel-last padded input tile; returns geometry + refs."""
    n, c, h, w = graph.tensor(node.inputs[0]).shape
    kh, kw = node.attrs["kernel_shape"]
    stride = node.attrs["strides"][0]
    pad = node.attrs["pads"][0]
    _n, oc, oh, ow = graph.out_spec(node).shape
    if tiles == 1:
        # Exact: whole input, padding materialized by the DAE fill logic.
        x = ctx.source(node.inputs[0], (c, h, w), layout=(1, 2, 0),
                       pad=((0, 0), (pad, pad), (pad, pad)),
                       pad_value=pad_value)
        hp, wp = h + 2 * pad, w + 2 * pad
        return c, hp, wp, kh, kw, stride, oh, ow, x
    # Cost model: tiles split output rows first, then channels (channels
    # are independent for windows, so this never splits a reduction); the
    # input tile carries its kernel halo (Section 6: tiles must cover all
    # adjacent elements of the window).
    tiles_oh = min(tiles, oh)
    tiles_c = min(c, ceil(tiles / tiles_oh))
    oh_t = _split(oh, tiles_oh)
    c_t = _split(c, tiles_c)
    h_t = min(h + 2 * pad, oh_t * stride + (kh - stride))
    x = ctx.source(node.inputs[0], (c_t, h_t, w), layout=(1, 2, 0))
    return c_t, h_t, w, kh, kw, stride, oh_t, ow, x


@template("MaxPool", "AveragePool")
def t_pool(ctx, node, graph, tiles):
    """Windowed max/average pooling over spatial dims."""
    is_max = node.op_type == "MaxPool"
    pad_value = INT32_MIN if is_max else 0
    c, hp, wp, kh, kw, stride, oh_t, ow, x = _window_setup(
        ctx, node, graph, tiles, pad_value)
    out = ctx.dest(node.outputs[0], (c, oh_t, ow), layout=(1, 2, 0))
    loop_vars = ("kh", "kw", "oh", "ow", "c")
    x_ref = TRef(x.ns, x.base, {
        "kh": wp * c, "kw": c, "oh": stride * wp * c, "ow": stride * c, "c": 1})
    out_ref = TRef(out.ns, out.base, {"oh": ow * c, "ow": c, "c": 1})
    init = ctx.imm(INT32_MIN if is_max else 0)
    ctx.nest([("i", oh_t * ow * c)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE),
             TRef(out.ns, out.base, {"i": 1}), init)])
    func = AluFunc.MAX if is_max else AluFunc.ADD
    ctx.nest([("kh", kh), ("kw", kw), ("oh", oh_t), ("ow", ow), ("c", c)],
             [Stmt(Opcode.ALU, int(func), out_ref, out_ref, x_ref)])
    if not is_max:
        ctx.nest([("i", oh_t * ow * c)], [
            Stmt(Opcode.ALU, int(AluFunc.DIV),
                 TRef(out.ns, out.base, {"i": 1}),
                 TRef(out.ns, out.base, {"i": 1}), ctx.imm(kh * kw))])


@template("DepthwiseConv")
def t_depthwise(ctx, node, graph, tiles):
    """Depthwise convolution as per-channel MACC loops."""
    c, hp, wp, kh, kw, stride, oh_t, ow, x = _window_setup(
        ctx, node, graph, tiles, 0)
    weight = node.params[0]
    w_res = ctx.source(weight, (c, 1, kh, kw), layout=(2, 3, 1, 0))
    out = ctx.dest(node.outputs[0], (c, oh_t, ow), layout=(1, 2, 0))
    x_ref = TRef(x.ns, x.base, {
        "kh": wp * c, "kw": c, "oh": stride * wp * c, "ow": stride * c, "c": 1})
    w_ref = TRef(w_res.ns, w_res.base, {"kh": kw * c, "kw": c, "c": 1})
    out_ref = TRef(out.ns, out.base, {"oh": ow * c, "ow": c, "c": 1})
    ctx.nest([("i", oh_t * ow * c)], [
        Stmt(Opcode.ALU, int(AluFunc.MOVE),
             TRef(out.ns, out.base, {"i": 1}), ctx.imm(0))])
    # The paper's canonical five-deep nest.
    ctx.nest([("kh", kh), ("kw", kw), ("oh", oh_t), ("ow", ow), ("c", c)],
             [Stmt(Opcode.ALU, int(AluFunc.MACC), out_ref, x_ref, w_ref)])


# ---------------------------------------------------------------------------
# Layout operators
# ---------------------------------------------------------------------------
@template("Transpose")
def t_transpose(ctx, node, graph, tiles):
    """Dimension permutation via the PERMUTE engine."""
    in_name = node.inputs[0]
    spec = graph.tensor(in_name)
    perm = tuple(node.attrs["perm"])
    out_shape = tuple(spec.shape[p] for p in perm)
    shape = _tile_shape(spec.shape, tiles)
    # Off-chip inputs: the DAE gathers the permuted layout straight from
    # DRAM. On-chip inputs: one permute-engine activation into a fresh
    # buffer (source() dispatches on residency).
    res = ctx.source(in_name, shape, layout=perm)
    ctx.set_resident(node.outputs[0], Resident(
        res.ns, res.base, tuple(shape[p] for p in perm),
        tuple(range(len(perm)))))


def _tile_shape(shape: Sequence[int], tiles: int) -> Tuple[int, ...]:
    shape = list(shape)
    for i, dim in enumerate(shape):
        if dim > 1:
            shape[i] = _split(dim, tiles)
            break
    return tuple(shape)


@template("Reshape", "Flatten", "Split")
def t_reshape(ctx, node, graph, tiles):
    """Reshape/Flatten: iterator rebinding, no data movement."""
    in_name, out_name = node.inputs[0], node.outputs[0]
    out_shape = graph.out_spec(node).shape
    existing = ctx.resident(in_name)
    if existing is None:
        # Pure metadata: downstream consumers read the same DRAM bytes.
        ctx.dram_alias[out_name] = ctx.dram_alias.get(in_name, in_name)
        return
    if existing.layout != tuple(range(len(existing.shape))):
        # A reshape is only a rename for C-contiguous data; fix layout first.
        existing = ctx.source(in_name, existing.shape)
    ctx.set_resident(out_name, Resident(
        existing.ns, existing.base, tuple(out_shape),
        tuple(range(len(out_shape)))))


@template("Concat")
def t_concat(ctx, node, graph, tiles):
    """Pure data movement: each input is drained into its slice of the
    concatenated DRAM tensor (the DAE's scatter pattern covers this)."""
    from .ir import TransferSlot
    axis = node.attr("axis", 1)
    out_name = node.outputs[0]
    out_shape = graph.out_spec(node).shape
    offset = 0
    for in_name in node.inputs:
        spec = graph.tensor(in_name)
        elems = _split(spec.numel, tiles)
        res = ctx.source(in_name, (elems,))
        region = tuple(
            (offset, offset + spec.shape[axis]) if dim == axis else (0, size)
            for dim, size in enumerate(out_shape))
        ctx.add_transfer(TransferSlot(
            direction="st", tensor=out_name, ns=res.ns, base=res.base,
            elements=elems,
            pre_reshape=spec.shape if tiles == 1 else None,
            region=region))
        offset += spec.shape[axis]


@template("CacheAppend")
def t_cache_append(ctx, node, graph, tiles):
    """KV-cache append: DAE scatter of the new tokens' K/V slice.

    The output tensor *is* the cache (the runner aliases them to the same
    DRAM storage), so only the appended slice moves off-chip — O(new
    tokens) traffic per decode step, never O(max context). ``perm``
    optionally lays the slice out transposed (the K-cache stores keys
    pre-transposed for the score matmul).
    """
    from .ir import TransferSlot
    out_name = node.outputs[0]
    out_shape = graph.out_spec(node).shape
    axis = node.attr("axis", 0) % len(out_shape)
    offset = node.attr("offset", 0)
    perm = node.attrs.get("perm")
    new_name = node.inputs[1]
    spec = graph.tensor(new_name)
    elems = _split(spec.numel, tiles)
    res = ctx.source(new_name, (elems,))
    laid = (tuple(spec.shape[p] for p in perm) if perm
            else tuple(spec.shape))
    region = tuple(
        (offset, offset + laid[d]) if d == axis else (0, out_shape[d])
        for d in range(len(out_shape)))
    # DAE store semantics: the scratchpad block is interpreted as
    # perm(pre_reshape) and inverse-permuted on the way out; the block
    # holds ``new`` in C order, so pre_reshape is the DRAM-side slice
    # shape and the transfer perm is the node perm's inverse.
    inv = None
    if perm:
        inv = [0] * len(perm)
        for i, p in enumerate(perm):
            inv[p] = i
    ctx.add_transfer(TransferSlot(
        direction="st", tensor=out_name, ns=res.ns, base=res.base,
        elements=elems,
        pre_reshape=laid if tiles == 1 else None,
        perm=tuple(inv) if (inv and tiles == 1) else None,
        region=region))


@template("Resize")
def t_resize(ctx, node, graph, tiles):
    """Nearest-neighbour upsampling via strided iterators."""
    n, c, h, w = graph.tensor(node.inputs[0]).shape
    scale = node.attr("scale", 2)
    h_t = _split(h, tiles)
    x = ctx.source(node.inputs[0], (c, h_t, w))
    out = ctx.dest(node.outputs[0], (c, h_t * scale, w * scale))
    x_strides = {"c": h_t * w, "h": w, "w": 1}
    body = []
    for a in range(scale):
        for b in range(scale):
            dst = TRef(out.ns,
                       out.base + a * (w * scale) + b,
                       {"c": h_t * w * scale * scale, "h": w * scale * scale,
                        "w": scale})
            body.append(Stmt(Opcode.ALU, int(AluFunc.MOVE), dst,
                             TRef(x.ns, x.base, x_strides)))
    ctx.nest([("c", c), ("h", h_t), ("w", w)], body)


@template("Slice")
def t_slice(ctx, node, graph, tiles):
    """Strided slice via iterator base/stride setup."""
    in_name = node.inputs[0]
    spec = graph.tensor(in_name)
    out_shape = graph.out_spec(node).shape
    axis = node.attr("axis", 0) % len(spec.shape)
    start = node.attr("start", 0)
    existing = ctx.resident(in_name)
    out_elems = prod(out_shape)
    if existing is not None and ctx.strict:
        # Normalize to the logical C-order shape so axis strides apply.
        existing = ctx.source(in_name, spec.shape)
    else:
        # Cost mode / off-chip: the DAE reads just the sliced region.
        existing = None
    if existing is None:
        region = tuple(
            (start, start + out_shape[d]) if d == axis else (0, spec.shape[d])
            for d in range(len(spec.shape)))
        from .ir import TransferSlot
        ns, base = ctx.alloc(out_elems)
        ctx.add_transfer(TransferSlot(
            direction="ld", tensor=ctx.dram_alias.get(in_name, in_name),
            ns=ns, base=base, elements=out_elems, region=region))
        ctx.set_resident(node.outputs[0], Resident(
            ns, base, tuple(out_shape), tuple(range(len(out_shape)))))
        return
    # Resident: a strided MOVE nest through the iterators.
    in_strides = c_strides(existing.shape)
    base_off = start * in_strides[axis]
    loops = [(f"d{d}", out_shape[d]) for d in range(len(out_shape))]
    src = TRef(existing.ns, existing.base + base_off,
               {f"d{d}": in_strides[d] for d in range(len(out_shape))})
    out_res = ctx.dest(node.outputs[0], tuple(out_shape))
    out_strides = c_strides(list(out_shape))
    dst = TRef(out_res.ns, out_res.base,
               {f"d{d}": out_strides[d] for d in range(len(out_shape))})
    ctx.nest(loops, [Stmt(Opcode.ALU, int(AluFunc.MOVE), dst, src)])


@template("Gather")
def t_gather(ctx, node, graph, tiles):
    # Embedding lookup: the DAE streams one table row per token. This
    # template is cost-only (the benchmarks never run Gather through the
    # functional machine); the gathered rows land resident like a load.
    """Indexed gather through the immediate-indexed iterators."""
    out = graph.out_spec(node)
    elems = _split(out.numel, tiles)
    table = node.params[0] if node.params else node.inputs[0]
    from .ir import TransferSlot
    ns, base = ctx.alloc(elems)
    ctx.add_transfer(TransferSlot(
        direction="ld", tensor=table, ns=ns, base=base, elements=elems))
    ctx.set_resident(node.outputs[0], Resident(ns, base, (elems,), (0,)))


# ---------------------------------------------------------------------------
# Type conversion
# ---------------------------------------------------------------------------
@template("Cast")
def t_cast(ctx, node, graph, tiles):
    """Dtype conversion via DATATYPE_CAST."""
    out = graph.out_spec(node)
    elems = _split(out.numel, tiles)
    in_res = ctx.source(node.inputs[0], (elems,))
    out_res = ctx.dest(node.outputs[0], (elems,))
    ctx.uses_cast = True
    shift = node.attr("shift", 0)
    var = "i"
    if shift:
        body = [Stmt(Opcode.ALU, int(AluFunc.RSHIFT), _flat_ref(out_res, var),
                     _flat_ref(in_res, var), ctx.imm(shift))]
    else:
        body = [Stmt(Opcode.ALU, int(AluFunc.MOVE), _flat_ref(out_res, var),
                     _flat_ref(in_res, var))]
    nest = ctx.nest([(var, elems)], body)
    nest.cast_to = graph.tensor(node.outputs[0]).dtype  # type: ignore[attr-defined]
