"""Loop transformations (Section 6, "Dependency relaxation").

The Tandem Processor has no hardware dependency checking; the compiler
guarantees hazard-freedom. Two classic transforms from the paper:

* **loop interchange** — reorders nest levels (e.g. moving a reduction
  outward so lanes sweep independent outputs); legal when the body is
  point-wise independent across the interchanged levels.
* **loop fission** — splits a multi-instruction body into consecutive
  single-instruction nests; legal when later body instructions only
  consume values earlier instructions produced *at the same iteration
  point* (exactly the discipline the templates follow).

Both operate on the :class:`~repro.compiler.ir.Nest` IR and preserve the
machine-visible result; a hazard checker validates the required
independence so transforms fail loudly instead of miscompiling.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from .ir import CompileError, Nest, Stmt, TRef


def _writes(stmt: Stmt) -> TRef:
    return stmt.dst

def _reads(stmt: Stmt) -> List[TRef]:
    refs = [stmt.src1]
    if stmt.src2 is not None:
        refs.append(stmt.src2)
    return refs


def _same_walk(a: TRef, b: TRef, loop_vars: Sequence[str]) -> bool:
    """True when two refs address the same element at every point."""
    return (a.ns == b.ns and a.base == b.base
            and all(a.stride(v) == b.stride(v) for v in loop_vars))


def _may_overlap(a: TRef, b: TRef) -> bool:
    """Conservative aliasing: same namespace means possible overlap,
    unless both walk identical strides from different bases (disjoint
    buffers the allocator laid out)."""
    if a.ns != b.ns:
        return False
    return True


def _extent(ref: TRef, loops: Sequence[Tuple[str, int]]) -> Tuple[int, int]:
    """Inclusive [lo, hi] address range ``ref`` touches over the nest.

    Handles scalar refs (empty stride map → a single address) and
    reversed walks (negative strides reach *below* the base), which is
    why overlap tests must use extents rather than comparing bases.
    """
    lo = hi = ref.base
    for var, count in loops:
        reach = ref.stride(var) * (count - 1)
        lo += min(0, reach)
        hi += max(0, reach)
    return lo, hi


def _extents_overlap(a: TRef, b: TRef,
                     loops: Sequence[Tuple[str, int]]) -> bool:
    """Whether two refs can touch a common address over the nest."""
    a_lo, a_hi = _extent(a, loops)
    b_lo, b_hi = _extent(b, loops)
    return a_lo <= b_hi and b_lo <= a_hi


def _injective_walk(ref: TRef, loops: Sequence[Tuple[str, int]]) -> bool:
    """Whether distinct iteration points address distinct elements.

    Point-wise value forwarding (a later instruction reading what an
    earlier one wrote *at the same point*) survives fission only when
    each point's value lands at its own address: instruction-major order
    replays the producer over all points before any consumer runs, so a
    non-injective walk (e.g. a stride-0 per-point temp) retains only the
    last point's value. Sufficient condition: every level with trip
    count > 1 has a nonzero stride, and sorted by magnitude each stride
    clears the span of all smaller-stride levels (mixed-radix layout).
    """
    levels = [(abs(ref.stride(var)), count)
              for var, count in loops if count > 1]
    if any(stride == 0 for stride, _ in levels):
        return False
    levels.sort(reverse=True)
    for i, (stride, _count) in enumerate(levels):
        span = sum(s * (c - 1) for s, c in levels[i + 1:])
        if stride <= span:
            return False
    return True


def is_pointwise_parallel(nest: Nest) -> bool:
    """True when every iteration point is independent of every other.

    Sufficient condition used here: each body instruction's destination
    walks *every* loop level the nest iterates (no stride-0 accumulation
    into a shared location), so distinct points write distinct elements.
    """
    loop_vars = [v for v, _ in nest.loops]
    for stmt in nest.body:
        dst = _writes(stmt)
        for var, count in nest.loops:
            if count > 1 and dst.stride(var) == 0:
                return False
    return True


def interchange(nest: Nest, order: Sequence[int]) -> Nest:
    """Reorder loop levels by ``order`` (a permutation of level indices).

    Raises :class:`CompileError` when the nest carries a loop-level
    dependence (an accumulation), where reordering would change results
    relative to the Code Repeater's point-major replay for reads of the
    accumulator — except that pure accumulations (dst also a source with
    the same walk) are order-insensitive for associative ops; we accept
    only the fully parallel case to stay conservative.
    """
    if sorted(order) != list(range(len(nest.loops))):
        raise CompileError(f"{list(order)} is not a permutation of nest levels")
    if not is_pointwise_parallel(nest):
        raise CompileError(
            "interchange on a nest with a shared-destination dependence")
    loops = [nest.loops[i] for i in order]
    return Nest(loops=loops, body=list(nest.body), cast_to=nest.cast_to)


def fission(nest: Nest) -> List[Nest]:
    """Split an N-instruction body into N single-instruction nests.

    Legality (checked): instruction-major order equals point-major order
    when no instruction reads, at point p, a location that a *later*
    instruction writes at any point — conservatively enforced as: every
    read of a namespace written by a later instruction must be the same
    exact walk (read-after-write of the same element is fine because it
    is then produced by an *earlier* instruction, which fission keeps
    earlier).
    """
    loop_vars = [v for v, _ in nest.loops]
    for i, stmt in enumerate(nest.body):
        for later in nest.body[i + 1:]:
            dst = _writes(later)
            for read in _reads(stmt):
                if not _may_overlap(read, dst):
                    continue
                if _same_walk(read, dst, loop_vars):
                    # stmt reads what `later` will overwrite at the same
                    # point: point-major order sees the old value only
                    # within the point, instruction-major sees all-new.
                    raise CompileError(
                        "fission would break a write-after-read hazard")
                # Different walks over the same namespace: require
                # disjoint address extents to rule out cross-point
                # hazards (a reversed or scalar walk can alias a region
                # whose base address looks unrelated).
                if _extents_overlap(read, dst, nest.loops):
                    raise CompileError(
                        "fission cannot prove independence of overlapping "
                        "walks")
            # Read-after-write: `later` consuming what `stmt` produced is
            # point-wise forwarding, legal only through an injective walk
            # (distinct points, distinct addresses); any other overlap
            # changes which point's value the consumer observes.
            produced = _writes(stmt)
            for read in _reads(later):
                if not _may_overlap(produced, read):
                    continue
                if _same_walk(produced, read, loop_vars):
                    if not _injective_walk(produced, nest.loops):
                        raise CompileError(
                            "fission would collapse per-point forwarding "
                            "through a non-injective walk")
                elif _extents_overlap(produced, read, nest.loops):
                    raise CompileError(
                        "fission cannot prove independence of overlapping "
                        "walks")
            # Write-after-write under different walks: the surviving
            # value per address depends on interleaving order.
            if (_may_overlap(produced, dst)
                    and not _same_walk(produced, dst, loop_vars)
                    and _extents_overlap(produced, dst, nest.loops)):
                raise CompileError(
                    "fission cannot prove independence of overlapping "
                    "walks")
    return [Nest(loops=list(nest.loops), body=[stmt], cast_to=nest.cast_to)
            for stmt in nest.body]


def fissionable(nest: Nest) -> bool:
    try:
        fission(nest)
    except CompileError:
        return False
    return True
