"""Loop transformations (Section 6, "Dependency relaxation").

The Tandem Processor has no hardware dependency checking; the compiler
guarantees hazard-freedom. Two classic transforms from the paper:

* **loop interchange** — reorders nest levels (e.g. moving a reduction
  outward so lanes sweep independent outputs); legal when the body is
  point-wise independent across the interchanged levels.
* **loop fission** — splits a multi-instruction body into consecutive
  single-instruction nests; legal when later body instructions only
  consume values earlier instructions produced *at the same iteration
  point* (exactly the discipline the templates follow).

Legality is decided by :mod:`repro.analysis.deps.nest` — the single
dependence analysis shared with the verifier — so the predicate that
licenses a transform here is the same one translation validation
re-checks against the lowered binary. This module only applies the
rewrites and raises :class:`CompileError` on the first blocker, so
transforms fail loudly instead of miscompiling.
"""

from __future__ import annotations

from typing import List, Sequence

from .ir import CompileError, Nest


def _deps():
    # Imported lazily: repro.analysis.__init__ eagerly pulls in the DSE
    # stack, which imports the compiler — a module-level import here
    # would be circular.
    from ..analysis import deps
    return deps


def is_pointwise_parallel(nest: Nest) -> bool:
    """True when every iteration point is independent of every other.

    Delegates to :func:`repro.analysis.deps.is_pointwise_parallel`:
    each body instruction's destination walks every loop level the nest
    iterates (no stride-0 accumulation into a shared location), so
    distinct points write distinct elements.
    """
    return _deps().is_pointwise_parallel(nest)


def interchange(nest: Nest, order: Sequence[int]) -> Nest:
    """Reorder loop levels by ``order`` (a permutation of level indices).

    Raises :class:`CompileError` when the nest carries a loop-level
    dependence (an accumulation), where reordering would change results
    relative to the Code Repeater's point-major replay for reads of the
    accumulator — except that pure accumulations (dst also a source with
    the same walk) are order-insensitive for associative ops; we accept
    only the fully parallel case to stay conservative.
    """
    blockers = _deps().interchange_blockers(nest, order)
    if blockers:
        raise CompileError(blockers[0])
    loops = [nest.loops[i] for i in order]
    return Nest(loops=loops, body=list(nest.body), cast_to=nest.cast_to)


def fission(nest: Nest) -> List[Nest]:
    """Split an N-instruction body into N single-instruction nests.

    Legality (checked): instruction-major order equals point-major
    order. Per dependence class of the body — a same-walk WAR breaks
    (the old value survives only within a point), a same-walk RAW
    forwards legally only through an injective walk, and any pair of
    distinct walks must have provably disjoint address extents.
    """
    blockers = _deps().fission_blockers(nest)
    if blockers:
        raise CompileError(blockers[0])
    return [Nest(loops=list(nest.loops), body=[stmt], cast_to=nest.cast_to)
            for stmt in nest.body]


def fissionable(nest: Nest) -> bool:
    return not _deps().fission_blockers(nest)
