"""Loop transformations (Section 6, "Dependency relaxation").

The Tandem Processor has no hardware dependency checking; the compiler
guarantees hazard-freedom. Two classic transforms from the paper:

* **loop interchange** — reorders nest levels (e.g. moving a reduction
  outward so lanes sweep independent outputs); legal when the body is
  point-wise independent across the interchanged levels.
* **loop fission** — splits a multi-instruction body into consecutive
  single-instruction nests; legal when later body instructions only
  consume values earlier instructions produced *at the same iteration
  point* (exactly the discipline the templates follow).

Both operate on the :class:`~repro.compiler.ir.Nest` IR and preserve the
machine-visible result; a hazard checker validates the required
independence so transforms fail loudly instead of miscompiling.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from .ir import CompileError, Nest, Stmt, TRef


def _writes(stmt: Stmt) -> TRef:
    return stmt.dst

def _reads(stmt: Stmt) -> List[TRef]:
    refs = [stmt.src1]
    if stmt.src2 is not None:
        refs.append(stmt.src2)
    return refs


def _same_walk(a: TRef, b: TRef, loop_vars: Sequence[str]) -> bool:
    """True when two refs address the same element at every point."""
    return (a.ns == b.ns and a.base == b.base
            and all(a.stride(v) == b.stride(v) for v in loop_vars))


def _may_overlap(a: TRef, b: TRef) -> bool:
    """Conservative aliasing: same namespace means possible overlap,
    unless both walk identical strides from different bases (disjoint
    buffers the allocator laid out)."""
    if a.ns != b.ns:
        return False
    return True


def is_pointwise_parallel(nest: Nest) -> bool:
    """True when every iteration point is independent of every other.

    Sufficient condition used here: each body instruction's destination
    walks *every* loop level the nest iterates (no stride-0 accumulation
    into a shared location), so distinct points write distinct elements.
    """
    loop_vars = [v for v, _ in nest.loops]
    for stmt in nest.body:
        dst = _writes(stmt)
        for var, count in nest.loops:
            if count > 1 and dst.stride(var) == 0:
                return False
    return True


def interchange(nest: Nest, order: Sequence[int]) -> Nest:
    """Reorder loop levels by ``order`` (a permutation of level indices).

    Raises :class:`CompileError` when the nest carries a loop-level
    dependence (an accumulation), where reordering would change results
    relative to the Code Repeater's point-major replay for reads of the
    accumulator — except that pure accumulations (dst also a source with
    the same walk) are order-insensitive for associative ops; we accept
    only the fully parallel case to stay conservative.
    """
    if sorted(order) != list(range(len(nest.loops))):
        raise CompileError(f"{list(order)} is not a permutation of nest levels")
    if not is_pointwise_parallel(nest):
        raise CompileError(
            "interchange on a nest with a shared-destination dependence")
    loops = [nest.loops[i] for i in order]
    return Nest(loops=loops, body=list(nest.body), cast_to=nest.cast_to)


def fission(nest: Nest) -> List[Nest]:
    """Split an N-instruction body into N single-instruction nests.

    Legality (checked): instruction-major order equals point-major order
    when no instruction reads, at point p, a location that a *later*
    instruction writes at any point — conservatively enforced as: every
    read of a namespace written by a later instruction must be the same
    exact walk (read-after-write of the same element is fine because it
    is then produced by an *earlier* instruction, which fission keeps
    earlier).
    """
    loop_vars = [v for v, _ in nest.loops]
    for i, stmt in enumerate(nest.body):
        for later in nest.body[i + 1:]:
            dst = _writes(later)
            for read in _reads(stmt):
                if not _may_overlap(read, dst):
                    continue
                if _same_walk(read, dst, loop_vars):
                    # stmt reads what `later` will overwrite at the same
                    # point: point-major order sees the old value only
                    # within the point, instruction-major sees all-new.
                    raise CompileError(
                        "fission would break a write-after-read hazard")
                # Different walks over the same namespace: require
                # disjoint base regions to rule out cross-point hazards.
                if read.base == dst.base:
                    raise CompileError(
                        "fission cannot prove independence of overlapping "
                        "walks")
    return [Nest(loops=list(nest.loops), body=[stmt], cast_to=nest.cast_to)
            for stmt in nest.body]


def fissionable(nest: Nest) -> bool:
    try:
        fission(nest)
    except CompileError:
        return False
    return True
