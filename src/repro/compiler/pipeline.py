"""Composable, declarative compiler pass pipeline.

The seed compiler applied one fixed flow to every model: greedy maximal
fusion (``fusion.form_blocks``), power-of-two tile doubling
(``tiling.search_tiles``) and no loop transformations. This module turns
those decisions into a declarative :class:`PipelineConfig` — a small,
hashable record of optimization knobs — executed by a
:class:`PassPipeline` of ``compiler_pass``-decorated stages (the shape
of Devito's ``dle_pass`` rewriter pipeline):

* ``fuse_blocks`` — GEMM→non-GEMM fusion depth and block splitting
  (:mod:`repro.compiler.fusion`),
* ``loop_fission`` — split multi-instruction nest bodies where the
  hazard checker proves it legal (:func:`repro.compiler.transforms.fission`),
* ``loop_interchange`` — reorder nest levels so a unit-stride loop runs
  innermost and vectorizes across the SIMD lanes, guarded by
  :func:`repro.compiler.transforms.is_pointwise_parallel`,
* tile-shape choice — the ``tile_search`` knob selects the
  :func:`repro.compiler.tiling.search_tiles` strategy (``"pow2"``
  doubling vs ``"exact"`` binary refinement).

The default config reproduces the fixed flow bit-for-bit; non-default
configs are searched per model by :mod:`repro.compiler.autotune` and
scored with the cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from functools import wraps
from typing import Dict, List, Optional, Sequence, Tuple

from .fusion import Block, split_at_depth
from .ir import CompileError, Nest, TileContext
from .transforms import fissionable, fission, interchange

#: Bump when knob semantics change so cached autotune verdicts and
#: pipeline-keyed compile artifacts from older code versions miss.
PIPELINE_VERSION = 1

#: Legal values per knob, in deterministic search order. This is the
#: domain :mod:`repro.compiler.autotune` explores; the first value of
#: each knob is the seed compiler's fixed choice.
KNOB_SPACE: Dict[str, Tuple] = {
    "fusion_depth": (None, 1, 2, 4),
    "tile_search": ("pow2", "exact"),
    "fission": (False, True),
    "interchange": (False, True),
}


@dataclass(frozen=True)
class PipelineConfig:
    """Declarative description of one compile pipeline.

    Field semantics:

    * ``fusion_depth`` — maximum non-GEMM operators bundled behind their
      producing GEMM; remaining operators form depth-sized Tandem-only
      blocks. ``None`` fuses everything up to the next GEMM (seed
      behavior).
    * ``tile_search`` — ``"pow2"`` doubles the tile count until the
      block fits on-chip (seed behavior); ``"exact"`` additionally
      binary-refines down to the smallest feasible count, trading a few
      extra compile attempts for fewer per-tile overheads.
    * ``fission`` — split multi-instruction nest bodies into
      single-instruction nests where the write-after-read hazard check
      proves instruction-major order safe.
    * ``interchange`` — move a unit-stride loop level innermost when the
      current innermost level defeats SIMD vectorization, guarded by the
      point-wise-parallelism legality check.
    """

    fusion_depth: Optional[int] = None
    tile_search: str = "pow2"
    fission: bool = False
    interchange: bool = False

    def __post_init__(self):
        if self.tile_search not in KNOB_SPACE["tile_search"]:
            raise ValueError(f"unknown tile_search {self.tile_search!r}")
        if self.fusion_depth is not None and self.fusion_depth < 1:
            raise ValueError("fusion_depth must be None or >= 1")

    @property
    def is_default(self) -> bool:
        """True when every knob matches the seed compiler's fixed flow."""
        return self == PipelineConfig()

    def as_dict(self) -> Dict:
        """JSON-ready knob dict (round-trips via :meth:`from_dict`)."""
        return {
            "fusion_depth": self.fusion_depth,
            "tile_search": self.tile_search,
            "fission": self.fission,
            "interchange": self.interchange,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PipelineConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def label(self) -> str:
        """Compact one-line rendering, e.g. ``depth=2/tiles=exact``."""
        depth = "max" if self.fusion_depth is None else str(self.fusion_depth)
        parts = [f"depth={depth}", f"tiles={self.tile_search}"]
        if self.fission:
            parts.append("fission")
        if self.interchange:
            parts.append("interchange")
        return "/".join(parts)

    def describe(self) -> List[str]:
        """Human-readable stage list for ``repro compile --explain``."""
        depth = ("unbounded (fuse to the next GEMM)"
                 if self.fusion_depth is None
                 else f"at most {self.fusion_depth} ops per GEMM")
        return [
            f"fuse_blocks:      GEMM→non-GEMM fusion depth {depth}",
            f"tile_search:      {self.tile_search} "
            + ("(doubling only)" if self.tile_search == "pow2"
               else "(doubling + binary refinement to the minimum)"),
            f"loop_fission:     {'on (where hazard-free)' if self.fission else 'off'}",
            f"loop_interchange: {'on (where point-wise parallel)' if self.interchange else 'off'}",
        ]


def knob_space_size() -> int:
    """Number of distinct :class:`PipelineConfig` points in the domain."""
    size = 1
    for values in KNOB_SPACE.values():
        size *= len(values)
    return size


def all_configs() -> List[PipelineConfig]:
    """Every config in :data:`KNOB_SPACE`, in deterministic order."""
    out: List[PipelineConfig] = []
    for depth in KNOB_SPACE["fusion_depth"]:
        for tile_search in KNOB_SPACE["tile_search"]:
            for fiss in KNOB_SPACE["fission"]:
                for ichg in KNOB_SPACE["interchange"]:
                    out.append(PipelineConfig(
                        fusion_depth=depth, tile_search=tile_search,
                        fission=fiss, interchange=ichg))
    return out


def compiler_pass(func):
    """Decorator marking a :class:`PassPipeline` stage (à la ``dle_pass``).

    The wrapper records ``(stage name, application count)`` into the
    state's log and bumps a ``compiler.pipeline.<stage>`` telemetry
    counter, so ``--explain`` and traces can show exactly what each
    stage did to the program.
    """
    name = func.__name__.lstrip("_")

    @wraps(func)
    def wrapper(self, state, *args, **kwargs):
        from ..telemetry import get_telemetry
        applied = func(self, state, *args, **kwargs)
        state.log.append((name, int(applied)))
        tel = get_telemetry()
        if tel.enabled and applied:
            tel.count(f"compiler.pipeline.{name}", int(applied))
        return applied

    wrapper.is_compiler_pass = True
    return wrapper


@dataclass
class PipelineState:
    """Mutable state threaded through one pipeline run.

    The block phase reads/writes ``blocks``; the nest phase reads/writes
    one tile's ``ctx`` and its operator-attribution ``op_ranges`` (event
    index ranges that must be remapped when passes insert or split
    events). ``log`` accumulates ``(stage, applied)`` pairs across both
    phases.
    """

    config: PipelineConfig
    blocks: Optional[List[Block]] = None
    ctx: Optional[TileContext] = None
    op_ranges: Optional[List[Tuple[str, int, int]]] = None
    log: List[Tuple[str, int]] = field(default_factory=list)


class PassPipeline:
    """Executes the configured passes over blocks and loop nests."""

    def __init__(self, config: PipelineConfig):
        self.config = config

    # -- block phase -------------------------------------------------------
    def run_blocks(self, state: PipelineState) -> List[Block]:
        """Apply block-level passes; returns the rewritten block list."""
        self._fuse_blocks(state)
        return state.blocks

    @compiler_pass
    def _fuse_blocks(self, state: PipelineState) -> int:
        """Cap GEMM→non-GEMM fusion depth, splitting over-deep bundles."""
        depth = self.config.fusion_depth
        if depth is None:
            return 0
        splits = 0
        rewritten: List[Block] = []
        for block in state.blocks:
            parts = split_at_depth(block, depth)
            splits += len(parts) - 1
            rewritten.extend(parts)
        state.blocks = rewritten
        return splits

    # -- nest phase --------------------------------------------------------
    def run_nests(self, state: PipelineState) -> None:
        """Apply nest-level passes to one tile's emitted IR in place."""
        if self.config.fission:
            self._loop_fission(state)
        if self.config.interchange:
            self._loop_interchange(state)

    @compiler_pass
    def _loop_fission(self, state: PipelineState) -> int:
        """Split legal multi-instruction nests into per-instruction nests."""
        applied = 0

        def rewrite(event):
            nonlocal applied
            if (isinstance(event, Nest) and len(event.body) > 1
                    and fissionable(event)):
                applied += 1
                parts = fission(event)
                # Record the per-point forwarding walks this split relies
                # on; translation validation re-derives their injectivity
                # against the lowered binary. Lazy import: the analysis
                # package pulls the compiler in.
                from ..analysis.deps import forwarding_claims
                state.ctx.dep_claims.extend(forwarding_claims(event, parts))
                return parts
            return [event]

        _rewrite_events(state, rewrite)
        return applied

    @compiler_pass
    def _loop_interchange(self, state: PipelineState) -> int:
        """Move a unit-stride level innermost where legal and profitable."""
        applied = 0

        def rewrite(event):
            nonlocal applied
            if not isinstance(event, Nest):
                return [event]
            order = vector_order(event)
            if order is None:
                return [event]
            try:
                swapped = interchange(event, order)
            except CompileError:
                return [event]  # legality check rejected the reorder
            applied += 1
            return [swapped]

        _rewrite_events(state, rewrite)
        return applied


def vector_order(nest: Nest) -> Optional[Sequence[int]]:
    """A loop order that lets the nest body vectorize, if one exists.

    The pipeline model (Section 4.1) vectorizes the innermost level only
    when every operand walks it with stride 0 or 1. When the current
    innermost level defeats that and another level satisfies it for
    every reference, return the permutation moving that level (the
    largest such, for the fewest issue chunks) innermost; otherwise
    return ``None``.
    """
    if len(nest.loops) < 2:
        return None
    refs = []
    for stmt in nest.body:
        refs.append(stmt.dst)
        refs.append(stmt.src1)
        if stmt.src2 is not None:
            refs.append(stmt.src2)

    def unit_stride(var: str) -> bool:
        return all(ref.stride(var) in (0, 1) for ref in refs)

    inner_var = nest.loops[-1][0]
    if unit_stride(inner_var):
        return None
    best = None
    for i, (var, count) in enumerate(nest.loops[:-1]):
        if count > 1 and unit_stride(var):
            if best is None or count > nest.loops[best][1]:
                best = i
    if best is None:
        return None
    return [j for j in range(len(nest.loops)) if j != best] + [best]


def _rewrite_events(state: PipelineState, rewrite) -> None:
    """Map ``rewrite`` over the tile's event list, remapping op ranges.

    ``rewrite(event)`` returns the replacement event list (length >= 1
    for 1:1 passes, > 1 for splitting passes). Operator attribution
    ranges are half-open event-index ranges, so they are translated
    through the old-index → new-index prefix map.
    """
    ctx = state.ctx
    new_events: List[object] = []
    prefix: List[int] = []  # prefix[i] = new index of old event i
    for event in ctx.events:
        prefix.append(len(new_events))
        new_events.extend(rewrite(event))
    prefix.append(len(new_events))
    ctx.events = new_events
    ctx.nests = [e for e in new_events if isinstance(e, Nest)]
    if state.op_ranges is not None:
        state.op_ranges = [(label, prefix[start], prefix[end])
                           for label, start, end in state.op_ranges]
