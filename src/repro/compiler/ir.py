"""Compiler intermediate representation: loop nests over scratchpad views.

Operation templates (``templates.py``) emit this IR; the lowering pass
turns it into Figure 12 instruction words plus the analytic metadata.

The IR is deliberately close to the hardware: a :class:`TRef` is exactly
one Iterator Table entry (base offset + stride per loop level), a
:class:`Stmt` is one 32-bit compute instruction, and a :class:`Nest` is
one Code Repeater configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..isa import (
    AluFunc,
    CalculusFunc,
    ComparisonFunc,
    Namespace,
    Opcode,
)
from ..simulator.params import TandemParams
from .integer_ops import FRAC_BITS, Step


class CompileError(RuntimeError):
    """Raised when an operator cannot be lowered (capacity, shape, ...)."""


@dataclass(frozen=True)
class TRef:
    """A strided view over one namespace: one Iterator Table entry."""

    ns: Namespace
    base: int
    strides: Mapping[str, int] = field(default_factory=dict)

    def stride(self, var: str) -> int:
        return self.strides.get(var, 0)

    def key(self, loop_vars: Sequence[str]) -> Tuple:
        return (self.ns, self.base, tuple(self.stride(v) for v in loop_vars))


@dataclass(frozen=True)
class Stmt:
    """One primitive compute instruction in a loop body."""

    opcode: Opcode
    func: int
    dst: TRef
    src1: TRef
    src2: Optional[TRef] = None


@dataclass
class Nest:
    """One Code Repeater activation: ordered loops + straight-line body.

    ``cast_to`` marks a nest whose write-back saturates into a narrower
    fixed-point type (lowered with a bracketing DATATYPE_CAST pair).
    """

    loops: List[Tuple[str, int]]
    body: List[Stmt]
    cast_to: Optional[str] = None

    @property
    def points(self) -> int:
        return prod(count for _, count in self.loops) if self.loops else 1


@dataclass(frozen=True)
class TransferSlot:
    """A Data Access Engine transfer the lowered program will trigger.

    The functional runner resolves it into a
    :class:`~repro.simulator.dae.TileTransfer`; the analytic model only
    needs ``nbytes``. ``pre_reshape``/``perm``/``pad`` describe the
    strided gather/scatter pattern the DAE is configured with.
    """

    direction: str                 # "ld" | "st"
    tensor: str                    # DRAM tensor name
    ns: Namespace
    base: int
    elements: int
    element_bytes: int = 4
    pre_reshape: Optional[Tuple[int, ...]] = None
    perm: Optional[Tuple[int, ...]] = None
    pad: Optional[Tuple[Tuple[int, int], ...]] = None
    pad_value: int = 0
    #: Optional (start, stop) per DRAM-tensor dimension selecting the tile.
    region: Optional[Tuple[Tuple[int, int], ...]] = None
    #: Real DRAM elements moved (padding is generated on-chip, not
    #: fetched); defaults to ``elements`` for unpadded transfers.
    data_elements: Optional[int] = None

    @property
    def nbytes(self) -> int:
        moved = self.data_elements if self.data_elements is not None             else self.elements
        return moved * self.element_bytes


@dataclass(frozen=True)
class PermuteSlot:
    """One permute-engine activation (on-chip layout transformation)."""

    src_ns: Namespace
    src_base: int
    dst_ns: Namespace
    dst_base: int
    shape: Tuple[int, ...]
    perm: Tuple[int, ...]
    cross_lane: bool = True

    @property
    def words(self) -> int:
        return prod(self.shape)


@dataclass(frozen=True)
class Resident:
    """An on-chip value: where a tensor (tile) currently lives."""

    ns: Namespace
    base: int
    shape: Tuple[int, ...]   # logical shape of the resident tile
    layout: Tuple[int, ...]  # permutation applied relative to logical shape

    @property
    def elements(self) -> int:
        return prod(self.shape)


class TileContext:
    """Per-tile compilation state: allocation, residency, emitted IR."""

    def __init__(self, params: TandemParams, frac_bits: int = FRAC_BITS,
                 strict: bool = True, special_functions: bool = False):
        self.params = params
        self.frac_bits = frac_bits
        #: VPU emulation: complex math executes as one special-function
        #: instruction instead of an integer-primitive sequence
        #: (cost-model only; the Tandem Processor has no such hardware).
        self.special_functions = special_functions
        #: strict=True (functional, tiles == 1) requires exact residency
        #: chaining; strict=False (cost mode, tiles > 1) lets consumers
        #: whose tile shape disagrees with the producer's re-fetch the
        #: tile through the DAE (the halo/layout re-fetch that uniform
        #: tiling across a fused block costs in practice).
        self.strict = strict
        self._free = {
            Namespace.IBUF1: 0,
            Namespace.IBUF2: 0,
        }
        self._capacity = {
            Namespace.IBUF1: params.interim_buf_words,
            Namespace.IBUF2: params.interim_buf_words,
        }
        self.imm_values: List[int] = []
        self._imm_slots: Dict[int, int] = {}
        self.nests: List[Nest] = []
        self.transfers: List[TransferSlot] = []
        self.permutes: List[PermuteSlot] = []
        #: Nests, transfers and permutes in emission order — the order
        #: the lowered instruction stream must trigger them.
        self.events: List[object] = []
        self.uses_cast: bool = False
        self._residency: Dict[str, Resident] = {}
        #: Zero-copy renames (Reshape/Flatten of off-chip tensors).
        self.dram_alias: Dict[str, str] = {}
        # Forwarding assertions recorded by the fission pass:
        # (producer nest, consumer nest, Walk) triples that translation
        # validation re-checks against the lowered binary.
        self.dep_claims: List[Tuple[object, object, object]] = []
        self.peak_words = 0

    # -- allocation -------------------------------------------------------------
    def alloc(self, words: int) -> Tuple[Namespace, int]:
        """First-fit allocation across the two Interim BUFs."""
        for ns in (Namespace.IBUF1, Namespace.IBUF2):
            if self._free[ns] + words <= self._capacity[ns]:
                base = self._free[ns]
                self._free[ns] += words
                self.peak_words = max(
                    self.peak_words,
                    self._free[Namespace.IBUF1] + self._free[Namespace.IBUF2])
                return ns, base
        raise CompileError(
            f"tile needs {words} more words; Interim BUFs exhausted "
            f"({self._free[Namespace.IBUF1]}/{self._capacity[Namespace.IBUF1]} + "
            f"{self._free[Namespace.IBUF2]}/{self._capacity[Namespace.IBUF2]})"
        )

    def imm(self, value: int) -> TRef:
        """Intern a 32-bit constant into an IMM BUF slot."""
        value = int(value)
        if value not in self._imm_slots:
            if len(self.imm_values) >= self.params.imm_slots:
                raise CompileError("IMM BUF exhausted (32 slots)")
            self._imm_slots[value] = len(self.imm_values)
            self.imm_values.append(value)
        return TRef(Namespace.IMM, self._imm_slots[value], {})

    # -- residency --------------------------------------------------------------
    def resident(self, name: str) -> Optional[Resident]:
        return self._residency.get(name)

    def set_resident(self, name: str, res: Resident) -> None:
        self._residency[name] = res

    def alias(self, new_name: str, old_name: str,
              shape: Optional[Tuple[int, ...]] = None) -> None:
        old = self._residency.get(old_name)
        if old is not None:
            self._residency[new_name] = Resident(
                old.ns, old.base, shape or old.shape, old.layout)

    def source(self, name: str, shape: Tuple[int, ...],
               layout: Optional[Tuple[int, ...]] = None,
               pad: Optional[Tuple[Tuple[int, int], ...]] = None,
               pad_value: int = 0,
               element_bytes: int = 4) -> Resident:
        """Make ``name`` resident in ``layout`` (a permutation of shape).

        If the tensor is already on-chip in the right layout this is
        free; in the wrong layout, the permute engine relayouts it; if
        off-chip, the Data Access Engine loads it (with the strided
        gather pattern folded into the transfer).
        """
        shape = tuple(shape)
        layout = tuple(layout) if layout is not None else tuple(range(len(shape)))
        if pad is not None and all(lo == 0 and hi == 0 for lo, hi in pad):
            pad = None
        existing = self._residency.get(name)
        if existing is not None and prod(existing.shape) != prod(shape):
            if self.strict:
                raise CompileError(
                    f"resident tensor {name!r} has {prod(existing.shape)} "
                    f"elements but the consumer expects {prod(shape)}")
            if prod(existing.shape) >= prod(shape):
                # Cost mode: the producer's tile covers the consumer's;
                # reinterpret in place (uniform tiling would make the
                # shapes agree exactly).
                existing = Resident(existing.ns, existing.base, shape,
                                    tuple(range(len(shape))))
                self._residency[name] = existing
            else:
                existing = None  # consumer needs a larger halo: re-fetch
        if existing is not None and pad is not None:
            return self._pad_resident(name, existing, shape, layout, pad,
                                      pad_value)
        if existing is not None and pad is None:
            if len(existing.shape) == len(shape) and existing.layout == layout:
                return existing
            # Normalize to C-contiguous, reinterpret to the consumer's
            # logical shape (free), then relayout if a permutation is
            # still required.
            ident_existing = tuple(range(len(existing.shape)))
            if existing.layout != ident_existing:
                existing = self._relayout(name, existing, ident_existing)
            existing = Resident(existing.ns, existing.base, shape,
                                tuple(range(len(shape))))
            self._residency[name] = existing
            if layout == tuple(range(len(shape))):
                return existing
            return self._relayout(name, existing, layout)
        laid_shape = _permute_shape(shape, layout, pad)
        words = prod(laid_shape)
        ns, base = self.alloc(words)
        perm = layout if layout != tuple(range(len(shape))) else None
        self.add_transfer(TransferSlot(
            direction="ld", tensor=self.dram_alias.get(name, name),
            ns=ns, base=base, elements=words,
            element_bytes=element_bytes,
            pre_reshape=shape, perm=perm, pad=pad, pad_value=pad_value,
            data_elements=prod(shape)))
        if pad is not None:
            # A padded copy is private to the requesting operator: it is
            # returned in its laid-out (already-permuted, padded) shape
            # and never registered as the tensor's residency.
            return Resident(ns, base, laid_shape, tuple(range(len(laid_shape))))
        res = Resident(ns, base, shape, layout)
        self._residency[name] = res
        return res

    def _pad_resident(self, name: str, existing: Resident,
                      shape: Tuple[int, ...], layout: Tuple[int, ...],
                      pad: Tuple[Tuple[int, int], ...],
                      pad_value: int) -> Resident:
        """Materialize a padded, relaid copy of an on-chip tensor.

        The Tandem Processor does this with two nests: a fill of the
        padded buffer with ``pad_value``, then a strided interior copy —
        the on-chip equivalent of the DAE's fill-on-load feature.
        """
        ident = tuple(range(len(existing.shape)))
        if existing.layout != ident:
            existing = self._relayout(name, existing, ident)
        existing = Resident(existing.ns, existing.base, shape, ident)

        padded_dims = [d + lo + hi for d, (lo, hi) in zip(shape, pad)]
        laid_shape = tuple(padded_dims[p] for p in layout)
        words = prod(laid_shape)
        ns, base = self.alloc(words)
        # 1. Fill with the pad value.
        self.nest([("i", words)], [Stmt(
            Opcode.ALU, int(AluFunc.MOVE),
            TRef(ns, base, {"i": 1}), self.imm(pad_value))])
        # 2. Strided interior copy.
        laid_strides = c_strides(laid_shape)
        dim_stride = {layout[j]: laid_strides[j] for j in range(len(layout))}
        base_off = sum(pad[d][0] * dim_stride[d] for d in range(len(shape)))
        src_strides = c_strides(existing.shape)
        loop_vars = [f"p{d}" for d in range(len(shape))]
        loops = list(zip(loop_vars, shape))
        dst = TRef(ns, base + base_off,
                   {loop_vars[d]: dim_stride[d] for d in range(len(shape))})
        src = TRef(existing.ns, existing.base,
                   {loop_vars[d]: src_strides[d] for d in range(len(shape))})
        self.nest(loops, [Stmt(Opcode.ALU, int(AluFunc.MOVE), dst, src)])
        return Resident(ns, base, laid_shape, tuple(range(len(laid_shape))))

    def _relayout(self, name: str, existing: Resident,
                  layout: Tuple[int, ...]) -> Resident:
        # Compose: data currently holds existing.layout; we want layout.
        # Permute engine moves it to a fresh buffer.
        current_shape = _permute_shape(existing.shape, existing.layout, None)
        inverse = _invert(existing.layout)
        rel_perm = tuple(inverse[p] for p in layout)
        words = prod(existing.shape)
        ns, base = self.alloc(words)
        self.add_permute(PermuteSlot(
            src_ns=existing.ns, src_base=existing.base,
            dst_ns=ns, dst_base=base,
            shape=current_shape, perm=rel_perm))
        res = Resident(ns, base, existing.shape, layout)
        self._residency[name] = res
        return res

    def dest(self, name: str, shape: Tuple[int, ...],
             layout: Optional[Tuple[int, ...]] = None) -> Resident:
        shape = tuple(shape)
        layout = tuple(layout) if layout is not None else tuple(range(len(shape)))
        words = prod(shape)
        ns, base = self.alloc(words)
        res = Resident(ns, base, shape, layout)
        self._residency[name] = res
        return res

    def store(self, name: str, element_bytes: int = 4) -> None:
        """Schedule the DAE to drain a resident tensor back to DRAM."""
        res = self._residency.get(name)
        if res is None:
            raise CompileError(f"cannot store non-resident tensor {name!r}")
        laid_shape = _permute_shape(res.shape, res.layout, None)
        perm = res.layout if res.layout != tuple(range(len(res.shape))) else None
        self.add_transfer(TransferSlot(
            direction="st", tensor=name, ns=res.ns, base=res.base,
            elements=res.elements, element_bytes=element_bytes,
            pre_reshape=tuple(res.shape), perm=perm))

    def add_transfer(self, slot: TransferSlot) -> None:
        self.transfers.append(slot)
        self.events.append(slot)

    def add_permute(self, slot: PermuteSlot) -> None:
        self.permutes.append(slot)
        self.events.append(slot)

    # -- IR emission -------------------------------------------------------------
    def nest(self, loops: Sequence[Tuple[str, int]], body: Sequence[Stmt]) -> Nest:
        # Degenerate single-iteration levels carry no information; drop
        # them (keeping at least one level so the Code Repeater always
        # has a configuration).
        loops = [(var, int(count)) for var, count in loops if count > 1]
        if not loops:
            loops = [("i", 1)]
        if len(loops) > self.params.max_loop_levels:
            raise CompileError(
                f"loop nest of depth {len(loops)} exceeds the 8-level Code Repeater")
        nest = Nest(list(loops), list(body))
        self.nests.append(nest)
        self.events.append(nest)
        return nest

    def temp(self, elements: int) -> Resident:
        ns, base = self.alloc(elements)
        return Resident(ns, base, (elements,), (0,))


def _permute_shape(shape: Tuple[int, ...], layout: Tuple[int, ...],
                   pad: Optional[Tuple[Tuple[int, int], ...]]) -> Tuple[int, ...]:
    padded = list(shape)
    if pad is not None:
        padded = [d + lo + hi for d, (lo, hi) in zip(shape, pad)]
    return tuple(padded[p] for p in layout)


def _invert(perm: Tuple[int, ...]) -> Tuple[int, ...]:
    inverse = [0] * len(perm)
    for i, p in enumerate(perm):
        inverse[p] = i
    return tuple(inverse)


def c_strides(shape: Sequence[int]) -> List[int]:
    """C-order strides in elements."""
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return strides


def view_ref(res: Resident, loop_vars: Sequence[str],
             var_strides: Mapping[str, int], base_offset: int = 0) -> TRef:
    """Build a TRef into a resident buffer with explicit strides."""
    return TRef(res.ns, res.base + base_offset,
                {v: var_strides.get(v, 0) for v in loop_vars})


def broadcast_views(out_shape: Sequence[int],
                    in_shapes: Sequence[Sequence[int]],
                    prefix: str = "d") -> Tuple[List[Tuple[str, int]],
                                                List[Dict[str, int]],
                                                Dict[str, int]]:
    """Derive a fused loop nest for a broadcast element-wise operation.

    Returns ``(loops, per-input stride maps, output stride map)``. Axes
    are collapsed wherever every operand is contiguous across the axis
    boundary, so e.g. two same-shape tensors collapse to a single loop.
    """
    out_shape = list(out_shape)
    rank = len(out_shape)
    padded = []
    for shape in in_shapes:
        shape = list(shape)
        shape = [1] * (rank - len(shape)) + shape
        padded.append(shape)

    def strides_for(shape: List[int]) -> List[int]:
        strides = c_strides(shape)
        return [0 if dim == 1 else stride for dim, stride in zip(shape, strides)]

    out_strides = c_strides(out_shape)
    in_strides = [strides_for(s) for s in padded]

    # Collapse adjacent axes d, d+1 when every operand satisfies
    # stride[d] == shape[d+1] * stride[d+1] (including the 0/0 broadcast
    # case).
    dims = list(range(rank))
    groups: List[List[int]] = []
    for d in dims:
        if groups and _mergeable(groups[-1][-1], d, out_shape,
                                 [out_strides] + in_strides):
            groups[-1].append(d)
        else:
            groups.append([d])

    loops: List[Tuple[str, int]] = []
    out_map: Dict[str, int] = {}
    in_maps: List[Dict[str, int]] = [dict() for _ in in_shapes]
    for gi, group in enumerate(groups):
        count = prod(out_shape[d] for d in group)
        if count == 1 and len(groups) > 1:
            continue  # degenerate axis (e.g. the batch-1 dimension)
        var = f"{prefix}{gi}"
        loops.append((var, count))
        last = group[-1]
        out_map[var] = out_strides[last]
        for mi, strides in enumerate(in_strides):
            in_maps[mi][var] = strides[last]
    return loops, in_maps, out_map


def _mergeable(d: int, d_next: int, out_shape: List[int],
               stride_sets: List[List[int]]) -> bool:
    size_next = out_shape[d_next]
    for strides in stride_sets:
        a, b = strides[d], strides[d_next]
        if a == 0 and b == 0:
            continue
        if a == size_next * b and b != 0:
            continue
        return False
    return True


# ---------------------------------------------------------------------------
# Recipe -> loop-body translation with temp-buffer reuse
# ---------------------------------------------------------------------------
_ALU_BY_NAME = {f.name.lower(): f for f in AluFunc}
_CALC_BY_NAME = {f.name.lower(): f for f in CalculusFunc}


def recipe_body(ctx: TileContext, steps: Sequence[Step], src: TRef, dst: TRef,
                loops: Sequence[Tuple[str, int]],
                tile_elements: int,
                temp_strides: Optional[Mapping[str, int]] = None,
                temp_elements: Optional[int] = None) -> List[Stmt]:
    """Translate a straight-line integer recipe into body statements.

    Intermediates become tile-sized scratch buffers with the same strides
    as ``dst``; buffers are reused after an intermediate's last use
    (classic linear-scan), which bounds scratch demand to the recipe's
    maximum liveness (3-5 buffers for I-BERT kernels).
    """
    loop_vars = [v for v, _ in loops]
    last_use: Dict[str, int] = {}
    for i, step in enumerate(steps):
        for ref in (step.a, step.b):
            if isinstance(ref, str):
                last_use[ref] = i

    free_slots: List[TRef] = []
    values: Dict[str, TRef] = {"x": src}
    out_name = steps[-1].out

    strides = dict(temp_strides) if temp_strides is not None else {
        v: dst.stride(v) for v in loop_vars}
    words = temp_elements if temp_elements is not None else tile_elements

    def make_temp() -> TRef:
        if free_slots:
            return free_slots.pop()
        ns, base = ctx.alloc(words)
        return TRef(ns, base, strides)

    def resolve(ref) -> TRef:
        if isinstance(ref, str):
            return values[ref]
        return ctx.imm(ref)

    body: List[Stmt] = []
    temp_of: Dict[str, TRef] = {}
    for i, step in enumerate(steps):
        a = resolve(step.a)
        b = resolve(step.b) if step.b is not None else None
        target = dst if step.out == out_name and i == len(steps) - 1 else None
        if target is None:
            target = make_temp()
            temp_of[step.out] = target
        if step.func in _CALC_BY_NAME and step.func in ("abs", "sign", "neg"):
            body.append(Stmt(Opcode.CALCULUS, int(_CALC_BY_NAME[step.func]),
                             target, a))
        else:
            body.append(Stmt(Opcode.ALU, int(_ALU_BY_NAME[step.func]),
                             target, a, b if b is not None else None))
        values[step.out] = target
        # Release temps whose value is dead after this step.
        for ref in (step.a, step.b):
            if (isinstance(ref, str) and last_use.get(ref) == i
                    and ref in temp_of and ref != step.out):
                free_slots.append(temp_of.pop(ref))
    return body
