"""Integer-only implementations of complex non-GEMM operators.

Section 3.4 / Section 6: the Tandem Processor has no special-function
hardware; the compiler translates Softmax, GeLU, Exp, Sqrt, Sigmoid,
Tanh, ... into sequences of primitive INT32 ops following I-BERT
(Kim et al., ICML'21) and gemmlowp.

This module is the single source of truth for those algorithms, in two
forms that must agree bit-exactly:

* numpy functions (``i_exp``, ``i_gelu``, ...) — the reference executor;
* primitive-op *recipes* (:func:`exp_recipe`, ...) — sequences of
  (func, operand-roles) steps the template layer turns into loop-nest
  bodies for the machine.

All values are INT32 fixed point with ``FRAC_BITS`` fractional bits;
every step wraps to 32 bits exactly like the machine's write-back path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

#: Default fixed-point precision: Q23.8.
FRAC_BITS = 8

#: Additive causal-attention mask: ``-(1 << (frac_bits +
#: CAUSAL_MASK_SHIFT))`` stamped over invisible score columns — far
#: enough below any realistic row maximum that ``i_exp`` underflows to
#: exactly zero, yet small enough that the max-subtract can never wrap
#: 32 bits.
CAUSAL_MASK_SHIFT = 12

# I-BERT polynomial coefficients.
_ERF_A = -0.2888
_ERF_B = -1.769
_ERF_C = 1.0
_EXP_A = 0.3585
_EXP_B = 1.353
_EXP_C = 0.344


def to_fixed(x, frac_bits: int = FRAC_BITS):
    """Quantize a float (array) to fixed point."""
    return np.round(np.asarray(x, dtype=np.float64) * (1 << frac_bits)).astype(
        np.int64)


def from_fixed(x, frac_bits: int = FRAC_BITS):
    """Fixed-point words back to floats (testing convenience)."""
    return np.asarray(x, dtype=np.float64) / (1 << frac_bits)


# ---------------------------------------------------------------------------
# Primitive semantics, vectorized, with INT32 wraparound — these mirror
# repro.simulator.alu exactly.
# ---------------------------------------------------------------------------
def w32(x):
    """Wrap to signed 32-bit two's-complement range."""
    x = np.asarray(x, dtype=np.int64) & 0xFFFFFFFF
    return np.where(x >= 1 << 31, x - (1 << 32), x).astype(np.int64)


def v_add(a, b):
    """Elementwise ADD at 32-bit wraparound."""
    return w32(np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64))


def v_sub(a, b):
    """Elementwise SUB at 32-bit wraparound."""
    return w32(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64))


def v_mul(a, b):
    # 64-bit internal product, wrapped at write-back.
    """Elementwise MUL at 32-bit wraparound."""
    return w32(np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64))


def v_div(a, b):
    """Elementwise truncating DIV (zero divisor saturates to +/-INT_MAX)."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    sat = np.where(a >= 0, (1 << 31) - 1, -(1 << 31))
    safe_b = np.where(b == 0, 1, b)
    q = np.abs(a) // np.abs(safe_b)
    q = np.where((a < 0) != (b < 0), -q, q)
    return w32(np.where(b == 0, sat, q))


def v_rshift(a, n):
    """Arithmetic right shift."""
    return np.asarray(a, dtype=np.int64) >> (np.asarray(n, dtype=np.int64) & 31)


def v_lshift(a, n):
    """Left shift at 32-bit wraparound."""
    return w32(np.asarray(a, dtype=np.int64) << (np.asarray(n, dtype=np.int64) & 31))


def v_max(a, b):
    """Elementwise maximum."""
    return np.maximum(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))


def v_min(a, b):
    """Elementwise minimum."""
    return np.minimum(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))


def v_and(a, b):
    """Bitwise AND."""
    return w32(np.asarray(a, dtype=np.int64) & np.asarray(b, dtype=np.int64))


def v_or(a, b):
    """Bitwise OR."""
    return w32(np.asarray(a, dtype=np.int64) | np.asarray(b, dtype=np.int64))


def v_abs(a):
    """Elementwise absolute value."""
    return w32(np.abs(np.asarray(a, dtype=np.int64)))


def v_sign(a):
    """Elementwise sign (-1, 0, +1)."""
    return np.sign(np.asarray(a, dtype=np.int64)).astype(np.int64)


def v_neg(a):
    """Elementwise negation."""
    return w32(-np.asarray(a, dtype=np.int64))


# ---------------------------------------------------------------------------
# Recipe representation: a straight-line program over named values.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Step:
    """One primitive op: ``out = func(a, b)``.

    ``a``/``b`` name earlier values: the literal string "x" is the recipe
    input; other strings are intermediates; integers are fixed-point
    immediate constants (placed in IMM BUF by the lowering pass).
    """

    func: str              # AluFunc/CalculusFunc name, lower-case
    out: str
    a: Union[str, int]
    b: Union[str, int, None] = None


_NUMPY_FUNCS = {
    "add": v_add, "sub": v_sub, "mul": v_mul, "div": v_div,
    "max": v_max, "min": v_min, "rshift": v_rshift, "lshift": v_lshift,
    "abs": v_abs, "sign": v_sign, "neg": v_neg, "and": v_and, "or": v_or,
}


def run_recipe(steps: List[Step], x):
    """Execute a recipe with numpy — the bit-exact reference."""
    values: Dict[str, np.ndarray] = {"x": np.asarray(x, dtype=np.int64)}

    def resolve(ref):
        if isinstance(ref, str):
            return values[ref]
        return np.int64(ref)

    result = values["x"]
    for step in steps:
        fn = _NUMPY_FUNCS[step.func]
        if step.func in ("abs", "sign", "neg"):
            result = fn(resolve(step.a))
        else:
            result = fn(resolve(step.a), resolve(step.b))
        values[step.out] = result
    return result


# ---------------------------------------------------------------------------
# Recipes for each complex operator.
# ---------------------------------------------------------------------------
def exp_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """I-BERT integer exp for x <= 0 (clamped): ~11 primitive ops.

    exp(r) on r in (-ln2, 0] is approximated by A(r + B)^2 + C, then the
    range-reduction shift 2^-z is applied with an arithmetic shift.
    """
    one = 1 << frac_bits
    ln2 = int(round(math.log(2) * one))
    a = int(round(_EXP_A * one))
    b = int(round(_EXP_B * one))
    c = int(round(_EXP_C * one))
    return [
        Step("min", "xc0", "x", 0),             # clamp to the supported range
        Step("max", "xc", "xc0", -30 * ln2),    # below this exp(x) == 0 in Qf
        Step("neg", "nx", "xc"),
        Step("div", "z0", "nx", ln2),           # z = floor(-x / ln2)
        Step("min", "z", "z0", 30),             # barrel shifter is 5 bits wide
        Step("mul", "zl", "z", ln2),
        Step("add", "r", "xc", "zl"),           # r = x + z*ln2  in (-ln2, 0]
        Step("add", "t", "r", b),
        Step("mul", "t2", "t", "t"),
        Step("rshift", "t2s", "t2", frac_bits),
        Step("mul", "p", "t2s", a),
        Step("rshift", "ps", "p", frac_bits),
        Step("add", "e", "ps", c),
        Step("rshift", "out", "e", "z"),        # exp(x) = poly(r) >> z
    ]


def erf_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """I-BERT integer erf: sign(x) * (a * (min(|x|, -b) + b)^2 + c)."""
    one = 1 << frac_bits
    a = int(round(_ERF_A * one))
    b = int(round(_ERF_B * one))
    c = int(round(_ERF_C * one))
    return [
        Step("abs", "ax", "x"),
        Step("min", "q", "ax", -b),
        Step("add", "t", "q", b),
        Step("mul", "t2", "t", "t"),
        Step("rshift", "t2s", "t2", frac_bits),
        Step("mul", "p", "t2s", a),
        Step("rshift", "ps", "p", frac_bits),
        Step("add", "l", "ps", c),
        Step("sign", "s", "x"),
        Step("mul", "out", "l", "s"),
    ]


def gelu_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """GeLU(x) = x * (1 + erf(x / sqrt(2))) / 2.

    This is the decomposition the paper quotes ("five multiplications,
    three additions, a sign, an absolute, and a minimum") with the
    fixed-point rescaling shifts made explicit.
    """
    one = 1 << frac_bits
    inv_sqrt2 = int(round(one / math.sqrt(2)))
    erf = erf_recipe(frac_bits)
    steps = [
        Step("mul", "y0", "x", inv_sqrt2),
        Step("rshift", "y", "y0", frac_bits),
    ]
    # Re-target the erf recipe to read "y" instead of "x".
    for step in erf:
        a = "y" if step.a == "x" else step.a
        b = "y" if step.b == "x" else step.b
        steps.append(Step(step.func, f"g_{step.out}", _pfx(a), _pfx(b)))
    steps += [
        Step("add", "h", "g_out", one),
        Step("mul", "xh", "h", "x"),
        Step("rshift", "out", "xh", frac_bits + 1),
    ]
    return steps


def _pfx(ref):
    """Prefix intermediate names so nested recipes do not collide."""
    if isinstance(ref, str) and ref not in ("x", "y"):
        return f"g_{ref}"
    return ref


def sigmoid_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """sigma(x) = p / (1 + p) with p = i_exp(-|x|), mirrored by sign.

    For x >= 0: sigma = 1 / (1 + p) = 1 - p/(1+p); the mirror is applied
    with sign/compare-free arithmetic: out = neg_branch + is_pos * (one -
    2 * neg_branch) ... implemented with max/sign primitives.
    """
    one = 1 << frac_bits
    steps = [
        Step("abs", "ax", "x"),
        Step("neg", "nax", "ax"),
    ]
    for step in exp_recipe(frac_bits):
        a = "nax" if step.a == "x" else step.a
        b = "nax" if step.b == "x" else step.b
        steps.append(Step(step.func, f"e_{step.out}", _epfx(a), _epfx(b)))
    steps += [
        Step("add", "den", "e_out", one),              # 1 + p
        Step("lshift", "num", "e_out", frac_bits),
        Step("div", "neg_branch", "num", "den"),       # p/(1+p)  == sigma(-|x|)
        Step("sign", "s", "x"),
        Step("max", "is_pos", "s", 0),                 # 1 if x > 0 else 0
        Step("sub", "mirror", one, "neg_branch"),      # sigma(|x|)
        Step("sub", "delta", "mirror", "neg_branch"),
        Step("mul", "sel", "delta", "is_pos"),
        Step("add", "out", "neg_branch", "sel"),
    ]
    return steps


def _epfx(ref):
    if isinstance(ref, str) and ref not in ("x", "nax"):
        return f"e_{ref}"
    return ref


def silu_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """SiLU(x) = x * sigma(x) — the gate activation inside SwiGLU."""
    steps = []
    for step in sigmoid_recipe(frac_bits):
        steps.append(Step(step.func, f"s_{step.out}", _spfx(step.a),
                          _spfx(step.b)))
    steps += [
        Step("mul", "xs", "s_out", "x"),
        Step("rshift", "out", "xs", frac_bits),
    ]
    return steps


def _spfx(ref):
    if isinstance(ref, str) and ref != "x":
        return f"s_{ref}"
    return ref


def tanh_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """tanh(x) = 2 * sigma(2x) - 1."""
    one = 1 << frac_bits
    steps = [Step("lshift", "x2", "x", 1)]
    for step in sigmoid_recipe(frac_bits):
        a = "x2" if step.a == "x" else step.a
        b = "x2" if step.b == "x" else step.b
        steps.append(Step(step.func, f"t_{step.out}", _tpfx(a), _tpfx(b)))
    steps += [
        Step("lshift", "sig2", "t_out", 1),
        Step("sub", "out", "sig2", one),
    ]
    return steps


def _tpfx(ref):
    if isinstance(ref, str) and ref not in ("x", "x2"):
        return f"t_{ref}"
    return ref


def sqrt_recipe(frac_bits: int = FRAC_BITS, iterations: int = 16) -> List[Step]:
    """Newton iterations on y' = (y + x/y) / 2 (gemmlowp style).

    Produces sqrt in the same Qm.f format: out = sqrt(x * 2^f) since
    sqrt(v * 2^f) * 2^(f/2) ... we fold the format correction by first
    shifting x left by ``frac_bits`` so that out has ``frac_bits``
    fractional bits again.
    """
    steps = [
        Step("lshift", "xs", "x", frac_bits),
        Step("rshift", "y0", "xs", 1),
        Step("max", "y", "y0", 1),  # avoid divide-by-zero on tiny inputs
    ]
    prev = "y"
    for i in range(iterations):
        steps += [
            Step("div", f"q{i}", "xs", prev),
            Step("add", f"s{i}", prev, f"q{i}"),
            Step("rshift", f"y{i + 1}", f"s{i}", 1),
        ]
        prev = f"y{i + 1}"
    steps.append(Step("max", "out", prev, 0))
    return steps


def reciprocal_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """1/x in fixed point: (1 << 2f) / x."""
    return [
        Step("lshift", "one2f", 1, 2 * frac_bits),
        Step("div", "out", "one2f", "x"),
    ]


def leaky_relu_recipe(alpha: float, frac_bits: int = FRAC_BITS) -> List[Step]:
    """max(x, 0) + alpha * min(x, 0) with a fixed-point alpha."""
    a = int(round(alpha * (1 << frac_bits)))
    return [
        Step("max", "pos", "x", 0),
        Step("min", "neg", "x", 0),
        Step("mul", "scaled", "neg", a),
        Step("rshift", "scaled_s", "scaled", frac_bits),
        Step("add", "out", "pos", "scaled_s"),
    ]


def relu_recipe() -> List[Step]:
    """ReLU as MAX against zero."""
    return [Step("max", "out", "x", 0)]


def floor_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """Clear the fractional bits (arithmetic AND with the integer mask)."""
    return [Step("and", "out", "x", -(1 << frac_bits))]


def ceil_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """Ceiling via add-then-mask at the fixed-point fraction boundary."""
    return [
        Step("add", "up", "x", (1 << frac_bits) - 1),
        Step("and", "out", "up", -(1 << frac_bits)),
    ]


def abs_recipe() -> List[Step]:
    """Absolute value as a single CALCULUS step."""
    return [Step("abs", "out", "x")]


def sign_recipe() -> List[Step]:
    """Sign extraction as a single CALCULUS step."""
    return [Step("sign", "out", "x")]


def square_recipe(frac_bits: int = FRAC_BITS) -> List[Step]:
    """Pow with exponent 2 (the only Pow the benchmarks use: LayerNorm)."""
    return [
        Step("mul", "sq", "x", "x"),
        Step("rshift", "out", "sq", frac_bits),
    ]


def clip_recipe(lo: int, hi: int) -> List[Step]:
    """Clamp into [lo, hi] via MIN/MAX steps."""
    return [
        Step("max", "low", "x", lo),
        Step("min", "out", "low", hi),
    ]


#: Unary operators the template layer resolves through recipes.
UNARY_RECIPES = {
    "Exp": exp_recipe,
    "Erf": erf_recipe,
    "Gelu": gelu_recipe,
    "Sigmoid": sigmoid_recipe,
    "Silu": silu_recipe,
    "Tanh": tanh_recipe,
    "Sqrt": sqrt_recipe,
    "Reciprocal": reciprocal_recipe,
}


# Convenience bit-exact reference entry points.
def i_exp(x, frac_bits: int = FRAC_BITS):
    """Integer-only exponential (I-BERT-style polynomial)."""
    return run_recipe(exp_recipe(frac_bits), x)


def i_erf(x, frac_bits: int = FRAC_BITS):
    """Integer-only error function for i_gelu."""
    return run_recipe(erf_recipe(frac_bits), x)


def i_gelu(x, frac_bits: int = FRAC_BITS):
    """Integer-only GeLU: x * (1 + erf(x/sqrt(2))) / 2."""
    return run_recipe(gelu_recipe(frac_bits), x)


def i_sigmoid(x, frac_bits: int = FRAC_BITS):
    """Integer-only sigmoid via i_exp."""
    return run_recipe(sigmoid_recipe(frac_bits), x)


def i_silu(x, frac_bits: int = FRAC_BITS):
    """Integer-only SiLU (x * sigmoid(x)) via i_sigmoid."""
    return run_recipe(silu_recipe(frac_bits), x)


def i_tanh(x, frac_bits: int = FRAC_BITS):
    """Integer-only tanh via i_exp."""
    return run_recipe(tanh_recipe(frac_bits), x)


def i_sqrt(x, frac_bits: int = FRAC_BITS):
    """Integer-only square root (Newton iterations)."""
    return run_recipe(sqrt_recipe(frac_bits), x)


def i_reciprocal(x, frac_bits: int = FRAC_BITS):
    """Integer-only reciprocal (Newton iterations)."""
    return run_recipe(reciprocal_recipe(frac_bits), x)
