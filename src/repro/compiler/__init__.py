"""The Tandem Processor compiler (Figure 13)."""

from .autotune import (
    AutotuneReport,
    autotune_budget,
    autotune_enabled,
    autotune_model,
)
from .compiler import (
    CompiledBlock,
    CompiledModel,
    compile_model,
    explain_compile,
    verify_record_for,
)
from .fusion import Block, external_outputs, form_blocks, split_at_depth, \
    split_block
from .integer_ops import (
    FRAC_BITS,
    Step,
    from_fixed,
    i_erf,
    i_exp,
    i_gelu,
    i_reciprocal,
    i_sigmoid,
    i_sqrt,
    i_tanh,
    run_recipe,
    to_fixed,
)
from .ir import (
    CompileError,
    Nest,
    PermuteSlot,
    Resident,
    Stmt,
    TileContext,
    TransferSlot,
    TRef,
    broadcast_views,
    recipe_body,
)
from .lowering import LoweredTile, lower_tile
from .pipeline import (
    KNOB_SPACE,
    PassPipeline,
    PipelineConfig,
    PipelineState,
    all_configs,
    compiler_pass,
    knob_space_size,
)
from .reference import ReferenceExecutor
from .serialize import dump_model, load_blocks, tile_from_dict, tile_to_dict
from .templates import TEMPLATES, emit_op
from .tiling import initial_tiles, search_tiles
from .transforms import fission, fissionable, interchange, is_pointwise_parallel

__all__ = [
    "AutotuneReport",
    "KNOB_SPACE",
    "PassPipeline",
    "PipelineConfig",
    "PipelineState",
    "all_configs",
    "autotune_budget",
    "autotune_enabled",
    "autotune_model",
    "compiler_pass",
    "explain_compile",
    "knob_space_size",
    "split_at_depth",
    "fission",
    "fissionable",
    "interchange",
    "is_pointwise_parallel",
    "dump_model",
    "load_blocks",
    "tile_from_dict",
    "tile_to_dict",
    "Block",
    "CompileError",
    "CompiledBlock",
    "CompiledModel",
    "FRAC_BITS",
    "LoweredTile",
    "Nest",
    "PermuteSlot",
    "ReferenceExecutor",
    "Resident",
    "Step",
    "Stmt",
    "TEMPLATES",
    "TRef",
    "TileContext",
    "TransferSlot",
    "broadcast_views",
    "compile_model",
    "emit_op",
    "external_outputs",
    "form_blocks",
    "from_fixed",
    "i_erf",
    "i_exp",
    "i_gelu",
    "i_reciprocal",
    "i_sigmoid",
    "i_sqrt",
    "i_tanh",
    "initial_tiles",
    "lower_tile",
    "recipe_body",
    "run_recipe",
    "search_tiles",
    "split_block",
    "to_fixed",
    "verify_record_for",
]
