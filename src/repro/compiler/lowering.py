"""Lowering: compiler IR -> Figure 12 instruction stream + analytic metadata.

The lowered program for one tile follows the Section 5 structure:

  SYNC SIMD_START_EXEC
  IMM BUF configuration (ITERATOR_CONFIG.IMM_VALUE/IMM_HIGH)
  per event, in emission order:
    transfer -> TILE_LD_ST configuration + LD/ST_START
    permute  -> PERMUTE configuration + START
    nest     -> ITERATOR_CONFIG base/stride per operand, LOOP.SET_ITER per
                level, LOOP.SET_NUM_INST, then the body's compute words
                (bracketed by DATATYPE_CAST for casting nests)
  SYNC SIMD_END_BUF   (woven right after the last Output BUF consumer)
  SYNC SIMD_END_EXEC
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import (
    DatatypeConfigFunc,
    Instruction,
    LdStFunc,
    Namespace,
    Opcode,
    Operand,
    PermuteFunc,
    SyncFunc,
    TandemProgram,
    iterator_base,
    iterator_stride,
    loop_iter,
    loop_num_inst,
    permute as permute_inst,
    set_immediate,
    sync,
    tile_ldst,
)
from ..simulator.analytic import AnalyticNest, ProgramMeta
from ..simulator.pipeline import BodyOpMeta
from .ir import CompileError, Nest, PermuteSlot, Stmt, TileContext, TransferSlot

_CAST_FUNC = {
    "int8": DatatypeConfigFunc.FXP8,
    "fxp8": DatatypeConfigFunc.FXP8,
    "int16": DatatypeConfigFunc.FXP16,
    "fxp16": DatatypeConfigFunc.FXP16,
    "fxp4": DatatypeConfigFunc.FXP4,
    "int32": DatatypeConfigFunc.FXP32,
    "fxp32": DatatypeConfigFunc.FXP32,
}


@dataclass
class LoweredTile:
    """One tile's instruction stream plus everything needed to run it."""

    program: TandemProgram
    meta: ProgramMeta
    transfers: List[TransferSlot] = field(default_factory=list)
    permutes: List[PermuteSlot] = field(default_factory=list)
    imm_values: List[int] = field(default_factory=list)
    peak_words: int = 0
    #: Per-source-operator metadata: (op_type label, ProgramMeta slice),
    #: used for the per-layer-type runtime breakdowns (Figure 24).
    op_metas: List[Tuple[str, ProgramMeta]] = field(default_factory=list)
    #: Fractional position of the SIMD_END_BUF sync in the instruction
    #: stream (1.0 when the program never releases the Output BUF early).
    obuf_release_fraction: float = 1.0
    #: IR-level access claims (operand walks, transfer bindings,
    #: forwarding claims) the verifier's deps pass cross-checks against
    #: the binary; ``None`` only for hand-built tiles.
    access_meta: Optional[object] = None


def lower_tile(ctx: TileContext, name: str,
               reads_obuf: bool = False,
               op_ranges: Optional[List[Tuple[str, int, int]]] = None
               ) -> LoweredTile:
    """Lower one tile's worth of IR into a Tandem program.

    ``op_ranges`` optionally labels half-open event-index ranges with the
    operator that emitted them, for per-operator cost attribution.
    """
    program = TandemProgram(name)
    meta = ProgramMeta()
    out = LoweredTile(program=program, meta=meta,
                      imm_values=list(ctx.imm_values),
                      peak_words=ctx.peak_words)

    program.append(sync(SyncFunc.SIMD_START_EXEC))
    for slot, value in enumerate(ctx.imm_values):
        program.extend(set_immediate(slot, value))

    op_meta_by_range: List[Tuple[str, ProgramMeta]] = []
    if op_ranges:
        op_meta_by_range = [(label, ProgramMeta()) for label, _s, _e in op_ranges]

    def metas_for(index: int):
        targets = [meta]
        if op_ranges:
            for (label, start, end), (_l, sub) in zip(op_ranges, op_meta_by_range):
                if start <= index < end:
                    targets.append(sub)
                    break
        return targets

    last_obuf_event = _last_obuf_event(ctx) if reads_obuf else None
    for index, event in enumerate(ctx.events):
        targets = metas_for(index)
        words_before = len(program)
        if isinstance(event, Nest):
            _lower_nest(program, targets, event)
        elif isinstance(event, TransferSlot):
            _lower_transfer(program, targets, event)
            out.transfers.append(event)
        elif isinstance(event, PermuteSlot):
            _lower_permute(program, targets, event)
            out.permutes.append(event)
        else:  # pragma: no cover - event list is closed
            raise CompileError(f"unknown event {event!r}")
        if op_ranges and len(targets) > 1:
            body = len(event.body) if isinstance(event, Nest) else 0
            targets[1].config_instructions += (len(program) - words_before
                                               - body)
        if last_obuf_event is not None and index == last_obuf_event:
            program.append(sync(SyncFunc.SIMD_END_BUF))
            release_position = len(program)
    program.append(sync(SyncFunc.SIMD_END_EXEC))

    # START words are timed as transfers/permutes, not as config cycles.
    starts = len(out.transfers) + len(out.permutes)
    meta.config_instructions = (len(program)
                                - sum(len(n.body) for n in ctx.nests)
                                - starts)
    out.op_metas = op_meta_by_range
    if last_obuf_event is not None:
        out.obuf_release_fraction = release_position / len(program)
    # Imported lazily: the analysis package pulls the compiler in.
    from ..analysis.deps.access import collect_access_meta
    out.access_meta = collect_access_meta(ctx)
    return out


def _last_obuf_event(ctx: TileContext) -> Optional[int]:
    last = None
    for index, event in enumerate(ctx.events):
        if isinstance(event, Nest):
            for stmt in event.body:
                refs = [stmt.src1, stmt.src2]
                if any(r is not None and r.ns == Namespace.OBUF for r in refs):
                    last = index
        elif isinstance(event, PermuteSlot):
            if event.src_ns == Namespace.OBUF:
                last = index
    return last


def _lower_nest(program: TandemProgram, metas: List[ProgramMeta], nest: Nest) -> None:
    loop_vars = [var for var, _ in nest.loops]
    counts = [count for _, count in nest.loops]

    # Allocate iterator-table entries: one per distinct (ns, base,
    # stride-vector) operand reference, per namespace.
    next_idx: Dict[Namespace, int] = {}
    assigned: Dict[Tuple, int] = {}

    def iter_index(ref) -> int:
        key = (ref.ns,) + tuple(ref.key(loop_vars))
        if key in assigned:
            return assigned[key]
        idx = next_idx.get(ref.ns, 0)
        if idx >= 32:
            raise CompileError(
                f"nest needs more than 32 iterator entries in {ref.ns.name}")
        next_idx[ref.ns] = idx + 1
        assigned[key] = idx
        program.append(iterator_base(ref.ns, idx, ref.base))
        for var in loop_vars:
            program.append(iterator_stride(ref.ns, idx, ref.stride(var)))
        return idx

    body_words: List[Instruction] = []
    body_meta: List[BodyOpMeta] = []
    inner = loop_vars[-1] if loop_vars else None
    for stmt in nest.body:
        dst_idx = iter_index(stmt.dst)
        src1_idx = iter_index(stmt.src1)
        src2 = stmt.src2 if stmt.src2 is not None else stmt.src1
        src2_idx = iter_index(src2)
        body_words.append(Instruction(
            opcode=stmt.opcode, func=stmt.func,
            dst=Operand(stmt.dst.ns, dst_idx),
            src1=Operand(stmt.src1.ns, src1_idx),
            src2=Operand(src2.ns, src2_idx)))
        src_strides = []
        mem_reads = 0
        for src in (stmt.src1, stmt.src2):
            if src is None:
                continue
            src_strides.append(src.stride(inner) if inner else 0)
            if src.ns != Namespace.IMM:
                mem_reads += 1
        body_meta.append(BodyOpMeta(
            dst_inner_stride=stmt.dst.stride(inner) if inner else 0,
            src_inner_strides=tuple(src_strides),
            mem_reads=mem_reads,
            mem_writes=1))

    if nest.cast_to is not None:
        program.append(Instruction(Opcode.DATATYPE_CAST,
                                   int(_CAST_FUNC[nest.cast_to])))
    for level, (var, count) in enumerate(nest.loops):
        program.append(loop_iter(level, count))
    program.append(loop_num_inst(len(nest.body)))
    program.extend(body_words)
    if nest.cast_to is not None:
        program.append(Instruction(Opcode.DATATYPE_CAST,
                                   int(DatatypeConfigFunc.FXP32)))
    analytic = AnalyticNest(counts=tuple(counts), body=tuple(body_meta))
    for meta in metas:
        meta.nests.append(analytic)


def _lower_transfer(program: TandemProgram, metas: List[ProgramMeta],
                    slot: TransferSlot) -> None:
    is_load = slot.direction == "ld"
    base_func = (LdStFunc.LD_CONFIG_BASE_ADDR if is_load
                 else LdStFunc.ST_CONFIG_BASE_ADDR)
    iter_func = (LdStFunc.LD_CONFIG_BASE_LOOP_ITER if is_load
                 else LdStFunc.ST_CONFIG_BASE_LOOP_ITER)
    stride_func = (LdStFunc.LD_CONFIG_BASE_LOOP_STRIDE if is_load
                   else LdStFunc.ST_CONFIG_BASE_LOOP_STRIDE)
    tile_iter_func = (LdStFunc.LD_CONFIG_TILE_LOOP_ITER if is_load
                      else LdStFunc.ST_CONFIG_TILE_LOOP_ITER)
    tile_stride_func = (LdStFunc.LD_CONFIG_TILE_LOOP_STRIDE if is_load
                        else LdStFunc.ST_CONFIG_TILE_LOOP_STRIDE)
    start_func = LdStFunc.LD_START if is_load else LdStFunc.ST_START

    dims = slot.pre_reshape or (slot.elements,)
    program.append(tile_ldst(base_func, slot.ns, 0, slot.base & 0xFFFF))
    for level, dim in enumerate(dims):
        program.append(tile_ldst(iter_func, slot.ns, level, dim & 0xFFFF))
        program.append(tile_ldst(stride_func, slot.ns, level, 1))
    for level, dim in enumerate(dims):
        program.append(tile_ldst(tile_iter_func, slot.ns, level, dim & 0xFFFF))
        program.append(tile_ldst(tile_stride_func, slot.ns, level, 1))
    program.append(tile_ldst(start_func, slot.ns))
    for meta in metas:
        if is_load:
            meta.dram_loads.append(slot.nbytes)
        else:
            meta.dram_stores.append(slot.nbytes)


def _lower_permute(program: TandemProgram, metas: List[ProgramMeta],
                   slot: PermuteSlot) -> None:
    program.append(permute_inst(PermuteFunc.SET_BASE_ADDR, 0, 0,
                                slot.src_base & 0xFFFF))
    program.append(permute_inst(PermuteFunc.SET_BASE_ADDR, 1, 0,
                                slot.dst_base & 0xFFFF))
    for dim, size in enumerate(slot.shape):
        program.append(permute_inst(PermuteFunc.SET_LOOP_ITER, 0, dim,
                                    size & 0xFFFF))
        program.append(permute_inst(PermuteFunc.SET_LOOP_STRIDE, 0, dim,
                                    slot.perm[dim]))
    program.append(permute_inst(PermuteFunc.START, 0, 0,
                                1 if slot.cross_lane else 0))
    for meta in metas:
        meta.permute_words += slot.words
        meta.permute_count += 1
        meta.permute_cross_lane = slot.cross_lane
