"""Tiling optimization (Section 6).

Two rules from the paper:

* **Never tile reduction dimensions** of the GEMM operator — the Tandem
  Processor must see complete (not partial) accumulator results, so tiles
  split only the output rows. This falls out naturally here: the GEMM
  cost model tiles M x N over the array, and the block tile count divides
  the *output* elements.
* **Tiles must be big enough** to cover the non-GEMM operators' adjacency
  (window halos are folded into the templates' input shapes) **and small
  enough** to fit the Output BUF (double-buffered) and the Interim BUFs.

The optimizer searches for the smallest tile count satisfying both: it
starts from the Output BUF bound and doubles until the block compiles
within the Interim BUF capacity (the template layer raises
:class:`CompileError` on overflow, so the search is exact rather than
heuristic).
"""

from __future__ import annotations

from math import ceil
from typing import Callable, Dict, Tuple, Union

from ..graph import Graph
from ..simulator.params import TandemParams
from .fusion import Block
from .ir import CompileError

#: Upper bound on the doubling search; 2^20 tiles would mean a broken model.
_MAX_DOUBLINGS = 20

#: Tile-count search strategies accepted by :func:`search_tiles`.
STRATEGIES = ("pow2", "exact")


def initial_tiles(block: Block, graph: Graph, params: TandemParams) -> int:
    """Lower bound on the tile count from the Output BUF capacity."""
    if block.gemm is None:
        return 1
    out_words = graph.out_spec(block.gemm).numel
    budget = params.obuf_words // 2  # double buffering (Section 4.2)
    return max(1, ceil(out_words / budget))


def search_tiles(block: Block, graph: Graph, params: TandemParams,
                 try_compile: Callable[[int], object],
                 strategy: str = "pow2") -> Tuple[int, object]:
    """Find the smallest feasible tile count; returns (tiles, compiled).

    ``try_compile(tiles)`` must either return the compiled tile or raise
    :class:`CompileError` when the tile does not fit on-chip. Every
    attempted count is memoized, so no count is compiled (and its cycle
    model evaluated) more than once within one search, regardless of how
    the phases below revisit it.

    ``strategy`` selects how far the search goes:

    * ``"pow2"`` — double from the Output BUF lower bound until the
      block fits (the seed behavior).
    * ``"exact"`` — after the doubling phase finds a feasible power-of-
      two multiple, binary-search the half-open interval between the
      last infeasible count and the found one for the true minimum.
      Fewer tiles means fewer per-tile pipeline fills and config
      instructions, at the price of O(log) extra compile attempts.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown tile search strategy {strategy!r}")
    attempts: Dict[int, Union[object, CompileError]] = {}

    def attempt(count: int):
        """Compile ``count`` tiles once; memoize the result or error."""
        if count not in attempts:
            try:
                attempts[count] = try_compile(count)
            except CompileError as err:
                if "IMM BUF" in str(err):
                    # More tiles cannot reduce constant pressure.
                    raise
                attempts[count] = err
        return attempts[count]

    start = initial_tiles(block, graph, params)
    tiles = start
    found = None
    for _ in range(_MAX_DOUBLINGS):
        result = attempt(tiles)
        if not isinstance(result, CompileError):
            found = (tiles, result)
            break
        tiles *= 2
    if found is None:
        raise CompileError(
            f"block {block.name} does not fit on-chip even with {tiles} "
            f"tiles: {attempts[tiles // 2]}")
    if strategy == "exact" and found[0] > start:
        # Refine between the last infeasible doubling and the hit; never
        # below the Output BUF double-buffering bound.
        lo, hi = max(found[0] // 2 + 1, start), found[0]
        while lo < hi:
            mid = (lo + hi) // 2
            result = attempt(mid)
            if isinstance(result, CompileError):
                lo = mid + 1
            else:
                found = (mid, result)
                hi = mid
    return found
