"""Tiling optimization (Section 6).

Two rules from the paper:

* **Never tile reduction dimensions** of the GEMM operator — the Tandem
  Processor must see complete (not partial) accumulator results, so tiles
  split only the output rows. This falls out naturally here: the GEMM
  cost model tiles M x N over the array, and the block tile count divides
  the *output* elements.
* **Tiles must be big enough** to cover the non-GEMM operators' adjacency
  (window halos are folded into the templates' input shapes) **and small
  enough** to fit the Output BUF (double-buffered) and the Interim BUFs.

The optimizer searches for the smallest tile count satisfying both: it
starts from the Output BUF bound and doubles until the block compiles
within the Interim BUF capacity (the template layer raises
:class:`CompileError` on overflow, so the search is exact rather than
heuristic).
"""

from __future__ import annotations

from math import ceil
from typing import Callable, Tuple

from ..graph import Graph
from ..simulator.params import TandemParams
from .fusion import Block
from .ir import CompileError

#: Upper bound on the doubling search; 2^20 tiles would mean a broken model.
_MAX_DOUBLINGS = 20


def initial_tiles(block: Block, graph: Graph, params: TandemParams) -> int:
    """Lower bound on the tile count from the Output BUF capacity."""
    if block.gemm is None:
        return 1
    out_words = graph.out_spec(block.gemm).numel
    budget = params.obuf_words // 2  # double buffering (Section 4.2)
    return max(1, ceil(out_words / budget))


def search_tiles(block: Block, graph: Graph, params: TandemParams,
                 try_compile: Callable[[int], object]) -> Tuple[int, object]:
    """Find the smallest feasible tile count; returns (tiles, compiled).

    ``try_compile(tiles)`` must either return the compiled tile or raise
    :class:`CompileError` when the tile does not fit on-chip.
    """
    tiles = initial_tiles(block, graph, params)
    last_error: CompileError = CompileError("no attempt made")
    for _ in range(_MAX_DOUBLINGS):
        try:
            return tiles, try_compile(tiles)
        except CompileError as err:
            if "IMM BUF" in str(err):
                # More tiles cannot reduce constant pressure.
                raise
            last_error = err
            tiles *= 2
    raise CompileError(
        f"block {block.name} does not fit on-chip even with {tiles} tiles: "
        f"{last_error}")
