"""Post-layout area model (Figure 26, 65 nm).

Reproduces the paper's breakdown at the Table 3 configuration — 1.02 mm²
total with ALU logic 56.6 %, Interim BUF 1&2 29.2 %, permute logic
12.0 %, the rest for muxing/pipeline registers/Code Repeater/decode —
and scales with lane count and buffer capacity for the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..simulator.params import TandemParams

#: Calibrated to land on Figure 26 at 32 lanes / 128 KB Interim BUFs.
_ALU_MM2_PER_LANE = 0.018041      # INT32 ALU + its pipeline slice
_SRAM_MM2_PER_KB = 0.0023268      # single-ported SRAM macro, 65 nm
_PERMUTE_MM2_PER_LANE = 0.003825  # crossbar grows with lane count
_FIXED_MM2 = 0.0224               # decode, Code Repeater, muxing, control


@dataclass
class AreaBreakdown:
    """Per-structure silicon area of the Tandem Processor (mm^2)."""
    alu_mm2: float
    interim_buf_mm2: float
    permute_mm2: float
    other_mm2: float

    @property
    def total_mm2(self) -> float:
        """Sum over every structure."""
        return (self.alu_mm2 + self.interim_buf_mm2 + self.permute_mm2
                + self.other_mm2)

    def fractions(self) -> Dict[str, float]:
        """Each structure's share of the total area."""
        total = self.total_mm2
        return {
            "alu": self.alu_mm2 / total,
            "interim_buf": self.interim_buf_mm2 / total,
            "permute": self.permute_mm2 / total,
            "other": self.other_mm2 / total,
        }


def tandem_area(params: TandemParams = TandemParams()) -> AreaBreakdown:
    """The Fig. 26 area breakdown at the given configuration."""
    return AreaBreakdown(
        alu_mm2=params.lanes * _ALU_MM2_PER_LANE,
        interim_buf_mm2=2 * params.interim_buf_kb * _SRAM_MM2_PER_KB,
        permute_mm2=params.lanes * _PERMUTE_MM2_PER_LANE,
        other_mm2=_FIXED_MM2,
    )
