"""Design-space exploration over Tandem Processor configurations.

The paper positions the Tandem Processor as the heart of GeneSys, "a
parametrizable NPU *generator*". This module explores the generator's
knobs — SIMD lanes, Interim BUF capacity, systolic-array size — and
reports latency/energy/area per point, including the Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

from ..gemm import SystolicParams
from ..npu import NPUConfig, NPUTandem, table3_config
from ..simulator.params import SimParams, TandemParams
from .area import tandem_area


@dataclass(frozen=True)
class DesignPoint:
    lanes: int
    interim_buf_kb: int
    array_dim: int

    def label(self) -> str:
        return f"{self.lanes}L/{self.interim_buf_kb}KB/{self.array_dim}x{self.array_dim}"


@dataclass
class DseResult:
    point: DesignPoint
    seconds: float
    energy_joules: float
    tandem_area_mm2: float

    @property
    def edp(self) -> float:
        """Energy-delay product, the usual DSE objective."""
        return self.seconds * self.energy_joules


def config_for(point: DesignPoint,
               base: Optional[NPUConfig] = None) -> NPUConfig:
    base = base or table3_config()
    tandem = replace(base.sim.tandem, lanes=point.lanes,
                     interim_buf_kb=point.interim_buf_kb)
    sim = SimParams(tandem=tandem, dram=base.sim.dram,
                    energy=base.sim.energy, overlay=base.sim.overlay)
    gemm = replace(base.gemm, rows=point.array_dim, cols=point.array_dim)
    return replace(base, sim=sim, gemm=gemm,
                   name=f"npu-tandem[{point.label()}]")


def _evaluate_point(work) -> Optional[DseResult]:
    """One grid point; module-level so worker processes can pickle it."""
    from ..compiler import CompileError
    model, point, base, autotune = work
    npu = NPUTandem(config_for(point, base), autotune=autotune)
    try:
        run = npu.evaluate(model)
    except CompileError:
        # The model genuinely does not fit this configuration (e.g. an
        # untileable reduction dimension exceeds the scratchpads) — an
        # infeasible design point.
        return None
    area = tandem_area(npu.config.sim.tandem).total_mm2
    return DseResult(point=point, seconds=run.total_seconds,
                     energy_joules=run.energy_joules,
                     tandem_area_mm2=area)


def sweep(model: str,
          lanes: Sequence[int] = (16, 32, 64),
          interim_buf_kb: Sequence[int] = (32, 64, 128),
          array_dims: Sequence[int] = (32,),
          base: Optional[NPUConfig] = None,
          jobs: int = 1,
          autotune: Optional[bool] = None) -> List[DseResult]:
    """Evaluate one model across the configuration grid.

    Grid points are independent, so ``jobs > 1`` fans them out across
    worker processes; result order is the deterministic grid order
    either way, and every evaluation flows through the shared runtime
    cache. ``autotune=True`` compiles each point with its own searched
    pass pipeline (the per-point architecture changes which pipeline
    wins); ``None`` follows ``REPRO_AUTOTUNE``.
    """
    from ..runtime import parallel_map
    work = [(model, DesignPoint(lane_count, buf_kb, dim), base, autotune)
            for dim in array_dims
            for lane_count in lanes
            for buf_kb in interim_buf_kb]
    evaluated = parallel_map(_evaluate_point, work, jobs=jobs)
    return [result for result in evaluated if result is not None]


def pareto_frontier(results: Iterable[DseResult]) -> List[DseResult]:
    """Points not dominated in (latency, energy, area)."""
    results = list(results)
    frontier = []
    for candidate in results:
        dominated = any(
            other is not candidate
            and other.seconds <= candidate.seconds
            and other.energy_joules <= candidate.energy_joules
            and other.tandem_area_mm2 <= candidate.tandem_area_mm2
            and (other.seconds < candidate.seconds
                 or other.energy_joules < candidate.energy_joules
                 or other.tandem_area_mm2 < candidate.tandem_area_mm2)
            for other in results)
        if not dominated:
            frontier.append(candidate)
    return frontier
