"""Operator census: Figures 1 and 2 (Section 2.1).

Figure 1 counts the *kinds* of non-GEMM operators per model over time;
Figure 2 counts cumulative GEMM vs non-GEMM node usage across the
benchmark suite, ending at "merely 15 % of total DNN operator nodes are
GEMMs".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from ..graph import NON_GEMM_CLASSES, Graph, OpClass
from ..models import MODEL_ORDER, MODEL_YEARS, build_model


@dataclass
class ModelOpStats:
    model: str
    year: int
    gemm_nodes: int
    nongemm_nodes: int
    nongemm_types: int
    types_per_class: Dict[OpClass, int]

    @property
    def total_nodes(self) -> int:
        return self.gemm_nodes + self.nongemm_nodes

    @property
    def gemm_fraction(self) -> float:
        return self.gemm_nodes / self.total_nodes if self.total_nodes else 0.0


def model_stats(graph: Graph, year: int = 0) -> ModelOpStats:
    class_counts = graph.class_counts()
    gemm = class_counts.get(OpClass.GEMM, 0)
    nongemm = sum(class_counts.get(c, 0) for c in NON_GEMM_CLASSES)
    types_per_class: Dict[OpClass, set] = {c: set() for c in NON_GEMM_CLASSES}
    for node in graph.nodes:
        if node.op_class in types_per_class:
            types_per_class[node.op_class].add(node.op_type)
    return ModelOpStats(
        model=graph.name,
        year=year,
        gemm_nodes=gemm,
        nongemm_nodes=nongemm,
        nongemm_types=sum(len(s) for s in types_per_class.values()),
        types_per_class={c: len(s) for c, s in types_per_class.items()},
    )


def operator_diversity() -> List[ModelOpStats]:
    """Figure 1: non-GEMM operator diversity per model, chronologically."""
    stats = [model_stats(build_model(name), MODEL_YEARS[name])
             for name in MODEL_ORDER]
    return sorted(stats, key=lambda s: (s.year, s.model))


@dataclass
class CumulativeOps:
    """One bar group of Figure 2."""

    model: str
    cumulative_gemm: int
    cumulative_by_class: Dict[OpClass, int]

    @property
    def cumulative_nongemm(self) -> int:
        return sum(self.cumulative_by_class.values())

    @property
    def cumulative_total(self) -> int:
        return self.cumulative_gemm + self.cumulative_nongemm

    @property
    def gemm_fraction(self) -> float:
        total = self.cumulative_total
        return self.cumulative_gemm / total if total else 0.0


def cumulative_usage() -> List[CumulativeOps]:
    """Figure 2: cumulative operator usage as models are added."""
    gemm = 0
    by_class: Counter = Counter()
    out: List[CumulativeOps] = []
    for name in MODEL_ORDER:
        graph = build_model(name)
        counts = graph.class_counts()
        gemm += counts.get(OpClass.GEMM, 0)
        for cls in NON_GEMM_CLASSES:
            by_class[cls] += counts.get(cls, 0)
        out.append(CumulativeOps(
            model=name,
            cumulative_gemm=gemm,
            cumulative_by_class={c: by_class[c] for c in NON_GEMM_CLASSES},
        ))
    return out
