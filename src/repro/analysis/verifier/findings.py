"""Findings, reports, and the verification error type.

Every verifier/lint rule reduces to a stream of :class:`Finding`
objects: a severity, a stable rule id, the instruction index it anchors
to, a human-readable message, and a short disassembly snippet. A
:class:`VerifyReport` aggregates one program's findings;
:class:`ModelVerifyReport` aggregates a compiled model's blocks.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Ordered so ``max()`` over findings yields the worst tier."""

    INFO = 0
    WARN = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One verifier/lint diagnostic anchored to an instruction."""

    severity: Severity
    rule: str                  # stable kebab-case rule name
    message: str
    pc: Optional[int] = None   # instruction index, None for whole-program
    snippet: str = ""          # disassembly of the offending word(s)

    @property
    def rule_id(self) -> Optional[str]:
        """Stable short ID (e.g. ``DEP003``) from the rule registry."""
        from .rules import rule_id
        return rule_id(self.rule)

    def as_dict(self) -> Dict:
        """JSON-able form of one finding."""
        return {
            "severity": str(self.severity),
            "rule": self.rule,
            "rule_id": self.rule_id,
            "message": self.message,
            "pc": self.pc,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """One-line human-readable rendering."""
        where = f"@{self.pc:d}" if self.pc is not None else "@-"
        ident = self.rule_id
        tag = f"{ident} {self.rule}" if ident else self.rule
        line = f"{str(self.severity):5s} {where:>6s} [{tag}] {self.message}"
        if self.snippet:
            line += "\n" + "\n".join(f"        | {s}"
                                     for s in self.snippet.splitlines())
        return line


def snippet_at(program, pc: int, context: int = 1) -> str:
    """Disassembly lines around ``pc`` (clamped to the program)."""
    insts = program.instructions
    lo = max(0, pc - context)
    hi = min(len(insts), pc + context + 1)
    lines = []
    for index in range(lo, hi):
        inst = insts[index]
        try:
            word = f"{inst.pack():08x}"
        except Exception:  # unencodable hand-built instruction
            word = "????????"
        marker = ">" if index == pc else " "
        lines.append(f"{marker}{index:5d}: {word}  {inst}")
    return "\n".join(lines)


@dataclass
class VerifyReport:
    """All findings for one program, plus pass bookkeeping."""

    program: str
    findings: List[Finding] = field(default_factory=list)
    passes: List[str] = field(default_factory=list)
    instructions: int = 0

    def extend(self, findings: Sequence[Finding]) -> None:
        """Append findings to this report."""
        self.findings.extend(findings)

    def suppress(self, rules: Sequence[str]) -> int:
        """Drop findings whose rule name is in ``rules``; returns count.

        ``rules`` holds kebab-case rule names (resolve IDs first with
        :func:`repro.analysis.verifier.rules.resolve_ignores`).
        """
        drop = set(rules)
        before = len(self.findings)
        self.findings = [f for f in self.findings if f.rule not in drop]
        return before - len(self.findings)

    def count(self, severity: Severity) -> int:
        """Findings at exactly this severity."""
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def errors(self) -> int:
        """Error-severity finding count."""
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        """Warning-severity finding count."""
        return self.count(Severity.WARN)

    @property
    def infos(self) -> int:
        """Info-severity finding count."""
        return self.count(Severity.INFO)

    @property
    def clean(self) -> bool:
        """True when the report has no errors."""
        return self.errors == 0

    def by_rule(self) -> Dict[str, int]:
        """Finding count per rule id."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> Dict:
        """JSON-able form of the whole report."""
        return {
            "program": self.program,
            "instructions": self.instructions,
            "passes": list(self.passes),
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "clean": self.clean,
            "findings": [f.as_dict() for f in self.findings],
        }

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """Multi-line rendering at or above ``min_severity``."""
        shown = [f for f in self.findings if f.severity >= min_severity]
        head = (f"{self.program}: {self.instructions} words, "
                f"{self.errors} error(s), {self.warnings} warning(s), "
                f"{self.infos} info(s)")
        if not shown:
            return head + " — clean" if self.clean else head
        return "\n".join([head] + [f.render() for f in shown])


@dataclass
class ModelVerifyReport:
    """Per-block reports for one compiled model."""

    model: str
    reports: List[VerifyReport] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        """Every finding across all block reports."""
        return [f for r in self.reports for f in r.findings]

    def suppress(self, rules: Sequence[str]) -> int:
        """Drop findings by rule name across every block report."""
        return sum(r.suppress(rules) for r in self.reports)

    @property
    def errors(self) -> int:
        """Error count summed over blocks."""
        return sum(r.errors for r in self.reports)

    @property
    def warnings(self) -> int:
        """Warning count summed over blocks."""
        return sum(r.warnings for r in self.reports)

    @property
    def infos(self) -> int:
        """Info count summed over blocks."""
        return sum(r.infos for r in self.reports)

    @property
    def clean(self) -> bool:
        """True when no block report has errors."""
        return self.errors == 0

    def by_rule(self) -> Dict[str, int]:
        """Finding count per rule id over all blocks."""
        counts: Dict[str, int] = {}
        for r in self.reports:
            for rule, n in r.by_rule().items():
                counts[rule] = counts.get(rule, 0) + n
        return dict(sorted(counts.items()))

    def as_dict(self) -> Dict:
        """JSON-able form of the model-level report."""
        return {
            "model": self.model,
            "blocks": len(self.reports),
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "clean": self.clean,
            "rules": self.by_rule(),
            "reports": [r.as_dict() for r in self.reports],
        }

    def to_json(self) -> str:
        """The model-level report as a JSON string."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def record(self) -> Dict:
        """Compact cacheable verification record (no per-finding text)."""
        return {
            "record_version": 1,
            "model": self.model,
            "blocks": len(self.reports),
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "clean": self.clean,
            "rules": self.by_rule(),
        }

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """Multi-line rendering of every block report."""
        lines = [f"== {self.model}: {len(self.reports)} program(s), "
                 f"{self.errors} error(s), {self.warnings} warning(s), "
                 f"{self.infos} info(s) =="]
        for report in self.reports:
            if report.findings or min_severity == Severity.INFO:
                lines.append(report.render(min_severity))
        return "\n".join(lines)


class VerificationError(RuntimeError):
    """A compiled program failed static verification (error findings)."""

    def __init__(self, report):
        self.report = report
        worst = [f for f in report.findings if f.severity == Severity.ERROR]
        name = getattr(report, "model", getattr(report, "program", "?"))
        detail = "; ".join(f"[{f.rule}] {f.message}" for f in worst[:3])
        more = f" (+{len(worst) - 3} more)" if len(worst) > 3 else ""
        super().__init__(
            f"{name}: {len(worst)} verifier error(s): {detail}{more}")
