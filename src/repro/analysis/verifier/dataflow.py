"""Iterator-table dataflow (ISSUE tentpole, check 2).

For every compute operand in every Code Repeater nest, prove that its
``(namespace, iterator)`` pair was configured before first use and that
the strided walk it describes stays inside the owning scratchpad for
*all* loop-table iterations. The walk bounds come from the symbolic
stride×trip-count evaluation done in :mod:`.state`: with per-level
strides ``s_l`` over trip counts ``c_l``,

    min addr = base + Σ_l min(0, s_l·(c_l−1))
    max addr = base + Σ_l max(0, s_l·(c_l−1))

which is exact at the extremes of the walk, so ``min ≥ 0`` and
``max < capacity`` proves the whole nest in O(levels) — no simulation.
"""

from __future__ import annotations

from typing import List

from .findings import Finding, Severity, snippet_at
from .state import ProgramTrace, capacities


def run(trace: ProgramTrace) -> List[Finding]:
    findings: List[Finding] = []
    caps = capacities(trace.params)
    entries = trace.params.iter_table_entries

    def flag(rule: str, pc: int, message: str,
             severity: Severity = Severity.ERROR) -> None:
        findings.append(Finding(
            severity=severity, rule=rule, message=message, pc=pc,
            snippet=snippet_at(trace.program, pc)))

    for nest in trace.nests:
        mismatched = set()
        for use in nest.uses:
            where = f"{use.role} {use.ns.name}[it{use.iter_idx}]"
            if use.iter_idx >= entries:
                flag("iter-index-capacity", use.pc,
                     f"{where}: iterator index exceeds the "
                     f"{entries}-entry iterator table")
                continue
            if use.entry is None:
                flag("iter-unconfigured", use.pc,
                     f"{where}: used before any ITERATOR_CONFIG.BASE_ADDR "
                     f"for this entry")
                continue
            cap = caps[use.ns]
            if use.lo < 0 or use.hi >= cap:
                counts = "x".join(str(c) for c in nest.counts)
                flag("oob-access", use.pc,
                     f"{where}: strided walk spans addresses "
                     f"[{use.lo}, {use.hi}] over a {counts} nest, outside "
                     f"the {cap}-word {use.ns.name} scratchpad "
                     f"(base={use.entry.base}, "
                     f"strides={use.entry.strides})")
            if (nest.loops
                    and len(use.entry.strides) != len(nest.loops)
                    and (use.ns, use.iter_idx) not in mismatched):
                mismatched.add((use.ns, use.iter_idx))
                flag("stride-count-mismatch", use.pc,
                     f"{where}: entry has {len(use.entry.strides)} stride "
                     f"level(s) but the nest has {len(nest.loops)} loop(s); "
                     f"extra levels walk with stride 0",
                     severity=Severity.WARN)
    return findings
