"""Loop-table validation (ISSUE tentpole, check 3).

The Code Repeater protocol violations are detected during abstract
interpretation — they are properties of the *walk* (pending SET_ITER
depth, declared body size vs. remaining stream, non-compute words caught
inside a collected body, orphaned loop configuration) — and recorded on
``trace.structural``. This pass owns reporting them.

Rules emitted here (all attached by :func:`repro.analysis.verifier.state.interpret`):

* ``loop-depth`` (error) — more than ``max_loop_levels`` pending loops
* ``loop-trip-nonpositive`` (error) — SET_ITER with ≤ 0 iterations
* ``loop-body-nonpositive`` (error) — SET_NUM_INST with ≤ 0 words
* ``loop-body-overrun`` (error) — body size runs past end of program
* ``loop-body-noncompute`` (error) — config/sync word inside a body
* ``loop-body-overlap`` (error) — a LOOP word inside a body, i.e. two
  Code Repeater activations claiming the same instruction words
* ``loop-orphan-config`` (warn) — SET_ITER never followed by a body
"""

from __future__ import annotations

from typing import List

from .findings import Finding
from .state import ProgramTrace


def run(trace: ProgramTrace) -> List[Finding]:
    return list(trace.structural)
