"""The verifier's rule registry: one stable ID per finding kind.

Every :class:`~repro.analysis.verifier.findings.Finding` carries a
kebab-case rule *name* chosen by the pass that emitted it. This module
assigns each name a stable short *ID* (``DEC001``, ``LOP004``,
``DEP003``, ...) so findings can be referenced in CI gates, suppressed
with ``repro lint --ignore <ID>``, and documented in a single table
(``repro docs --rules``) without coupling consumers to message text.

IDs are append-only: a rule's number never changes or gets reused, so a
suppression list written against one release keeps meaning the same
thing in the next. Families group rules by the pass that owns them:

=======  ==========================================================
family   pass
=======  ==========================================================
``DEC``  decode (word-level encodability)
``LOP``  loops (Code Repeater protocol)
``DFL``  dataflow (Iterator Table configuration and bounds)
``OWN``  ownership (Output BUF handoff protocol)
``LNT``  lint (style/suspicious-but-legal)
``DEP``  deps (dependence analysis, translation validation, races)
=======  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .findings import Severity


@dataclass(frozen=True)
class Rule:
    """One registered finding kind."""

    id: str          # stable short ID, e.g. "DEP001"
    name: str        # kebab-case rule name findings carry
    passname: str    # verifier pass that emits it
    severity: Severity   # default severity the pass assigns
    summary: str     # one-line description for the rule table


_RULES: List[Rule] = [
    # -- decode ------------------------------------------------------------
    Rule("DEC001", "unencodable-word", "decode", Severity.ERROR,
         "Instruction does not pack into a 32-bit word."),
    Rule("DEC002", "illegal-func", "decode", Severity.ERROR,
         "Func field is not defined for the instruction's opcode."),
    Rule("DEC003", "roundtrip-mismatch", "decode", Severity.ERROR,
         "Packed word does not decode back to the same word."),
    Rule("DEC004", "illegal-namespace", "decode", Severity.ERROR,
         "Namespace id is not an assigned scratchpad namespace."),
    Rule("DEC005", "undecodable-word", "decode", Severity.ERROR,
         "Raw word in a binary blob does not decode at all."),
    # -- loops -------------------------------------------------------------
    Rule("LOP001", "loop-depth", "loops", Severity.ERROR,
         "More pending loop levels than the Code Repeater supports."),
    Rule("LOP002", "loop-trip-nonpositive", "loops", Severity.ERROR,
         "SET_ITER declares a non-positive iteration count."),
    Rule("LOP003", "loop-body-nonpositive", "loops", Severity.ERROR,
         "SET_NUM_INST declares a non-positive body size."),
    Rule("LOP004", "loop-body-overrun", "loops", Severity.ERROR,
         "Declared body size runs past the end of the program."),
    Rule("LOP005", "loop-body-noncompute", "loops", Severity.ERROR,
         "Configuration or sync word inside a collected loop body."),
    Rule("LOP006", "loop-body-overlap", "loops", Severity.ERROR,
         "Two Code Repeater activations claim the same words."),
    Rule("LOP007", "loop-orphan-config", "loops", Severity.WARN,
         "SET_ITER configuration never followed by a loop body."),
    # -- dataflow ----------------------------------------------------------
    Rule("DFL001", "iter-index-capacity", "dataflow", Severity.ERROR,
         "Iterator index exceeds the Iterator Table capacity."),
    Rule("DFL002", "iter-unconfigured", "dataflow", Severity.ERROR,
         "Operand uses an Iterator Table entry never configured."),
    Rule("DFL003", "oob-access", "dataflow", Severity.ERROR,
         "Walk's address extent leaves the scratchpad capacity."),
    Rule("DFL004", "stride-count-mismatch", "dataflow", Severity.WARN,
         "Configured strides do not cover the nest's loop levels."),
    # -- ownership ---------------------------------------------------------
    Rule("OWN001", "obuf-double-release", "ownership", Severity.ERROR,
         "Output BUF released more than once."),
    Rule("OWN002", "obuf-release-without-ownership", "ownership",
         Severity.WARN,
         "SIMD_END_BUF in a program that never owned the Output BUF."),
    Rule("OWN003", "obuf-write-race", "ownership", Severity.ERROR,
         "Write to the Output BUF while the GEMM core owns it."),
    Rule("OWN004", "obuf-read-before-ownership", "ownership",
         Severity.ERROR,
         "Read of the Output BUF before the handoff sync."),
    Rule("OWN005", "obuf-access-after-release", "ownership",
         Severity.ERROR,
         "Output BUF access after SIMD_END_BUF released it."),
    Rule("OWN006", "obuf-never-released", "ownership", Severity.WARN,
         "Program owns the Output BUF but never releases it."),
    # -- lint --------------------------------------------------------------
    Rule("LNT001", "dead-store", "lint", Severity.INFO,
         "Scratchpad region written but never read afterwards."),
    Rule("LNT002", "imm-unconfigured", "lint", Severity.WARN,
         "IMM BUF slot read without a preceding IMM_VALUE write."),
    Rule("LNT003", "iter-unused", "lint", Severity.INFO,
         "Iterator Table entry configured but never used."),
    Rule("LNT004", "sync-protocol", "lint", Severity.WARN,
         "Program violates the SIMD_START/END sync protocol."),
    # -- deps --------------------------------------------------------------
    Rule("DEP001", "translation-mismatch", "deps", Severity.ERROR,
         "IR-level access claim disagrees with the lowered binary."),
    Rule("DEP002", "claim-noninjective", "deps", Severity.ERROR,
         "Fission forwarding claim fails injectivity re-derivation."),
    Rule("DEP003", "dram-undef-read", "deps", Severity.ERROR,
         "DAE load reads DRAM no earlier producer materialized."),
    Rule("DEP004", "cache-alias-overlap", "deps", Severity.ERROR,
         "In-place CacheAppend slice races a concurrent access."),
    Rule("DEP005", "cache-append-oob", "deps", Severity.ERROR,
         "CacheAppend slice leaves the cache tensor's bounds."),
    Rule("DEP006", "obuf-tile-overrun", "deps", Severity.ERROR,
         "OBUF walk reaches past the GEMM tile's handoff footprint."),
]

BY_NAME: Dict[str, Rule] = {rule.name: rule for rule in _RULES}
BY_ID: Dict[str, Rule] = {rule.id: rule for rule in _RULES}

assert len(BY_NAME) == len(_RULES), "duplicate rule name"
assert len(BY_ID) == len(_RULES), "duplicate rule id"


def all_rules() -> List[Rule]:
    """Every registered rule, in family order."""
    return list(_RULES)


def rule_id(name: str) -> Optional[str]:
    """The stable ID for a rule name (``None`` for unregistered names)."""
    rule = BY_NAME.get(name)
    return rule.id if rule is not None else None


def normalize_rule(token: str) -> Optional[str]:
    """Resolve a user-supplied rule reference to its kebab-case name.

    Accepts either the stable ID (``DEP003``, case-insensitive) or the
    rule name itself; returns ``None`` when the token matches neither.
    """
    upper = token.upper()
    if upper in BY_ID:
        return BY_ID[upper].name
    lower = token.lower()
    if lower in BY_NAME:
        return lower
    return None


def resolve_ignores(tokens: Iterable[str]) -> List[str]:
    """Map ignore tokens to rule names, raising on unknown tokens."""
    names = []
    for token in tokens:
        name = normalize_rule(token)
        if name is None:
            known = ", ".join(sorted(BY_ID))
            raise ValueError(
                f"unknown rule {token!r}; known rule IDs: {known}")
        names.append(name)
    return names


def rules_table() -> str:
    """The documented rule table as Markdown (``repro docs --rules``)."""
    lines = [
        "# Verifier rule reference",
        "",
        "Every verifier finding carries a stable rule ID. Suppress a",
        "rule with `repro lint --ignore <ID>` (or the kebab-case name);",
        "IDs are append-only and never reused.",
        "",
        "| ID | Rule | Pass | Severity | Meaning |",
        "|----|------|------|----------|---------|",
    ]
    for rule in _RULES:
        lines.append(
            f"| {rule.id} | `{rule.name}` | {rule.passname} "
            f"| {rule.severity.name} | {rule.summary} |")
    lines.append("")
    return "\n".join(lines)
