"""Output-BUF ownership state machine (ISSUE tentpole, check 4).

The Output BUF has *fluid ownership* (paper §4.1): the systolic array
fills it during GEMM execution, then hands it to the Tandem core, which
must release it with ``SYNC.SIMD_END_BUF`` before the next GEMM layer
may start writing. Statically that is a three-state machine per program:

    GEMM-owned ──(handoff at program start, iff the block has a GEMM
    producer)──▶ Tandem-owned ──(SIMD_END_BUF)──▶ released

and the rules are transitions the hardware has no interlock for:

* ``obuf-read-before-ownership`` (error) — reading OBUF in a program
  that was never handed the buffer (no GEMM producer): the tile data
  belongs to whatever the systolic array is doing right now.
* ``obuf-write-race`` (error) — writing OBUF without ownership, or
  after releasing it: races the systolic array's own writes.
* ``obuf-access-after-release`` (error) — any OBUF read past
  ``SIMD_END_BUF``; the GEMM unit may already be overwriting the tile.
* ``obuf-double-release`` (error) — a second ``SIMD_END_BUF`` would
  release a buffer the Tandem core no longer owns.
* ``obuf-release-without-ownership`` (warn) — ``SIMD_END_BUF`` in a
  program that never owned the buffer (harmless today, protocol drift).
* ``obuf-never-released`` (warn) — the program consumed OBUF but never
  handed it back, stalling the next GEMM layer forever.
"""

from __future__ import annotations

from typing import List

from ...isa import Namespace
from .findings import Finding, Severity, snippet_at
from .state import ProgramTrace


def run(trace: ProgramTrace, owns_obuf: bool) -> List[Finding]:
    findings: List[Finding] = []

    def flag(rule: str, pc: int, message: str,
             severity: Severity = Severity.ERROR) -> None:
        findings.append(Finding(
            severity=severity, rule=rule, message=message, pc=pc,
            snippet=snippet_at(trace.program, pc)))

    release = trace.release_pcs[0] if trace.release_pcs else None
    for extra in trace.release_pcs[1:]:
        flag("obuf-double-release", extra,
             "second SIMD_END_BUF: the Output BUF was already released")
    if not owns_obuf and trace.release_pcs:
        flag("obuf-release-without-ownership", trace.release_pcs[0],
             "SIMD_END_BUF in a program that never owned the Output BUF",
             severity=Severity.WARN)

    touched = False
    for use in (u for u in trace.uses if u.ns == Namespace.OBUF):
        touched = True
        if not owns_obuf:
            if use.writes:
                flag("obuf-write-race", use.pc,
                     f"{use.role} write to OBUF[it{use.iter_idx}] races the "
                     f"systolic array: this program never owned the buffer")
            if use.reads:
                flag("obuf-read-before-ownership", use.pc,
                     f"{use.role} read of OBUF[it{use.iter_idx}] before any "
                     f"GEMM→Tandem handoff: the tile is un-handed-off")
        elif release is not None and use.pc > release:
            if use.writes:
                flag("obuf-write-race", use.pc,
                     f"{use.role} write to OBUF[it{use.iter_idx}] after "
                     f"SIMD_END_BUF at pc {release} races the next GEMM "
                     f"layer")
            elif use.reads:
                flag("obuf-access-after-release", use.pc,
                     f"{use.role} read of OBUF[it{use.iter_idx}] after "
                     f"SIMD_END_BUF at pc {release}")

    for transfer in (t for t in trace.transfers if t.ns == Namespace.OBUF):
        touched = True
        verb = "store from" if transfer.direction == "st" else "load into"
        if not owns_obuf:
            rule = ("obuf-read-before-ownership" if transfer.direction == "st"
                    else "obuf-write-race")
            flag(rule, transfer.start_pc,
                 f"DAE {verb} OBUF without GEMM→Tandem handoff")
        elif release is not None and transfer.start_pc > release:
            rule = ("obuf-access-after-release" if transfer.direction == "st"
                    else "obuf-write-race")
            flag(rule, transfer.start_pc,
                 f"DAE {verb} OBUF after SIMD_END_BUF at pc {release}")

    if owns_obuf and touched and release is None:
        pc = trace.sync_events[-1][0] if trace.sync_events else None
        findings.append(Finding(
            severity=Severity.WARN, rule="obuf-never-released",
            message="program consumes the Output BUF but never issues "
                    "SIMD_END_BUF to hand it back to the GEMM unit",
            pc=pc, snippet=snippet_at(trace.program, pc) if pc is not None
            else ""))
    return findings
