"""Static program verifier + lint pipeline for compiled Tandem binaries.

The Tandem Processor drops every hardware safety net — no register
file, no MMU, no interlocks — so a compiled program is only as safe as
its iterator-table, loop-table, and scratchpad configuration. This
package proves those properties *statically*, post-assembly and
pre-execution, over an abstract interpretation of the machine state:

* :mod:`.state` — one-pass abstract interpreter producing a
  :class:`~repro.analysis.verifier.state.ProgramTrace`
* :mod:`.decode` — legal opcode/func pairs, byte-identical re-encoding
* :mod:`.loops` — Code Repeater protocol (depth, trip counts, bodies)
* :mod:`.dataflow` — configured-before-use + symbolic bounds proofs
* :mod:`.ownership` — Output-BUF GEMM→Tandem handoff state machine
* :mod:`.lint` — dead stores, unconfigured IMM reads, unused entries

Entry points: :func:`verify_program` (one program),
:func:`verify_model` (every block of a compiled model),
:func:`verify_words` / :func:`verify_blob` (serialized binaries, for
``repro verify``).
"""

from .findings import (
    Finding,
    ModelVerifyReport,
    Severity,
    VerificationError,
    VerifyReport,
    snippet_at,
)
from .pipeline import (
    PASS_NAMES,
    deps_mode,
    verify_blob,
    verify_block_dicts,
    verify_model,
    verify_program,
    verify_words,
)
from .rules import Rule, all_rules, resolve_ignores, rule_id, rules_table
from .state import ProgramTrace, interpret

__all__ = [
    "Finding",
    "ModelVerifyReport",
    "PASS_NAMES",
    "ProgramTrace",
    "Rule",
    "Severity",
    "VerificationError",
    "VerifyReport",
    "all_rules",
    "deps_mode",
    "interpret",
    "resolve_ignores",
    "rule_id",
    "rules_table",
    "snippet_at",
    "verify_blob",
    "verify_block_dicts",
    "verify_model",
    "verify_program",
    "verify_words",
]
