"""Abstract interpretation of a Tandem program's machine state.

One linear walk over the instruction stream mirrors exactly what
:class:`~repro.simulator.machine.TandemMachine` tracks — iterator
tables, the Code Repeater's pending-loop/body-collection protocol, IMM
BUF writes, Data Access Engine configuration, sync events — but over
*symbolic* strided address ranges instead of data. The walk produces a
:class:`ProgramTrace` that every verifier/lint pass consumes, so the
stream is decoded once no matter how many passes run.

Addresses are evaluated as intervals: an operand whose iterator entry
holds ``base`` plus per-level ``strides`` over trip counts ``counts``
touches addresses in ``[base + Σ min(0, s·(c-1)), base + Σ max(0,
s·(c-1))]`` — exact for the extremes of every strided walk, and a
conservative over-approximation in between (the right direction for
bounds proofs and for keeping dead-store lints honest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod
from typing import Dict, List, Optional, Tuple

from ...isa import (
    AluFunc,
    Instruction,
    IteratorConfigFunc,
    LdStFunc,
    LoopFunc,
    Namespace,
    Opcode,
    SyncFunc,
    TandemProgram,
    is_compute_opcode,
)
from ...simulator.params import TandemParams
from .findings import Finding, Severity, snippet_at


def capacities(params: TandemParams) -> Dict[Namespace, int]:
    """Words per namespace, matching :meth:`ScratchpadFile.build`."""
    return {
        Namespace.IBUF1: params.interim_buf_words,
        Namespace.IBUF2: params.interim_buf_words,
        Namespace.OBUF: params.obuf_words,
        Namespace.IMM: params.imm_slots,
        Namespace.VMEM: params.interim_buf_words,
    }


@dataclass
class EntryConfig:
    """One iterator-table configuration epoch (BASE_ADDR .. overwrite)."""

    ns: Namespace
    idx: int
    base: int
    strides: List[int] = field(default_factory=list)
    pc: int = -1               # pc of the BASE_ADDR word
    used: bool = False


@dataclass
class OperandUse:
    """One operand of one body instruction, resolved at nest dispatch."""

    pc: int                    # body instruction index
    role: str                  # "dst" | "src1" | "src2"
    ns: Namespace
    iter_idx: int
    reads: bool
    writes: bool
    entry: Optional[EntryConfig]   # None when used-before-configuration
    lo: int = 0                # inclusive address interval, valid if entry
    hi: int = 0
    levels: int = 0            # loop levels the address walk spans


@dataclass
class NestTrace:
    """One Code Repeater activation: loops + body + resolved operands."""

    header_pc: int             # pc of LOOP.SET_NUM_INST
    loops: List[Tuple[int, int, int]]   # (loop_id, count, pc)
    body: List[Tuple[int, Instruction]]
    uses: List[OperandUse] = field(default_factory=list)

    @property
    def counts(self) -> List[int]:
        return [count for _, count, _ in self.loops] or [1]


@dataclass
class TransferTrace:
    """One DAE activation as configured by the instruction stream."""

    start_pc: int
    direction: str             # "ld" | "st"
    ns: Namespace
    base: int
    elements: Optional[int]    # product of configured dims (None if none)


@dataclass
class PermuteTrace:
    """One permute-engine activation (namespaces are runtime-bound)."""

    start_pc: int
    src_base: int
    dst_base: int
    words: Optional[int]


@dataclass
class ProgramTrace:
    """Everything the passes need, from one decode of the stream."""

    program: TandemProgram
    params: TandemParams
    nests: List[NestTrace] = field(default_factory=list)
    transfers: List[TransferTrace] = field(default_factory=list)
    permutes: List[PermuteTrace] = field(default_factory=list)
    configs: List[EntryConfig] = field(default_factory=list)
    imm_written: Dict[int, int] = field(default_factory=dict)  # slot -> pc
    sync_events: List[Tuple[int, int]] = field(default_factory=list)
    release_pcs: List[int] = field(default_factory=list)
    structural: List[Finding] = field(default_factory=list)

    @property
    def uses(self) -> List[OperandUse]:
        return [use for nest in self.nests for use in nest.uses]


def _is_unary(inst: Instruction) -> bool:
    """Mirror of TandemMachine._is_unary: src2 is never read."""
    if inst.opcode == Opcode.CALCULUS:
        return True
    return inst.opcode == Opcode.ALU and inst.func in (
        int(AluFunc.MOVE), int(AluFunc.NOT))


def _reads_dst(inst: Instruction) -> bool:
    """MACC accumulates into dst, so dst is read as well as written."""
    return inst.opcode == Opcode.ALU and inst.func == int(AluFunc.MACC)


def interpret(program: TandemProgram,
              params: Optional[TandemParams] = None) -> ProgramTrace:
    """Run the abstract machine over ``program`` and build its trace.

    Structural violations of the Code Repeater protocol (the ones
    :class:`TandemMachine` would raise ``MachineError`` for, plus the
    ones it silently tolerates) are recorded as findings on
    ``trace.structural`` for the loop-validation pass to report.
    """
    params = params or TandemParams()
    trace = ProgramTrace(program=program, params=params)
    tables: Dict[Tuple[Namespace, int], EntryConfig] = {}
    pending_loops: List[Tuple[int, int, int]] = []   # (loop_id, count, pc)
    dae_config: Dict[str, Dict] = {
        "ld": {"ns": None, "base": 0, "dims": {}},
        "st": {"ns": None, "base": 0, "dims": {}},
    }
    permute_config = {"src_base": None, "dst_base": None, "dims": {}}

    def structural(rule: str, severity: Severity, pc: int, msg: str) -> None:
        trace.structural.append(Finding(
            severity=severity, rule=rule, message=msg, pc=pc,
            snippet=snippet_at(program, pc)))

    insts = program.instructions
    pc = 0
    while pc < len(insts):
        inst = insts[pc]
        opcode = inst.opcode

        if opcode == Opcode.SYNC:
            trace.sync_events.append((pc, inst.func))
            if inst.func == int(SyncFunc.SIMD_END_BUF):
                trace.release_pcs.append(pc)

        elif opcode == Opcode.ITERATOR_CONFIG:
            try:
                func = IteratorConfigFunc(inst.func)
            except ValueError:
                pc += 1
                continue  # the decode pass reports illegal funcs
            if func == IteratorConfigFunc.BASE_ADDR:
                try:
                    ns = Namespace(inst.field3)
                except ValueError:
                    pc += 1
                    continue
                entry = EntryConfig(ns=ns, idx=inst.field5, base=inst.imm,
                                    pc=pc)
                tables[(ns, inst.field5)] = entry
                trace.configs.append(entry)
            elif func == IteratorConfigFunc.STRIDE:
                try:
                    ns = Namespace(inst.field3)
                except ValueError:
                    pc += 1
                    continue
                entry = tables.get((ns, inst.field5))
                if entry is None:
                    # The machine setdefault()s a zero-base entry here;
                    # record the implicit epoch so later uses resolve.
                    entry = EntryConfig(ns=ns, idx=inst.field5, base=0, pc=pc)
                    tables[(ns, inst.field5)] = entry
                    trace.configs.append(entry)
                entry.strides.append(inst.imm)
            elif func == IteratorConfigFunc.IMM_VALUE:
                trace.imm_written.setdefault(inst.field5, pc)
            # IMM_HIGH only patches a previously written slot.

        elif opcode == Opcode.LOOP:
            if inst.func == int(LoopFunc.SET_ITER):
                if len(pending_loops) >= params.max_loop_levels:
                    structural(
                        "loop-depth", Severity.ERROR, pc,
                        f"loop nest deeper than the {params.max_loop_levels}"
                        f"-level Code Repeater")
                if inst.imm <= 0:
                    structural(
                        "loop-trip-nonpositive", Severity.ERROR, pc,
                        f"loop {inst.field3} configured with {inst.imm} "
                        f"iterations")
                pending_loops.append((inst.field3, max(inst.imm, 1), pc))
            elif inst.func == int(LoopFunc.SET_NUM_INST):
                if inst.imm <= 0:
                    structural(
                        "loop-body-nonpositive", Severity.ERROR, pc,
                        f"LOOP.SET_NUM_INST with non-positive body size "
                        f"{inst.imm}")
                    pending_loops = []
                    pc += 1
                    continue
                body_words = insts[pc + 1:pc + 1 + inst.imm]
                if len(body_words) < inst.imm:
                    structural(
                        "loop-body-overrun", Severity.ERROR, pc,
                        f"loop body of {inst.imm} words runs past the end "
                        f"of the {len(insts)}-word program")
                nest = NestTrace(header_pc=pc, loops=list(pending_loops),
                                 body=[(pc + 1 + i, w)
                                       for i, w in enumerate(body_words)])
                for body_pc, word in nest.body:
                    if not is_compute_opcode(word.opcode):
                        rule = ("loop-body-overlap"
                                if word.opcode == Opcode.LOOP
                                else "loop-body-noncompute")
                        structural(
                            rule, Severity.ERROR, body_pc,
                            f"Code Repeater body contains a non-compute "
                            f"{word.opcode.name} word"
                            + (" (overlapping repeater bodies)"
                               if word.opcode == Opcode.LOOP else ""))
                        continue
                    _resolve_uses(nest, body_pc, word, tables)
                trace.nests.append(nest)
                pending_loops = []
                pc += 1 + len(body_words)
                continue

        elif opcode == Opcode.TILE_LD_ST:
            pc = _step_dae(trace, dae_config, pc, inst)
            pc += 1
            continue

        elif opcode == Opcode.PERMUTE:
            _step_permute(trace, permute_config, pc, inst)

        elif is_compute_opcode(opcode):
            # Bare compute word outside a body: a one-point nest.
            nest = NestTrace(header_pc=pc, loops=[], body=[(pc, inst)])
            _resolve_uses(nest, pc, inst, tables)
            trace.nests.append(nest)

        pc += 1

    if pending_loops:
        structural(
            "loop-orphan-config", Severity.WARN, pending_loops[-1][2],
            f"{len(pending_loops)} LOOP.SET_ITER word(s) never followed by "
            f"a SET_NUM_INST body")
    return trace


def _resolve_uses(nest: NestTrace, pc: int, inst: Instruction,
                  tables: Dict[Tuple[Namespace, int], EntryConfig]) -> None:
    operands = [("dst", inst.dst, _reads_dst(inst), True),
                ("src1", inst.src1, True, False)]
    if not _is_unary(inst) and inst.src2 is not None:
        operands.append(("src2", inst.src2, True, False))
    counts = nest.counts
    for role, operand, reads, writes in operands:
        if operand is None:
            continue
        entry = tables.get((operand.ns, operand.iter_idx))
        use = OperandUse(pc=pc, role=role, ns=operand.ns,
                         iter_idx=operand.iter_idx,
                         reads=reads, writes=writes, entry=entry)
        if entry is not None:
            entry.used = True
            lo = hi = entry.base
            walked = list(zip(entry.strides, counts))
            for stride, count in walked:
                span = stride * (count - 1)
                lo += min(0, span)
                hi += max(0, span)
            use.lo, use.hi, use.levels = lo, hi, len(walked)
        nest.uses.append(use)


def _step_dae(trace: ProgramTrace, config: Dict[str, Dict], pc: int,
              inst: Instruction) -> int:
    try:
        func = LdStFunc(inst.func)
    except ValueError:
        return pc  # decode pass reports it
    direction = "st" if func.name.startswith("ST") else "ld"
    state = config[direction]
    if func in (LdStFunc.LD_CONFIG_BASE_ADDR, LdStFunc.ST_CONFIG_BASE_ADDR):
        try:
            state["ns"] = Namespace(inst.field3)
        except ValueError:
            state["ns"] = None
        state["base"] = inst.imm
        state["dims"] = {}
    elif func in (LdStFunc.LD_CONFIG_BASE_LOOP_ITER,
                  LdStFunc.ST_CONFIG_BASE_LOOP_ITER):
        state["dims"][inst.field5] = inst.imm
    elif func in (LdStFunc.LD_START, LdStFunc.ST_START):
        dims = state["dims"]
        elements = prod(dims.values()) if dims else None
        if state["ns"] is not None:
            trace.transfers.append(TransferTrace(
                start_pc=pc, direction=direction, ns=state["ns"],
                base=state["base"], elements=elements))
    return pc


def _step_permute(trace: ProgramTrace, config: Dict, pc: int,
                  inst: Instruction) -> None:
    from ...isa import PermuteFunc
    try:
        func = PermuteFunc(inst.func)
    except ValueError:
        return
    if func == PermuteFunc.SET_BASE_ADDR:
        key = "src_base" if inst.field3 == 0 else "dst_base"
        config[key] = inst.imm
        if inst.field3 == 0:
            config["dims"] = {}
    elif func == PermuteFunc.SET_LOOP_ITER:
        config["dims"][inst.field5] = inst.imm
    elif func == PermuteFunc.START:
        dims = config["dims"]
        trace.permutes.append(PermuteTrace(
            start_pc=pc,
            src_base=config["src_base"] or 0,
            dst_base=config["dst_base"] or 0,
            words=prod(dims.values()) if dims else None))
