"""Lint-tier passes: legal-but-suspect programs (ISSUE tentpole).

Nothing here fails verification — these are the diagnostics a compiler
engineer wants when a lowered program is *correct but wasteful*, or when
a hand-written program drifts from the lowering conventions:

* ``dead-store`` (info) — a compute write to an interim buffer whose
  address interval is never read afterwards (by a later compute read, a
  DAE store, or a permute source). Interval overlap is conservative, so
  a reported store really is unread.
* ``imm-unconfigured`` (warn) — a compute read through an IMM-namespace
  iterator entry whose slot has no ``IMM_VALUE`` write before the nest.
* ``iter-unused`` (info) — an iterator-table configuration epoch no
  compute operand ever references before it is overwritten or the
  program ends.
* ``sync-protocol`` (warn) — the program does not follow the lowering
  convention of opening with ``SYNC.SIMD_START_EXEC`` and signalling
  ``SYNC.SIMD_END_EXEC`` at the end.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...isa import Namespace, Opcode, SyncFunc
from .findings import Finding, Severity, snippet_at
from .state import ProgramTrace

_DEAD_STORE_SPACES = (Namespace.IBUF1, Namespace.IBUF2, Namespace.VMEM)


def _overlaps(lo: int, hi: int, other_lo: int, other_hi: Optional[int]) -> bool:
    if other_hi is None:          # unbounded read (size unknown statically)
        return hi >= other_lo
    return lo <= other_hi and other_lo <= hi


def run(trace: ProgramTrace) -> List[Finding]:
    findings: List[Finding] = []
    program = trace.program

    def flag(rule: str, pc: Optional[int], message: str,
             severity: Severity) -> None:
        findings.append(Finding(
            severity=severity, rule=rule, message=message, pc=pc,
            snippet=snippet_at(program, pc) if pc is not None else ""))

    # (pc, namespace-or-None-for-wildcard, lo, hi-or-None) for every read.
    reads: List[Tuple[int, Optional[Namespace], int, Optional[int]]] = []
    for use in trace.uses:
        if use.reads and use.entry is not None:
            reads.append((use.pc, use.ns, use.lo, use.hi))
    for transfer in trace.transfers:
        if transfer.direction == "st":
            hi = (transfer.base + transfer.elements - 1
                  if transfer.elements else None)
            reads.append((transfer.start_pc, transfer.ns, transfer.base, hi))
    for perm in trace.permutes:
        # The permute engine's namespaces are runtime-bound, so its
        # source interval counts as a read in *any* namespace.
        hi = perm.src_base + perm.words - 1 if perm.words else None
        reads.append((perm.start_pc, None, perm.src_base, hi))

    for use in trace.uses:
        if not (use.writes and use.entry is not None
                and use.ns in _DEAD_STORE_SPACES):
            continue
        alive = any(
            pc > use.pc and (ns is None or ns == use.ns)
            and _overlaps(use.lo, use.hi, lo, hi)
            for pc, ns, lo, hi in reads)
        if not alive:
            flag("dead-store", use.pc,
                 f"value written to {use.ns.name}[{use.lo}..{use.hi}] is "
                 f"never read afterwards", Severity.INFO)

    for use in trace.uses:
        if use.ns != Namespace.IMM or not use.reads or use.entry is None:
            continue
        for slot in range(max(0, use.lo), min(use.hi, use.lo + 63) + 1):
            written_at = trace.imm_written.get(slot)
            if written_at is None or written_at > use.pc:
                flag("imm-unconfigured", use.pc,
                     f"{use.role} reads IMM slot {slot} with no prior "
                     f"IMM_VALUE write", Severity.WARN)
                break

    for entry in trace.configs:
        if not entry.used:
            flag("iter-unused", entry.pc,
                 f"iterator entry {entry.ns.name}[it{entry.idx}] is "
                 f"configured but never referenced by a compute operand",
                 Severity.INFO)

    insts = program.instructions
    if insts:
        first = insts[0]
        if not (first.opcode == Opcode.SYNC
                and first.func == int(SyncFunc.SIMD_START_EXEC)):
            flag("sync-protocol", 0,
                 "program does not open with SYNC.SIMD_START_EXEC",
                 Severity.WARN)
        if not any(func == int(SyncFunc.SIMD_END_EXEC)
                   for _, func in trace.sync_events):
            flag("sync-protocol", len(insts) - 1,
                 "program never signals SYNC.SIMD_END_EXEC", Severity.WARN)
    return findings
