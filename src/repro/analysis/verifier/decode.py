"""Decode/shape checks: every word is a legal, stable encoding.

Three properties per 32-bit word (ISSUE tentpole, check 1):

* it *packs* — every field fits its Figure 12 slot;
* its ``(opcode, func)`` pair names a defined operation;
* it survives a decode→re-encode round trip byte-identically, so the
  serialized artifact and the in-memory program cannot drift apart.

Namespace id fields (3 bits, values 5–7 unassigned) are validated for
the words that carry one: iterator-table configuration and Data Access
Engine base-address configuration. Compute operands arrive as typed
:class:`Namespace` values straight from the decoder, so an illegal
namespace there already failed ``TandemProgram.unpack``.
"""

from __future__ import annotations

from typing import List

from ...isa import (
    FUNC_ENUMS,
    IteratorConfigFunc,
    LdStFunc,
    Namespace,
    Opcode,
    decode,
)
from .findings import Finding, Severity, snippet_at
from .state import ProgramTrace

_NS_CARRYING_ITER_FUNCS = (int(IteratorConfigFunc.BASE_ADDR),
                           int(IteratorConfigFunc.STRIDE))
_NS_CARRYING_LDST_FUNCS = (int(LdStFunc.LD_CONFIG_BASE_ADDR),
                           int(LdStFunc.ST_CONFIG_BASE_ADDR))


def run(trace: ProgramTrace) -> List[Finding]:
    findings: List[Finding] = []
    program = trace.program

    def flag(rule: str, pc: int, message: str,
             severity: Severity = Severity.ERROR) -> None:
        findings.append(Finding(severity=severity, rule=rule, message=message,
                                pc=pc, snippet=snippet_at(program, pc)))

    for pc, inst in enumerate(program.instructions):
        try:
            word = inst.pack()
        except Exception as err:  # EncodingError or malformed operands
            flag("unencodable-word", pc,
                 f"instruction does not pack into a 32-bit word: {err}")
            continue

        func_enum = FUNC_ENUMS.get(inst.opcode)
        if func_enum is not None:
            try:
                func_enum(inst.func)
            except ValueError:
                flag("illegal-func", pc,
                     f"func {inst.func:#x} is not defined for opcode "
                     f"{inst.opcode.name}")

        try:
            roundtrip = decode(word).pack()
        except Exception as err:
            flag("roundtrip-mismatch", pc,
                 f"word {word:#010x} does not decode back: {err}")
            continue
        if roundtrip != word:
            flag("roundtrip-mismatch", pc,
                 f"word {word:#010x} re-encodes as {roundtrip:#010x}")

        ns_field = None
        if (inst.opcode == Opcode.ITERATOR_CONFIG
                and inst.func in _NS_CARRYING_ITER_FUNCS):
            ns_field = inst.field3
        elif (inst.opcode == Opcode.TILE_LD_ST
                and inst.func in _NS_CARRYING_LDST_FUNCS):
            ns_field = inst.field3
        if ns_field is not None:
            try:
                Namespace(ns_field)
            except ValueError:
                flag("illegal-namespace", pc,
                     f"namespace id {ns_field} is not an assigned scratchpad "
                     f"namespace (0-{max(Namespace)})")
    return findings
