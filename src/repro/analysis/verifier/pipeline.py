"""The ordered pass pipeline and its entry points.

``verify_program`` is the core oracle: one abstract-interpretation walk
(:func:`.state.interpret`) feeds the ordered passes — decode → loops →
dataflow → ownership → deps → lint — and the findings land in one
:class:`VerifyReport`. ``verify_model`` maps it over a compiled model's
blocks (Output-BUF ownership comes from whether the block has a GEMM
producer) and appends a model-level race report;
``verify_words``/``verify_blob`` accept serialized program words,
turning undecodable words into findings instead of exceptions so
``repro verify`` can grade corrupt binaries.

The ``deps`` pass is translation validation: when the caller supplies
the lowered tile (``verify_model`` always does), the compiler's
IR-level access claims (:mod:`repro.analysis.deps.access`) are
cross-checked against the binary-level walks the abstract interpreter
reconstructed. ``REPRO_DEPS`` selects the mode — ``off`` disables it,
``strict`` is reserved for CI gates (callers may also treat it as
"warnings fail"), anything else (the default) runs it.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from ...isa import Namespace, ProgramDecodeError, TandemProgram, decode
from ...simulator.params import TandemParams
from ...telemetry import get_telemetry
from . import dataflow, decode as decode_pass, lint, loops, ownership
from .findings import (
    Finding,
    ModelVerifyReport,
    Severity,
    VerificationError,
    VerifyReport,
)
from .state import ProgramTrace, interpret

#: Pass order is load-bearing: structural protocol errors (decode, loop
#: table) make downstream dataflow findings noise, so they sort first.
PASS_NAMES = ("decode", "loops", "dataflow", "ownership", "deps", "lint")


def deps_mode(override: Optional[str] = None) -> str:
    """Resolve the dependence-analysis mode: ``off``/``on``/``strict``.

    ``override`` wins when given; otherwise the ``REPRO_DEPS``
    environment variable decides, defaulting to ``on``.
    """
    raw = override if override is not None else os.environ.get("REPRO_DEPS")
    if raw is None:
        return "on"
    token = raw.strip().lower()
    if token in ("0", "off", "false", "no"):
        return "off"
    if token == "strict":
        return "strict"
    return "on"


def _infer_owns_obuf(trace: ProgramTrace) -> bool:
    """Permissive default for bare programs (no block context).

    A program that releases the Output BUF, or touches it at all, is
    assumed to have been handed the buffer — so ownership errors only
    fire when the caller states ``owns_obuf=False`` (as ``verify_model``
    does for blocks without a GEMM producer).
    """
    if trace.release_pcs:
        return True
    if any(use.ns == Namespace.OBUF for use in trace.uses):
        return True
    return any(t.ns == Namespace.OBUF for t in trace.transfers)


def verify_program(program: TandemProgram,
                   params: Optional[TandemParams] = None, *,
                   owns_obuf: Optional[bool] = None,
                   tile=None, deps: Optional[str] = None) -> VerifyReport:
    """Run every verifier/lint pass over one program.

    ``tile`` optionally supplies the :class:`LoweredTile` the program
    came from; with it (and the deps mode not ``off``) the translation-
    validation pass cross-checks the tile's IR-level access metadata
    against the interpreted binary.
    """
    params = params or TandemParams()
    trace = interpret(program, params)
    if owns_obuf is None:
        owns_obuf = _infer_owns_obuf(trace)
    mode = deps_mode(deps)
    ran_deps = mode != "off" and tile is not None
    report = VerifyReport(program=program.name,
                          instructions=len(program.instructions))
    report.passes = [name for name in PASS_NAMES
                     if name != "deps" or ran_deps]
    report.extend(decode_pass.run(trace))
    report.extend(loops.run(trace))
    report.extend(dataflow.run(trace))
    report.extend(ownership.run(trace, owns_obuf))
    if ran_deps:
        from ..deps import validate_tile
        deps_findings = validate_tile(tile, trace)
        report.extend(deps_findings)
        tel = get_telemetry()
        if tel.enabled:
            tel.count("verifier.deps.programs")
            tel.count("verifier.deps.findings", len(deps_findings))
    report.extend(lint.run(trace))
    report.findings.sort(
        key=lambda f: (f.pc if f.pc is not None else -1, -int(f.severity)))
    return report


def verify_words(name: str, words: Sequence[int],
                 params: Optional[TandemParams] = None, *,
                 owns_obuf: Optional[bool] = None) -> VerifyReport:
    """Verify a serialized word stream, grading undecodable words.

    Unlike :meth:`TandemProgram.unpack`, a word that fails to decode
    becomes an ``undecodable-word`` error finding. Semantic passes need
    a coherent stream (one dropped word shifts every loop body), so when
    any word fails to decode only the decode tier runs.
    """
    decoded, findings = [], []
    for pc, word in enumerate(words):
        try:
            if not isinstance(word, int) or not 0 <= word < (1 << 32):
                raise ProgramDecodeError(
                    f"{word!r} is not a 32-bit word", pc=pc)
            decoded.append(decode(word))
        except (ProgramDecodeError, ValueError) as err:
            shown = f"{word:#010x}" if isinstance(word, int) else repr(word)
            findings.append(Finding(
                severity=Severity.ERROR, rule="undecodable-word",
                message=f"word {shown} does not decode: {err}", pc=pc))
    if findings:
        report = VerifyReport(program=name, instructions=len(words),
                              passes=["decode"], findings=findings)
        return report
    return verify_program(TandemProgram(name, decoded), params,
                          owns_obuf=owns_obuf)


def verify_blob(name: str, blob: bytes,
                params: Optional[TandemParams] = None, *,
                owns_obuf: Optional[bool] = None) -> VerifyReport:
    """Verify a little-endian packed program blob (``to_bytes`` form)."""
    findings: List[Finding] = []
    tail = len(blob) % 4
    if tail:
        findings.append(Finding(
            severity=Severity.ERROR, rule="undecodable-word",
            message=f"blob is {len(blob)} bytes, not a whole number of "
                    f"32-bit words ({tail} trailing byte(s))",
            pc=len(blob) // 4))
        blob = blob[:len(blob) - tail]
    words = [int.from_bytes(blob[i:i + 4], "little")
             for i in range(0, len(blob), 4)]
    report = verify_words(name, words, params, owns_obuf=owns_obuf)
    report.findings = findings + report.findings
    return report


def verify_model(model, params: Optional[TandemParams] = None, *,
                 deps: Optional[str] = None) -> ModelVerifyReport:
    """Verify every lowered tile program of a compiled model.

    ``model`` is a :class:`~repro.compiler.compiler.CompiledModel`;
    blocks with a GEMM producer own the Output BUF for the duration of
    their tile program, everything else must not touch it. Unless the
    deps mode is ``off``, every tile is additionally translation-
    validated against its access metadata, and a model-level race
    report (DRAM dataflow, in-place cache appends, OBUF handoff) is
    appended as a synthetic ``<model>::model`` program report.
    """
    params = params or model.sim_params.tandem
    mode = deps_mode(deps)
    report = ModelVerifyReport(model=model.name)
    for block in model.blocks:
        if block.tile is None:
            continue
        owns = block.block.gemm is not None
        report.reports.append(
            verify_program(block.tile.program, params, owns_obuf=owns,
                           tile=block.tile, deps=mode))
    if mode != "off":
        from ..deps import check_model
        races = VerifyReport(program=f"{model.name}::model",
                             passes=["deps"])
        races.extend(check_model(model))
        report.reports.append(races)
        tel = get_telemetry()
        if tel.enabled:
            tel.count("verifier.deps.model_checks")
            tel.count("verifier.deps.findings", len(races.findings))
    return report


def verify_block_dicts(model_name: str, blocks: Iterable[dict],
                       params: Optional[TandemParams] = None, *,
                       deps: Optional[str] = None) -> ModelVerifyReport:
    """Verify blocks as loaded by :func:`repro.compiler.serialize.load_blocks`.

    Serialized (v3) tiles carry their access metadata, so translation
    validation runs per program; the model-level race checks need the
    graph and are only available through :func:`verify_model`.
    """
    report = ModelVerifyReport(model=model_name)
    mode = deps_mode(deps)
    for blk in blocks:
        tile = blk.get("tile")
        if tile is None:
            continue
        owns = blk.get("gemm_node") is not None
        report.reports.append(
            verify_program(tile.program, params, owns_obuf=owns,
                           tile=tile, deps=mode))
    return report
