"""Translation validation: IR-level access claims vs the lowered binary.

The compiler attaches :class:`~repro.analysis.deps.access.TileAccessMeta`
to every lowered tile — its claim of which affine walks the program
performs. The verifier's abstract interpreter
(:mod:`repro.analysis.verifier.state`) independently reconstructs the
same walks from the packed instruction words alone. This module is the
judge: :func:`validate_tile` compares the two reconstructions event by
event, operand by operand, and any disagreement is an error finding —
so a transform, lowering, encoding, or serialization bug that moves an
access is rejected at verify time, on every fresh compile and every
autotune candidate.

Three comparison surfaces:

* **nests** — per body statement, each operand's (namespace, base,
  per-level strides) and the nest's trip counts;
* **transfers / permutes** — count, order, direction, namespace, base
  and element/word totals, both against the decoded DAE configuration
  words and against the runtime transfer bindings the functional
  machine will execute;
* **forwarding claims** — each fission-recorded per-point forwarding
  walk must still be injective *and* must still be the walk the
  producer nest writes in the binary (re-deriving, not trusting, the
  legality decision the transform pass made).
"""

from __future__ import annotations

from typing import List, Optional

from ..verifier.findings import Finding, Severity, snippet_at
from .access import TileAccessMeta, transfer_elements

#: The DAE/permute base-address fields are 16-bit immediates; the IR
#: side must be masked the same way before comparison.
_ADDR_MASK = 0xFFFF


def _finding(program, rule: str, message: str,
             pc: Optional[int] = None) -> Finding:
    """An error-severity deps finding anchored at ``pc``."""
    snippet = snippet_at(program, pc) if pc is not None else ""
    return Finding(severity=Severity.ERROR, rule=rule, message=message,
                   pc=pc, snippet=snippet)


def validate_tile(tile, trace) -> List[Finding]:
    """Cross-check one tile's access metadata against its binary trace.

    ``tile`` is a :class:`~repro.compiler.lowering.LoweredTile` whose
    ``access_meta`` the compiler populated; ``trace`` is the
    :class:`~repro.analysis.verifier.state.ProgramTrace` of its program.
    Returns error findings for every disagreement; an empty list means
    the IR-level and binary-level dependence structures coincide.
    Tiles without metadata (hand-built programs) validate vacuously.
    """
    meta: Optional[TileAccessMeta] = getattr(tile, "access_meta", None)
    if meta is None:
        return []
    program = trace.program
    findings: List[Finding] = []

    findings.extend(_validate_nests(program, meta, trace))
    findings.extend(_validate_transfers(program, tile, meta, trace))
    findings.extend(_validate_permutes(program, meta, trace))
    findings.extend(_validate_claims(program, meta))
    return findings


def _validate_nests(program, meta: TileAccessMeta, trace) -> List[Finding]:
    findings: List[Finding] = []
    if len(meta.nests) != len(trace.nests):
        findings.append(_finding(
            program, "translation-mismatch",
            f"IR claims {len(meta.nests)} loop nest(s) but the binary "
            f"executes {len(trace.nests)}"))
        return findings
    for claimed, actual in zip(meta.nests, trace.nests):
        counts = tuple(actual.counts)
        if tuple(claimed.counts) != counts:
            findings.append(_finding(
                program, "translation-mismatch",
                f"nest at event {claimed.event}: IR trip counts "
                f"{tuple(claimed.counts)} vs binary {counts}",
                pc=actual.header_pc))
            continue
        # Group the binary's resolved operand uses per body word.
        uses_by_pc = {}
        for use in actual.uses:
            uses_by_pc.setdefault(use.pc, []).append(use)
        body_pcs = [pc for pc, _ in actual.body]
        if len(claimed.stmts) != len(body_pcs):
            findings.append(_finding(
                program, "translation-mismatch",
                f"nest at event {claimed.event}: IR body has "
                f"{len(claimed.stmts)} statement(s) but the binary body "
                f"has {len(body_pcs)}", pc=actual.header_pc))
            continue
        for stmt_walks, pc in zip(claimed.stmts, body_pcs):
            uses = uses_by_pc.get(pc, [])
            if len(stmt_walks) != len(uses):
                findings.append(_finding(
                    program, "translation-mismatch",
                    f"statement at pc {pc}: IR claims "
                    f"{len(stmt_walks)} operand(s), binary resolves "
                    f"{len(uses)}", pc=pc))
                continue
            for walk, use in zip(stmt_walks, uses):
                if use.entry is None:
                    continue  # dataflow pass reports iter-unconfigured
                entry_strides = tuple(use.entry.strides[:len(counts)])
                claim_strides = tuple(walk.strides)
                if (walk.role != use.role or walk.ns != use.ns.name
                        or walk.base != use.entry.base
                        or claim_strides != entry_strides):
                    findings.append(_finding(
                        program, "translation-mismatch",
                        f"{use.role} operand at pc {pc}: IR walk "
                        f"{walk.ns}[{walk.base}]+{claim_strides} vs "
                        f"binary {use.ns.name}[{use.entry.base}]"
                        f"+{entry_strides}", pc=pc))
    return findings


def _validate_transfers(program, tile, meta: TileAccessMeta,
                        trace) -> List[Finding]:
    findings: List[Finding] = []
    if len(meta.transfers) != len(trace.transfers):
        findings.append(_finding(
            program, "translation-mismatch",
            f"IR claims {len(meta.transfers)} DAE transfer(s) but the "
            f"binary starts {len(trace.transfers)}"))
    else:
        for claimed, actual in zip(meta.transfers, trace.transfers):
            problems = []
            if claimed.direction != actual.direction:
                problems.append(
                    f"direction {claimed.direction} vs {actual.direction}")
            if claimed.ns != actual.ns.name:
                problems.append(f"namespace {claimed.ns} vs {actual.ns.name}")
            if claimed.base & _ADDR_MASK != actual.base:
                problems.append(
                    f"base {claimed.base & _ADDR_MASK} vs {actual.base}")
            if actual.elements is not None \
                    and claimed.elements != actual.elements:
                problems.append(
                    f"elements {claimed.elements} vs {actual.elements}")
            if problems:
                findings.append(_finding(
                    program, "translation-mismatch",
                    f"transfer at event {claimed.event} "
                    f"({claimed.tensor}): " + "; ".join(problems),
                    pc=actual.start_pc))
    # The runtime bindings (what the functional machine will actually
    # execute) must match the same claims: tensor name, region box,
    # direction, footprint. This is what catches a serialized artifact
    # whose TransferSlot was tampered with while its words stayed intact.
    slots = getattr(tile, "transfers", [])
    if len(slots) != len(meta.transfers):
        findings.append(_finding(
            program, "translation-mismatch",
            f"IR claims {len(meta.transfers)} DAE transfer(s) but the "
            f"tile binds {len(slots)}"))
        return findings
    for claimed, slot in zip(meta.transfers, slots):
        problems = []
        if claimed.tensor != slot.tensor:
            problems.append(f"tensor {claimed.tensor!r} vs {slot.tensor!r}")
        if claimed.direction != slot.direction:
            problems.append(
                f"direction {claimed.direction} vs {slot.direction}")
        if claimed.ns != slot.ns.name or claimed.base != slot.base:
            problems.append(
                f"footprint {claimed.ns}[{claimed.base}] vs "
                f"{slot.ns.name}[{slot.base}]")
        slot_elements = transfer_elements(slot)
        if claimed.elements != slot_elements:
            problems.append(
                f"elements {claimed.elements} vs {slot_elements}")
        if claimed.region != slot.region:
            problems.append(f"region {claimed.region} vs {slot.region}")
        if problems:
            findings.append(_finding(
                program, "translation-mismatch",
                f"transfer binding at event {claimed.event}: "
                + "; ".join(problems)))
    return findings


def _validate_permutes(program, meta: TileAccessMeta, trace) -> List[Finding]:
    findings: List[Finding] = []
    if len(meta.permutes) != len(trace.permutes):
        findings.append(_finding(
            program, "translation-mismatch",
            f"IR claims {len(meta.permutes)} permute(s) but the binary "
            f"starts {len(trace.permutes)}"))
        return findings
    for claimed, actual in zip(meta.permutes, trace.permutes):
        problems = []
        if claimed.src_base & _ADDR_MASK != actual.src_base:
            problems.append(f"src base {claimed.src_base & _ADDR_MASK} "
                            f"vs {actual.src_base}")
        if claimed.dst_base & _ADDR_MASK != actual.dst_base:
            problems.append(f"dst base {claimed.dst_base & _ADDR_MASK} "
                            f"vs {actual.dst_base}")
        if actual.words is not None and claimed.words != actual.words:
            problems.append(f"words {claimed.words} vs {actual.words}")
        if problems:
            findings.append(_finding(
                program, "translation-mismatch",
                f"permute at event {claimed.event}: " + "; ".join(problems),
                pc=actual.start_pc))
    return findings


def _validate_claims(program, meta: TileAccessMeta) -> List[Finding]:
    findings: List[Finding] = []
    nest_by_event = {n.event: n for n in meta.nests}
    for claim in meta.claims:
        walk = claim.walk()
        if not walk.injective():
            findings.append(_finding(
                program, "claim-noninjective",
                f"fission forwarded a value through a non-injective walk "
                f"{claim.ns}[{claim.base}]+{tuple(claim.strides)} over "
                f"{tuple(claim.counts)} — instruction-major replay keeps "
                f"only the last point's value"))
            continue
        producer = nest_by_event.get(claim.producer)
        if producer is None or not producer.stmts:
            findings.append(_finding(
                program, "claim-noninjective",
                f"fission claim references event {claim.producer}, which "
                f"is not a nest in this tile"))
            continue
        dst = producer.stmts[0][0]
        if (dst.ns != claim.ns or dst.base != claim.base
                or tuple(dst.strides) != tuple(claim.strides)
                or tuple(producer.counts) != tuple(claim.counts)):
            findings.append(_finding(
                program, "claim-noninjective",
                f"fission claim at event {claim.producer} no longer "
                f"matches the producer's destination walk "
                f"({dst.ns}[{dst.base}]+{tuple(dst.strides)} over "
                f"{tuple(producer.counts)})"))
    return findings
