"""Affine access footprints: strided walks and their overlap algebra.

Every scratchpad operand on the Tandem Processor is one Iterator Table
entry — a base address plus one stride per Code Repeater loop level —
so every access footprint in the machine is an affine *walk*:

    addr(i_0..i_{n-1}) = base + Σ stride_l · i_l,   0 ≤ i_l < count_l

:class:`Walk` is that footprint made first-class. The legality queries
in :mod:`.nest` and the race checks in :mod:`.races` reduce to three
questions about walks: do two walks address the *same element at every
iteration point* (:meth:`Walk.same_walk`), can they touch a *common
address at all* (:func:`walks_overlap`), and does a walk map *distinct
points to distinct addresses* (:meth:`Walk.injective`).

Overlap is decided on inclusive address extents — exact at the extremes
of any strided walk and conservatively dense in between. That matches
the PR 6 legality semantics bit-for-bit (so autotune verdicts do not
shift under this refactor); the dynamic oracle (:mod:`.oracle`) is the
exact-address-set counterpart used to ground-truth the approximation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from math import prod
from typing import Optional, Sequence, Tuple

import numpy as np


class DepKind(enum.Enum):
    """Classic dependence classes between an earlier and a later access."""

    RAW = "raw"   # earlier writes, later reads (flow / forwarding)
    WAR = "war"   # earlier reads, later writes (anti)
    WAW = "waw"   # both write (output)


@dataclass(frozen=True)
class Walk:
    """One affine access footprint: ``base + Σ stride_l · i_l``."""

    base: int
    strides: Tuple[int, ...]
    counts: Tuple[int, ...]

    @property
    def points(self) -> int:
        """Number of iteration points the walk is evaluated at."""
        return prod(self.counts) if self.counts else 1

    @property
    def extent(self) -> Tuple[int, int]:
        """Inclusive ``[lo, hi]`` address interval the walk can touch.

        Handles scalar walks (no levels → a single address) and
        reversed walks (negative strides reach *below* the base), which
        is why overlap tests use extents rather than comparing bases.
        """
        lo = hi = self.base
        for stride, count in zip(self.strides, self.counts):
            reach = stride * (count - 1)
            lo += min(0, reach)
            hi += max(0, reach)
        return lo, hi

    def trimmed(self) -> "Walk":
        """The walk with degenerate (count ≤ 1) levels dropped.

        A level iterated once contributes nothing to the footprint, so
        two walks that differ only in degenerate levels are identical.
        """
        kept = [(s, c) for s, c in zip(self.strides, self.counts) if c > 1]
        return Walk(self.base,
                    tuple(s for s, _ in kept), tuple(c for _, c in kept))

    def same_walk(self, other: "Walk") -> bool:
        """True when both walks address the same element at every point.

        Requires the walks to run under the same loop nest (level-by-
        level identical strides over identical trip counts from the
        same base), which is exactly the per-point forwarding discipline
        the operator templates follow.
        """
        a, b = self.trimmed(), other.trimmed()
        return a.base == b.base and a.strides == b.strides \
            and a.counts == b.counts

    def injective(self) -> bool:
        """Whether distinct iteration points address distinct elements.

        Sufficient condition: every level with trip count > 1 has a
        nonzero stride, and sorted by magnitude each stride clears the
        span of all smaller-stride levels (a mixed-radix layout). A
        stride-0 per-point temp — the PR 6 fission miscompile — fails
        immediately.
        """
        levels = sorted(((abs(s), c) for s, c
                         in zip(self.strides, self.counts) if c > 1),
                        reverse=True)
        if any(stride == 0 for stride, _ in levels):
            return False
        for i, (stride, _count) in enumerate(levels):
            span = sum(s * (c - 1) for s, c in levels[i + 1:])
            if stride <= span:
                return False
        return True

    def addresses(self, cap: int = 1 << 20) -> Optional[np.ndarray]:
        """The exact sorted, deduplicated address set, or ``None``.

        Tandem programs have no data-dependent addressing, so the full
        address set is statically enumerable; ``None`` is returned only
        when the walk has more than ``cap`` points (callers fall back
        to the interval). Used by the dynamic oracle, not by legality.
        """
        if self.points > cap:
            return None
        addrs = np.array([self.base], dtype=np.int64)
        for stride, count in zip(self.strides, self.counts):
            if count <= 1:
                continue
            step = np.arange(count, dtype=np.int64) * stride
            addrs = (addrs[:, None] + step[None, :]).ravel()
        return np.unique(addrs)


def ref_walk(ref, loops: Sequence[Tuple[str, int]]) -> Walk:
    """The :class:`Walk` of a compiler-IR :class:`~repro.compiler.ir.TRef`
    evaluated under ``loops`` (the enclosing nest's ``(var, count)``
    levels, outermost first)."""
    return Walk(base=ref.base,
                strides=tuple(ref.stride(var) for var, _ in loops),
                counts=tuple(count for _, count in loops))


def walks_overlap(a: Walk, b: Walk) -> bool:
    """Whether two walks can touch a common address (extent test).

    Deliberately interval-conservative — identical to the PR 6 legality
    semantics — so transform verdicts are stable; the oracle provides
    the exact comparison where ground truth is needed.
    """
    a_lo, a_hi = a.extent
    b_lo, b_hi = b.extent
    return a_lo <= b_hi and b_lo <= a_hi


def boxes_overlap(a: Optional[Sequence[Tuple[int, int]]],
                  b: Optional[Sequence[Tuple[int, int]]]) -> bool:
    """Whether two DRAM region boxes (half-open per-dim ranges) intersect.

    ``None`` means "the whole tensor" (a region-less DAE transfer), so
    it overlaps everything; mismatched ranks degrade conservatively.
    """
    if a is None or b is None:
        return True
    if len(a) != len(b):
        return True
    for (a_start, a_stop), (b_start, b_stop) in zip(a, b):
        if a_start >= b_stop or b_start >= a_stop:
            return False
    return True
