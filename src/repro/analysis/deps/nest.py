"""Statement-level dependence analysis inside one loop nest.

:func:`nest_dependences` classifies every ordered statement pair of a
:class:`~repro.compiler.ir.Nest` into RAW/WAR/WAW dependences over
affine walks (:mod:`.footprint`); the legality queries the compiler's
transform passes use — :func:`fission_blockers`,
:func:`interchange_blockers`, :func:`is_pointwise_parallel` — are plain
reads of that dependence set. Before this module existed the same
predicates lived as ad-hoc helper functions inside
``compiler/transforms.py``; they now have one home, one semantics, and
one test surface, and the verifier's translation-validation pass
re-checks the claims they make against the lowered binary.

The dependence walk mirrors the Code Repeater's execution semantics:
a nest body executes *point-major* (all statements at iteration point
p, then all at p+1), while a fissioned nest executes *instruction-
major* (statement 0 over every point, then statement 1). Fission is
legal exactly when those two orders are observationally equal, which
the blockers below decide per dependence class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ...isa import Namespace
from .footprint import DepKind, Walk, ref_walk, walks_overlap


@dataclass(frozen=True)
class NestDep:
    """One dependence between two statements of the same nest body."""

    kind: DepKind
    earlier: int               # body index of the earlier statement
    later: int                 # body index of the later statement
    ns: Namespace              # namespace both footprints live in
    same_point: bool           # identical walk: same element every point
    walk: Walk                 # the earlier statement's footprint


def _reads(stmt) -> List:
    """Source operands of one statement (IMM reads carry no hazard:
    the IMM BUF is written only by configuration words, never by the
    nest body, so constants cannot participate in a dependence)."""
    refs = [stmt.src1]
    if stmt.src2 is not None:
        refs.append(stmt.src2)
    return [ref for ref in refs if ref.ns != Namespace.IMM]


def nest_dependences(nest) -> List[NestDep]:
    """Every RAW/WAR/WAW dependence between statement pairs of ``nest``.

    Pairs are visited earlier→later in body order, and per pair in
    WAR, RAW, WAW order — the same deterministic order the legality
    checks historically raised in, so the first blocker (and therefore
    every ``CompileError`` message) is stable across the refactor.
    Walks in different namespaces never alias (disjoint scratchpads);
    walks in the same namespace dep only when their extents can meet.
    """
    loops = nest.loops
    deps: List[NestDep] = []

    def note(kind: DepKind, i: int, j: int, a_walk: Walk, b_walk: Walk,
             ns: Namespace) -> None:
        # Level-by-level identity under the nest's own loop list (not
        # the trimmed normal form): both walks run under the same
        # counts, so this is exactly "same element at every point".
        same = a_walk.base == b_walk.base and a_walk.strides == b_walk.strides
        if same or walks_overlap(a_walk, b_walk):
            deps.append(NestDep(kind=kind, earlier=i, later=j, ns=ns,
                                same_point=same, walk=a_walk))

    for i, stmt in enumerate(nest.body):
        produced = stmt.dst
        produced_walk = ref_walk(produced, loops)
        for j in range(i + 1, len(nest.body)):
            later = nest.body[j]
            dst = later.dst
            dst_walk = ref_walk(dst, loops)
            # WAR: stmt reads what `later` will overwrite.
            for read in _reads(stmt):
                if read.ns == dst.ns:
                    note(DepKind.WAR, i, j, ref_walk(read, loops), dst_walk,
                         dst.ns)
            # RAW: `later` consumes what stmt produced (forwarding).
            for read in _reads(later):
                if produced.ns == read.ns:
                    note(DepKind.RAW, i, j, produced_walk,
                         ref_walk(read, loops), produced.ns)
            # WAW: both write; the surviving value depends on order.
            if produced.ns == dst.ns:
                note(DepKind.WAW, i, j, produced_walk, dst_walk, produced.ns)
    return deps


def fission_blockers(nest) -> List[str]:
    """Why splitting ``nest`` into per-statement nests would miscompile.

    An empty list means fission is legal. Per dependence class:

    * **WAR, same walk** — point-major order sees the old value only
      within each point; instruction-major sees all-new. Illegal.
    * **RAW, same walk** — per-point forwarding survives fission only
      through an injective walk (each point's value lands at its own
      address); a non-injective walk (e.g. a stride-0 recipe temp)
      retains only the last point's value under instruction-major
      replay — the first PR 6 miscompile class.
    * **WAW, same walk** — the later statement's value wins under both
      orders; legal.
    * **any class, different walks with overlapping extents** — cannot
      prove independence; illegal.
    """
    blockers: List[str] = []
    for dep in nest_dependences(nest):
        if dep.kind is DepKind.WAR:
            if dep.same_point:
                blockers.append(
                    "fission would break a write-after-read hazard")
            else:
                blockers.append(
                    "fission cannot prove independence of overlapping walks")
        elif dep.kind is DepKind.RAW:
            if dep.same_point:
                if not dep.walk.injective():
                    blockers.append(
                        "fission would collapse per-point forwarding "
                        "through a non-injective walk")
            else:
                blockers.append(
                    "fission cannot prove independence of overlapping walks")
        elif not dep.same_point:  # WAW under different walks
            blockers.append(
                "fission cannot prove independence of overlapping walks")
    return blockers


def is_pointwise_parallel(nest) -> bool:
    """True when every iteration point is independent of every other.

    Sufficient condition: each statement's destination walks *every*
    loop level the nest iterates with a nonzero stride (no stride-0
    accumulation into a shared location), so distinct points write
    distinct elements.
    """
    for stmt in nest.body:
        walk = ref_walk(stmt.dst, nest.loops)
        if any(count > 1 and stride == 0
               for stride, count in zip(walk.strides, walk.counts)):
            return False
    return True


def interchange_blockers(nest, order: Sequence[int]) -> List[str]:
    """Why reordering ``nest``'s levels by ``order`` would miscompile.

    An empty list means the interchange is legal: ``order`` must be a
    permutation of the level indices, and the body must be point-wise
    parallel (a loop-carried accumulation makes results depend on the
    Code Repeater's replay order, so only the fully parallel case is
    accepted — conservative, since pure associative accumulations are
    order-insensitive).
    """
    if sorted(order) != list(range(len(nest.loops))):
        return [f"{list(order)} is not a permutation of nest levels"]
    if not is_pointwise_parallel(nest):
        return ["interchange on a nest with a shared-destination dependence"]
    return []


def forwarding_claims(nest, parts) -> List[Tuple[object, object, Walk]]:
    """The per-point forwarding assertions a fission of ``nest`` relies on.

    For every same-walk RAW dependence (producer statement i feeds
    consumer statement j at the same iteration point), fission's
    legality rests on the producer's walk being injective. Returns
    ``(producer nest, consumer nest, walk)`` triples referencing the
    split single-statement nests in ``parts``; the compiler records
    them as :class:`~repro.analysis.deps.access.ForwardClaim` metadata
    so translation validation can re-check each claim against the
    lowered binary (a stride zeroed anywhere along the way re-raises
    the PR 6 stride-0 miscompile as a verifier error instead of a
    silent wrong answer).
    """
    claims = []
    for dep in nest_dependences(nest):
        if dep.kind is DepKind.RAW and dep.same_point:
            claims.append((parts[dep.earlier], parts[dep.later], dep.walk))
    return claims
