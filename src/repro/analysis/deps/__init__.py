"""IR-level dependence analysis and machine-concurrency race detection.

The Tandem Processor has no hardware interlocks: the compiler alone
guarantees that the decoupled access/execute engines, the Output BUF
handoff, and in-place DRAM stores never race (Section 6 of the paper).
This package is the single place those guarantees are *proved* instead
of assumed:

* :mod:`.footprint` — affine access footprints: one strided walk per
  Iterator Table entry, with extent/overlap/injectivity algebra.
* :mod:`.nest` — RAW/WAR/WAW classification inside a loop nest and the
  legality queries behind loop fission/interchange (the single source
  of truth the :mod:`repro.compiler.transforms` passes delegate to).
* :mod:`.access` — the IR-level access metadata the compiler attaches
  to every lowered tile (per-statement operand walks, DAE transfers,
  DRAM renames, forwarding claims made by the fission pass).
* :mod:`.validate` — translation validation: cross-checks the IR-level
  claims against the binary-level walks the verifier's abstract
  interpreter reconstructs, so the two analyses must agree on every
  program.
* :mod:`.races` — the model-level race detector: DRAM dataflow across
  blocks, in-place ``CacheAppend`` alias writes, and the GEMM→Tandem
  Output BUF tile handoff.
* :mod:`.oracle` — a dynamic hazard oracle (tests only) that replays
  exact address sets to ground-truth the static verdicts.

The verifier pipeline (:mod:`repro.analysis.verifier.pipeline`) runs
:mod:`.validate` and :mod:`.races` as a severity-tagged ``deps`` pass
on every fresh compile; ``REPRO_DEPS`` selects ``off``/``on``/``strict``.
"""

from .footprint import DepKind, Walk, boxes_overlap, ref_walk, walks_overlap
from .nest import (
    NestDep,
    fission_blockers,
    forwarding_claims,
    interchange_blockers,
    is_pointwise_parallel,
    nest_dependences,
)
from .access import (
    ForwardClaim,
    NestAccess,
    PermuteAccess,
    TileAccessMeta,
    TransferAccess,
    collect_access_meta,
)
from .validate import validate_tile
from .races import check_model
from .oracle import OracleVerdict, run_oracle

__all__ = [
    "DepKind",
    "ForwardClaim",
    "NestAccess",
    "NestDep",
    "OracleVerdict",
    "PermuteAccess",
    "TileAccessMeta",
    "TransferAccess",
    "Walk",
    "boxes_overlap",
    "check_model",
    "collect_access_meta",
    "fission_blockers",
    "forwarding_claims",
    "interchange_blockers",
    "is_pointwise_parallel",
    "nest_dependences",
    "ref_walk",
    "run_oracle",
    "validate_tile",
    "walks_overlap",
]
