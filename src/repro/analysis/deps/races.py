"""Model-level race detection across the machine's concurrency seams.

The simulator runs blocks sequentially, but the *machine* the compiler
targets has three places where accesses overlap in time and no hardware
interlock exists to order them (the paper's core premise — the compiler
alone must prove hazard freedom):

* **DRAM dataflow** — a DAE load consumes whatever the named tensor
  holds; nothing stalls it until a producer has stored. A load of a
  tensor no earlier block materialized reads undefined data
  (``dram-undef-read``) — the block-crossing-rename miscompile class.
* **In-place cache appends** — ``CacheAppend`` outputs alias their
  cache input's storage (:meth:`repro.simulator.DramStore.alias`), so
  the appended slice is an in-place DRAM write. Within one tile the DAE
  engine runs transfers decoupled from compute, so a load of the same
  storage whose region meets the appended slice is a read/write race
  (``cache-alias-overlap``); two appends claiming overlapping slices of
  one cache are a write/write race; a slice outside the cache's bounds
  corrupts a neighbour (``cache-append-oob``).
* **OBUF handoff** — in a GEMM+Tandem block the systolic array owns the
  Output BUF until SYNC hands it over, and it fills exactly one tile's
  worth of elements. A Tandem walk reaching past ``ceil(out/tiles)``
  reads addresses the GEMM never wrote this tile
  (``obuf-tile-overrun``).

:func:`check_model` runs all three checks statically from the compiled
blocks' access metadata; :mod:`.oracle` is the exact dynamic replay the
tests use to ground-truth these verdicts.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Set, Tuple

from ..verifier.findings import Finding, Severity
from .footprint import boxes_overlap

Region = Optional[Tuple[Tuple[int, int], ...]]


def _finding(rule: str, message: str) -> Finding:
    """Model-level race findings have no pc: they span blocks."""
    return Finding(severity=Severity.ERROR, rule=rule, message=message)


def alias_roots(graph) -> Dict[str, str]:
    """Storage root of every tensor that shares DRAM with another.

    ``CacheAppend`` outputs alias their cache input (transitively, for
    chained appends); every other tensor is its own root. Only aliased
    names appear in the mapping.
    """
    parent: Dict[str, str] = {}
    for node in graph.topological_order():
        if node.op_type == "CacheAppend":
            parent[node.outputs[0]] = node.inputs[0]

    def resolve(name: str) -> str:
        seen = set()
        while name in parent and name not in seen:
            seen.add(name)
            name = parent[name]
        return name

    return {name: resolve(name) for name in parent}


def check_model(model) -> List[Finding]:
    """All statically detectable races in one compiled model.

    ``model`` is a :class:`~repro.compiler.compiler.CompiledModel`.
    Returns error findings; an empty list means every DAE load has a
    materialized producer, every in-place append is exclusive, and every
    OBUF read stays inside the GEMM tile's handoff footprint.
    """
    graph = model.graph
    roots = alias_roots(graph)

    def root(name: str) -> str:
        return roots.get(name, name)

    findings: List[Finding] = []
    findings.extend(_check_dataflow(model, root))
    findings.extend(_check_cache_appends(model, root))
    findings.extend(_check_obuf_handoff(model))
    return findings


def _check_dataflow(model, root) -> List[Finding]:
    """Every DAE load must read storage some earlier event materialized."""
    graph = model.graph
    findings: List[Finding] = []
    defined: Set[str] = {root(name) for name in graph.graph_inputs}
    for node in graph.nodes:
        defined.update(root(p) for p in node.params)

    for cb in model.blocks:
        # Same-block producers: a tile may round-trip its own outputs
        # through DRAM (halo re-fetch under cost-mode tiling) before the
        # store that publishes them is sequenced — exempt, not a race.
        local = {root(out) for node in cb.block.nodes for out in node.outputs}
        if cb.block.gemm is not None:
            for name in cb.block.gemm.inputs:
                if root(name) not in defined:
                    findings.append(_finding(
                        "dram-undef-read",
                        f"block {cb.name}: GEMM input {name!r} is read "
                        f"before any producer stores it"))
            defined.add(root(cb.block.gemm.outputs[0]))
        if cb.tile is None:
            continue
        for slot in cb.tile.transfers:
            tensor_root = root(slot.tensor)
            if slot.direction == "ld":
                if tensor_root not in defined and tensor_root not in local:
                    findings.append(_finding(
                        "dram-undef-read",
                        f"block {cb.name}: DAE load of {slot.tensor!r} "
                        f"reads DRAM no earlier block materialized "
                        f"(renamed tensors must be materialized before "
                        f"they cross a block boundary)"))
            else:
                defined.add(tensor_root)
    return findings


def _append_writes(model, root):
    """Every in-place append *slice* store: (block, queue idx, root, slot).

    A region-less store of an append output is the full-tensor
    materialization of an external output — sequenced after the append
    in the same in-order DAE queue, not an in-place slice write.
    """
    append_outs = {n.outputs[0] for n in model.graph.nodes
                   if n.op_type == "CacheAppend"}
    writes = []
    for b, cb in enumerate(model.blocks):
        if cb.tile is None:
            continue
        for t, slot in enumerate(cb.tile.transfers):
            if slot.direction == "st" and slot.tensor in append_outs \
                    and slot.region is not None:
                writes.append((b, t, root(slot.tensor), slot))
    return writes


def _check_cache_appends(model, root) -> List[Finding]:
    findings: List[Finding] = []
    graph = model.graph
    writes = _append_writes(model, root)
    if not writes:
        return findings

    # Bounds: the appended slice must stay inside the cache tensor.
    for _b, _t, _r, slot in writes:
        shape = graph.tensor(slot.tensor).shape
        region = slot.region
        if region is None:
            continue
        for dim, (start, stop) in enumerate(region):
            if start < 0 or stop > shape[dim] or start >= stop:
                findings.append(_finding(
                    "cache-append-oob",
                    f"CacheAppend store to {slot.tensor!r} writes slice "
                    f"{start}:{stop} outside dim {dim} of shape "
                    f"{tuple(shape)}"))
                break

    # Write/write: two appends claiming overlapping slices of one cache.
    for i, (_, _, r_a, slot_a) in enumerate(writes):
        for _, _, r_b, slot_b in writes[i + 1:]:
            if r_a != r_b:
                continue
            if boxes_overlap(slot_a.region, slot_b.region):
                findings.append(_finding(
                    "cache-alias-overlap",
                    f"two CacheAppend stores ({slot_a.tensor!r} and "
                    f"{slot_b.tensor!r}) write overlapping slices of "
                    f"cache {r_a!r}"))

    # Read/write: the DAE queue is in-order, so a load sequenced *after*
    # the append store reads the updated cache — that is exactly how the
    # attention consumers work. A load of the same storage queued
    # *before* an overlapping append store observes the stale slice the
    # append is about to rewrite in place.
    for b, t, r, slot in writes:
        cb = model.blocks[b]
        for u, other in enumerate(cb.tile.transfers):
            if u >= t or other.direction != "ld":
                continue
            if root(other.tensor) != r:
                continue
            if boxes_overlap(slot.region, other.region):
                findings.append(_finding(
                    "cache-alias-overlap",
                    f"block {cb.name}: DAE load of {other.tensor!r} is "
                    f"queued before the CacheAppend store to "
                    f"{slot.tensor!r} that rewrites the overlapping "
                    f"slice in place"))
    return findings


def _check_obuf_handoff(model) -> List[Finding]:
    """Tandem OBUF reads must stay inside the GEMM tile's footprint.

    Checked only for single-tile (executable) compilations: a multi-tile
    block's representative program is a *cost model* whose per-dimension
    ceil-divided walks legitimately over-cover the evenly-divided OBUF
    handoff, and the functional machine refuses to run it anyway.
    """
    findings: List[Finding] = []
    for cb in model.blocks:
        if cb.block.gemm is None or cb.tile is None or cb.tiles != 1:
            continue
        meta = getattr(cb.tile, "access_meta", None)
        if meta is None:
            continue
        out_elems = model.graph.tensor(cb.block.gemm.outputs[0]).numel
        tile_elems = max(1, ceil(out_elems / cb.tiles))
        for nest in meta.nests:
            for stmt in nest.stmts:
                for operand in stmt:
                    if operand.ns != "OBUF":
                        continue
                    _lo, hi = operand.walk(tuple(nest.counts)).extent
                    if hi >= tile_elems:
                        findings.append(_finding(
                            "obuf-tile-overrun",
                            f"block {cb.name}: {operand.role} walk "
                            f"OBUF[{operand.base}] reaches address {hi} "
                            f"but the GEMM hands over only {tile_elems} "
                            f"element(s) per tile"))
    return findings
