"""IR-level access metadata attached to every lowered tile.

The compiler's claim surface for translation validation: for each event
of a tile (loop nest, DAE transfer, permute), the exact affine access
footprints the IR says the lowered program performs. The verifier's
abstract interpreter independently reconstructs the same footprints
from the binary words alone, and :mod:`.validate` requires the two to
agree — so any transform, lowering, or serialization bug that moves an
access surfaces as a verifier error instead of a silent wrong answer.

The records are plain serializable dataclasses; :func:`collect_access_meta`
builds them from a :class:`~repro.compiler.ir.TileContext` after all
pipeline passes have run (so the metadata describes the program as
lowered, not as first emitted), and
:mod:`repro.compiler.serialize` round-trips them with the artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...isa import AluFunc, Opcode
from .footprint import Walk

#: Bump when the record layout changes (serialized inside the compiled
#: artifact, whose own FORMAT_VERSION gates cache compatibility).
ACCESS_META_VERSION = 1


@dataclass(frozen=True)
class OperandWalk:
    """One operand's footprint in one body statement."""

    role: str                    # "dst" | "src1" | "src2"
    ns: str                      # Namespace name
    base: int
    strides: Tuple[int, ...]     # one per nest loop level, outermost first

    def walk(self, counts: Tuple[int, ...]) -> Walk:
        """The operand's :class:`Walk` under the nest's trip counts."""
        return Walk(self.base, self.strides, counts)


@dataclass(frozen=True)
class NestAccess:
    """One Code Repeater activation's claimed footprints."""

    event: int                               # index into the event stream
    counts: Tuple[int, ...]                  # trip count per level
    stmts: Tuple[Tuple[OperandWalk, ...], ...]   # per body statement


@dataclass(frozen=True)
class TransferAccess:
    """One DAE activation's claimed binding (tensor, region, footprint)."""

    event: int
    direction: str               # "ld" | "st"
    tensor: str                  # DRAM tensor name (alias-resolved)
    ns: str                      # scratchpad namespace name
    base: int
    elements: int
    region: Optional[Tuple[Tuple[int, int], ...]]  # DRAM box, None = whole


@dataclass(frozen=True)
class PermuteAccess:
    """One permute-engine activation's claimed bases and word count."""

    event: int
    src_ns: str
    src_base: int
    dst_ns: str
    dst_base: int
    words: int


@dataclass(frozen=True)
class ForwardClaim:
    """A fission pass's assertion that per-point forwarding is legal.

    Splitting a nest whose later statement reads what an earlier one
    wrote *at the same point* is only legal through an injective walk.
    The pass that performed the split records the walk it relied on;
    translation validation re-derives injectivity and re-checks that
    the producer nest in the binary still writes exactly this walk.
    """

    producer: int                # event index of the producer nest
    consumer: int                # event index of the consumer nest
    ns: str
    base: int
    strides: Tuple[int, ...]
    counts: Tuple[int, ...]

    def walk(self) -> Walk:
        """The claimed forwarding footprint as a :class:`Walk`."""
        return Walk(self.base, self.strides, self.counts)


@dataclass
class TileAccessMeta:
    """All IR-level access claims for one lowered tile."""

    version: int = ACCESS_META_VERSION
    nests: List[NestAccess] = field(default_factory=list)
    transfers: List[TransferAccess] = field(default_factory=list)
    permutes: List[PermuteAccess] = field(default_factory=list)
    #: Zero-copy DRAM renames active in this tile (reshape of off-chip
    #: data): alias name → storage root.
    dram_alias: Dict[str, str] = field(default_factory=dict)
    claims: List[ForwardClaim] = field(default_factory=list)

    def to_dict(self) -> Dict:
        """JSON-ready form (round-trips via :meth:`from_dict`)."""
        return {
            "version": self.version,
            "nests": [
                {"event": n.event, "counts": list(n.counts),
                 "stmts": [[[w.role, w.ns, w.base, list(w.strides)]
                            for w in stmt] for stmt in n.stmts]}
                for n in self.nests],
            "transfers": [
                {"event": t.event, "direction": t.direction,
                 "tensor": t.tensor, "ns": t.ns, "base": t.base,
                 "elements": t.elements,
                 "region": (None if t.region is None
                            else [list(r) for r in t.region])}
                for t in self.transfers],
            "permutes": [
                {"event": p.event, "src_ns": p.src_ns,
                 "src_base": p.src_base, "dst_ns": p.dst_ns,
                 "dst_base": p.dst_base, "words": p.words}
                for p in self.permutes],
            "dram_alias": dict(self.dram_alias),
            "claims": [
                {"producer": c.producer, "consumer": c.consumer,
                 "ns": c.ns, "base": c.base, "strides": list(c.strides),
                 "counts": list(c.counts)}
                for c in self.claims],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TileAccessMeta":
        """Rebuild the metadata from its :meth:`to_dict` form."""
        return cls(
            version=data.get("version", ACCESS_META_VERSION),
            nests=[NestAccess(
                event=n["event"], counts=tuple(n["counts"]),
                stmts=tuple(
                    tuple(OperandWalk(role=w[0], ns=w[1], base=w[2],
                                      strides=tuple(w[3])) for w in stmt)
                    for stmt in n["stmts"]))
                for n in data["nests"]],
            transfers=[TransferAccess(
                event=t["event"], direction=t["direction"],
                tensor=t["tensor"], ns=t["ns"], base=t["base"],
                elements=t["elements"],
                region=(None if t["region"] is None
                        else tuple(tuple(r) for r in t["region"])))
                for t in data["transfers"]],
            permutes=[PermuteAccess(
                event=p["event"], src_ns=p["src_ns"],
                src_base=p["src_base"], dst_ns=p["dst_ns"],
                dst_base=p["dst_base"], words=p["words"])
                for p in data["permutes"]],
            dram_alias=dict(data.get("dram_alias", {})),
            claims=[ForwardClaim(
                producer=c["producer"], consumer=c["consumer"], ns=c["ns"],
                base=c["base"], strides=tuple(c["strides"]),
                counts=tuple(c["counts"]))
                for c in data.get("claims", [])],
        )


def transfer_elements(slot) -> int:
    """The scratchpad-side element count a transfer's config words encode.

    Mirrors ``lowering._lower_transfer``: the DAE walks
    ``pre_reshape`` when set (which includes any halo padding), else the
    flat ``elements`` count — so this, not ``slot.elements``, is what
    the binary-level trace reconstructs.
    """
    from math import prod
    if slot.pre_reshape:
        return prod(slot.pre_reshape)
    return slot.elements


def _stmt_unary(stmt) -> bool:
    """Mirror of the machine's unary rule: src2 is never read.

    Must match ``state._is_unary`` exactly, because lowering duplicates
    ``src1`` into the src2 slot for unary statements and the abstract
    interpreter skips that slot — the IR-side operand list has to skip
    the same one or translation validation would flag every MOVE.
    """
    if stmt.opcode == Opcode.CALCULUS:
        return True
    return stmt.opcode == Opcode.ALU and stmt.func in (
        int(AluFunc.MOVE), int(AluFunc.NOT))


def collect_access_meta(ctx) -> TileAccessMeta:
    """Build the access metadata for one tile's post-pipeline event list.

    Mirrors the lowering walk one-to-one: the same events in the same
    order, each nest's operands resolved with the same unary/src2
    duplication rule, so a clean compile validates exactly.
    """
    # Imported here: repro.compiler.ir must stay importable without the
    # analysis package (the compiler lazily imports *us*).
    from ...compiler.ir import Nest, PermuteSlot, TransferSlot

    meta = TileAccessMeta(dram_alias=dict(ctx.dram_alias))
    nest_index: Dict[int, int] = {}   # id(nest) -> event index
    for index, event in enumerate(ctx.events):
        if isinstance(event, Nest):
            nest_index[id(event)] = index
            counts = tuple(count for _, count in event.loops)
            stmts = []
            for stmt in event.body:
                operands = [("dst", stmt.dst), ("src1", stmt.src1)]
                if not _stmt_unary(stmt):
                    operands.append(
                        ("src2", stmt.src2 if stmt.src2 is not None
                         else stmt.src1))
                stmts.append(tuple(
                    OperandWalk(role=role, ns=ref.ns.name, base=ref.base,
                                strides=tuple(ref.stride(var)
                                              for var, _ in event.loops))
                    for role, ref in operands))
            meta.nests.append(NestAccess(event=index, counts=counts,
                                         stmts=tuple(stmts)))
        elif isinstance(event, TransferSlot):
            meta.transfers.append(TransferAccess(
                event=index, direction=event.direction, tensor=event.tensor,
                ns=event.ns.name, base=event.base,
                elements=transfer_elements(event), region=event.region))
        elif isinstance(event, PermuteSlot):
            meta.permutes.append(PermuteAccess(
                event=index, src_ns=event.src_ns.name,
                src_base=event.src_base, dst_ns=event.dst_ns.name,
                dst_base=event.dst_base, words=event.words))
    for producer, consumer, walk in getattr(ctx, "dep_claims", []):
        p_idx = nest_index.get(id(producer))
        c_idx = nest_index.get(id(consumer))
        if p_idx is None or c_idx is None:
            continue  # the claimed nests were rewritten away downstream
        ns = producer.body[0].dst.ns.name
        meta.claims.append(ForwardClaim(
            producer=p_idx, consumer=c_idx, ns=ns, base=walk.base,
            strides=walk.strides, counts=walk.counts))
    return meta
