"""Dynamic hazard oracle: exact address-set replay of a compiled model.

The static detectors (:mod:`.races`, the verifier's ownership pass)
work from IR metadata and interval extents. Because the Tandem ISA has
no data-dependent addressing, *exact* ground truth is also computable:
every DRAM region is an explicit box and every scratchpad footprint is
a finite affine walk, so this module replays the whole model with
boolean definedness bitmaps per DRAM storage root and exact OBUF
address sets reconstructed from the binary (via the verifier's abstract
interpreter — deliberately *not* from the compiler's own metadata, so
the oracle cannot inherit a compiler bug).

Used by the test suite to prove the static verdicts exact on the model
zoo and decode-step programs: clean models must replay hazard-free, and
every seeded mutation the static pass flags must also trip here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...isa import Namespace
from .footprint import Walk
from .races import alias_roots

Region = Optional[Tuple[Tuple[int, int], ...]]


@dataclass
class OracleVerdict:
    """Every hazard one exact replay of a compiled model observed."""

    undef_reads: List[str] = field(default_factory=list)
    alias_overlaps: List[str] = field(default_factory=list)
    obuf_overruns: List[str] = field(default_factory=list)

    @property
    def hazards(self) -> List[str]:
        """All observed hazards, in replay order per category."""
        return self.undef_reads + self.alias_overlaps + self.obuf_overruns

    @property
    def clean(self) -> bool:
        """True when the replay observed no hazard of any kind."""
        return not self.hazards


def _region_index(region: Region) -> Tuple:
    """numpy index selecting a DRAM region box (``None`` = everything)."""
    if region is None:
        return (Ellipsis,)
    return tuple(slice(start, stop) for start, stop in region)


def _mask(shape: Tuple[int, ...], region: Region) -> np.ndarray:
    mask = np.zeros(shape, dtype=bool)
    mask[_region_index(region)] = True
    return mask


class _DramReplay:
    """Definedness bitmaps per storage root, updated store by store."""

    def __init__(self, graph, roots: Dict[str, str]):
        self.graph = graph
        self.roots = roots
        self.defined: Dict[str, np.ndarray] = {}
        for name in list(graph.graph_inputs) + [
                p for node in graph.nodes for p in node.params]:
            self._bitmap(name)[...] = True

    def root(self, name: str) -> str:
        return self.roots.get(name, name)

    def _bitmap(self, name: str) -> np.ndarray:
        storage = self.root(name)
        if storage not in self.defined:
            shape = self.graph.tensor(storage).shape
            self.defined[storage] = np.zeros(shape, dtype=bool)
        return self.defined[storage]

    def _view(self, name: str, region: Region) -> np.ndarray:
        bitmap = self._bitmap(name)
        if self.graph.tensor(name).shape != bitmap.shape:
            # An alias viewed under a different shape: degrade to the
            # whole storage (exact boxes need matching coordinates).
            return bitmap
        return bitmap[_region_index(region)]

    def is_defined(self, name: str, region: Region) -> bool:
        view = self._view(name, region)
        return bool(view.size == 0 or view.all())

    def define(self, name: str, region: Region) -> None:
        self._view(name, region)[...] = True


def _obuf_addresses(tile) -> List[Tuple[int, int]]:
    """Exact (base, max address) per OBUF operand walk in the binary."""
    from ..verifier.state import interpret

    trace = interpret(tile.program)
    spans = []
    for nest in trace.nests:
        counts = tuple(nest.counts)
        for use in nest.uses:
            if use.entry is None or use.ns is not Namespace.OBUF:
                continue
            walk = Walk(use.entry.base,
                        tuple(use.entry.strides[:len(counts)]), counts)
            addrs = walk.addresses()
            if addrs is None:        # beyond enumeration cap
                spans.append((use.entry.base, walk.extent[1]))
            else:
                spans.append((use.entry.base, int(addrs.max())))
    return spans


def run_oracle(model) -> OracleVerdict:
    """Replay ``model`` exactly and report every hazard observed.

    Mirrors the machine's semantics, not the static analysis: DRAM
    definedness advances store by store through the blocks in dispatch
    order, in-place appends intersect exact region masks, and OBUF
    reads are enumerated from the decoded binary words.
    """
    graph = model.graph
    roots = alias_roots(graph)
    replay = _DramReplay(graph, roots)
    verdict = OracleVerdict()
    append_outs = {n.outputs[0] for n in graph.nodes
                   if n.op_type == "CacheAppend"}
    # (queue idx, root, name, mask) per append slice store, model-wide.
    append_masks: List[Tuple[int, str, str, np.ndarray]] = []

    for cb in model.blocks:
        local = {replay.root(out)
                 for node in cb.block.nodes for out in node.outputs}
        if cb.block.gemm is not None:
            for name in cb.block.gemm.inputs:
                if not replay.is_defined(name, None):
                    verdict.undef_reads.append(
                        f"block {cb.name}: GEMM reads undefined "
                        f"element(s) of {name!r}")
            replay.define(cb.block.gemm.outputs[0], None)
        if cb.tile is None:
            continue

        # In-place append *slice* stores (a region-less store of an
        # append output is the ordered full-tensor materialization):
        # exact masks, with their DAE queue position — the queue is
        # in-order, so only a load queued *earlier* can observe the
        # stale slice an append is about to rewrite.
        tile_appends: List[Tuple[int, str, str, np.ndarray]] = []
        for t, slot in enumerate(cb.tile.transfers):
            if slot.direction != "st" or slot.tensor not in append_outs \
                    or slot.region is None:
                continue
            shape = graph.tensor(slot.tensor).shape
            in_bounds = all(
                0 <= start < stop <= shape[dim]
                for dim, (start, stop) in enumerate(slot.region))
            if not in_bounds:
                verdict.alias_overlaps.append(
                    f"block {cb.name}: CacheAppend store to "
                    f"{slot.tensor!r} leaves the bounds of {shape}")
                continue
            mask = _mask(shape, slot.region)
            tile_appends.append((t, replay.root(slot.tensor),
                                 slot.tensor, mask))

        for t, slot in enumerate(cb.tile.transfers):
            if slot.direction == "ld":
                storage = replay.root(slot.tensor)
                for app_t, app_root, app_name, app_mask in tile_appends:
                    if app_root != storage or app_t <= t:
                        continue
                    ld_mask = _mask(graph.tensor(slot.tensor).shape,
                                    slot.region)
                    if ld_mask.shape == app_mask.shape \
                            and bool((ld_mask & app_mask).any()):
                        verdict.alias_overlaps.append(
                            f"block {cb.name}: load of {slot.tensor!r} "
                            f"observes the stale slice {app_name!r} "
                            f"appends after it")
                if storage not in local \
                        and not replay.is_defined(slot.tensor, slot.region):
                    verdict.undef_reads.append(
                        f"block {cb.name}: load of {slot.tensor!r} reads "
                        f"undefined DRAM")
            else:
                replay.define(slot.tensor, slot.region)

        for app in tile_appends:
            for _pt, prev_root, prev_name, prev_mask in append_masks:
                if prev_root == app[1] and prev_mask.shape == app[3].shape \
                        and bool((prev_mask & app[3]).any()):
                    verdict.alias_overlaps.append(
                        f"appends {prev_name!r} and {app[2]!r} rewrite "
                        f"overlapping slices of {app[1]!r}")
            append_masks.append(app)

        # OBUF handoff is checked only for executable single-tile
        # programs (multi-tile representatives are cost models whose
        # ceil-divided walks over-cover the handoff by construction).
        if cb.block.gemm is not None and cb.tiles == 1:
            out_elems = graph.tensor(cb.block.gemm.outputs[0]).numel
            tile_elems = max(1, ceil(out_elems / cb.tiles))
            for base, top in _obuf_addresses(cb.tile):
                if top >= tile_elems:
                    verdict.obuf_overruns.append(
                        f"block {cb.name}: OBUF walk from {base} reaches "
                        f"{top}, past the {tile_elems}-element GEMM tile")
    return verdict
