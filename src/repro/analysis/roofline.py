"""Roofline analysis of non-GEMM operators (Figure 5, Section 2.1).

The roofline is drawn for the Tandem Processor configuration of Table 3:
peak compute = lanes x frequency primitive INT32 ops/s, bounded by the
off-chip streaming bandwidth. "Most of the analyzed operators (other
than Softmax and GeLU) fall within the memory-bound region."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph import GraphBuilder
from ..simulator.params import SimParams


@dataclass
class RooflinePoint:
    operator: str
    flops: int
    bytes_moved: int
    attainable_gops: float
    peak_gops: float

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes_moved if self.bytes_moved else 0.0

    @property
    def memory_bound(self) -> bool:
        return self.attainable_gops < self.peak_gops


#: Integer-op counts per element as the Tandem compiler actually lowers
#: them (primitive-op recipe lengths), used as the roofline's numerator.
_OPS_PER_ELEMENT = {
    "Add": 1, "Sub": 1, "Mul": 1, "Div": 1, "Relu": 1, "Clip": 2,
    "LeakyRelu": 5, "Cast": 1, "Transpose": 1, "MaxPool": 4, "ResAdd": 1,
    "GlobalAveragePool": 1, "ReduceMean": 1, "DepthwiseConv": 9,
    "Sigmoid": 23, "Tanh": 27, "Exp": 13, "Sqrt": 52, "Erf": 10,
    "Softmax": 17, "Gelu": 15,
}

#: Bytes of DRAM traffic per element (inputs + outputs, INT32).
_BYTES_PER_ELEMENT = {
    "Add": 12, "Sub": 12, "Mul": 12, "Div": 12, "ResAdd": 12,
    "Relu": 8, "Clip": 8, "LeakyRelu": 8, "Cast": 5, "Transpose": 8,
    "MaxPool": 5, "GlobalAveragePool": 4, "ReduceMean": 4,
    "DepthwiseConv": 5, "Sigmoid": 8, "Tanh": 8, "Exp": 8, "Sqrt": 8,
    "Erf": 8, "Softmax": 8, "Gelu": 8,
}


def roofline(params: Optional[SimParams] = None,
             operators: Optional[List[str]] = None) -> List[RooflinePoint]:
    """Place each operator on the Table 3 roofline."""
    params = params or SimParams()
    peak_gops = (params.tandem.lanes * params.tandem.frequency_hz) / 1e9
    bandwidth_gbs = params.dram.bandwidth_bytes_per_s / 1e9
    operators = operators or sorted(_OPS_PER_ELEMENT)
    points = []
    for op in operators:
        flops = _OPS_PER_ELEMENT[op]
        nbytes = _BYTES_PER_ELEMENT[op]
        intensity = flops / nbytes
        attainable = min(peak_gops, intensity * bandwidth_gbs)
        points.append(RooflinePoint(
            operator=op, flops=flops, bytes_moved=nbytes,
            attainable_gops=attainable, peak_gops=peak_gops))
    return points


def ridge_point(params: Optional[SimParams] = None) -> float:
    """Arithmetic intensity where the roofline flattens (ops/byte)."""
    params = params or SimParams()
    peak = params.tandem.lanes * params.tandem.frequency_hz
    return peak / params.dram.bandwidth_bytes_per_s
