"""Characterization and reporting (Section 2 + the figure breakdowns)."""

from .area import AreaBreakdown, tandem_area
from .dse import DesignPoint, DseResult, config_for, pareto_frontier, sweep
from .breakdown import (
    figure3,
    figure17,
    figure22,
    figure24,
    figure25,
    runtime_fractions,
)
from .opstats import (
    CumulativeOps,
    ModelOpStats,
    cumulative_usage,
    model_stats,
    operator_diversity,
)
from .overheads import OverheadResult, average_overheads, overhead_analysis
from .roofline import RooflinePoint, ridge_point, roofline
from .utilization import UtilizationComparison, utilization_comparison

__all__ = [
    "DesignPoint",
    "DseResult",
    "config_for",
    "pareto_frontier",
    "sweep",
    "AreaBreakdown",
    "CumulativeOps",
    "ModelOpStats",
    "OverheadResult",
    "RooflinePoint",
    "UtilizationComparison",
    "average_overheads",
    "cumulative_usage",
    "figure17",
    "figure22",
    "figure24",
    "figure25",
    "figure3",
    "model_stats",
    "operator_diversity",
    "overhead_analysis",
    "ridge_point",
    "roofline",
    "runtime_fractions",
    "tandem_area",
    "utilization_comparison",
]
