"""Figure 6: what each Tandem specialization removes.

Three what-if experiments on the Tandem Processor itself, each adding
one conventional overhead back in:

* (a) a vector register file and its LD/ST traffic — paper: 41 % of
  non-GEMM runtime, 27 % end-to-end;
* (b) explicit address-calculation instructions — 59 % / 40 %;
* (c) branch-based loop management — 70 % / 47 %.

"Overhead" is the fraction of the degraded design's runtime spent on the
reintroduced mechanism: ``1 - t_specialized / t_degraded``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..models import MODEL_ORDER
from ..npu import NPUConfig, NPUTandem, table3_config
from ..simulator.params import VpuOverlay


@dataclass
class OverheadResult:
    """Non-GEMM overhead of one model on one design (Fig. 6)."""
    model: str
    mechanism: str
    nongemm_overhead: float   # "N-G" bars of Figure 6
    e2e_overhead: float       # "E2E" bars of Figure 6


_MECHANISMS = {
    "regfile_ldst": VpuOverlay(regfile_loads=True),
    "address_calc": VpuOverlay(explicit_address_calc=True),
    "loop_logic": VpuOverlay(conventional_loops=True),
}


def overhead_analysis(models: Optional[List[str]] = None,
                      config: Optional[NPUConfig] = None
                      ) -> List[OverheadResult]:
    """Fraction of runtime a design spends outside the GEMM unit."""
    models = models or MODEL_ORDER
    config = config or table3_config()
    base_npu = NPUTandem(config)
    results: List[OverheadResult] = []
    for model in models:
        base = base_npu.evaluate(model)
        for name, overlay in _MECHANISMS.items():
            degraded_config = replace(config,
                                      sim=config.sim.with_overlay(overlay))
            degraded = NPUTandem(degraded_config).evaluate(model)
            ng = 1.0 - (base.nongemm_seconds
                        / max(degraded.nongemm_seconds, 1e-12))
            e2e = 1.0 - base.total_seconds / degraded.total_seconds
            results.append(OverheadResult(model, name, ng, e2e))
    return results


def average_overheads(results: List[OverheadResult]) -> Dict[str, Dict[str, float]]:
    """Mean overhead per design across a model list."""
    out: Dict[str, Dict[str, float]] = {}
    for mechanism in _MECHANISMS:
        subset = [r for r in results if r.mechanism == mechanism]
        out[mechanism] = {
            "nongemm": sum(r.nongemm_overhead for r in subset) / len(subset),
            "e2e": sum(r.e2e_overhead for r in subset) / len(subset),
        }
    return out
