"""Runtime and energy breakdowns (Figures 3, 17, 22, 24, 25)."""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..baselines import (
    A100,
    CpuFallbackDesign,
    DedicatedUnitsDesign,
    GemminiDesign,
    GpuDesign,
    runtime_breakdown as gemmini_breakdown,
)
from ..graph import Graph
from ..models import MODEL_ORDER
from ..npu import NPUTandem, iso_a100_config
from ..results import RunResult


def runtime_fractions(result: RunResult) -> Dict[str, float]:
    """(gemm, non-GEMM, communication) shares of a serialized design."""
    total = result.total_seconds
    if total == 0:
        return {"gemm": 0.0, "nongemm": 0.0, "comm": 0.0}
    return {
        "gemm": result.gemm_seconds / total,
        "nongemm": result.nongemm_seconds / total,
        "comm": result.comm_seconds / total,
    }


def figure3(models: Optional[List[str]] = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Runtime breakdown on Baseline 1, Baseline 2, and the A100 GPU."""
    models = models or MODEL_ORDER
    designs = {
        "baseline1": CpuFallbackDesign(),
        "baseline2": DedicatedUnitsDesign(),
        "a100": GpuDesign(A100, "cuda"),
    }
    return {
        model: {name: runtime_fractions(design.evaluate(model))
                for name, design in designs.items()}
        for model in models
    }


def figure17(models: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    """Gemmini (1 core) runtime breakdown per component."""
    models = models or MODEL_ORDER
    design = GemminiDesign(1)
    return {model: gemmini_breakdown(design, model) for model in models}


def figure22(models: Optional[List[str]] = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """GEMM vs non-GEMM split: scaled NPU-Tandem vs A100 CUDA (iso-TOPs)."""
    models = models or MODEL_ORDER
    npu = NPUTandem(iso_a100_config())
    gpu = GpuDesign(A100, "cuda")
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model in models:
        rn = npu.evaluate(model)
        rg = gpu.evaluate(model)
        busy = rn.gemm_seconds + rn.nongemm_seconds
        out[model] = {
            "npu_tandem": {
                "gemm": rn.gemm_seconds / busy if busy else 0.0,
                "nongemm": rn.nongemm_seconds / busy if busy else 0.0,
                "total_seconds": rn.total_seconds,
            },
            "a100_cuda": {
                **runtime_fractions(rg),
                "total_seconds": rg.total_seconds,
            },
        }
    return out


def figure24(models: Optional[List[str]] = None,
             npu: Optional[NPUTandem] = None) -> Dict[str, Dict[str, float]]:
    """NPU-Tandem runtime breakdown: GEMM + each non-GEMM operator type.

    Fractions of total busy time (GEMM busy + per-operator Tandem time),
    read from the ``npu.*`` hardware counters and cross-checked against
    the analytic :class:`RunResult` fields (the two must agree).
    """
    from .utilization import _require_close, evaluate_with_counters
    models = models or MODEL_ORDER
    npu = npu or NPUTandem()
    freq = npu.config.frequency_hz
    prefix = "npu.op_cycles."
    out: Dict[str, Dict[str, float]] = {}
    for model in models:
        result, counters = evaluate_with_counters(npu, model)
        counter_ops = {name[len(prefix):] for name in counters
                       if name.startswith(prefix)}
        if counter_ops - set(result.per_op_seconds):
            raise RuntimeError(
                f"telemetry counters carry operator types the analytic "
                f"model never saw: {sorted(counter_ops - set(result.per_op_seconds))}")
        # Keyed in the analytic result's operator order so the rendered
        # experiment stays byte-identical to the pre-counter pipeline.
        parts = {op: counters.get(prefix + op, 0.0) / freq
                 for op in result.per_op_seconds}
        gemm_seconds = counters.get("npu.gemm.busy_cycles", 0) / freq
        _require_close(gemm_seconds, result.gemm_seconds,
                       f"{model} GEMM busy time")
        for op, seconds in result.per_op_seconds.items():
            _require_close(parts.get(op, 0.0), seconds,
                           f"{model} {op} Tandem time")
        parts["GEMM"] = gemm_seconds
        total = sum(parts.values())
        out[model] = {op: sec / total for op, sec in parts.items()} if total \
            else {}
    return out


def figure25(models: Optional[List[str]] = None,
             npu: Optional[NPUTandem] = None) -> Dict[str, Dict[str, float]]:
    """Tandem Processor energy breakdown per component."""
    models = models or MODEL_ORDER
    npu = npu or NPUTandem()
    components = ("dram", "on_chip_sram", "alu", "loop_addr", "other")
    out: Dict[str, Dict[str, float]] = {}
    for model in models:
        result = npu.evaluate(model)
        tandem = {k: result.energy_breakdown.get(k, 0.0) for k in components}
        total = sum(tandem.values())
        out[model] = ({k: v / total for k, v in tandem.items()} if total
                      else {k: 0.0 for k in components})
    return out
