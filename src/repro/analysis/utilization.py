"""Tile- vs layer-granularity coordination (Figure 8, Section 3.5).

The paper: "in tandem coordination of the GEMM unit and the Tandem
Processor at tile granularity increases the compute resource utilization
by 20 % and 13 % for the GEMM unit and the Tandem Processor".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..models import MODEL_ORDER
from ..npu import NPUTandem


@dataclass
class UtilizationComparison:
    model: str
    gemm_util_tile: float
    tandem_util_tile: float
    gemm_util_layer: float
    tandem_util_layer: float

    @property
    def gemm_gain(self) -> float:
        return self.gemm_util_tile - self.gemm_util_layer

    @property
    def tandem_gain(self) -> float:
        return self.tandem_util_tile - self.tandem_util_layer


def utilization_comparison(models: Optional[List[str]] = None
                           ) -> List[UtilizationComparison]:
    models = models or MODEL_ORDER
    tile_npu = NPUTandem(overlap=True)
    layer_npu = NPUTandem(overlap=False)
    out = []
    for model in models:
        rt = tile_npu.evaluate(model)
        rl = layer_npu.evaluate(model)
        out.append(UtilizationComparison(
            model=model,
            gemm_util_tile=rt.gemm_utilization,
            tandem_util_tile=rt.nongemm_utilization,
            gemm_util_layer=rl.gemm_utilization,
            tandem_util_layer=rl.nongemm_utilization,
        ))
    return out
