"""Tile- vs layer-granularity coordination (Figure 8, Section 3.5).

The paper: "in tandem coordination of the GEMM unit and the Tandem
Processor at tile granularity increases the compute resource utilization
by 20 % and 13 % for the GEMM unit and the Tandem Processor".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..models import MODEL_ORDER
from ..npu import NPUTandem
from ..results import RunResult


def evaluate_with_counters(npu: NPUTandem, model: str
                           ) -> Tuple[RunResult, Dict[str, float]]:
    """Evaluate ``model`` under a private telemetry session.

    Compiles first, then evaluates the :class:`CompiledModel` — which
    bypasses the result cache — so the ``npu.*`` hardware counters are
    really populated, and returns both the analytic result and the
    counter dump. The two are independent read-out paths over the same
    schedule; counter-backed figures cross-check them.
    """
    from ..telemetry import Telemetry, scoped_telemetry
    compiled = npu.compile(model)
    with scoped_telemetry(Telemetry(enabled=True,
                                    label=f"counters:{model}")) as tel:
        result = npu.evaluate(compiled)
        counters = tel.counters.as_dict()
    return result, counters


def _require_close(derived: float, analytic: float, what: str) -> None:
    if not math.isclose(derived, analytic, rel_tol=1e-9, abs_tol=1e-12):
        raise RuntimeError(
            f"telemetry counters disagree with the analytic model on "
            f"{what}: counter-derived {derived!r} vs analytic {analytic!r}")


@dataclass
class UtilizationComparison:
    """GEMM/Tandem utilization of two designs on one model (Fig. 8)."""
    model: str
    gemm_util_tile: float
    tandem_util_tile: float
    gemm_util_layer: float
    tandem_util_layer: float

    @property
    def gemm_gain(self) -> float:
        """GEMM-unit utilization gain of the NPU over the baseline."""
        return self.gemm_util_tile - self.gemm_util_layer

    @property
    def tandem_gain(self) -> float:
        """Non-GEMM-unit utilization gain over the baseline."""
        return self.tandem_util_tile - self.tandem_util_layer


def _counter_utilization(npu: NPUTandem, model: str) -> Tuple[float, float]:
    """(gemm, tandem) utilization read from the hardware counters.

    Cross-checked against the :class:`RunResult` utilization fields —
    the Figure 8 experiment must agree with the analytic path exactly.
    """
    result, counters = evaluate_with_counters(npu, model)
    total = counters.get("npu.total_cycles", 0)
    gemm_util = counters.get("npu.gemm.busy_cycles", 0) / total if total \
        else 0.0
    tandem_util = counters.get("npu.tandem.busy_cycles", 0) / total if total \
        else 0.0
    _require_close(gemm_util, result.gemm_utilization,
                   f"{model}/{npu.name} GEMM utilization")
    _require_close(tandem_util, result.nongemm_utilization,
                   f"{model}/{npu.name} Tandem utilization")
    return gemm_util, tandem_util


def utilization_comparison(models: Optional[List[str]] = None
                           ) -> List[UtilizationComparison]:
    """Compare unit utilization between the NPU and a baseline."""
    models = models or MODEL_ORDER
    tile_npu = NPUTandem(overlap=True)
    layer_npu = NPUTandem(overlap=False)
    out = []
    for model in models:
        gemm_tile, tandem_tile = _counter_utilization(tile_npu, model)
        gemm_layer, tandem_layer = _counter_utilization(layer_npu, model)
        out.append(UtilizationComparison(
            model=model,
            gemm_util_tile=gemm_tile,
            tandem_util_tile=tandem_tile,
            gemm_util_layer=gemm_layer,
            tandem_util_layer=tandem_layer,
        ))
    return out
