"""Fault plans: a declarative, seeded specification of what goes wrong.

A :class:`FaultPlan` names every fault class the serving fleet can
suffer and how often it fires. Plans are plain frozen data — picklable
for ``--jobs`` sweeps, JSON round-trippable for ``repro serve --faults
plan.json`` — and every stochastic decision derived from one is pinned
by ``REPRO_SEED`` (:mod:`repro.runtime.seed`), so the same plan against
the same workload replays the exact same disaster.

Fault classes (each a frozen sub-spec):

* :class:`CrashSpec` — whole-device outages. ``p_per_device_s`` is a
  per-device Poisson hazard; ``outage_s`` bounds the outage (``None`` =
  the device never comes back — the TPU-paper "dead machine" case).
  ``at`` schedules explicit ``(device, t_s)`` crashes for hand-built
  test scenarios.
* :class:`SlowdownSpec` — a device serves at ``factor``× its normal
  service time for ``duration_s`` (thermal throttling, a noisy
  neighbour on the host).
* :class:`FlakyCompileSpec` — a first-touch compile/program-download
  fails with probability ``p`` per attempt.
* :class:`TileFaultSpec` — a launched batch suffers a transient
  tile-level execution fault with probability ``p_per_batch``;
  ``tiles`` is how many tiles must be re-executed. The Tandem paper's
  tile-granularity in-tandem execution (§5, Fig. 10) makes the tile the
  natural re-execution unit.
* :class:`CorruptSpec` — a program download arrives word-corrupted with
  probability ``p_per_download``; ``detection_rate`` is the probability
  the static verifier flags it (``repro.faults.corrupt`` measures real
  rates against the real verifier).
* :class:`BurstSpec` — queue-overflow pressure: bursts of ``size``
  extra requests land at Poisson times (rate ``p_per_s``) or scheduled
  ``at`` times.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


def _clamp01(p: float) -> float:
    return min(1.0, max(0.0, p))


@dataclass(frozen=True)
class CrashSpec:
    """Whole-device outages (permanent unless ``outage_s`` is finite)."""
    p_per_device_s: float = 0.0
    outage_s: Optional[float] = None
    at: Tuple[Tuple[int, float], ...] = ()

    def scaled(self, factor: float) -> "CrashSpec":
        return dataclasses.replace(
            self, p_per_device_s=self.p_per_device_s * factor,
            at=self.at if factor > 0 else ())


@dataclass(frozen=True)
class SlowdownSpec:
    """Transient device slowdowns: service times times ``factor``."""
    p_per_device_s: float = 0.0
    factor: float = 4.0
    duration_s: float = 2.0
    at: Tuple[Tuple[int, float], ...] = ()

    def scaled(self, factor: float) -> "SlowdownSpec":
        return dataclasses.replace(
            self, p_per_device_s=self.p_per_device_s * factor,
            at=self.at if factor > 0 else ())


@dataclass(frozen=True)
class FlakyCompileSpec:
    """First-touch compile/program-download failures."""
    p: float = 0.0

    def scaled(self, factor: float) -> "FlakyCompileSpec":
        return dataclasses.replace(self, p=_clamp01(self.p * factor))


@dataclass(frozen=True)
class TileFaultSpec:
    """Transient tile-level execution faults inside a launched batch."""
    p_per_batch: float = 0.0
    tiles: int = 1

    def scaled(self, factor: float) -> "TileFaultSpec":
        return dataclasses.replace(
            self, p_per_batch=_clamp01(self.p_per_batch * factor))


@dataclass(frozen=True)
class CorruptSpec:
    """Word-corrupted program downloads + the verifier's catch rate."""
    p_per_download: float = 0.0
    detection_rate: float = 1.0

    def scaled(self, factor: float) -> "CorruptSpec":
        return dataclasses.replace(
            self, p_per_download=_clamp01(self.p_per_download * factor))


@dataclass(frozen=True)
class BurstSpec:
    """Queue-overflow pressure: bursts of extra arrivals."""
    p_per_s: float = 0.0
    size: int = 0
    at: Tuple[float, ...] = ()

    def scaled(self, factor: float) -> "BurstSpec":
        return dataclasses.replace(
            self, p_per_s=self.p_per_s * factor,
            at=self.at if factor > 0 else ())


_SPEC_FIELDS = {
    "device_crash": ("crash", CrashSpec),
    "device_slowdown": ("slowdown", SlowdownSpec),
    "flaky_compile": ("flaky_compile", FlakyCompileSpec),
    "tile_fault": ("tile_fault", TileFaultSpec),
    "corrupt_program": ("corrupt", CorruptSpec),
    "queue_burst": ("burst", BurstSpec),
}


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, as one frozen value."""
    name: str = "plan"
    stream: str = "faults"
    crash: CrashSpec = field(default_factory=CrashSpec)
    slowdown: SlowdownSpec = field(default_factory=SlowdownSpec)
    flaky_compile: FlakyCompileSpec = field(default_factory=FlakyCompileSpec)
    tile_fault: TileFaultSpec = field(default_factory=TileFaultSpec)
    corrupt: CorruptSpec = field(default_factory=CorruptSpec)
    burst: BurstSpec = field(default_factory=BurstSpec)

    def scaled(self, factor: float) -> "FaultPlan":
        """The same plan with every fault rate multiplied by ``factor``.

        ``scaled(0.0)`` is the fault-free control: all hazards zero and
        all scheduled faults dropped. Chaos sweeps use this to turn one
        base plan into a fault-rate ladder.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return dataclasses.replace(
            self,
            crash=self.crash.scaled(factor),
            slowdown=self.slowdown.scaled(factor),
            flaky_compile=self.flaky_compile.scaled(factor),
            tile_fault=self.tile_fault.scaled(factor),
            corrupt=self.corrupt.scaled(factor),
            burst=self.burst.scaled(factor))

    @property
    def quiet(self) -> bool:
        """True when no fault can ever fire under this plan."""
        return (self.crash.p_per_device_s == 0 and not self.crash.at
                and self.slowdown.p_per_device_s == 0 and not self.slowdown.at
                and self.flaky_compile.p == 0
                and self.tile_fault.p_per_batch == 0
                and self.corrupt.p_per_download == 0
                and self.burst.p_per_s == 0 and not self.burst.at)

    # -- JSON form ---------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name, "stream": self.stream}
        for key, (attr, _) in _SPEC_FIELDS.items():
            spec = getattr(self, attr)
            entry = dataclasses.asdict(spec)
            entry = {k: (list(map(list, v)) if isinstance(v, tuple) and v
                         and isinstance(v[0], tuple)
                         else list(v) if isinstance(v, tuple) else v)
                     for k, v in entry.items()}
            payload[key] = entry
        return payload

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got "
                f"{type(payload).__name__}")
        known = {"name", "stream", *_SPEC_FIELDS}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        kwargs: Dict[str, Any] = {}
        for meta in ("name", "stream"):
            if meta in payload:
                kwargs[meta] = str(payload[meta])
        for key, (attr, spec_cls) in _SPEC_FIELDS.items():
            if key not in payload:
                continue
            entry = dict(payload[key])
            spec_fields = {f.name for f in dataclasses.fields(spec_cls)}
            bad = set(entry) - spec_fields
            if bad:
                raise ValueError(
                    f"unknown keys in fault plan {key!r}: "
                    f"{', '.join(sorted(bad))}")
            if "at" in entry:
                at = entry["at"]
                if key == "queue_burst":
                    entry["at"] = tuple(float(t) for t in at)
                else:
                    entry["at"] = tuple((int(d), float(t)) for d, t in at)
            kwargs[attr] = spec_cls(**entry)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())


def default_plan() -> FaultPlan:
    """The canned chaos plan ``repro chaos`` sweeps when none is given.

    At scale 1.0: each device crashes permanently at ~1 %/s hazard,
    2 % of batches take a transient tile fault, 5 % of program
    downloads arrive corrupted, and 5 % of first-touch compiles flake.
    """
    return FaultPlan(
        name="default-chaos",
        crash=CrashSpec(p_per_device_s=0.01, outage_s=None),
        tile_fault=TileFaultSpec(p_per_batch=0.02, tiles=1),
        corrupt=CorruptSpec(p_per_download=0.05, detection_rate=1.0),
        flaky_compile=FlakyCompileSpec(p=0.05))
