"""Chaos sweeps: fault-rate ladders x resilience policies, reduced.

``repro chaos`` runs one :class:`~repro.faults.plan.FaultPlan` at a
ladder of fault-rate scales against each resilience policy and reduces
the serving reports to the question that matters: *how much goodput
does each policy retain as faults ramp up?* Scale ``0.0`` is the
fault-free control every retention number is measured against, so the
sweep is self-calibrating — no external baseline file.

Work items follow the :mod:`repro.serving.sweep` discipline: frozen,
picklable points carrying their own :class:`ServiceCosts`, fanned out
through :func:`repro.runtime.parallel.parallel_map`, every point a pure
function of ``(REPRO_SEED, point)`` — serial and ``--jobs N`` sweeps
produce byte-identical reports (pinned by ``tests/test_faults.py``).

The JSON report carries a ``schema`` tag and passes
:func:`validate_chaos_report`, which CI's chaos-smoke job runs against
a fresh sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from ..runtime import parallel_map
from ..runtime.seed import repro_seed
from ..serving.fleet import FleetSimulator
from ..serving.metrics import ServingReport
from ..serving.scheduler import (
    RESILIENCE_POLICIES,
    AdmissionPolicy,
    BatchPolicy,
    ResiliencePolicy,
    ServiceCosts,
)
from ..serving.workload import OpenLoopPoisson
from .plan import FaultPlan, default_plan

CHAOS_SCHEMA = "repro-chaos-report-v1"

DEFAULT_SCALES = (0.0, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class ChaosPoint:
    """One (policy, fault scale) cell; self-contained and picklable."""
    costs: ServiceCosts
    plan: FaultPlan
    model: str
    policy_kind: str           # one of RESILIENCE_POLICIES
    fault_scale: float         # multiplier applied to every plan rate
    devices: int = 4
    rate_rps: float = 120.0
    duration_s: float = 8.0
    routing: str = "least_loaded"
    max_batch: int = 8
    max_wait_ms: float = 2.0
    max_queue: int = 256


def run_chaos_point(point: ChaosPoint) -> ServingReport:
    """Simulate one cell (module-level so process pools can pickle)."""
    if point.policy_kind not in RESILIENCE_POLICIES:
        raise ValueError(f"unknown resilience policy {point.policy_kind!r}; "
                         f"known: {', '.join(RESILIENCE_POLICIES)}")
    resilience = (ResiliencePolicy() if point.policy_kind == "resilient"
                  else ResiliencePolicy.naive())
    workload = OpenLoopPoisson((point.model,), point.rate_rps,
                               point.duration_s)
    sim = FleetSimulator(
        point.costs,
        devices=point.devices,
        batch_policy=BatchPolicy("dynamic", point.max_batch,
                                 point.max_wait_ms),
        admission=AdmissionPolicy(point.max_queue),
        routing=point.routing,
        fault_plan=point.plan.scaled(point.fault_scale),
        resilience=resilience)
    return sim.run(workload, rate_rps=point.rate_rps)


def chaos_grid(plan: Optional[FaultPlan] = None,
               scales: Sequence[float] = DEFAULT_SCALES,
               policies: Sequence[str] = RESILIENCE_POLICIES,
               model: str = "bert",
               devices: int = 4,
               rate_rps: float = 120.0,
               duration_s: float = 8.0,
               costs: Optional[ServiceCosts] = None) -> List[ChaosPoint]:
    """The policy x fault-scale grid, in a stable order.

    A ``0.0`` scale (the fault-free control) is always prepended so
    retention is well-defined even when the caller's ladder omits it.
    """
    plan = plan or default_plan()
    costs = costs or ServiceCosts.resolve([model])
    ladder = list(dict.fromkeys([0.0, *scales]))
    base = ChaosPoint(costs=costs, plan=plan, model=model,
                      policy_kind="naive", fault_scale=0.0,
                      devices=devices, rate_rps=rate_rps,
                      duration_s=duration_s)
    return [replace(base, policy_kind=policy, fault_scale=scale)
            for policy in policies
            for scale in ladder]


def run_chaos(points: Sequence[ChaosPoint],
              jobs: int = 1) -> List[ServingReport]:
    """All cells, in input order; ``jobs`` fans out across processes."""
    return parallel_map(run_chaos_point, list(points), jobs=jobs)


def chaos_report(points: Sequence[ChaosPoint],
                 reports: Sequence[ServingReport]) -> Dict[str, Any]:
    """Reduce a sweep to the schema-tagged chaos report.

    Each row pairs one cell's serving outcomes with its
    ``goodput_retention``: goodput divided by the same policy's
    fault-free (scale 0.0) goodput. The summary keeps each policy's
    worst retention across faulted scales — the headline the resilience
    benchmark asserts on.
    """
    if len(points) != len(reports):
        raise ValueError("points and reports must pair up")
    if not points:
        raise ValueError("empty chaos sweep")
    baseline: Dict[str, float] = {}
    for point, report in zip(points, reports):
        if point.fault_scale == 0.0 and point.policy_kind not in baseline:
            baseline[point.policy_kind] = report.goodput_rps
    rows: List[Dict[str, Any]] = []
    for point, report in zip(points, reports):
        base = baseline.get(point.policy_kind, 0.0)
        retention = report.goodput_rps / base if base > 0 else 0.0
        rows.append({
            "policy": point.policy_kind,
            "fault_scale": point.fault_scale,
            "offered": report.offered,
            "completed": report.completed,
            "failed": report.failed,
            "rejected": report.rejected,
            "bad_completions": report.bad_completions,
            "retries": report.retries,
            "timeouts": report.timeouts,
            "compile_retries": report.compile_retries,
            "devices_ejected": report.devices_ejected,
            "devices_readmitted": report.devices_readmitted,
            "faults": dict(report.faults),
            "throughput_rps": report.throughput_rps,
            "goodput_rps": report.goodput_rps,
            "goodput_retention": retention,
            "slo_attainment": report.slo_attainment,
            "p99_ms": report.p99_ms,
        })
    summary = {}
    for policy in dict.fromkeys(r["policy"] for r in rows):
        faulted = [r["goodput_retention"] for r in rows
                   if r["policy"] == policy and r["fault_scale"] > 0]
        summary[policy] = {
            "baseline_goodput_rps": baseline.get(policy, 0.0),
            "min_goodput_retention": min(faulted, default=1.0),
        }
    first = points[0]
    return {
        "schema": CHAOS_SCHEMA,
        "seed": repro_seed(),
        "plan": first.plan.as_dict(),
        "model": first.model,
        "devices": first.devices,
        "rate_rps": first.rate_rps,
        "duration_s": first.duration_s,
        "rows": rows,
        "summary": summary,
    }


def chaos_report_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


#: Required row fields and their types (None in a pair = any number).
_ROW_FIELDS = {
    "policy": str, "fault_scale": (int, float), "offered": int,
    "completed": int, "failed": int, "rejected": int,
    "bad_completions": int, "retries": int, "timeouts": int,
    "compile_retries": int, "devices_ejected": int,
    "devices_readmitted": int, "faults": dict,
    "throughput_rps": (int, float), "goodput_rps": (int, float),
    "goodput_retention": (int, float), "slo_attainment": (int, float),
    "p99_ms": (int, float),
}


def validate_chaos_report(payload: Any) -> List[str]:
    """Structural problems with a chaos report (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != CHAOS_SCHEMA:
        problems.append(f"schema must be {CHAOS_SCHEMA!r}, "
                        f"got {payload.get('schema')!r}")
    for key, kind in (("seed", int), ("plan", dict), ("model", str),
                      ("devices", int), ("rate_rps", (int, float)),
                      ("duration_s", (int, float)), ("rows", list),
                      ("summary", dict)):
        if not isinstance(payload.get(key), kind):
            problems.append(f"missing or mistyped field {key!r}")
    rows = payload.get("rows")
    if isinstance(rows, list):
        if not rows:
            problems.append("rows must be non-empty")
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"rows[{i}] must be an object")
                continue
            for key, kind in _ROW_FIELDS.items():
                if not isinstance(row.get(key), kind) or \
                        isinstance(row.get(key), bool):
                    problems.append(f"rows[{i}].{key} missing or mistyped")
            if row.get("policy") not in RESILIENCE_POLICIES:
                problems.append(f"rows[{i}].policy not a known policy")
    summary = payload.get("summary")
    if isinstance(summary, dict):
        for policy, entry in summary.items():
            if not isinstance(entry, dict) or not isinstance(
                    entry.get("min_goodput_retention"), (int, float)):
                problems.append(
                    f"summary[{policy!r}].min_goodput_retention missing")
    return problems


def chaos_table(payload: Dict[str, Any]) -> str:
    """Fixed-width rendering of one chaos report."""
    from ..harness.report import render_table
    rows = [(r["policy"], r["fault_scale"], r["offered"], r["completed"],
             r["failed"], r["retries"], r["devices_ejected"],
             round(r["goodput_rps"], 2), round(r["goodput_retention"], 4),
             round(r["slo_attainment"], 4))
            for r in payload["rows"]]
    title = (f"chaos: {payload['model']} on {payload['devices']} device(s) "
             f"@ {payload['rate_rps']} req/s, plan "
             f"{payload['plan'].get('name', '?')}")
    return render_table(
        ("policy", "scale", "offered", "done", "failed", "retries",
         "ejects", "goodput", "retention", "SLO"),
        rows, title=title)
