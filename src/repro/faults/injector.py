"""Deterministic fault injection: turning a plan into concrete faults.

A :class:`FaultInjector` materializes a :class:`~repro.faults.plan.FaultPlan`
against one fleet configuration. Construction pre-samples every
*scheduled* fault (crash times, slowdown windows, burst arrivals) from
``REPRO_SEED``-derived generators; *per-event* faults (flaky compiles,
tile faults, corrupt downloads) are Bernoulli draws keyed by stable
labels — ``(device, model, attempt)`` — rather than by draw order, so
two policies replaying the same plan see the same underlying faults
even when their event loops diverge.

The injector is pure data + hashing: it never consults a wall clock and
never mutates, so one plan yields byte-identical fault sequences in any
process (the property ``tests/test_faults.py`` pins serial vs
``--jobs``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..runtime import seeded_rng
from ..runtime.seed import repro_seed
from .plan import FaultPlan

#: Fault kinds as counted/traced by the fleet (``faults.injected.*``).
FAULT_KINDS = ("device_crash", "device_slowdown", "flaky_compile",
               "tile_fault", "corrupt_program", "queue_burst")


def _poisson_times(rng, rate_per_s: float, duration_s: float) -> List[float]:
    """Event times of one Poisson process over ``[0, duration_s)``."""
    times: List[float] = []
    if rate_per_s <= 0 or duration_s <= 0:
        return times
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            return times
        times.append(t)


class FaultInjector:
    """One plan, materialized against ``devices`` over ``duration_s``."""

    def __init__(self, plan: FaultPlan, devices: int, duration_s: float):
        if devices < 1:
            raise ValueError("devices must be >= 1")
        self.plan = plan
        self.devices = devices
        self.duration_s = float(duration_s)
        self._base = (repro_seed(), plan.stream, plan.name,
                      devices, self.duration_s)

        #: (t_s, device) crash onsets, time-ordered.
        self.crashes: List[Tuple[float, int]] = self._device_schedule(
            plan.crash.p_per_device_s, plan.crash.at, "crash")
        #: (start_s, end_s, device) slowdown windows.
        self.slowdowns: List[Tuple[float, float, int]] = [
            (t, t + plan.slowdown.duration_s, d)
            for t, d in self._device_schedule(
                plan.slowdown.p_per_device_s, plan.slowdown.at, "slowdown")]
        #: burst onset times.
        self.bursts: List[float] = sorted(
            list(plan.burst.at)
            + _poisson_times(seeded_rng("faults", *self._base, "burst"),
                             plan.burst.p_per_s, self.duration_s))

    def _device_schedule(self, hazard_per_s: float,
                         scheduled: Tuple[Tuple[int, float], ...],
                         label: str) -> List[Tuple[float, int]]:
        events = [(float(t), int(d)) for d, t in scheduled
                  if 0 <= int(d) < self.devices]
        for device in range(self.devices):
            rng = seeded_rng("faults", *self._base, label, device)
            events.extend((t, device) for t in _poisson_times(
                rng, hazard_per_s, self.duration_s))
        return sorted(events)

    # -- per-event draws ---------------------------------------------------
    def _uniform(self, *labels) -> float:
        """A stable U[0,1) draw keyed by ``labels`` (order-independent of
        the event loop: same labels always give the same draw)."""
        digest = hashlib.sha256(
            repr((self._base, labels)).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def flaky_compile(self, device: int, model: str, attempt: int) -> bool:
        """Does compile ``attempt`` of ``model`` on ``device`` flake?"""
        p = self.plan.flaky_compile.p
        return p > 0 and self._uniform("flaky", device, model, attempt) < p

    def corrupt_download(self, device: int, model: str, attempt: int) -> bool:
        """Does program-download ``attempt`` arrive word-corrupted?"""
        p = self.plan.corrupt.p_per_download
        return p > 0 and self._uniform("corrupt", device, model, attempt) < p

    def corruption_detected(self, device: int, model: str,
                            attempt: int) -> bool:
        """Does the static verifier flag this corrupted download?"""
        rate = self.plan.corrupt.detection_rate
        return rate > 0 and (
            self._uniform("detect", device, model, attempt) < rate)

    def tile_fault(self, device: int, model: str, launch: int) -> bool:
        """Does launch number ``launch`` on ``device`` take a tile fault?"""
        p = self.plan.tile_fault.p_per_batch
        return p > 0 and self._uniform("tile", device, model, launch) < p

    # -- window queries ----------------------------------------------------
    def outage_end(self, t_s: float) -> Optional[float]:
        """When a crash at ``t_s`` heals (``None`` = never)."""
        outage = self.plan.crash.outage_s
        return None if outage is None else t_s + outage

    def slow_factor(self, device: int, t_s: float) -> float:
        """Service-time multiplier for ``device`` at ``t_s`` (>= 1.0)."""
        factor = 1.0
        for start, end, d in self.slowdowns:
            if d == device and start <= t_s < end:
                factor = max(factor, self.plan.slowdown.factor)
        return factor

    def expected_faults(self) -> Dict[str, float]:
        """Expected fault counts — the chaos report's sanity column."""
        plan = self.plan
        return {
            "device_crash": len(self.crashes),
            "device_slowdown": len(self.slowdowns),
            "queue_burst": len(self.bursts),
            "flaky_compile": plan.flaky_compile.p,
            "tile_fault": plan.tile_fault.p_per_batch,
            "corrupt_program": plan.corrupt.p_per_download,
        }
