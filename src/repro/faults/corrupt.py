"""Word-level corruption of compiled Tandem programs, as a library.

The mutation machinery the verifier fuzz suite uses to prove its catch
rate (``tests/test_verifier_fuzz.py``) doubles as the fault model for
corrupted program downloads: a bit-flipped stride, trip count, Code
Repeater body size, or namespace id — the same classes of damage a
flaky PCIe link or a buggy lowering pass produces. This module hosts
that machinery so the fuzz suite, the fault injector, and the chaos CLI
all corrupt programs the same way.

Corruption classes (one mutated 32-bit word each):

* ``stride`` — an iterator stride large enough that any second trip
  walks off every scratchpad.
* ``trip`` — a loop trip count of zero (protocol violation) or one
  that overruns the pads.
* ``body`` — a Code Repeater body size grown to swallow words after
  the nest.
* ``config-ns`` / ``compute-ns`` — an illegal scratchpad namespace id
  in a configuration or compute operand field.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..isa import IteratorConfigFunc, LoopFunc, Opcode
from ..isa.encoding import is_compute_opcode, unpack_fields
from ..runtime import seeded_rng

#: The corruption classes :func:`corrupt_word` understands.
CORRUPTION_KINDS = ("stride", "trip", "body", "config-ns", "compute-ns")

#: A mutable word: (kind, pc, original word).
Site = Tuple[str, int, int]


def word_sites(words: Sequence[int]) -> List[Site]:
    """Every (kind, pc, word) mutation site in one packed program."""
    sites: List[Site] = []
    for pc, word in enumerate(words):
        fields = unpack_fields(word)
        opcode, func = fields["opcode"], fields["func"]
        if opcode == Opcode.ITERATOR_CONFIG:
            if func == int(IteratorConfigFunc.STRIDE):
                sites.append(("stride", pc, word))
            if func in (int(IteratorConfigFunc.BASE_ADDR),
                        int(IteratorConfigFunc.STRIDE)):
                sites.append(("config-ns", pc, word))
        elif opcode == Opcode.LOOP:
            if func == int(LoopFunc.SET_ITER):
                sites.append(("trip", pc, word))
            elif func == int(LoopFunc.SET_NUM_INST):
                sites.append(("body", pc, word))
        elif is_compute_opcode(opcode):
            sites.append(("compute-ns", pc, word))
    return sites


def model_sites(model) -> List[Tuple[str, int, int, int]]:
    """(kind, block_idx, pc, word) across a CompiledModel's programs."""
    sites = []
    for block_idx, cb in enumerate(model.blocks):
        if cb.tile is None:
            continue
        sites.extend((kind, block_idx, pc, word) for kind, pc, word
                     in word_sites(cb.tile.program.pack()))
    return sites


def corrupt_word(kind: str, word: int, rng) -> int:
    """The mutated 32-bit word for one corruption class.

    Values are chosen to be *semantically* destructive (out-of-bounds
    walks, zero trips, body overruns, illegal namespaces) rather than
    random bit noise, mirroring what real download corruption does to
    execution.
    """
    if kind == "stride":
        # Stride large enough that any second trip walks off every pad.
        stride = int(rng.choice([31000, -31000])) & 0xFFFF
        return (word & ~0xFFFF) | stride
    if kind == "trip":
        # Zero trips (protocol violation) or a count that overruns pads.
        imm = int(rng.choice([0, 29000, 31000]))
        return (word & ~0xFFFF) | imm
    if kind == "body":
        # Grow the repeater body so it swallows words after the nest.
        grow = int(rng.integers(5, 40))
        return (word & ~0xFFFF) | ((word & 0xFFFF) + grow) & 0xFFFF
    if kind == "config-ns":
        return (word & ~(0x7 << 21)) | (6 << 21)  # namespace ids stop at 4
    if kind == "compute-ns":
        return (word & ~(0x7 << 21)) | (6 << 21)  # dst_ns field
    raise ValueError(f"unknown corruption kind {kind!r}; "
                     f"known: {', '.join(CORRUPTION_KINDS)}")


def corrupt_words(words: Sequence[int], rng,
                  kinds: Optional[Iterable[str]] = None
                  ) -> Tuple[List[int], Optional[Site]]:
    """Corrupt one random site of a packed program.

    Returns ``(mutated words, site)``; ``site`` is ``None`` when the
    program has no mutable site of the requested kinds (the words are
    returned unchanged).
    """
    wanted = set(kinds) if kinds is not None else set(CORRUPTION_KINDS)
    sites = [s for s in word_sites(words) if s[0] in wanted]
    if not sites:
        return list(words), None
    kind, pc, word = sites[int(rng.integers(len(sites)))]
    mutated = list(words)
    mutated[pc] = corrupt_word(kind, word, rng)
    return mutated, (kind, pc, word)


def measured_detection_rate(model, samples: int = 24,
                            stream: object = "detection") -> float:
    """The real verifier's catch rate over sampled corruptions.

    Corrupts ``samples`` random sites across ``model``'s compiled
    programs and reports the fraction the static verifier flags with an
    error — the honest value for a plan's
    :attr:`~repro.faults.plan.CorruptSpec.detection_rate`. (Unlike the
    fuzz suite this does not execute mutants, so corruptions that are
    semantically harmless count against the rate; treat it as a lower
    bound.)
    """
    from ..analysis.verifier import verify_words

    rng = seeded_rng("faults", "measured-detection", stream)
    sites = model_sites(model)
    if not sites:
        return 1.0
    flagged = 0
    total = 0
    picks = rng.choice(len(sites), size=min(samples, len(sites)),
                       replace=False)
    for pick in picks:
        kind, block_idx, pc, word = sites[int(pick)]
        mutated = corrupt_word(kind, word, rng)
        if mutated == word:
            continue
        cb = model.blocks[block_idx]
        words = list(cb.tile.program.pack())
        words[pc] = mutated
        report = verify_words(cb.tile.program.name, words,
                              owns_obuf=cb.block.gemm is not None)
        total += 1
        flagged += bool(report.errors)
    return flagged / total if total else 1.0
