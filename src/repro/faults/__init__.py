"""Fault injection + chaos sweeps for the serving fleet.

Declarative, seeded fault plans (:mod:`~repro.faults.plan`), their
deterministic materialization against one fleet configuration
(:mod:`~repro.faults.injector`), word-level corruption of compiled
Tandem programs shared with the verifier fuzz suite
(:mod:`~repro.faults.corrupt`), and the ``repro chaos`` sweep that
measures how much goodput each resilience policy retains as fault rates
ramp (:mod:`~repro.faults.chaos`).

Every stochastic decision is pinned by ``REPRO_SEED``: the same plan
against the same workload replays the exact same disaster, serially or
under ``--jobs``.
"""

from .chaos import (
    CHAOS_SCHEMA,
    DEFAULT_SCALES,
    ChaosPoint,
    chaos_grid,
    chaos_report,
    chaos_report_json,
    chaos_table,
    run_chaos,
    run_chaos_point,
    validate_chaos_report,
)
from .corrupt import (
    CORRUPTION_KINDS,
    corrupt_word,
    corrupt_words,
    measured_detection_rate,
    model_sites,
    word_sites,
)
from .injector import FAULT_KINDS, FaultInjector
from .plan import (
    BurstSpec,
    CorruptSpec,
    CrashSpec,
    FaultPlan,
    FlakyCompileSpec,
    SlowdownSpec,
    TileFaultSpec,
    default_plan,
)

__all__ = [
    "CHAOS_SCHEMA",
    "CORRUPTION_KINDS",
    "DEFAULT_SCALES",
    "FAULT_KINDS",
    "BurstSpec",
    "ChaosPoint",
    "CorruptSpec",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "FlakyCompileSpec",
    "SlowdownSpec",
    "TileFaultSpec",
    "chaos_grid",
    "chaos_report",
    "chaos_report_json",
    "chaos_table",
    "corrupt_word",
    "corrupt_words",
    "default_plan",
    "measured_detection_rate",
    "model_sites",
    "run_chaos",
    "run_chaos_point",
    "validate_chaos_report",
    "word_sites",
]
