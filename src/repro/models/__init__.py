"""The paper's seven benchmark DNNs, defined programmatically."""

from .bert import build_bert
from .efficientnet import build_efficientnet
from .gpt2 import build_gpt2
from .mobilenetv2 import build_mobilenetv2
from .resnet50 import build_resnet50
from .tinynet import build_tinynet
from .vgg16 import build_vgg16
from .yolov3 import build_yolov3
from .zoo import (
    DISPLAY_NAMES,
    MODEL_ORDER,
    MODEL_YEARS,
    available_models,
    benchmark_models,
    build_model,
)

__all__ = [
    "DISPLAY_NAMES",
    "MODEL_ORDER",
    "MODEL_YEARS",
    "available_models",
    "benchmark_models",
    "build_bert",
    "build_efficientnet",
    "build_gpt2",
    "build_mobilenetv2",
    "build_model",
    "build_resnet50",
    "build_tinynet",
    "build_vgg16",
    "build_yolov3",
]
