"""YOLOv3 (Redmon & Farhadi, 2018), 416x416 object detection.

Darknet-53 backbone (Conv + LeakyReLU everywhere, residual Adds) plus the
three-scale detection head with Resize (upsample) and Concat — the layout
operators Table 1 attributes to YOLOv3.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph import Graph, GraphBuilder

#: (residual repeats, block channels) per backbone stage after each
#: stride-2 transition conv.
_BACKBONE = [(1, 64), (2, 128), (8, 256), (8, 512), (4, 1024)]


def _conv_lrelu(b: GraphBuilder, x: str, channels: int, kernel: int,
                stride: int = 1) -> str:
    pad = kernel // 2 if kernel > 1 else 0
    return b.leaky_relu(b.conv(x, channels, kernel, stride=stride, pad=pad), 0.1)


def _residual(b: GraphBuilder, x: str, channels: int) -> str:
    y = _conv_lrelu(b, x, channels // 2, 1)
    y = _conv_lrelu(b, y, channels, 3)
    return b.add(x, y)


def _head_block(b: GraphBuilder, x: str, channels: int) -> Tuple[str, str]:
    """Five alternating convs; returns (branch point, detection features)."""
    for _ in range(2):
        x = _conv_lrelu(b, x, channels, 1)
        x = _conv_lrelu(b, x, channels * 2, 3)
    x = _conv_lrelu(b, x, channels, 1)
    det = _conv_lrelu(b, x, channels * 2, 3)
    return x, det


def build_yolov3(input_size: int = 416) -> Graph:
    b = GraphBuilder("yolov3")
    x = b.input("image", (1, 3, input_size, input_size))
    x = _conv_lrelu(b, x, 32, 3)
    skips: List[str] = []
    for repeats, channels in _BACKBONE:
        x = _conv_lrelu(b, x, channels, 3, stride=2)
        for _ in range(repeats):
            x = _residual(b, x, channels)
        skips.append(x)
    route_52, route_26, route_13 = skips[2], skips[3], skips[4]

    outputs = []
    # Scale 1: 13x13.
    branch, det = _head_block(b, route_13, 512)
    outputs.append(b.conv(det, 255, 1, pad=0))
    # Scale 2: 26x26.
    up = b.resize(_conv_lrelu(b, branch, 256, 1), 2)
    branch, det = _head_block(b, b.concat([up, route_26], axis=1), 256)
    outputs.append(b.conv(det, 255, 1, pad=0))
    # Scale 3: 52x52.
    up = b.resize(_conv_lrelu(b, branch, 128, 1), 2)
    _, det = _head_block(b, b.concat([up, route_52], axis=1), 128)
    outputs.append(b.conv(det, 255, 1, pad=0))
    return b.finish(outputs)
