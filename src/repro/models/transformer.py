"""Shared transformer building blocks for BERT and GPT-2.

Emits the decomposed ONNX node patterns the paper's operator census sees:
LayerNorm as ReduceMean/Sub/Pow/ReduceMean/Add/Sqrt/Div/Mul/Add, GeLU as a
single Gelu node (the compiler lowers it to I-BERT integer primitives),
multi-head attention with the Reshape/Transpose plumbing, and scaled
Softmax.
"""

from __future__ import annotations

from math import sqrt
from typing import Tuple

from ..graph import GraphBuilder


def layer_norm(b: GraphBuilder, x: str, hidden: int) -> str:
    """ONNX decomposition of LayerNorm over the last axis (9 nodes)."""
    mean = b.reduce_mean(x, axis=-1, keepdims=True)
    centered = b.sub(x, mean)
    two = b.param("c_two", (1,), "int32")
    squared = b.emit("Pow", [centered], b.spec(centered).shape, "int32",
                      {"exponent": 2.0}, [two])
    var = b.reduce_mean(squared, axis=-1, keepdims=True)
    var_eps = b.add_scalar(var, 1e-5)
    std = b.sqrt(var_eps)
    normalized = b.div(centered, std)
    gamma = b.param("w_ln_gamma", (hidden,), "int32")
    scaled = b.emit("Mul", [normalized], b.spec(normalized).shape, "int32",
                     {}, [gamma])
    beta = b.param("w_ln_beta", (hidden,), "int32")
    return b.emit("Add", [scaled], b.spec(scaled).shape, "int32", {}, [beta])


def norm(b: GraphBuilder, x: str, hidden: int, kind: str = "layer") -> str:
    """Pre-norm dispatch: classic LayerNorm or the fused RMSNorm op."""
    if kind == "layer":
        return layer_norm(b, x, hidden)
    if kind == "rms":
        return b.rms_norm(x)
    raise ValueError(f"unknown norm kind {kind!r} (expected 'layer' or 'rms')")


def _split_heads(b: GraphBuilder, x: str, seq: int, heads: int,
                 head_dim: int) -> str:
    """(1, seq, hidden) -> (1, heads, seq, head_dim)."""
    y = b.reshape(x, (1, seq, heads, head_dim))
    return b.transpose(y, (0, 2, 1, 3))


def _merge_heads(b: GraphBuilder, x: str, seq: int, hidden: int) -> str:
    """(1, heads, seq, head_dim) -> (1, seq, hidden)."""
    y = b.transpose(x, (0, 2, 1, 3))
    return b.reshape(y, (1, seq, hidden))


def multi_head_attention(b: GraphBuilder, x: str, seq: int, hidden: int,
                         heads: int, causal: bool = False,
                         rope: bool = False,
                         fused_causal: bool = False) -> str:
    """Self-attention block: projections, scaled softmax, context, output.

    ``rope`` rotates Q/K with rotary position embeddings (LLaMA-style);
    ``fused_causal`` replaces the additive-mask + Softmax pair with the
    fused CausalSoftmax operator.
    """
    head_dim = hidden // heads
    q = _add_bias(b, b.linear_weights_matmul(x, hidden), hidden)
    k = _add_bias(b, b.linear_weights_matmul(x, hidden), hidden)
    v = _add_bias(b, b.linear_weights_matmul(x, hidden), hidden)
    q = _split_heads(b, q, seq, heads, head_dim)
    k = _split_heads(b, k, seq, heads, head_dim)
    v = _split_heads(b, v, seq, heads, head_dim)
    if rope:
        q = b.rope(q)
        k = b.rope(k)
    kt = b.transpose(k, (0, 1, 3, 2))
    scores = b.matmul(q, kt)
    scores = b.div_scalar(scores, sqrt(head_dim))
    if fused_causal:
        probs = b.causal_softmax(scores)
    else:
        # Padding mask (BERT) or causal mask (GPT-2) arrives as an
        # additive tensor; both appear as one Add in the ONNX graphs.
        mask = b.param("c_attn_mask", (1, 1, seq, seq), "int32")
        scores = b.emit("Add", [scores], b.spec(scores).shape, "int32",
                        {"causal": causal}, [mask])
        probs = b.softmax(scores, axis=-1)
    context = b.matmul(probs, v)
    context = _merge_heads(b, context, seq, hidden)
    return _add_bias(b, b.linear_weights_matmul(context, hidden), hidden)


def _add_bias(b: GraphBuilder, x: str, features: int) -> str:
    """Add a bias parameter (one ONNX Add node with a parameter operand)."""
    bias = b.param("b_proj", (features,), "int32")
    return b.emit("Add", [x], b.spec(x).shape, "int32", {}, [bias])


def ffn(b: GraphBuilder, x: str, hidden: int, intermediate: int,
        activation: str = "gelu") -> str:
    """Position-wise feed-forward: Linear -> GeLU -> Linear, or the
    gated Linear(gate)/Linear(up) -> SwiGLU -> Linear variant."""
    if activation == "swiglu":
        gate = _add_bias(b, b.linear_weights_matmul(x, intermediate),
                         intermediate)
        up = _add_bias(b, b.linear_weights_matmul(x, intermediate),
                       intermediate)
        y = b.swiglu(gate, up)
    elif activation == "gelu":
        y = _add_bias(b, b.linear_weights_matmul(x, intermediate),
                      intermediate)
        y = b.gelu(y)
    else:
        raise ValueError(
            f"unknown activation {activation!r} (expected 'gelu' or 'swiglu')")
    return _add_bias(b, b.linear_weights_matmul(y, hidden), hidden)


def embedding(b: GraphBuilder, tokens: str, seq: int, hidden: int,
              n_tables: int, vocab: int = 30522) -> str:
    """Gather-based embedding lookup(s) summed together, then cast."""
    parts = []
    for _ in range(n_tables):
        table = b.param("w_embed", (vocab, hidden), "int32")
        parts.append(
            b.emit("Gather", [tokens], (1, seq, hidden), "int32", {}, [table])
        )
    x = parts[0]
    for part in parts[1:]:
        x = b.add(x, part)
    return x
