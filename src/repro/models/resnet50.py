"""ResNet-50 (He et al., 2016), 224x224 ImageNet inference.

Bottleneck blocks with residual Adds; the final 7x7 GlobalAveragePool
over 2048 channels is the layer the paper calls out as Gemmini's RISC-V
bottleneck (Figure 17 discussion).
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

#: (blocks, mid_channels, out_channels) per stage; stride 2 on stages 2-4.
_STAGES = [(3, 64, 256), (4, 128, 512), (6, 256, 1024), (3, 512, 2048)]


def _bottleneck(b: GraphBuilder, x: str, mid: int, out: int, stride: int,
                downsample: bool) -> str:
    identity = x
    y = b.relu(b.conv(x, mid, 1, stride=1, pad=0))
    y = b.relu(b.conv(y, mid, 3, stride=stride))
    y = b.conv(y, out, 1, stride=1, pad=0)
    if downsample:
        identity = b.conv(x, out, 1, stride=stride, pad=0)
    return b.relu(b.add(y, identity))


def build_resnet50(input_size: int = 224) -> Graph:
    b = GraphBuilder("resnet50")
    x = b.input("image", (1, 3, input_size, input_size))
    x = b.relu(b.conv(x, 64, 7, stride=2, pad=3))
    x = b.maxpool(x, 3, 2, pad=1)
    for stage_idx, (blocks, mid, out) in enumerate(_STAGES):
        for block_idx in range(blocks):
            stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
            downsample = block_idx == 0
            x = _bottleneck(b, x, mid, out, stride, downsample)
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, 1000)
    return b.finish([x])
