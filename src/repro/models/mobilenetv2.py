"""MobileNetV2 (Sandler et al., 2018), 224x224 ImageNet inference.

Inverted-residual blocks: 1x1 expansion + Clip(0,6), 3x3 depth-wise
convolution + Clip(0,6), 1x1 linear projection, residual Add. The
depth-wise convolutions are the operators the paper repeatedly highlights
(5.9x over Baseline 1, 35.3x over multi-core Gemmini).
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

#: (expansion t, out channels c, repeats n, first stride s) per stage.
_SETTINGS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _inverted_residual(b: GraphBuilder, x: str, in_ch: int, out_ch: int,
                       stride: int, expand: int) -> str:
    identity = x
    y = x
    if expand != 1:
        y = b.clip(b.conv(y, in_ch * expand, 1, pad=0), 0.0, 6.0)
    y = b.clip(b.depthwise_conv(y, 3, stride=stride), 0.0, 6.0)
    y = b.conv(y, out_ch, 1, pad=0)
    if stride == 1 and in_ch == out_ch:
        y = b.add(y, identity)
    return y


def build_mobilenetv2(input_size: int = 224) -> Graph:
    b = GraphBuilder("mobilenetv2")
    x = b.input("image", (1, 3, input_size, input_size))
    x = b.clip(b.conv(x, 32, 3, stride=2), 0.0, 6.0)
    in_ch = 32
    for expand, out_ch, repeats, first_stride in _SETTINGS:
        for i in range(repeats):
            stride = first_stride if i == 0 else 1
            x = _inverted_residual(b, x, in_ch, out_ch, stride, expand)
            in_ch = out_ch
    x = b.clip(b.conv(x, 1280, 1, pad=0), 0.0, 6.0)
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, 1000)
    return b.finish([x])
