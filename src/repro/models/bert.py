"""BERT-base (Devlin et al., 2018), sequence length 128, batch 1.

12 encoder layers, hidden 768, 12 heads, FFN 3072, post-norm. The paper
highlights BERT's "large number of mathematical and transpose operations"
(5.4x speedup over Baseline 1) and its GeLU/Softmax/LayerNorm load.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder
from .transformer import embedding, ffn, layer_norm, multi_head_attention


def build_bert(seq: int = 128, hidden: int = 768, layers: int = 12,
               heads: int = 12, intermediate: int = 3072) -> Graph:
    b = GraphBuilder("bert")
    tokens = b.input("tokens", (1, seq), dtype="int32")
    # Word + position + segment embeddings, then embedding LayerNorm.
    x = embedding(b, tokens, seq, hidden, n_tables=3)
    x = layer_norm(b, x, hidden)
    for _ in range(layers):
        attn = multi_head_attention(b, x, seq, hidden, heads, causal=False)
        x = layer_norm(b, b.add(x, attn), hidden)
        ff = ffn(b, x, hidden, intermediate)
        x = layer_norm(b, b.add(x, ff), hidden)
    # Pooler: first-token slice -> dense -> Tanh.
    pooled = b.emit("Slice", [x], (1, 1, hidden), "int32", {"axis": 1})
    pooled = b.reshape(pooled, (1, hidden))
    pooled = b.tanh(b.gemm(pooled, hidden))
    return b.finish([x, pooled])
