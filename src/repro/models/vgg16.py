"""VGG-16 (Simonyan & Zisserman, 2014), 224x224 ImageNet inference.

The paper uses VGG-16 as the "first generation" DNN with only three
non-GEMM operator types (Relu, MaxPool and layout/cast plumbing).
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

#: Standard VGG-16 configuration "D": conv widths with 'M' = 2x2 maxpool.
_CFG = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
        512, 512, 512, "M", 512, 512, 512, "M"]


def build_vgg16(input_size: int = 224) -> Graph:
    b = GraphBuilder("vgg16")
    x = b.input("image", (1, 3, input_size, input_size))
    for entry in _CFG:
        if entry == "M":
            x = b.maxpool(x, 2, 2)
        else:
            x = b.relu(b.conv(x, int(entry), 3))
    x = b.flatten(x)
    x = b.relu(b.gemm(x, 4096))
    x = b.relu(b.gemm(x, 4096))
    x = b.gemm(x, 1000)
    return b.finish([x])
