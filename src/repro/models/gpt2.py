"""GPT-2 124M (Radford et al., 2019), context length 256, batch 1.

12 decoder layers, hidden 768, 12 heads, pre-norm, causal attention.
The paper calls out ReduceMean (inside the LayerNorms) as the dominant
residual non-GEMM cost for GPT-2 (Figure 24) and notes the scaled-up
Tandem Processor becomes memory-bandwidth-bound on it (Figure 23).

``build_gpt2_rms`` is the LLM-operator variant: RMSNorm pre-norms,
SwiGLU feed-forward, rotary position embeddings, and the fused
CausalSoftmax attention tail — the emerging-operator set of
LLaMA-family decoders, sized small enough to compile quickly.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder
from .transformer import embedding, ffn, multi_head_attention, norm


def build_gpt2(seq: int = 256, hidden: int = 768, layers: int = 12,
               heads: int = 12, intermediate: int = 3072,
               vocab: int = 50257, norm_kind: str = "layer",
               activation: str = "gelu", rope: bool = False,
               fused_causal: bool = False, name: str = "gpt2") -> Graph:
    b = GraphBuilder(name)
    tokens = b.input("tokens", (1, seq), dtype="int32")
    # Token + position embeddings (pre-norm architecture: no embedding LN).
    x = embedding(b, tokens, seq, hidden, n_tables=2)
    for _ in range(layers):
        attn = multi_head_attention(b, norm(b, x, hidden, norm_kind), seq,
                                    hidden, heads, causal=True, rope=rope,
                                    fused_causal=fused_causal)
        x = b.add(x, attn)
        ff = ffn(b, norm(b, x, hidden, norm_kind), hidden, intermediate,
                 activation=activation)
        x = b.add(x, ff)
    x = norm(b, x, hidden, norm_kind)
    # LM head: tied-embedding projection to the vocabulary.
    logits = b.linear_weights_matmul(x, vocab)
    return b.finish([logits])


def build_gpt2_rms(seq: int = 64, hidden: int = 128, layers: int = 2,
                   heads: int = 4, intermediate: int = 256,
                   vocab: int = 8192) -> Graph:
    """Small LLaMA-style decoder: RMSNorm + SwiGLU + RoPE + CausalSoftmax."""
    return build_gpt2(seq=seq, hidden=hidden, layers=layers, heads=heads,
                      intermediate=intermediate, vocab=vocab,
                      norm_kind="rms", activation="swiglu", rope=True,
                      fused_causal=True, name="gpt2_rms")
