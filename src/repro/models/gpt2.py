"""GPT-2 124M (Radford et al., 2019), context length 256, batch 1.

12 decoder layers, hidden 768, 12 heads, pre-norm, causal attention.
The paper calls out ReduceMean (inside the LayerNorms) as the dominant
residual non-GEMM cost for GPT-2 (Figure 24) and notes the scaled-up
Tandem Processor becomes memory-bandwidth-bound on it (Figure 23).
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder
from .transformer import embedding, ffn, layer_norm, multi_head_attention


def build_gpt2(seq: int = 256, hidden: int = 768, layers: int = 12,
               heads: int = 12, intermediate: int = 3072) -> Graph:
    b = GraphBuilder("gpt2")
    tokens = b.input("tokens", (1, seq), dtype="int32")
    # Token + position embeddings (pre-norm architecture: no embedding LN).
    x = embedding(b, tokens, seq, hidden, n_tables=2)
    for _ in range(layers):
        attn = multi_head_attention(b, layer_norm(b, x, hidden), seq, hidden,
                                    heads, causal=True)
        x = b.add(x, attn)
        ff = ffn(b, layer_norm(b, x, hidden), hidden, intermediate)
        x = b.add(x, ff)
    x = layer_norm(b, x, hidden)
    # LM head: tied-embedding projection to the vocabulary.
    logits = b.linear_weights_matmul(x, 50257)
    return b.finish([logits])
