"""Model zoo registry: the paper's seven benchmark DNNs (+ TinyNet).

``MODEL_ORDER`` is the chronological benchmark order every figure in the
paper uses: VGG-16, ResNet-50, YOLOv3, MobileNetV2, EfficientNet, BERT,
GPT-2.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List

from ..graph import Graph
from .bert import build_bert
from .efficientnet import build_efficientnet
from .gpt2 import build_gpt2, build_gpt2_rms
from .mobilenetv2 import build_mobilenetv2
from .resnet50 import build_resnet50
from .tinynet import build_tinynet
from .vgg16 import build_vgg16
from .yolov3 import build_yolov3

_BUILDERS: Dict[str, Callable[[], Graph]] = {
    "vgg16": build_vgg16,
    "resnet50": build_resnet50,
    "yolov3": build_yolov3,
    "mobilenetv2": build_mobilenetv2,
    "efficientnet": build_efficientnet,
    "bert": build_bert,
    "gpt2": build_gpt2,
    "gpt2_rms": build_gpt2_rms,
    "tinynet": build_tinynet,
}

#: Benchmark order used throughout the paper's figures (chronological).
MODEL_ORDER: List[str] = [
    "vgg16", "resnet50", "yolov3", "mobilenetv2", "efficientnet", "bert", "gpt2",
]

#: Publication year per model (x-axis of Figure 1).
MODEL_YEARS: Dict[str, int] = {
    "vgg16": 2014,
    "resnet50": 2016,
    "yolov3": 2018,
    "mobilenetv2": 2018,
    "efficientnet": 2019,
    "bert": 2018,
    "gpt2": 2019,
}

#: Display names matching the paper's figure labels.
DISPLAY_NAMES: Dict[str, str] = {
    "vgg16": "VGG-16",
    "resnet50": "ResNet-50",
    "yolov3": "YOLOv3",
    "mobilenetv2": "MobileNetV2",
    "efficientnet": "EfficientNet",
    "bert": "BERT",
    "gpt2": "GPT-2",
    "gpt2_rms": "GPT-2-RMS",
    "tinynet": "TinyNet",
}


def available_models() -> List[str]:
    return sorted(_BUILDERS)


@lru_cache(maxsize=None)
def build_model(name: str) -> Graph:
    """Build (and memoize) a benchmark graph by registry name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None
    graph = builder()
    graph.validate()
    return graph


def benchmark_models() -> List[Graph]:
    """The seven paper benchmarks, in figure order."""
    return [build_model(name) for name in MODEL_ORDER]
