"""TinyNet: a deliberately small CNN used by functional end-to-end tests.

Exercises one of each block topology the execution controller handles
(GEMM-only, GEMM followed by fused non-GEMMs, non-GEMM-only) with tensor
sizes small enough for the detailed cycle-by-cycle simulator.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder


def build_tinynet(input_size: int = 8) -> Graph:
    b = GraphBuilder("tinynet")
    x = b.input("image", (1, 4, input_size, input_size))
    x = b.relu(b.conv(x, 8, 3))
    skip = x
    x = b.relu(b.conv(x, 8, 3))
    x = b.add(x, skip)
    x = b.maxpool(x, 2, 2)
    x = b.flatten(x)
    x = b.gemm(x, 10)
    x = b.softmax(x, axis=-1)
    return b.finish([x])
