"""EfficientNet-B0 (Tan & Le, 2019), 224x224 ImageNet inference.

MBConv blocks with squeeze-and-excitation and Swish activations. Swish is
emitted as Sigmoid + Mul (its ONNX decomposition), and SE adds
GlobalAveragePool / Sigmoid / Mul traffic — this is the benchmark whose
non-GEMM share reaches 81 % of runtime on Baseline 2 (Figure 3).
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

#: (expansion, out channels, repeats, first stride, kernel) per stage.
_SETTINGS = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
]


def _swish(b: GraphBuilder, x: str) -> str:
    return b.mul(x, b.sigmoid(x))


def _squeeze_excite(b: GraphBuilder, x: str, channels: int, se_channels: int) -> str:
    s = b.global_avgpool(x)
    s = _swish(b, b.conv(s, se_channels, 1, pad=0))
    s = b.sigmoid(b.conv(s, channels, 1, pad=0))
    return b.mul(x, s)


def _mbconv(b: GraphBuilder, x: str, in_ch: int, out_ch: int, stride: int,
            expand: int, kernel: int) -> str:
    identity = x
    y = x
    mid = in_ch * expand
    if expand != 1:
        y = _swish(b, b.conv(y, mid, 1, pad=0))
    y = _swish(b, b.depthwise_conv(y, kernel, stride=stride))
    y = _squeeze_excite(b, y, mid, max(1, in_ch // 4))
    y = b.conv(y, out_ch, 1, pad=0)
    if stride == 1 and in_ch == out_ch:
        y = b.add(y, identity)
    return y


def build_efficientnet(input_size: int = 224) -> Graph:
    b = GraphBuilder("efficientnet")
    x = b.input("image", (1, 3, input_size, input_size))
    x = _swish(b, b.conv(x, 32, 3, stride=2))
    in_ch = 32
    for expand, out_ch, repeats, first_stride, kernel in _SETTINGS:
        for i in range(repeats):
            stride = first_stride if i == 0 else 1
            x = _mbconv(b, x, in_ch, out_ch, stride, expand, kernel)
            in_ch = out_ch
    x = _swish(b, b.conv(x, 1280, 1, pad=0))
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.gemm(x, 1000)
    return b.finish([x])
