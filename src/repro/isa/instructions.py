"""Typed instruction objects and builder helpers for the Tandem ISA.

The simulator executes :class:`Instruction` objects; :meth:`Instruction.pack`
and :func:`decode` round-trip them through the 32-bit Figure 12 encodings,
which tests use to prove the ISA really fits in one instruction word.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .encoding import (
    decode_imm16,
    encode_imm16,
    is_compute_opcode,
    pack_common,
    pack_compute,
    unpack_fields,
)
from .opcodes import (
    FUNC_ENUMS,
    AluFunc,
    CalculusFunc,
    ComparisonFunc,
    DatatypeConfigFunc,
    IteratorConfigFunc,
    LdStFunc,
    LoopFunc,
    Namespace,
    Opcode,
    PermuteFunc,
    SyncFunc,
)


@dataclass(frozen=True)
class Operand:
    """A compute operand: (namespace id, iterator-table index)."""

    ns: Namespace
    iter_idx: int

    def __str__(self) -> str:
        return f"{self.ns.name}[it{self.iter_idx}]"


@dataclass(frozen=True)
class Instruction:
    """One Tandem Processor instruction.

    Exactly one field layout is populated depending on ``opcode``:
    compute instructions use ``dst``/``src1``/``src2``; everything else
    uses ``field3``/``field5``/``imm`` in their class-specific roles
    (namespace id + iterator index, loop id, dim index, func2 + loop idx).
    """

    opcode: Opcode
    func: int
    dst: Optional[Operand] = None
    src1: Optional[Operand] = None
    src2: Optional[Operand] = None
    field3: int = 0
    field5: int = 0
    imm: int = 0

    # -- encoding -----------------------------------------------------------
    def pack(self) -> int:
        """This instruction as its 32-bit word."""
        if is_compute_opcode(self.opcode):
            src2 = self.src2 if self.src2 is not None else Operand(Namespace.IBUF1, 0)
            return pack_compute(
                int(self.opcode), int(self.func),
                int(self.dst.ns), self.dst.iter_idx,
                int(self.src1.ns), self.src1.iter_idx,
                int(src2.ns), src2.iter_idx,
            )
        return pack_common(int(self.opcode), int(self.func), self.field3,
                           self.field5, encode_imm16(self.imm))

    @property
    def func_name(self) -> str:
        """The func field's enum name (for disassembly)."""
        enum = FUNC_ENUMS[self.opcode]
        try:
            return enum(self.func).name
        except ValueError:
            return f"func{self.func}"

    def __str__(self) -> str:
        if is_compute_opcode(self.opcode):
            ops = ", ".join(str(o) for o in (self.dst, self.src1, self.src2)
                            if o is not None)
            return f"{self.opcode.name}.{self.func_name} {ops}"
        return (f"{self.opcode.name}.{self.func_name} "
                f"f3={self.field3} f5={self.field5} imm={self.imm}")


def decode(word: int) -> Instruction:
    """Decode a packed 32-bit word back into an :class:`Instruction`."""
    fields = unpack_fields(word)
    opcode = fields["opcode"]
    func = fields["func"]
    if is_compute_opcode(opcode):
        return Instruction(
            opcode=opcode,
            func=func,
            dst=Operand(Namespace(fields["dst_ns"]), fields["dst_iter"]),
            src1=Operand(Namespace(fields["src1_ns"]), fields["src1_iter"]),
            src2=Operand(Namespace(fields["src2_ns"]), fields["src2_iter"]),
        )
    return Instruction(
        opcode=opcode,
        func=func,
        field3=fields["field3"],
        field5=fields["field5"],
        imm=decode_imm16(fields["imm16"]),
    )


# ---------------------------------------------------------------------------
# Builder helpers (what the compiler's lowering pass emits)
# ---------------------------------------------------------------------------
def sync(func: SyncFunc, group_id: int = 0) -> Instruction:
    """A SYNC word for GEMM/Tandem handshaking."""
    return Instruction(Opcode.SYNC, int(func), field5=group_id)


def iterator_base(ns: Namespace, iter_idx: int, offset: int) -> Instruction:
    """ITERATOR_CONFIG BASE_ADDR: set an iterator's start offset."""
    return Instruction(Opcode.ITERATOR_CONFIG, int(IteratorConfigFunc.BASE_ADDR),
                       field3=int(ns), field5=iter_idx, imm=offset)


def iterator_stride(ns: Namespace, iter_idx: int, stride: int) -> Instruction:
    """ITERATOR_CONFIG STRIDE: set an iterator's per-trip step."""
    return Instruction(Opcode.ITERATOR_CONFIG, int(IteratorConfigFunc.STRIDE),
                       field3=int(ns), field5=iter_idx, imm=stride)


def set_immediate(slot: int, value: int) -> Tuple[Instruction, ...]:
    """Write a 32-bit immediate into an IMM BUF slot.

    Values that do not fit the 16-bit immediate field take a second
    IMM_HIGH instruction carrying the upper half — the price of the
    32-bit instruction word.
    """
    if not -(1 << 31) <= value < (1 << 31):
        raise ValueError(f"immediate {value} does not fit in 32 bits")
    low = Instruction(Opcode.ITERATOR_CONFIG, int(IteratorConfigFunc.IMM_VALUE),
                      field3=int(Namespace.IMM), field5=slot, imm=value & 0xFFFF)
    if -(1 << 15) <= value < (1 << 15):
        # IMM_VALUE alone: the decoder sign-extends the 16-bit field.
        return (low,)
    high = Instruction(Opcode.ITERATOR_CONFIG, int(IteratorConfigFunc.IMM_HIGH),
                       field3=int(Namespace.IMM), field5=slot,
                       imm=(value >> 16) & 0xFFFF)
    return (low, high)


def alu(func: AluFunc, dst: Operand, src1: Operand,
        src2: Optional[Operand] = None) -> Instruction:
    """An ALU compute word over (namespace, iterator) operands."""
    return Instruction(Opcode.ALU, int(func), dst=dst, src1=src1, src2=src2)


def calculus(func: CalculusFunc, dst: Operand, src1: Operand) -> Instruction:
    """A CALCULUS compute word (ABS/SIGN/NEG)."""
    return Instruction(Opcode.CALCULUS, int(func), dst=dst, src1=src1)


def comparison(func: ComparisonFunc, dst: Operand, src1: Operand,
               src2: Operand) -> Instruction:
    """A COMPARISON compute word writing a 0/1 mask."""
    return Instruction(Opcode.COMPARISON, int(func), dst=dst, src1=src1, src2=src2)


def loop_iter(loop_id: int, iterations: int) -> Instruction:
    """LOOP SET_ITER: trip count for one Code Repeater level."""
    return Instruction(Opcode.LOOP, int(LoopFunc.SET_ITER), field3=loop_id,
                       imm=iterations)


def loop_num_inst(num_inst: int) -> Instruction:
    """LOOP SET_NUM_INST: the repeater body size in words."""
    return Instruction(Opcode.LOOP, int(LoopFunc.SET_NUM_INST), imm=num_inst)


def datatype_cast(target: DatatypeConfigFunc, src_dst: int = 0) -> Instruction:
    """A DATATYPE_CAST word converting to the target dtype."""
    return Instruction(Opcode.DATATYPE_CAST, int(target), field3=src_dst)


def permute(func: PermuteFunc, src_dst: int = 0, dim_idx: int = 0,
            imm: int = 0) -> Instruction:
    """A PERMUTE word configuring/starting the layout engine."""
    return Instruction(Opcode.PERMUTE, int(func), field3=src_dst,
                       field5=dim_idx, imm=imm)


def tile_ldst(func1: LdStFunc, buffer: Namespace = Namespace.IBUF1,
              loop_idx: int = 0, imm: int = 0) -> Instruction:
    """A TILE_LD_ST word programming the Data Access Engine."""
    return Instruction(Opcode.TILE_LD_ST, int(func1), field3=int(buffer),
                       field5=loop_idx, imm=imm)
