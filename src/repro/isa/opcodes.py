"""Opcode and function-field encodings for the Tandem Processor ISA.

Figure 12 of the paper defines six instruction classes packed into 32-bit
words, all sharing a 4-bit opcode and a 4-bit func field:

  * Synchronization       — GEMM/Tandem handshaking and region markers
  * Configuration         — iterator tables, immediates, datatype config
  * Compute               — ALU / CALCULUS / COMPARISON primitive ops
  * Loop                  — Code Repeater configuration
  * Data transformation   — PERMUTE and DATATYPE_CAST
  * Off-chip data movement — TILE_LD_ST for the Data Access Engine
"""

from __future__ import annotations

from enum import IntEnum


class Opcode(IntEnum):
    """4-bit major opcodes."""

    SYNC = 0x0
    ITERATOR_CONFIG = 0x1
    DATATYPE_CONFIG = 0x2
    ALU = 0x3
    CALCULUS = 0x4
    COMPARISON = 0x5
    LOOP = 0x6
    PERMUTE = 0x7
    DATATYPE_CAST = 0x8
    TILE_LD_ST = 0x9


class Namespace(IntEnum):
    """3-bit scratchpad namespace ids (Section 4.1 "Namespaces")."""

    IBUF1 = 0x0  # Interim BUF 1
    IBUF2 = 0x1  # Interim BUF 2
    OBUF = 0x2   # GEMM unit's Output BUF (fluid ownership)
    IMM = 0x3    # 32-slot immediate buffer
    VMEM = 0x4   # staging view of off-chip tile (Data Access Engine window)


class SyncFunc(IntEnum):
    """func bits <GEMM/SIMD, START/END, EXEC/BUF, X> for SYNC."""

    GEMM_START_EXEC = 0b0000
    GEMM_END_EXEC = 0b0100
    SIMD_START_EXEC = 0b1000
    SIMD_END_EXEC = 0b1100
    SIMD_END_BUF = 0b1110  # Output BUF released back to the GEMM unit
    BLOCK_END = 0b0110     # block-done notification to the execution FSM


class IteratorConfigFunc(IntEnum):
    """ITERATOR_CONFIG functions (Section 5, "Configuration")."""

    BASE_ADDR = 0x0
    STRIDE = 0x1
    IMM_VALUE = 0x2
    IMM_HIGH = 0x3  # upper 16 bits of a 32-bit immediate


class DatatypeConfigFunc(IntEnum):
    FXP32 = 0x0
    FXP16 = 0x1
    FXP8 = 0x2
    FXP4 = 0x3


class AluFunc(IntEnum):
    """ALU primitive operations (Section 3.4 / Section 5 "Compute")."""

    ADD = 0x0
    SUB = 0x1
    MUL = 0x2
    MACC = 0x3
    DIV = 0x4
    MAX = 0x5
    MIN = 0x6
    RSHIFT = 0x7
    LSHIFT = 0x8
    NOT = 0x9
    AND = 0xA
    OR = 0xB
    MOVE = 0xC
    COND_MOVE = 0xD


class CalculusFunc(IntEnum):
    """CALCULUS mathematical primitives."""

    ABS = 0x0
    SIGN = 0x1
    NEG = 0x2


class ComparisonFunc(IntEnum):
    EQ = 0x0
    NE = 0x1
    GT = 0x2
    GE = 0x3
    LT = 0x4
    LE = 0x5


class LoopFunc(IntEnum):
    """LOOP functions configuring the Code Repeater."""

    SET_ITER = 0x0
    SET_NUM_INST = 0x1
    SET_INDEX = 0x2


class PermuteFunc(IntEnum):
    SET_BASE_ADDR = 0x0
    SET_LOOP_ITER = 0x1
    SET_LOOP_STRIDE = 0x2
    START = 0x3


class LdStFunc(IntEnum):
    """TILE_LD_ST func1 values for the Data Access Engine."""

    LD_CONFIG_BASE_ADDR = 0x0
    ST_CONFIG_BASE_ADDR = 0x1
    LD_CONFIG_BASE_LOOP_ITER = 0x2
    LD_CONFIG_BASE_LOOP_STRIDE = 0x3
    ST_CONFIG_BASE_LOOP_ITER = 0x4
    ST_CONFIG_BASE_LOOP_STRIDE = 0x5
    LD_CONFIG_TILE_LOOP_ITER = 0x6
    LD_CONFIG_TILE_LOOP_STRIDE = 0x7
    ST_CONFIG_TILE_LOOP_ITER = 0x8
    ST_CONFIG_TILE_LOOP_STRIDE = 0x9
    LD_START = 0xA
    ST_START = 0xB


#: Compute funcs grouped per opcode, for decoding and disassembly.
COMPUTE_FUNCS = {
    Opcode.ALU: AluFunc,
    Opcode.CALCULUS: CalculusFunc,
    Opcode.COMPARISON: ComparisonFunc,
}

FUNC_ENUMS = {
    Opcode.SYNC: SyncFunc,
    Opcode.ITERATOR_CONFIG: IteratorConfigFunc,
    Opcode.DATATYPE_CONFIG: DatatypeConfigFunc,
    Opcode.ALU: AluFunc,
    Opcode.CALCULUS: CalculusFunc,
    Opcode.COMPARISON: ComparisonFunc,
    Opcode.LOOP: LoopFunc,
    Opcode.PERMUTE: PermuteFunc,
    Opcode.DATATYPE_CAST: DatatypeConfigFunc,
    Opcode.TILE_LD_ST: LdStFunc,
}

#: Hardware limits from Sections 4-5 and Table 3.
MAX_LOOP_LEVELS = 8        # "arbitrary levels of nesting (up to eight)"
ITER_TABLE_ENTRIES = 32    # 5-bit iterator index
IMM_SLOTS = 32             # "32-slot scratchpad for immediate values"
INSTRUCTION_BITS = 32
