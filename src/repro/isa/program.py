"""Program containers and the disassembler.

A :class:`TandemProgram` is the unit the execution controller dispatches:
the non-GEMM instruction stream of one block, replayed once per tile.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

from .encoding import EncodingError, is_compute_opcode
from .instructions import Instruction, decode
from .opcodes import Opcode


class ProgramDecodeError(ValueError):
    """A serialized program word cannot be decoded.

    Carries the offending word index (``pc``) and raw value (``word``)
    so tooling (``repro verify``, the cache loader) can point at the
    exact corrupt word instead of surfacing a bare ``ValueError``.
    """

    def __init__(self, message: str, pc: int = -1, word: int = 0):
        super().__init__(message)
        self.pc = pc
        self.word = word


@dataclass
class TandemProgram:
    """An ordered instruction stream plus bookkeeping for analyses."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, inst: Instruction) -> None:
        """Append one instruction and return it."""
        self.instructions.append(inst)

    def extend(self, insts: Iterable[Instruction]) -> None:
        """Append a sequence of instructions."""
        self.instructions.extend(insts)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    # -- binary form ---------------------------------------------------------
    def pack(self) -> List[int]:
        """The program as a list of 32-bit words."""
        return [inst.pack() for inst in self.instructions]

    @classmethod
    def unpack(cls, name: str, words: Iterable[int]) -> "TandemProgram":
        """Rebuild a program by decoding packed words."""
        instructions = []
        for pc, word in enumerate(words):
            if not isinstance(word, int) or not 0 <= word < (1 << 32):
                raise ProgramDecodeError(
                    f"word {pc} of {name!r}: {word!r} is not a 32-bit "
                    f"instruction word", pc=pc, word=word if isinstance(
                        word, int) else 0)
            try:
                instructions.append(decode(word))
            except (ValueError, EncodingError) as err:
                # Opcode/Namespace enum misses and field overflows all
                # surface here as one typed, indexed error.
                raise ProgramDecodeError(
                    f"word {pc} of {name!r} ({word:#010x}) does not "
                    f"decode: {err}", pc=pc, word=word) from err
        return cls(name, instructions)

    def to_bytes(self) -> bytes:
        """Little-endian binary serialization of the packed words."""
        return b"".join(w.to_bytes(4, "little") for w in self.pack())

    @classmethod
    def from_bytes(cls, name: str, blob: bytes) -> "TandemProgram":
        """Decode a program from its binary serialization."""
        if len(blob) % 4:
            raise ProgramDecodeError(
                f"program blob for {name!r} is {len(blob)} bytes, not a "
                f"whole number of 32-bit words")
        words = [int.from_bytes(blob[i:i + 4], "little")
                 for i in range(0, len(blob), 4)]
        return cls.unpack(name, words)

    # -- analyses -------------------------------------------------------------
    def opcode_histogram(self) -> Counter:
        """Instruction count per opcode name."""
        return Counter(inst.opcode for inst in self.instructions)

    def compute_instruction_count(self) -> int:
        """Number of ALU/CALCULUS/COMPARISON words."""
        return sum(1 for inst in self.instructions
                   if is_compute_opcode(inst.opcode))

    def config_instruction_count(self) -> int:
        """Number of configuration-class words."""
        return len(self.instructions) - self.compute_instruction_count()

    def disassemble(self) -> str:
        """Human-readable listing, one line per word."""
        lines = []
        for pc, inst in enumerate(self.instructions):
            lines.append(f"{pc:5d}: {inst.pack():08x}  {inst}")
        return "\n".join(lines)
