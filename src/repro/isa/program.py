"""Program containers and the disassembler.

A :class:`TandemProgram` is the unit the execution controller dispatches:
the non-GEMM instruction stream of one block, replayed once per tile.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

from .encoding import is_compute_opcode
from .instructions import Instruction, decode
from .opcodes import Opcode


@dataclass
class TandemProgram:
    """An ordered instruction stream plus bookkeeping for analyses."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, inst: Instruction) -> None:
        self.instructions.append(inst)

    def extend(self, insts: Iterable[Instruction]) -> None:
        self.instructions.extend(insts)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    # -- binary form ---------------------------------------------------------
    def pack(self) -> List[int]:
        return [inst.pack() for inst in self.instructions]

    @classmethod
    def unpack(cls, name: str, words: Iterable[int]) -> "TandemProgram":
        return cls(name, [decode(w) for w in words])

    def to_bytes(self) -> bytes:
        return b"".join(w.to_bytes(4, "little") for w in self.pack())

    @classmethod
    def from_bytes(cls, name: str, blob: bytes) -> "TandemProgram":
        if len(blob) % 4:
            raise ValueError("program blob is not a whole number of words")
        words = [int.from_bytes(blob[i:i + 4], "little")
                 for i in range(0, len(blob), 4)]
        return cls.unpack(name, words)

    # -- analyses -------------------------------------------------------------
    def opcode_histogram(self) -> Counter:
        return Counter(inst.opcode for inst in self.instructions)

    def compute_instruction_count(self) -> int:
        return sum(1 for inst in self.instructions
                   if is_compute_opcode(inst.opcode))

    def config_instruction_count(self) -> int:
        return len(self.instructions) - self.compute_instruction_count()

    def disassemble(self) -> str:
        lines = []
        for pc, inst in enumerate(self.instructions):
            lines.append(f"{pc:5d}: {inst.pack():08x}  {inst}")
        return "\n".join(lines)
