"""32-bit instruction word packing/unpacking (Figure 12 field layouts).

Every word is ``opcode[31:28] func[27:24] <class-specific fields>``:

======================  ==========================================================
Class                   Remaining 24 bits
======================  ==========================================================
Synchronization         x[23:21] group_id[20:16] x[15:0]
Configuration           ns_id[23:21] iter_idx[20:16] immediate[15:0]
Compute                 dst_ns[23:21] dst_iter[20:16] src1_ns[15:13]
                        src1_iter[12:8] src2_ns[7:5] src2_iter[4:0]
Loop                    loop_id[23:21] x[20:16] immediate[15:0]
Data transformation     src_dst[23:21] dim_idx[20:16] immediate[15:0]
Off-chip data movement  func2[23:21] loop_idx[20:16] immediate[15:0]
======================  ==========================================================
"""

from __future__ import annotations

from .opcodes import Opcode

_MASK4 = 0xF
_MASK3 = 0x7
_MASK5 = 0x1F
_MASK16 = 0xFFFF

#: Opcodes whose low 16 bits are a (possibly signed) immediate.
_IMMEDIATE_OPCODES = frozenset({
    Opcode.SYNC,
    Opcode.ITERATOR_CONFIG,
    Opcode.DATATYPE_CONFIG,
    Opcode.LOOP,
    Opcode.PERMUTE,
    Opcode.DATATYPE_CAST,
    Opcode.TILE_LD_ST,
})

_COMPUTE_OPCODES = frozenset({Opcode.ALU, Opcode.CALCULUS, Opcode.COMPARISON})


class EncodingError(ValueError):
    """A field value does not fit its instruction-word slot."""


def _check(value: int, bits: int, field: str) -> int:
    if not 0 <= value < (1 << bits):
        raise EncodingError(f"{field}={value} does not fit in {bits} bits")
    return value


def encode_imm16(value: int) -> int:
    """Two's-complement 16-bit immediate field."""
    if not -(1 << 15) <= value < (1 << 16):
        raise EncodingError(f"immediate {value} does not fit in 16 bits")
    return value & _MASK16


def decode_imm16(field: int, signed: bool = True) -> int:
    if signed and field >= (1 << 15):
        return field - (1 << 16)
    return field


def pack_common(opcode: int, func: int, a3: int, b5: int, imm16: int) -> int:
    """Generic <op, func, 3-bit, 5-bit, 16-bit immediate> layout."""
    word = (_check(opcode, 4, "opcode") << 28) | (_check(func, 4, "func") << 24)
    word |= _check(a3, 3, "field3") << 21
    word |= _check(b5, 5, "field5") << 16
    word |= _check(imm16, 16, "imm16")
    return word


def pack_compute(opcode: int, func: int, dst_ns: int, dst_iter: int,
                 src1_ns: int, src1_iter: int, src2_ns: int, src2_iter: int) -> int:
    word = (_check(opcode, 4, "opcode") << 28) | (_check(func, 4, "func") << 24)
    word |= _check(dst_ns, 3, "dst_ns") << 21
    word |= _check(dst_iter, 5, "dst_iter") << 16
    word |= _check(src1_ns, 3, "src1_ns") << 13
    word |= _check(src1_iter, 5, "src1_iter") << 8
    word |= _check(src2_ns, 3, "src2_ns") << 5
    word |= _check(src2_iter, 5, "src2_iter")
    return word


def unpack_fields(word: int) -> dict:
    """Decode a 32-bit word into raw fields keyed by layout role."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"word {word:#x} is not a 32-bit value")
    opcode = Opcode((word >> 28) & _MASK4)
    func = (word >> 24) & _MASK4
    fields = {"opcode": opcode, "func": func}
    if opcode in _COMPUTE_OPCODES:
        fields.update(
            dst_ns=(word >> 21) & _MASK3,
            dst_iter=(word >> 16) & _MASK5,
            src1_ns=(word >> 13) & _MASK3,
            src1_iter=(word >> 8) & _MASK5,
            src2_ns=(word >> 5) & _MASK3,
            src2_iter=word & _MASK5,
        )
    else:
        fields.update(
            field3=(word >> 21) & _MASK3,
            field5=(word >> 16) & _MASK5,
            imm16=word & _MASK16,
        )
    return fields


def is_compute_opcode(opcode: Opcode) -> bool:
    return opcode in _COMPUTE_OPCODES


def has_immediate(opcode: Opcode) -> bool:
    return opcode in _IMMEDIATE_OPCODES
