"""Two-way textual assembly for the Tandem ISA.

The disassembler (:meth:`TandemProgram.disassemble`) prints one
instruction per line; this module parses that syntax back into
instructions, so programs can be written, patched, and inspected as
text. Grammar (one instruction per line, ``#`` comments):

    OPCODE.FUNC dstNS[itN], srcNS[itN], srcNS[itN]     # compute
    OPCODE.FUNC f3=<int> f5=<int> imm=<int>            # everything else

Example::

    ITERATOR_CONFIG.BASE_ADDR f3=0 f5=0 imm=128
    ITERATOR_CONFIG.STRIDE    f3=0 f5=0 imm=1
    LOOP.SET_ITER             f3=0 f5=0 imm=64
    LOOP.SET_NUM_INST         f3=0 f5=0 imm=1
    ALU.ADD IBUF1[it0], IBUF1[it0], IMM[it1]
"""

from __future__ import annotations

import re
from typing import List, Optional

from .encoding import is_compute_opcode
from .instructions import Instruction, Operand
from .opcodes import FUNC_ENUMS, Namespace, Opcode
from .program import TandemProgram


class AssemblyError(ValueError):
    """Malformed assembly text."""


_OPERAND_RE = re.compile(r"^(?P<ns>[A-Z0-9]+)\[it(?P<idx>\d+)\]$")
_FIELD_RE = re.compile(r"^(?P<key>f3|f5|imm)=(?P<value>-?\d+)$")


def _parse_mnemonic(token: str, line_no: int) -> tuple:
    if "." not in token:
        raise AssemblyError(f"line {line_no}: expected OPCODE.FUNC, got {token!r}")
    op_name, func_name = token.split(".", 1)
    try:
        opcode = Opcode[op_name]
    except KeyError:
        raise AssemblyError(f"line {line_no}: unknown opcode {op_name!r}") from None
    enum = FUNC_ENUMS[opcode]
    try:
        func = int(enum[func_name])
    except KeyError:
        if func_name.startswith("func") and func_name[4:].isdigit():
            func = int(func_name[4:])
        else:
            raise AssemblyError(
                f"line {line_no}: unknown func {func_name!r} for {op_name}"
            ) from None
    return opcode, func


def _parse_operand(token: str, line_no: int) -> Operand:
    match = _OPERAND_RE.match(token.strip())
    if not match:
        raise AssemblyError(
            f"line {line_no}: expected NS[itN] operand, got {token!r}")
    try:
        ns = Namespace[match.group("ns")]
    except KeyError:
        raise AssemblyError(
            f"line {line_no}: unknown namespace {match.group('ns')!r}") from None
    return Operand(ns, int(match.group("idx")))


def parse_line(line: str, line_no: int = 0) -> Optional[Instruction]:
    """Parse one line; returns None for blanks and comments."""
    # Strip an optional "PC: WORD" prefix emitted by the disassembler.
    line = re.sub(r"^\s*\d+:\s*[0-9a-fA-F]{8}\s+", "", line)
    line = line.split("#", 1)[0].strip()
    if not line:
        return None
    head, _, rest = line.partition(" ")
    opcode, func = _parse_mnemonic(head, line_no)
    rest = rest.strip()
    if is_compute_opcode(opcode):
        operands = [tok for tok in rest.split(",") if tok.strip()]
        if len(operands) not in (2, 3):
            raise AssemblyError(
                f"line {line_no}: compute instruction needs 2-3 operands")
        parsed = [_parse_operand(tok, line_no) for tok in operands]
        src2 = parsed[2] if len(parsed) == 3 else None
        return Instruction(opcode, func, dst=parsed[0], src1=parsed[1],
                           src2=src2)
    fields = {"f3": 0, "f5": 0, "imm": 0}
    for token in rest.split():
        match = _FIELD_RE.match(token)
        if not match:
            raise AssemblyError(f"line {line_no}: bad field {token!r}")
        fields[match.group("key")] = int(match.group("value"))
    return Instruction(opcode, func, field3=fields["f3"],
                       field5=fields["f5"], imm=fields["imm"])


def assemble(text: str, name: str = "asm") -> TandemProgram:
    """Assemble a program from text (disassembler output is accepted)."""
    program = TandemProgram(name)
    for line_no, line in enumerate(text.splitlines(), start=1):
        inst = parse_line(line, line_no)
        if inst is not None:
            program.append(inst)
    return program


def assembly_roundtrip(program: TandemProgram) -> TandemProgram:
    """Disassemble then re-assemble (tests use this as an invariant)."""
    return assemble(program.disassemble(), name=f"{program.name}_rt")
