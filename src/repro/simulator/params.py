"""Microarchitectural and technology parameters for the simulator.

Defaults reproduce Table 3 (32 lanes, 128 KB Interim BUF 1&2, INT32 ALUs,
1 GHz) plus energy constants in the style of CACTI-P / 65 nm estimates.
The energy constants are calibrated so the component breakdown lands in
the neighbourhood the paper reports in Figure 25 (DRAM ~31 %, on-chip
SRAM ~13 %, ALU ~12 %, loop + address logic ~40 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TandemParams:
    """The Tandem Processor core (Table 3, right column)."""

    lanes: int = 32
    interim_buf_kb: int = 64      # each of Interim BUF 1 and 2
    obuf_kb: int = 128            # GEMM accumulator buffer it takes ownership of
    imm_slots: int = 32
    pipeline_depth: int = 8       # fetch..writeback stages (Figure 9)
    frequency_hz: float = 1.0e9
    max_loop_levels: int = 8
    iter_table_entries: int = 32

    @property
    def interim_buf_words(self) -> int:
        return self.interim_buf_kb * 1024 // 4

    @property
    def obuf_words(self) -> int:
        return self.obuf_kb * 1024 // 4


@dataclass(frozen=True)
class DramParams:
    """Off-chip memory attached to the Data Access Engine."""

    bandwidth_bytes_per_s: float = 32.0e9   # LPDDR-class NPU memory system
    latency_cycles: int = 100               # first-access latency per tile burst
    energy_pj_per_byte: float = 22.6        # DRAM access energy (CACTI-P class)


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies in picojoules (65 nm, CACTI-P style).

    ``loop_addr_pj_per_issue`` covers the Code Repeater plus the strided
    address calculation front-end: per issued vector instruction it
    updates up to eight loop counters and produces three scratchpad
    addresses for all lanes — the paper measures this logic at ~40 % of
    Tandem energy (Figure 25), the single largest component.
    """

    spad_pj_per_word: float = 4.56          # 32-bit scratchpad read or write
    alu_pj_per_lane_op: float = 10.8        # one INT32 primitive op (mul-capable)
    loop_addr_pj_per_issue: float = 439.0   # per vector instruction issued
    decode_pj_per_inst: float = 18.0        # decode of one instruction word
    pipeline_pj_per_issue: float = 45.0     # muxing + pipeline registers
    regfile_pj_per_word: float = 2.4        # only in VPU-emulation overlays


@dataclass(frozen=True)
class VpuOverlay:
    """Overheads toggled on to emulate a conventional vector unit.

    Used for both the Figure 6 what-if ablations (adding one conventional
    overhead back at a time) and the full TPU+VPU baseline (Figure 18/19).
    With every flag False this is the Tandem Processor itself.
    """

    regfile_loads: bool = False        # LD/ST through a vector register file
    conventional_loops: bool = False   # branch-based loop management
    explicit_address_calc: bool = False  # address arithmetic as instructions
    fifo_coupling: bool = False        # GEMM->VPU via FIFOs, not OBUF ownership
    special_functions: bool = False    # single-instruction exp/sqrt/...

    #: Extra instructions per two-operand compute instruction, Section 3.2:
    #: "three extra instructions would be required solely for address
    #: calculation".
    ADDR_CALC_INSTS: int = 3
    #: Vector register file traffic per compute instruction: two loads and
    #: one store (Section 3.1).
    REGFILE_LD_ST: int = 3
    #: Branch-based loop management per (vectorized) innermost
    #: iteration: increment, compare, branch, plus the address-increment
    #: bookkeeping the Code Repeater absorbs in hardware.
    LOOP_BRANCH_INSTS: int = 5


@dataclass(frozen=True)
class SimParams:
    """Bundle handed to the machine/analytic models."""

    tandem: TandemParams = field(default_factory=TandemParams)
    dram: DramParams = field(default_factory=DramParams)
    energy: EnergyParams = field(default_factory=EnergyParams)
    overlay: VpuOverlay = field(default_factory=VpuOverlay)

    def with_overlay(self, overlay: VpuOverlay) -> "SimParams":
        return SimParams(tandem=self.tandem, dram=self.dram,
                         energy=self.energy, overlay=overlay)
