"""Cycle-level + functional simulator of the Tandem Processor."""

from .alu import ALU_OPS, CALCULUS_OPS, COMPARISON_OPS, cast_value, wrap32
from .analytic import AnalyticNest, ProgramMeta, estimate, scale_result
from .dae import DataAccessEngine, DramStore, TileTransfer
from .energy import EnergyLedger
from .iterators import IteratorEntry, IteratorError, IteratorTable
from .machine import (
    MachineError,
    MachineResult,
    PermuteBinding,
    SyncEvent,
    TandemMachine,
    charge_nest,
)
from .params import DramParams, EnergyParams, SimParams, TandemParams, VpuOverlay
from .pipeline import BodyOpMeta, NestTiming, nest_points, nest_timing
from .scratchpad import Scratchpad, ScratchpadError, ScratchpadFile

__all__ = [
    "ALU_OPS",
    "AnalyticNest",
    "BodyOpMeta",
    "CALCULUS_OPS",
    "COMPARISON_OPS",
    "DataAccessEngine",
    "DramParams",
    "DramStore",
    "EnergyLedger",
    "EnergyParams",
    "IteratorEntry",
    "IteratorError",
    "IteratorTable",
    "MachineError",
    "MachineResult",
    "NestTiming",
    "PermuteBinding",
    "ProgramMeta",
    "Scratchpad",
    "ScratchpadError",
    "ScratchpadFile",
    "SimParams",
    "SyncEvent",
    "TandemMachine",
    "TandemParams",
    "TileTransfer",
    "VpuOverlay",
    "cast_value",
    "charge_nest",
    "estimate",
    "nest_points",
    "nest_timing",
    "scale_result",
    "wrap32",
]
