"""Closed-form cycle/energy estimation from compiled-program metadata.

Full-network sweeps over the seven benchmarks would take hours through
the detailed interpreter; the analytic model computes the same nest
timing (literally the same :func:`~repro.simulator.pipeline.nest_timing`
and :func:`~repro.simulator.machine.charge_nest` code paths) from static
metadata the compiler records while lowering. Tests validate analytic vs
detailed agreement on real programs to within the paper's own 5 %
simulator-vs-RTL margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .energy import EnergyLedger
from .machine import MachineResult, charge_nest
from .params import SimParams
from .pipeline import BodyOpMeta, nest_timing


@dataclass(frozen=True)
class AnalyticNest:
    """Static view of one lowered loop nest."""

    counts: Sequence[int]
    body: Sequence[BodyOpMeta]


@dataclass
class ProgramMeta:
    """Everything the analytic model needs about one tile's program."""

    nests: List[AnalyticNest] = field(default_factory=list)
    config_instructions: int = 0     # iterator/loop/imm/sync/cast configs
    dram_loads: List[int] = field(default_factory=list)    # bytes per LD
    dram_stores: List[int] = field(default_factory=list)   # bytes per ST
    permute_words: int = 0
    permute_count: int = 0
    permute_cross_lane: bool = True

    @property
    def body_instructions(self) -> int:
        return sum(len(nest.body) for nest in self.nests)

    @property
    def start_instructions(self) -> int:
        """LD/ST/PERMUTE START words (timed as transfers, not config)."""
        return (len(self.dram_loads) + len(self.dram_stores)
                + self.permute_count)


def estimate(meta: ProgramMeta, params: SimParams) -> MachineResult:
    """Analytic counterpart of :meth:`TandemMachine.run` for one tile."""
    result = MachineResult()
    energy = params.energy
    tp = params.tandem

    # Configuration / sync instructions: one decode cycle each; START
    # words decode too but their time is the transfer/permute itself.
    total_insts = (meta.config_instructions + meta.body_instructions
                   + meta.start_instructions)
    result.instructions_decoded = total_insts
    result.cycles += meta.config_instructions
    result.config_cycles += meta.config_instructions
    result.energy.other_pj += total_insts * energy.decode_pj_per_inst

    for nest in meta.nests:
        timing = nest_timing(nest.counts, nest.body, tp, params.overlay)
        charge_nest(timing, params, result)

    # Data Access Engine transfers: the access latency is exposed once
    # per program; queued transfers pipeline behind it.
    bytes_per_cycle = params.dram.bandwidth_bytes_per_s / tp.frequency_hz
    transfers = list(meta.dram_loads) + list(meta.dram_stores)
    if transfers:
        result.cycles += params.dram.latency_cycles
        result.dae_cycles += params.dram.latency_cycles
        # One vectorized ceil over the whole transfer list; np.ceil on
        # float64 matches math.ceil of the same float division exactly.
        cycles = int(np.ceil(
            np.asarray(transfers, dtype=np.float64) / bytes_per_cycle).sum())
        result.cycles += cycles
        result.dae_cycles += cycles
        result.energy.dram_pj += sum(
            nbytes * params.dram.energy_pj_per_byte for nbytes in transfers)

    # Permute engine.
    if meta.permute_words:
        issues = math.ceil(meta.permute_words / tp.lanes)
        cycles = issues * (2 if meta.permute_cross_lane else 1)
        cycles += tp.pipeline_depth
        result.cycles += cycles
        result.permute_cycles += cycles
        result.energy.spad_pj += 2 * meta.permute_words * energy.spad_pj_per_word
        result.energy.loop_addr_pj += issues * energy.loop_addr_pj_per_issue
    return result


def scale_result(result: MachineResult, tiles: int) -> MachineResult:
    """Replicate a per-tile estimate across ``tiles`` identical tiles."""
    scaled = MachineResult()
    scaled.cycles = result.cycles * tiles
    scaled.compute_cycles = result.compute_cycles * tiles
    scaled.dae_cycles = result.dae_cycles * tiles
    scaled.config_cycles = result.config_cycles * tiles
    scaled.permute_cycles = result.permute_cycles * tiles
    scaled.vector_issues = result.vector_issues * tiles
    scaled.scalar_ops = result.scalar_ops * tiles
    scaled.instructions_decoded = result.instructions_decoded * tiles
    scaled.energy = result.energy.scaled(tiles)
    return scaled
