"""Iterator Tables: the specialized on-chip data access mechanism.

Section 3.2 / Figure 7: each namespace has an Iterator Table whose
entries hold an (offset, stride-per-loop-level) tuple. A compute operand
``(ns id, iter idx)`` selects one entry; the front-end computes
``offset + sum(stride[l] * loop_counter[l])`` in its own pipeline stage,
in parallel with compute — no address-arithmetic instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..isa import Namespace


class IteratorError(ValueError):
    """Bad iterator configuration (index overflow, missing entry)."""


@dataclass
class IteratorEntry:
    """One Iterator Table entry: base offset + one stride per loop level.

    Strides are configured by consecutive ``ITERATOR_CONFIG.STRIDE``
    instructions, outermost loop level first (the compiler emits them in
    the same order it emits ``LOOP.SET_ITER``).
    """

    base: int = 0
    strides: List[int] = field(default_factory=list)

    def address(self, counters: Sequence[int]) -> int:
        addr = self.base
        for stride, counter in zip(self.strides, counters):
            addr += stride * counter
        return addr

    @property
    def innermost_stride(self) -> int:
        return self.strides[-1] if self.strides else 0


class IteratorTable:
    """The per-namespace table of iterator entries."""

    def __init__(self, namespace: Namespace, entries: int):
        self.namespace = namespace
        self.capacity = entries
        self.entries: Dict[int, IteratorEntry] = {}

    def _entry(self, idx: int) -> IteratorEntry:
        if not 0 <= idx < self.capacity:
            raise IteratorError(
                f"{self.namespace.name}: iterator index {idx} exceeds the "
                f"{self.capacity}-entry table (5-bit field)"
            )
        return self.entries.setdefault(idx, IteratorEntry())

    def set_base(self, idx: int, base: int) -> None:
        entry = self._entry(idx)
        entry.base = base
        entry.strides.clear()

    def push_stride(self, idx: int, stride: int) -> None:
        self._entry(idx).strides.append(stride)

    def lookup(self, idx: int) -> IteratorEntry:
        if idx not in self.entries:
            raise IteratorError(
                f"{self.namespace.name}: iterator {idx} used before configuration"
            )
        return self.entries[idx]

    def clear(self) -> None:
        self.entries.clear()


def build_iterator_tables(entries: int) -> Dict[Namespace, IteratorTable]:
    return {ns: IteratorTable(ns, entries) for ns in Namespace}
