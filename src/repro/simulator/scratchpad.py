"""Software-managed on-chip scratchpads ("Namespaces", Section 4.1).

The Tandem Processor has no register file and no cache: every operand
read or write lands in one of these single-level buffers. Access counts
feed the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..isa import Namespace


class ScratchpadError(IndexError):
    """Out-of-bounds scratchpad access (compiler/tiling bug)."""


class Scratchpad:
    """One namespace: a flat array of 32-bit words with access counting."""

    def __init__(self, name: str, words: int):
        self.name = name
        self.words = words
        self.data = np.zeros(words, dtype=np.int64)
        self.reads = 0
        self.writes = 0

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.words:
            raise ScratchpadError(
                f"{self.name}: address {addr} out of range [0, {self.words})"
            )

    def read(self, addr: int) -> int:
        """Read one word at ``addr`` (counted for energy)."""
        self._check(addr)
        self.reads += 1
        return int(self.data[addr])

    def write(self, addr: int, value: int) -> None:
        """Write one word at ``addr`` (counted for energy)."""
        self._check(addr)
        self.writes += 1
        self.data[addr] = _wrap_int32(value)

    # Bulk views used by the Data Access Engine and the GEMM unit; the
    # caller accounts for accesses (DAE traffic is DRAM-side, GEMM-side
    # writes are charged to the GEMM unit's energy model).
    def load_block(self, base: int, values: np.ndarray) -> None:
        """Bulk-load values starting at ``base`` (one count per word)."""
        end = base + values.size
        if end > self.words:
            raise ScratchpadError(
                f"{self.name}: block [{base}, {end}) exceeds {self.words} words"
            )
        self.data[base:end] = values.reshape(-1).astype(np.int64)

    def store_block(self, base: int, count: int) -> np.ndarray:
        """Bulk-read ``count`` words starting at ``base``."""
        end = base + count
        if end > self.words:
            raise ScratchpadError(
                f"{self.name}: block [{base}, {end}) exceeds {self.words} words"
            )
        return self.data[base:end].copy()

    def reset_counters(self) -> None:
        """Zero the read/write access counters."""
        self.reads = 0
        self.writes = 0


def _wrap_int32(value: int) -> int:
    """INT32 two's-complement wraparound (the ALU datapath width)."""
    value &= 0xFFFFFFFF
    if value >= 1 << 31:
        value -= 1 << 32
    return value


@dataclass
class ScratchpadFile:
    """All namespaces of one Tandem Processor instance."""

    pads: Dict[Namespace, Scratchpad]

    @classmethod
    def build(cls, interim_words: int, obuf_words: int, imm_slots: int,
              vmem_words: int) -> "ScratchpadFile":
        """The standard scratchpad set for one configuration."""
        return cls({
            Namespace.IBUF1: Scratchpad("IBUF1", interim_words),
            Namespace.IBUF2: Scratchpad("IBUF2", interim_words),
            Namespace.OBUF: Scratchpad("OBUF", obuf_words),
            Namespace.IMM: Scratchpad("IMM", imm_slots),
            Namespace.VMEM: Scratchpad("VMEM", vmem_words),
        })

    def __getitem__(self, ns: Namespace) -> Scratchpad:
        return self.pads[ns]

    def total_reads(self) -> int:
        """Reads summed over every scratchpad."""
        return sum(p.reads for p in self.pads.values())

    def total_writes(self) -> int:
        """Writes summed over every scratchpad."""
        return sum(p.writes for p in self.pads.values())

    def reset_counters(self) -> None:
        """Zero every scratchpad's access counters."""
        for pad in self.pads.values():
            pad.reset_counters()
