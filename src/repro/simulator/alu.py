"""INT32 lane ALU semantics (Section 3.4).

One function per primitive; all arithmetic wraps to 32 bits like the RTL
datapath. Multiplies produce a 64-bit internal product (Python ints are
exact) and the *compiler* is responsible for shifting products back into
range — mirroring how fixed-point non-GEMM kernels are generated.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..isa import AluFunc, CalculusFunc, ComparisonFunc

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


def wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    if value >= 1 << 31:
        value -= 1 << 32
    return value


def _div(a: int, b: int) -> int:
    """Truncating signed division; divide-by-zero saturates like the RTL."""
    if b == 0:
        return INT32_MAX if a >= 0 else INT32_MIN
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _rshift(a: int, b: int) -> int:
    """Arithmetic right shift (rounding toward negative infinity)."""
    return a >> (b & 31)


def _lshift(a: int, b: int) -> int:
    return wrap32(a << (b & 31))


ALU_OPS: Dict[AluFunc, Callable[[int, int], int]] = {
    AluFunc.ADD: lambda a, b: wrap32(a + b),
    AluFunc.SUB: lambda a, b: wrap32(a - b),
    AluFunc.MUL: lambda a, b: a * b,  # 64-bit product; writeback wraps
    AluFunc.DIV: _div,
    AluFunc.MAX: max,
    AluFunc.MIN: min,
    AluFunc.RSHIFT: _rshift,
    AluFunc.LSHIFT: _lshift,
    AluFunc.NOT: lambda a, _b: wrap32(~a),
    AluFunc.AND: lambda a, b: a & b,
    AluFunc.OR: lambda a, b: a | b,
    AluFunc.MOVE: lambda a, _b: a,
}

CALCULUS_OPS: Dict[CalculusFunc, Callable[[int], int]] = {
    CalculusFunc.ABS: lambda a: wrap32(abs(a)),
    CalculusFunc.SIGN: lambda a: (a > 0) - (a < 0),
    CalculusFunc.NEG: lambda a: wrap32(-a),
}

COMPARISON_OPS: Dict[ComparisonFunc, Callable[[int, int], int]] = {
    ComparisonFunc.EQ: lambda a, b: int(a == b),
    ComparisonFunc.NE: lambda a, b: int(a != b),
    ComparisonFunc.GT: lambda a, b: int(a > b),
    ComparisonFunc.GE: lambda a, b: int(a >= b),
    ComparisonFunc.LT: lambda a, b: int(a < b),
    ComparisonFunc.LE: lambda a, b: int(a <= b),
}


def cast_value(value: int, target: str) -> int:
    """DATATYPE_CAST semantics: saturate into the target fixed-point width."""
    bits = {"fxp32": 32, "fxp16": 16, "fxp8": 8, "fxp4": 4}[target]
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return min(max(value, lo), hi)
