"""Vectorized (instruction-major) nest execution for the machine.

The detailed machine replays loop bodies point-major, exactly like the
Code Repeater — bit-exact but slow in Python. Because the compiler's
dependency relaxation (Section 6) makes body instructions point-wise
independent, a nest can instead be executed *instruction-major* with
numpy over the whole iteration grid. This module implements that fast
path with a hazard check that falls back to the scalar interpreter when
independence cannot be proven, so results are always identical.

Enabled with ``TandemMachine(..., fast=True)``; equivalence against the
scalar path is asserted by tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.integer_ops import (
    v_add,
    v_and,
    v_div,
    v_lshift,
    v_max,
    v_min,
    v_mul,
    v_or,
    v_rshift,
    v_sub,
    w32,
)
from ..isa import AluFunc, CalculusFunc, ComparisonFunc, Instruction, Opcode

_BINARY = {
    AluFunc.ADD: v_add, AluFunc.SUB: v_sub, AluFunc.MUL: v_mul,
    AluFunc.DIV: v_div, AluFunc.MAX: v_max, AluFunc.MIN: v_min,
    AluFunc.RSHIFT: v_rshift, AluFunc.LSHIFT: v_lshift,
    AluFunc.AND: v_and, AluFunc.OR: v_or,
}

#: Accumulation reducers for read-modify-write destinations.
_REDUCERS = {
    AluFunc.ADD: lambda x, axes: x.sum(axis=axes),
    AluFunc.MAX: lambda x, axes: x.max(axis=axes),
    AluFunc.MIN: lambda x, axes: x.min(axis=axes),
}


def _address_grid(entry, counts: Sequence[int]) -> np.ndarray:
    """Addresses over the whole loop grid, shaped like ``counts``."""
    addr = np.full(tuple(counts), entry.base, dtype=np.int64)
    for level, count in enumerate(counts):
        stride = entry.strides[level] if level < len(entry.strides) else 0
        if stride:
            shape = [1] * len(counts)
            shape[level] = count
            addr = addr + stride * np.arange(count).reshape(shape)
    return addr


def _walk_key(entry, levels: int) -> Tuple:
    strides = tuple(entry.strides[:levels]) + (0,) * max(
        0, levels - len(entry.strides))
    return (entry.base, strides)


class FastNestExecutor:
    """Executes one nest instruction-major; ``supported`` gates use."""

    def __init__(self, machine, loops: List[Tuple[int, int]],
                 body: List[Instruction]):
        self.machine = machine
        self.counts = [count for _, count in loops] or [1]
        self.body = body
        self.levels = len(self.counts)

    # -- legality ----------------------------------------------------------------
    def _entry(self, operand):
        return self.machine.iter_tables[operand.ns].lookup(operand.iter_idx)

    def _reads_of(self, inst: Instruction):
        if self.machine._is_unary(inst):
            return [inst.src1]
        return [inst.src1, inst.src2]

    def _is_duplicate_dst(self, entry) -> bool:
        return any(
            count > 1 and (level >= len(entry.strides)
                           or entry.strides[level] == 0)
            for level, count in enumerate(self.counts))

    def supported(self) -> bool:
        """Instruction-major == point-major for this nest?

        Safe when, for every (writer, reader) statement pair touching
        the same buffer, the reader's walk equals the writer's walk and
        that walk is injective over the iteration grid (each point a
        distinct element): then the value a point reads is produced by
        the same ordered predecessor in both schedules. Commutative
        stride-0 accumulations (ADD/MAX/MIN/MACC into a shared
        destination) are folded with a reduction instead, provided no
        other statement reads the partially-accumulated buffer.
        """
        infos = []
        for inst in self.body:
            dst_entry = self._entry(inst.dst)
            duplicate = self._is_duplicate_dst(dst_entry)
            infos.append((inst, dst_entry, duplicate))
            if duplicate:
                if inst.opcode != Opcode.ALU:
                    return False
                func = AluFunc(inst.func)
                if func == AluFunc.MACC:
                    continue
                if func not in _REDUCERS:
                    return False
                src1_key = _walk_key(self._entry(inst.src1), self.levels)
                if (inst.src1.ns, src1_key) != (
                        inst.dst.ns, _walk_key(dst_entry, self.levels)):
                    return False

        for w, (writer, w_entry, w_dup) in enumerate(infos):
            w_key = (writer.dst.ns, _walk_key(w_entry, self.levels))
            for r, (reader, _r_entry, _r_dup) in enumerate(infos):
                if r == w:
                    continue
                for read in self._reads_of(reader):
                    if read is None or read.ns != writer.dst.ns:
                        continue
                    read_entry = self._entry(read)
                    read_key = (read.ns, _walk_key(read_entry, self.levels))
                    if read_key[1][0] != w_key[1][0]:
                        continue  # disjoint allocations
                    if w_dup:
                        # Reading a partially-accumulated buffer is
                        # schedule-dependent, except the accumulation's
                        # own read-modify-write source.
                        if not (r == w and read in (reader.src1, reader.src2)):
                            return False
                    elif read_key != w_key:
                        return False  # same buffer, different walk
        return True

    # -- execution -----------------------------------------------------------------
    def run(self) -> None:
        for inst in self.body:
            self._execute(inst)

    def _load(self, operand) -> np.ndarray:
        entry = self._entry(operand)
        addr = _address_grid(entry, self.counts)
        pad = self.machine.pads[operand.ns]
        pad.reads += addr.size
        return pad.data[addr.reshape(-1)].reshape(addr.shape)

    def _store(self, operand, values: np.ndarray) -> None:
        entry = self._entry(operand)
        addr = _address_grid(entry, self.counts)
        pad = self.machine.pads[operand.ns]
        pad.writes += addr.size
        values = w32(values)
        if self.machine.cast_mode is not None:
            from .alu import cast_value
            bits = {"fxp16": 16, "fxp8": 8, "fxp4": 4}[self.machine.cast_mode]
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            values = np.clip(values, lo, hi)
        pad.data[addr.reshape(-1)] = np.broadcast_to(
            values, addr.shape).reshape(-1)

    def _reduced_axes(self, operand) -> Tuple[int, ...]:
        entry = self._entry(operand)
        return tuple(
            level for level, count in enumerate(self.counts)
            if count > 1 and (level >= len(entry.strides)
                              or entry.strides[level] == 0))

    def _execute(self, inst: Instruction) -> None:
        machine = self.machine
        if inst.opcode == Opcode.CALCULUS:
            x = self._load(inst.src1)
            func = CalculusFunc(inst.func)
            if func == CalculusFunc.ABS:
                out = w32(np.abs(x))
            elif func == CalculusFunc.SIGN:
                out = np.sign(x).astype(np.int64)
            else:
                out = w32(-x)
            self._store(inst.dst, out)
            return
        if inst.opcode == Opcode.COMPARISON:
            a = self._load(inst.src1)
            b = self._load(inst.src2)
            func = ComparisonFunc(inst.func)
            table = {
                ComparisonFunc.EQ: a == b, ComparisonFunc.NE: a != b,
                ComparisonFunc.GT: a > b, ComparisonFunc.GE: a >= b,
                ComparisonFunc.LT: a < b, ComparisonFunc.LE: a <= b,
            }
            self._store(inst.dst, table[func].astype(np.int64))
            return

        func = AluFunc(inst.func)
        if func == AluFunc.MOVE:
            self._store(inst.dst, self._load(inst.src1))
            return
        if func == AluFunc.NOT:
            self._store(inst.dst, w32(~self._load(inst.src1)))
            return
        if func == AluFunc.COND_MOVE:
            flags = self._load(inst.src2) != 0
            entry = self._entry(inst.dst)
            addr = _address_grid(entry, self.counts).reshape(-1)
            values = np.broadcast_to(self._load(inst.src1),
                                     tuple(self.counts)).reshape(-1)
            mask = np.broadcast_to(flags, tuple(self.counts)).reshape(-1)
            pad = machine.pads[inst.dst.ns]
            pad.writes += int(mask.sum())
            pad.data[addr[mask]] = w32(values)[mask]
            return

        reduced = self._reduced_axes(inst.dst)
        if reduced and func == AluFunc.MACC:
            partial = self._load(inst.src1) * self._load(inst.src2)
            summed = partial.sum(axis=reduced)
            current = self._load_reduced(inst.dst, reduced)
            self._store_reduced(inst.dst, w32(current + summed), reduced)
            return
        if reduced and func in _REDUCERS:
            # Read-modify-write accumulation: combine src2 over the
            # reduced axes, seeded with the current destination values.
            src2 = self._load(inst.src2)
            current = self._load_reduced(inst.dst, reduced)
            if func == AluFunc.ADD:
                out = w32(current + src2.sum(axis=reduced))
            elif func == AluFunc.MAX:
                out = np.maximum(current, src2.max(axis=reduced))
            else:
                out = np.minimum(current, src2.min(axis=reduced))
            self._store_reduced(inst.dst, out, reduced)
            return

        a = self._load(inst.src1)
        if func == AluFunc.MACC:
            b = self._load(inst.src2)
            self._store(inst.dst, w32(self._load(inst.dst) + a * b))
            return
        b = self._load(inst.src2)
        self._store(inst.dst, _BINARY[func](a, b))

    def _load_reduced(self, operand, reduced: Tuple[int, ...]) -> np.ndarray:
        entry = self._entry(operand)
        counts = [1 if level in reduced else count
                  for level, count in enumerate(self.counts)]
        addr = _address_grid(entry, counts)
        pad = self.machine.pads[operand.ns]
        pad.reads += addr.size
        return pad.data[addr.reshape(-1)].reshape(
            tuple(c for level, c in enumerate(counts)
                  if level not in reduced))

    def _store_reduced(self, operand, values: np.ndarray,
                       reduced: Tuple[int, ...]) -> None:
        entry = self._entry(operand)
        counts = [1 if level in reduced else count
                  for level, count in enumerate(self.counts)]
        addr = _address_grid(entry, counts)
        pad = self.machine.pads[operand.ns]
        pad.writes += addr.size
        values = w32(values)
        if self.machine.cast_mode is not None:
            bits = {"fxp16": 16, "fxp8": 8, "fxp4": 4}[self.machine.cast_mode]
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            values = np.clip(values, lo, hi)
        pad.data[addr.reshape(-1)] = values.reshape(-1)
