"""Vectorized (instruction-major) nest execution for the machine.

The detailed machine replays loop bodies point-major, exactly like the
Code Repeater — bit-exact but slow in Python. Because the compiler's
dependency relaxation (Section 6) makes body instructions point-wise
independent, a nest can instead be executed *instruction-major* with
numpy over the whole iteration grid. This module implements that fast
path with a hazard check that falls back to the scalar interpreter when
independence cannot be proven, so results are always identical.

Three writer classes are proven safe (``supported``):

* **injective** destinations (each grid point writes a distinct
  element) — readers must share the writer's walk;
* **reductions** (MACC / ADD / MAX / MIN into a duplicated destination)
  — folded over the duplicated levels; trailing consumers may read the
  accumulator when their own duplicated levels cover the reduction's,
  so last-wins stores observe only the fully-reduced value;
* **streamed temporaries** (any other opcode writing a duplicated
  destination, e.g. a per-row scalar recomputed at every point of a
  softmax body) — the full per-point value grid is *forwarded* to later
  same-walk readers, and memory receives the last point's slice, which
  is exactly the point-major final state. A temporary may also be
  read-modify-written *within* one point (RMSNorm's shift / divide /
  scale chain through one scratch slot): the aliasing read is safe when
  an earlier statement already wrote this point's value on the same
  walk, because the forwarded grid is exact per point.

Enabled with ``TandemMachine(..., fast=True)``; equivalence against the
scalar path is asserted by tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.integer_ops import (
    v_add,
    v_and,
    v_div,
    v_lshift,
    v_max,
    v_min,
    v_mul,
    v_or,
    v_rshift,
    v_sub,
    w32,
)
from ..isa import AluFunc, CalculusFunc, ComparisonFunc, Instruction, Opcode

_BINARY = {
    AluFunc.ADD: v_add, AluFunc.SUB: v_sub, AluFunc.MUL: v_mul,
    AluFunc.DIV: v_div, AluFunc.MAX: v_max, AluFunc.MIN: v_min,
    AluFunc.RSHIFT: v_rshift, AluFunc.LSHIFT: v_lshift,
    AluFunc.AND: v_and, AluFunc.OR: v_or,
}

#: Accumulation reducers for read-modify-write destinations, with the
#: combining mode used to prove two same-buffer accumulations commute.
_REDUCERS = {
    AluFunc.ADD: lambda x, axes: x.sum(axis=axes),
    AluFunc.MAX: lambda x, axes: x.max(axis=axes),
    AluFunc.MIN: lambda x, axes: x.min(axis=axes),
}
_REDUCER_MODE = {AluFunc.ADD: "add", AluFunc.MAX: "max", AluFunc.MIN: "min"}

_INJECTIVE, _REDUCTION, _TEMP = "inj", "red", "temp"


def _address_grid(entry, counts: Sequence[int]) -> np.ndarray:
    """Addresses over the whole loop grid, shaped like ``counts``."""
    addr = np.full(tuple(counts), entry.base, dtype=np.int64)
    for level, count in enumerate(counts):
        stride = entry.strides[level] if level < len(entry.strides) else 0
        if stride:
            shape = [1] * len(counts)
            shape[level] = count
            addr = addr + stride * np.arange(count).reshape(shape)
    return addr


def _walk_key(entry, levels: int) -> Tuple:
    strides = tuple(entry.strides[:levels]) + (0,) * max(
        0, levels - len(entry.strides))
    return (entry.base, strides)


class FastNestExecutor:
    """Executes one nest instruction-major; ``supported`` gates use."""

    def __init__(self, machine, loops: List[Tuple[int, int]],
                 body: List[Instruction]):
        self.machine = machine
        self.counts = [count for _, count in loops] or [1]
        self.body = body
        self.levels = len(self.counts)
        #: (ns, walk-key) -> full per-point value grid of a streamed
        #: temporary, consumed by later same-walk loads in this nest.
        self._fwd: Dict[Tuple, np.ndarray] = {}

    # -- legality ----------------------------------------------------------------
    def _entry(self, operand):
        return self.machine.iter_tables[operand.ns].lookup(operand.iter_idx)

    def _reads_of(self, inst: Instruction):
        if self.machine._is_unary(inst):
            reads = [inst.src1]
        else:
            reads = [inst.src1, inst.src2]
        if inst.opcode == Opcode.ALU and inst.func == int(AluFunc.MACC):
            # MACC reads its destination as the accumulator.
            reads.append(inst.dst)
        return reads

    def _dup_levels(self, entry) -> Tuple[int, ...]:
        return tuple(
            level for level, count in enumerate(self.counts)
            if count > 1 and (level >= len(entry.strides)
                              or entry.strides[level] == 0))

    def _classify(self, inst: Instruction, dst_entry, dup: Tuple[int, ...]):
        """Writer class for a duplicated destination, or None if unsafe."""
        if inst.opcode == Opcode.ALU:
            func = AluFunc(inst.func)
            if func == AluFunc.MACC:
                return (_REDUCTION, "add")
            if func == AluFunc.COND_MOVE:
                # Predicated partial writes along duplicated levels keep
                # a point-order-dependent carry; not expressible here.
                return None
            if func in _REDUCER_MODE:
                src1_entry = self._entry(inst.src1)
                if (inst.src1.ns, _walk_key(src1_entry, self.levels)) == (
                        inst.dst.ns, _walk_key(dst_entry, self.levels)):
                    return (_REDUCTION, _REDUCER_MODE[func])
        # Every remaining compute opcode overwrites the destination with
        # a pure function of its sources: a streamed temporary.
        return (_TEMP, None)

    def supported(self) -> bool:
        """Instruction-major == point-major for this nest?

        The proof obligations, per writer class, are spelled out in the
        module docstring; this routine classifies every statement and
        rejects the nest on the first unprovable hazard.
        """
        infos = []
        forwarded: set = set()   # (ns, walk-key) of dup writers so far
        for inst in self.body:
            dst_entry = self._entry(inst.dst)
            dup = self._dup_levels(dst_entry)
            wclass, mode = _INJECTIVE, None
            if dup:
                classified = self._classify(inst, dst_entry, dup)
                if classified is None:
                    return False
                wclass, mode = classified
                acc_reads = ([inst.src1] if wclass == _REDUCTION
                             and inst.opcode == Opcode.ALU
                             and inst.func != int(AluFunc.MACC) else [])
                dst_key = _walk_key(dst_entry, self.levels)
                for read in self._reads_of(inst):
                    if read is None or read is inst.dst or read in acc_reads:
                        continue
                    if read.ns == inst.dst.ns and \
                            self._entry(read).base == dst_entry.base:
                        if wclass == _TEMP and \
                                _walk_key(self._entry(read),
                                          self.levels) == dst_key and \
                                (read.ns, dst_key) in forwarded:
                            # Same-point RMW chain on a streamed
                            # temporary: an earlier statement wrote this
                            # point's value on the same walk, so the
                            # forwarded grid the read observes is exact.
                            continue
                        # Otherwise the read observes the previous
                        # point's write: a loop-carried dependence.
                        return False
                forwarded.add((inst.dst.ns, dst_key))
            infos.append((inst, dst_entry, dup, wclass, mode))

        # Write-write hazards: two writers of one allocation must be the
        # same class on the same walk (and commuting, for reductions),
        # otherwise the final memory state depends on the schedule.
        for i, (wi, ei, _di, ci, mi) in enumerate(infos):
            ki = _walk_key(ei, self.levels)
            for wj, ej, _dj, cj, mj in infos[i + 1:]:
                if wj.dst.ns != wi.dst.ns or ej.base != ei.base:
                    continue
                if _walk_key(ej, self.levels) != ki or cj != ci or mj != mi:
                    return False

        # Group writers by allocation; the write-write rules above made
        # each group homogeneous (one walk, one class, one mode).
        groups: Dict[Tuple, Dict] = {}
        for i, (inst, entry, dup, wclass, _mode) in enumerate(infos):
            group = groups.setdefault((inst.dst.ns, entry.base), {
                "key": (inst.dst.ns, _walk_key(entry, self.levels)),
                "class": wclass, "dup": dup, "writers": []})
            group["writers"].append(i)

        tainted: List[int] = []
        for r, (reader, _r_entry, r_dup, r_class, _r_mode) in \
                enumerate(infos):
            for read in self._reads_of(reader):
                if read is None:
                    continue
                read_entry = self._entry(read)
                group = groups.get((read.ns, read_entry.base))
                if group is None:
                    continue  # nothing in this nest writes it
                if (read.ns, _walk_key(read_entry, self.levels)) != \
                        group["key"]:
                    return False  # same buffer, different walk
                writers = group["writers"]
                if not group["dup"]:
                    continue  # injective: any order matches
                if group["class"] == _REDUCTION:
                    if r in writers:
                        # Its own RMW source, or a commuting
                        # co-accumulation into the same buffer.
                        continue
                    # A trailing consumer of the accumulator is only
                    # final-state-correct after every accumulation, and
                    # only where its own duplicated levels cover the
                    # reduction's.
                    if r < max(writers) or r_class != _TEMP or \
                            not set(group["dup"]) <= set(r_dup):
                        return False
                    tainted.append(r)
                elif not any(w < r for w in writers):
                    # Streamed temporary never yet written this point:
                    # the read would observe the previous point's value
                    # (a loop-carried dependence). With a prior writer,
                    # the forwarded grid is exact per-point.
                    return False

        # A value computed from a fully-reduced accumulator is only
        # correct at the final point; nobody may consume it in-body.
        for t in tainted:
            t_inst, t_entry = infos[t][0], infos[t][1]
            for x, (other, _e, _d, _c, _m) in enumerate(infos):
                if x == t:
                    continue
                for read in self._reads_of(other):
                    if read is not None and read.ns == t_inst.dst.ns and \
                            self._entry(read).base == t_entry.base:
                        return False
        return True

    # -- execution -----------------------------------------------------------------
    def run(self) -> None:
        for inst in self.body:
            self._execute(inst)

    def _grid(self, entry, counts: Sequence[int]) -> np.ndarray:
        """Address grid, memoized on the machine per (walk, counts)."""
        cache = self.machine._grid_cache
        key = (entry.base, tuple(entry.strides), tuple(counts))
        grid = cache.get(key)
        if grid is None:
            grid = _address_grid(entry, counts)
            if len(cache) >= 4096:
                cache.clear()
            cache[key] = grid
        return grid

    def _load(self, operand) -> np.ndarray:
        entry = self._entry(operand)
        pad = self.machine.pads[operand.ns]
        forwarded = self._fwd.get(
            (operand.ns, _walk_key(entry, self.levels)))
        if forwarded is not None:
            pad.reads += forwarded.size
            return forwarded
        addr = self._grid(entry, self.counts)
        pad.reads += addr.size
        return pad.data[addr.reshape(-1)].reshape(addr.shape)

    def _cast(self, values: np.ndarray) -> np.ndarray:
        values = w32(values)
        if self.machine.cast_mode is not None:
            bits = {"fxp16": 16, "fxp8": 8, "fxp4": 4}[self.machine.cast_mode]
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            values = np.clip(values, lo, hi)
        return values

    def _store(self, operand, values: np.ndarray) -> None:
        entry = self._entry(operand)
        pad = self.machine.pads[operand.ns]
        values = self._cast(values)
        dup = self._dup_levels(entry)
        if dup:
            # Streamed temporary: forward the full per-point grid to
            # later readers; memory keeps the last point's slice (the
            # point-major final state — duplicate-index fancy assignment
            # would leave the winner unspecified).
            full = np.broadcast_to(values, tuple(self.counts))
            self._fwd[(operand.ns, _walk_key(entry, self.levels))] = full
            pad.writes += full.size
            last = full[tuple(-1 if level in dup else slice(None)
                              for level in range(self.levels))]
            collapsed = [1 if level in dup else count
                         for level, count in enumerate(self.counts)]
            addr = self._grid(entry, collapsed)
            pad.data[addr.reshape(-1)] = np.asarray(last).reshape(-1)
            return
        addr = self._grid(entry, self.counts)
        pad.writes += addr.size
        pad.data[addr.reshape(-1)] = np.broadcast_to(
            values, addr.shape).reshape(-1)

    def _reduced_axes(self, operand) -> Tuple[int, ...]:
        return self._dup_levels(self._entry(operand))

    def _execute(self, inst: Instruction) -> None:
        machine = self.machine
        if inst.opcode == Opcode.CALCULUS:
            x = self._load(inst.src1)
            func = CalculusFunc(inst.func)
            if func == CalculusFunc.ABS:
                out = w32(np.abs(x))
            elif func == CalculusFunc.SIGN:
                out = np.sign(x).astype(np.int64)
            else:
                out = w32(-x)
            self._store(inst.dst, out)
            return
        if inst.opcode == Opcode.COMPARISON:
            a = self._load(inst.src1)
            b = self._load(inst.src2)
            func = ComparisonFunc(inst.func)
            table = {
                ComparisonFunc.EQ: a == b, ComparisonFunc.NE: a != b,
                ComparisonFunc.GT: a > b, ComparisonFunc.GE: a >= b,
                ComparisonFunc.LT: a < b, ComparisonFunc.LE: a <= b,
            }
            self._store(inst.dst, table[func].astype(np.int64))
            return

        func = AluFunc(inst.func)
        if func == AluFunc.MOVE:
            self._store(inst.dst, self._load(inst.src1))
            return
        if func == AluFunc.NOT:
            self._store(inst.dst, w32(~self._load(inst.src1)))
            return
        if func == AluFunc.COND_MOVE:
            flags = self._load(inst.src2) != 0
            entry = self._entry(inst.dst)
            addr = self._grid(entry, self.counts).reshape(-1)
            values = np.broadcast_to(self._load(inst.src1),
                                     tuple(self.counts)).reshape(-1)
            mask = np.broadcast_to(flags, tuple(self.counts)).reshape(-1)
            pad = machine.pads[inst.dst.ns]
            pad.writes += int(mask.sum())
            pad.data[addr[mask]] = w32(values)[mask]
            return

        reduced = self._reduced_axes(inst.dst)
        if reduced and func == AluFunc.MACC:
            partial = self._load(inst.src1) * self._load(inst.src2)
            summed = partial.sum(axis=reduced)
            current = self._load_reduced(inst.dst, reduced)
            self._store_reduced(inst.dst, w32(current + summed), reduced)
            return
        if reduced and func in _REDUCERS and (
                inst.src1.ns, _walk_key(self._entry(inst.src1),
                                        self.levels)) == (
                inst.dst.ns, _walk_key(self._entry(inst.dst), self.levels)):
            # Read-modify-write accumulation: combine src2 over the
            # reduced axes, seeded with the current destination values.
            src2 = self._load(inst.src2)
            current = self._load_reduced(inst.dst, reduced)
            if func == AluFunc.ADD:
                out = w32(current + src2.sum(axis=reduced))
            elif func == AluFunc.MAX:
                out = np.maximum(current, src2.max(axis=reduced))
            else:
                out = np.minimum(current, src2.min(axis=reduced))
            self._store_reduced(inst.dst, out, reduced)
            return

        a = self._load(inst.src1)
        if func == AluFunc.MACC:
            b = self._load(inst.src2)
            self._store(inst.dst, w32(self._load(inst.dst) + a * b))
            return
        b = self._load(inst.src2)
        self._store(inst.dst, _BINARY[func](a, b))

    def _load_reduced(self, operand, reduced: Tuple[int, ...]) -> np.ndarray:
        entry = self._entry(operand)
        counts = [1 if level in reduced else count
                  for level, count in enumerate(self.counts)]
        addr = self._grid(entry, counts)
        pad = self.machine.pads[operand.ns]
        pad.reads += addr.size
        return pad.data[addr.reshape(-1)].reshape(
            tuple(c for level, c in enumerate(counts)
                  if level not in reduced))

    def _store_reduced(self, operand, values: np.ndarray,
                       reduced: Tuple[int, ...]) -> None:
        entry = self._entry(operand)
        counts = [1 if level in reduced else count
                  for level, count in enumerate(self.counts)]
        addr = self._grid(entry, counts)
        pad = self.machine.pads[operand.ns]
        pad.writes += addr.size
        values = self._cast(values)
        pad.data[addr.reshape(-1)] = values.reshape(-1)
