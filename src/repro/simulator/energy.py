"""Event-based energy accounting for the Tandem Processor.

Components map one-to-one onto Figure 25's breakdown: off-chip DRAM,
on-chip scratchpad (Interim BUF) accesses, ALU logic, loop + address
calculation logic, and "rest" (decode, muxing, pipeline registers).
An extra register-file component exists only under VPU-emulation
overlays (it is what the Tandem Processor design deletes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EnergyLedger:
    """Accumulated energy per component, in picojoules."""

    dram_pj: float = 0.0
    spad_pj: float = 0.0
    alu_pj: float = 0.0
    loop_addr_pj: float = 0.0
    other_pj: float = 0.0
    regfile_pj: float = 0.0

    def total_pj(self) -> float:
        return (self.dram_pj + self.spad_pj + self.alu_pj +
                self.loop_addr_pj + self.other_pj + self.regfile_pj)

    def total_joules(self) -> float:
        return self.total_pj() * 1e-12

    def breakdown(self) -> Dict[str, float]:
        """Fractions per component (Figure 25's y-axis)."""
        total = self.total_pj()
        if total == 0:
            return {name: 0.0 for name in self.component_names()}
        return {
            "dram": self.dram_pj / total,
            "on_chip_sram": self.spad_pj / total,
            "alu": self.alu_pj / total,
            "loop_addr": self.loop_addr_pj / total,
            "other": self.other_pj / total,
            "regfile": self.regfile_pj / total,
        }

    @staticmethod
    def component_names() -> tuple:
        return ("dram", "on_chip_sram", "alu", "loop_addr", "other", "regfile")

    def add(self, other: "EnergyLedger") -> "EnergyLedger":
        return EnergyLedger(
            dram_pj=self.dram_pj + other.dram_pj,
            spad_pj=self.spad_pj + other.spad_pj,
            alu_pj=self.alu_pj + other.alu_pj,
            loop_addr_pj=self.loop_addr_pj + other.loop_addr_pj,
            other_pj=self.other_pj + other.other_pj,
            regfile_pj=self.regfile_pj + other.regfile_pj,
        )

    def scaled(self, factor: float) -> "EnergyLedger":
        return EnergyLedger(
            dram_pj=self.dram_pj * factor,
            spad_pj=self.spad_pj * factor,
            alu_pj=self.alu_pj * factor,
            loop_addr_pj=self.loop_addr_pj * factor,
            other_pj=self.other_pj * factor,
            regfile_pj=self.regfile_pj * factor,
        )
