"""Shared timing model for loop-nest execution.

Both the detailed machine (which also computes real data) and the
analytic model (used for full-network sweeps) charge cycles through
:func:`nest_timing`, so the two modes agree by construction on nest
bodies and differ only in the surrounding bookkeeping the analytic model
estimates statically — mirroring the paper's simulator-vs-RTL <=5 %
validation.

Timing rules (Section 4.1, Figure 9):

* The pipeline issues one vector instruction per cycle (II = 1); the
  Code Repeater and the strided-address stage add no per-iteration
  bubbles.
* The innermost loop is vectorized across the SIMD lanes when every
  operand walks it with stride 0 (broadcast / immediate) or 1 (unit);
  other strides bank-conflict and issue lane-serially.
* A lane reduction (destination stride 0 while a source walks the
  innermost loop) pays a log2(lanes) combining-tree drain per outer
  iteration.
* VPU-emulation overlays add the conventional overheads the Tandem
  Processor design removes (Figure 6): register-file LD/ST traffic,
  explicit address-calculation instructions, and branch-based loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import List, Sequence, Tuple

from .params import TandemParams, VpuOverlay


@dataclass(frozen=True)
class BodyOpMeta:
    """Static shape of one body instruction, enough to time it."""

    dst_inner_stride: int
    src_inner_strides: Tuple[int, ...]
    mem_reads: int   # scratchpad source operands (IMM operands excluded)
    mem_writes: int  # scratchpad destination operands

    def vectorizable(self) -> bool:
        strides = (self.dst_inner_stride, *self.src_inner_strides)
        return all(s in (0, 1) for s in strides)

    def lane_reduction(self) -> bool:
        return (self.dst_inner_stride == 0
                and any(s != 0 for s in self.src_inner_strides))


@dataclass
class NestTiming:
    """Cycle/energy-event accounting for one executed loop nest."""

    cycles: int = 0
    vector_issues: int = 0          # Tandem-style fused compute issues
    scalar_points: int = 0          # element-level operations executed
    reduce_tree_cycles: int = 0
    regfile_issues: int = 0         # overlay: vector LD/ST through the RF
    addr_calc_issues: int = 0       # overlay: explicit address arithmetic
    loop_branch_cycles: int = 0     # overlay: branch-based loop management
    spad_accesses: int = 0          # operand reads+writes hitting scratchpads


def nest_points(counts: Sequence[int]) -> int:
    total = 1
    for c in counts:
        total *= c
    return total


def nest_timing(counts: Sequence[int], body: Sequence[BodyOpMeta],
                params: TandemParams, overlay: VpuOverlay) -> NestTiming:
    """Time one loop nest of ``body`` instructions over ``counts`` levels.

    Purely a function of its (hashable) arguments, so results are
    memoized — analytic sweeps re-time identical nests across tiles,
    blocks and models. Callers receive a private copy they may mutate.
    """
    return replace(_nest_timing(tuple(counts), tuple(body), params, overlay))


@lru_cache(maxsize=65536)
def _nest_timing(counts: Tuple[int, ...], body: Tuple[BodyOpMeta, ...],
                 params: TandemParams, overlay: VpuOverlay) -> NestTiming:
    if not counts:
        counts = (1,)
    inner = counts[-1]
    outer = nest_points(counts[:-1])
    points = outer * inner
    lanes = params.lanes
    timing = NestTiming()
    timing.scalar_points = points * len(body)

    vector_chunks = outer * math.ceil(inner / lanes)
    for op in body:
        if op.vectorizable():
            issues = vector_chunks
            if op.lane_reduction():
                timing.reduce_tree_cycles += outer * int(math.log2(lanes))
        else:
            issues = points
        timing.vector_issues += issues
        timing.spad_accesses += points * (op.mem_reads + op.mem_writes)
        if overlay.explicit_address_calc:
            timing.addr_calc_issues += VpuOverlay.ADDR_CALC_INSTS * issues

    if overlay.regfile_loads:
        # Tensor operands are loaded to / stored from the vector register
        # file once per vector chunk; intermediates stay in registers.
        # This is why long fused bodies are relatively cheaper than
        # single-op bodies on a VPU (Figure 6a).
        nest_inputs = max(1, max((op.mem_reads for op in body), default=1))
        nest_outputs = 1
        timing.regfile_issues += vector_chunks * (nest_inputs + nest_outputs)

    if overlay.conventional_loops:
        # increment + compare + branch per (vectorized) innermost
        # iteration, plus the same bookkeeping at each outer-level wrap
        # (a running prefix product over the levels).
        wraps, prefix = 0, 1
        for count in counts[:-1]:
            prefix *= count
            wraps += prefix
        timing.loop_branch_cycles = (
            VpuOverlay.LOOP_BRANCH_INSTS * (vector_chunks + wraps)
        )

    timing.cycles = (
        timing.vector_issues
        + timing.reduce_tree_cycles
        + timing.regfile_issues
        + timing.addr_calc_issues
        + timing.loop_branch_cycles
        + params.pipeline_depth  # fill at nest entry
    )
    return timing
