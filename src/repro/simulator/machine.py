"""The detailed Tandem Processor machine.

Interprets a compiled :class:`~repro.isa.TandemProgram` instruction by
instruction: configuration instructions fill the Iterator Tables and the
Code Repeater, compute instructions are replayed over the configured
loop nest on real scratchpad data, TILE_LD_ST triggers the Data Access
Engine, and PERMUTE drives the permute engine. Cycle/energy accounting
follows the shared :mod:`pipeline` timing model.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..isa import (
    AluFunc,
    CalculusFunc,
    ComparisonFunc,
    DatatypeConfigFunc,
    Instruction,
    IteratorConfigFunc,
    LdStFunc,
    LoopFunc,
    Namespace,
    Opcode,
    PermuteFunc,
    SyncFunc,
    TandemProgram,
)
from ..telemetry import get_telemetry
from .alu import ALU_OPS, CALCULUS_OPS, COMPARISON_OPS, cast_value, wrap32
from .dae import DataAccessEngine, DramStore, TileTransfer
from .energy import EnergyLedger
from .iterators import IteratorTable, build_iterator_tables
from .params import SimParams
from .pipeline import BodyOpMeta, NestTiming, nest_timing
from .scratchpad import ScratchpadFile


class MachineError(RuntimeError):
    """Illegal instruction sequence (compiler bug surfaced at runtime)."""


@dataclass(frozen=True)
class PermuteBinding:
    """Resolved operands for one PERMUTE.START (layout transformation)."""

    src_ns: Namespace
    src_base: int
    dst_ns: Namespace
    dst_base: int
    shape: Tuple[int, ...]
    perm: Tuple[int, ...]
    cross_lane: bool = True


@dataclass
class SyncEvent:
    """A synchronization instruction observed at a given cycle."""

    func: SyncFunc
    group_id: int
    cycle: int


@dataclass
class MachineResult:
    """Outcome of running one program (one tile's non-GEMM work)."""

    cycles: int = 0
    compute_cycles: int = 0
    dae_cycles: int = 0
    config_cycles: int = 0
    permute_cycles: int = 0
    vector_issues: int = 0
    scalar_ops: int = 0
    instructions_decoded: int = 0
    energy: EnergyLedger = field(default_factory=EnergyLedger)
    sync_events: List[SyncEvent] = field(default_factory=list)
    obuf_release_cycle: Optional[int] = None

    @property
    def pipelined_cycles(self) -> int:
        """Tile latency with the DAE double-buffered against compute.

        Section 3.1: tile transfers appear only at tile boundaries and
        the Data Access Engine streams the next tile while the pipeline
        computes on the current one, so the slower of the two paths sets
        the tile rate.
        """
        compute = (self.compute_cycles + self.config_cycles
                   + self.permute_cycles)
        return max(compute, self.dae_cycles)

    def merge(self, other: "MachineResult") -> None:
        self.cycles += other.cycles
        self.compute_cycles += other.compute_cycles
        self.dae_cycles += other.dae_cycles
        self.config_cycles += other.config_cycles
        self.permute_cycles += other.permute_cycles
        self.vector_issues += other.vector_issues
        self.scalar_ops += other.scalar_ops
        self.instructions_decoded += other.instructions_decoded
        self.energy = self.energy.add(other.energy)


def charge_nest(timing: NestTiming, params: SimParams,
                result: MachineResult) -> None:
    """Charge one nest's cycles and energy onto ``result``.

    Shared by the detailed machine and the analytic model so the two
    agree by construction on nest bodies.
    """
    energy = params.energy
    result.cycles += timing.cycles
    result.compute_cycles += timing.cycles
    result.vector_issues += timing.vector_issues
    result.scalar_ops += timing.scalar_points
    result.energy.alu_pj += timing.scalar_points * energy.alu_pj_per_lane_op
    result.energy.spad_pj += timing.spad_accesses * energy.spad_pj_per_word
    result.energy.other_pj += (timing.vector_issues *
                               energy.pipeline_pj_per_issue)
    if params.overlay.explicit_address_calc:
        # Address arithmetic runs as ordinary instructions: decode + one
        # scalar ALU op each, no specialized loop/addr logic to charge.
        result.energy.other_pj += (timing.addr_calc_issues *
                                   energy.decode_pj_per_inst)
        result.energy.alu_pj += (timing.addr_calc_issues *
                                 energy.alu_pj_per_lane_op)
    else:
        result.energy.loop_addr_pj += (timing.vector_issues *
                                       energy.loop_addr_pj_per_issue)
    if timing.regfile_issues:
        lanes = params.tandem.lanes
        result.energy.regfile_pj += (timing.regfile_issues * lanes *
                                     (energy.regfile_pj_per_word +
                                      energy.spad_pj_per_word))
        result.energy.other_pj += (timing.regfile_issues *
                                   energy.decode_pj_per_inst)
    if params.overlay.regfile_loads:
        # Compute operands read from / written to the multi-ported vector
        # register file instead of the scratchpads.
        result.energy.regfile_pj += (timing.scalar_points * 3 *
                                     energy.regfile_pj_per_word)
    if timing.loop_branch_cycles:
        result.energy.other_pj += (timing.loop_branch_cycles *
                                   energy.decode_pj_per_inst)


class TandemMachine:
    """Functional + cycle-level model of the Tandem Processor pipeline."""

    def __init__(self, params: Optional[SimParams] = None,
                 dram: Optional[DramStore] = None, fast: bool = False):
        self.params = params or SimParams()
        #: Instruction-major numpy execution of hazard-free nests
        #: (see :mod:`repro.simulator.fastexec`); falls back to the
        #: point-major interpreter whenever independence is unproven.
        self.fast = fast
        tp = self.params.tandem
        self.pads = ScratchpadFile.build(
            interim_words=tp.interim_buf_words,
            obuf_words=tp.obuf_words,
            imm_slots=tp.imm_slots,
            vmem_words=tp.interim_buf_words,
        )
        self.iter_tables: Dict[Namespace, IteratorTable] = build_iterator_tables(
            tp.iter_table_entries)
        self.dram = dram or DramStore()
        self.dae = DataAccessEngine(self.dram, self.pads, self.params.dram,
                                    tp.frequency_hz)
        self.cast_mode: Optional[str] = None
        #: Active telemetry session while ``run`` executes with telemetry
        #: enabled; ``None`` otherwise, so instrumented paths pay one
        #: attribute check and nothing else.
        self._tel = None
        self._permute_config: Dict[str, list] = {"shape": [], "perm": []}
        #: Address-grid memo for the fast path, keyed on
        #: (base, strides, counts); grids are read-only once built.
        self._grid_cache: Dict[Tuple, np.ndarray] = {}

    # -- public API -----------------------------------------------------------
    def run(self, program: TandemProgram,
            transfers: Iterable[TileTransfer] = (),
            permutes: Iterable[PermuteBinding] = ()) -> MachineResult:
        """Execute a program; bindings are consumed in instruction order."""
        result = MachineResult()
        transfer_queue: Deque[TileTransfer] = deque(transfers)
        permute_queue: Deque[PermuteBinding] = deque(permutes)
        pending_loops: List[Tuple[int, int]] = []
        collecting: Optional[int] = None
        body: List[Instruction] = []
        self._first_transfer = True
        tel = get_telemetry()
        self._tel = tel if tel.enabled else None
        bytes_loaded0 = self.dae.bytes_loaded
        bytes_stored0 = self.dae.bytes_stored

        for inst in program:
            result.instructions_decoded += 1
            result.energy.other_pj += self.params.energy.decode_pj_per_inst
            if collecting is not None:
                body.append(inst)
                if len(body) == collecting:
                    self._run_nest(pending_loops, body, result)
                    pending_loops = []
                    collecting = None
                    body = []
                continue
            self._step(inst, result, pending_loops, transfer_queue,
                       permute_queue)
            if inst.opcode == Opcode.LOOP and inst.func == int(LoopFunc.SET_NUM_INST):
                collecting = inst.imm
                if collecting <= 0:
                    raise MachineError("LOOP.SET_NUM_INST with non-positive body")

        if collecting is not None:
            raise MachineError("program ended while collecting a loop body")
        if self._tel is not None:
            self._finish_run_counters(result, bytes_loaded0, bytes_stored0)
            self._tel = None
        return result

    # -- telemetry -----------------------------------------------------------
    def _finish_run_counters(self, result: MachineResult,
                             bytes_loaded0: int, bytes_stored0: int) -> None:
        """Program-level counters: cycle breakdown, DAE overlap, traffic.

        The overlap/stall split mirrors :meth:`MachineResult.pipelined_cycles`:
        the DAE double-buffers against compute, so the shorter path hides
        entirely and the difference stalls the tile on the longer one.
        """
        count = self._tel.count
        compute = (result.compute_cycles + result.config_cycles
                   + result.permute_cycles)
        count("sim.cycles.total", result.cycles)
        count("sim.cycles.compute", result.compute_cycles)
        count("sim.cycles.config", result.config_cycles)
        count("sim.cycles.permute", result.permute_cycles)
        count("sim.cycles.dae", result.dae_cycles)
        count("sim.insts.decoded", result.instructions_decoded)
        count("sim.dae.overlap_cycles", min(compute, result.dae_cycles))
        count("sim.stall.dae_bound_cycles",
              max(0, result.dae_cycles - compute))
        count("sim.stall.compute_bound_cycles",
              max(0, compute - result.dae_cycles))
        count("sim.dae.bytes_loaded", self.dae.bytes_loaded - bytes_loaded0)
        count("sim.dae.bytes_stored", self.dae.bytes_stored - bytes_stored0)

    _FUNC_ENUMS = {Opcode.ALU: AluFunc, Opcode.CALCULUS: CalculusFunc,
                   Opcode.COMPARISON: ComparisonFunc}

    def _count_nest(self, body: List[Instruction], counts: List[int],
                    timing: NestTiming) -> None:
        """Per-nest counters, derived statically from the body + counts.

        Derivation from the instruction shapes (not from observed
        scratchpad accesses) keeps the dumps identical between the
        point-major interpreter and the instruction-major fast path.
        """
        count = self._tel.count
        points = 1
        for c in counts:
            points *= c
        word_bytes = 4
        count("sim.code_repeater.fetches", len(body))
        if points > 1:
            count("sim.code_repeater.replays", (points - 1) * len(body))
        count("sim.pipeline.vector_issues", timing.vector_issues)
        if timing.reduce_tree_cycles:
            count("sim.stall.reduce_tree_cycles", timing.reduce_tree_cycles)
        count("sim.stall.pipeline_fill_cycles",
              self.params.tandem.pipeline_depth)
        for inst in body:
            func_name = self._FUNC_ENUMS[inst.opcode](inst.func).name.lower()
            count(f"sim.alu.ops.{inst.opcode.name.lower()}.{func_name}",
                  points)
            sources = ((inst.src1,) if self._is_unary(inst)
                       else (inst.src1, inst.src2))
            srcs = [src for src in sources if src is not None]
            count("sim.iter_table.reads", points * (1 + len(srcs)))
            dst_ns = inst.dst.ns.name.lower()
            count(f"sim.spad.{dst_ns}.writes", points)
            count(f"sim.spad.{dst_ns}.write_bytes", points * word_bytes)
            if inst.opcode == Opcode.ALU and inst.func == int(AluFunc.MACC):
                # The accumulator destination is read-modify-write.
                count(f"sim.spad.{dst_ns}.reads", points)
                count(f"sim.spad.{dst_ns}.read_bytes", points * word_bytes)
            for src in srcs:
                if src.ns != Namespace.IMM:
                    src_ns = src.ns.name.lower()
                    count(f"sim.spad.{src_ns}.reads", points)
                    count(f"sim.spad.{src_ns}.read_bytes",
                          points * word_bytes)

    # -- per-instruction dispatch ------------------------------------------------
    def _step(self, inst: Instruction, result: MachineResult,
              pending_loops: List[Tuple[int, int]],
              transfer_queue: Deque[TileTransfer],
              permute_queue: Deque[PermuteBinding]) -> None:
        opcode = inst.opcode
        if opcode == Opcode.SYNC:
            result.cycles += 1
            result.config_cycles += 1
            event = SyncEvent(SyncFunc(inst.func), inst.field5, result.cycles)
            result.sync_events.append(event)
            if event.func == SyncFunc.SIMD_END_BUF:
                result.obuf_release_cycle = result.cycles
            if self._tel is not None:
                self._tel.count("sim.sync.events")
                if event.func == SyncFunc.SIMD_END_BUF:
                    self._tel.count("sim.obuf.handoffs")
        elif opcode == Opcode.ITERATOR_CONFIG:
            self._configure_iterator(inst)
            result.cycles += 1
            result.config_cycles += 1
            if self._tel is not None:
                self._tel.count("sim.iter_table.writes")
        elif opcode == Opcode.DATATYPE_CONFIG or opcode == Opcode.DATATYPE_CAST:
            self.cast_mode = DatatypeConfigFunc(inst.func).name.lower()
            if self.cast_mode == "fxp32":
                self.cast_mode = None
            result.cycles += 1
            result.config_cycles += 1
        elif opcode == Opcode.LOOP:
            self._configure_loop(inst, pending_loops)
            result.cycles += 1
            result.config_cycles += 1
        elif opcode == Opcode.PERMUTE:
            self._permute(inst, result, permute_queue)
        elif opcode == Opcode.TILE_LD_ST:
            self._tile_ldst(inst, result, transfer_queue)
        elif opcode in (Opcode.ALU, Opcode.CALCULUS, Opcode.COMPARISON):
            # Bare compute instruction outside a loop body: one point.
            self._run_nest([], [inst], result)
        else:  # pragma: no cover - all opcodes handled
            raise MachineError(f"unhandled opcode {opcode}")

    def _configure_iterator(self, inst: Instruction) -> None:
        func = IteratorConfigFunc(inst.func)
        ns = Namespace(inst.field3)
        if func == IteratorConfigFunc.BASE_ADDR:
            self.iter_tables[ns].set_base(inst.field5, inst.imm)
        elif func == IteratorConfigFunc.STRIDE:
            self.iter_tables[ns].push_stride(inst.field5, inst.imm)
        elif func == IteratorConfigFunc.IMM_VALUE:
            # The 16-bit immediate field is sign-extended by the decoder;
            # an IMM_HIGH follow-up overwrites the upper half if needed.
            value = inst.imm & 0xFFFF
            if value >= 1 << 15:
                value -= 1 << 16
            self.pads[Namespace.IMM].write(inst.field5, value)
        elif func == IteratorConfigFunc.IMM_HIGH:
            low = self.pads[Namespace.IMM].read(inst.field5) & 0xFFFF
            self.pads[Namespace.IMM].write(
                inst.field5, wrap32(((inst.imm & 0xFFFF) << 16) | low))

    def _configure_loop(self, inst: Instruction,
                        pending_loops: List[Tuple[int, int]]) -> None:
        func = LoopFunc(inst.func)
        if func == LoopFunc.SET_ITER:
            if len(pending_loops) >= self.params.tandem.max_loop_levels:
                raise MachineError("loop nest deeper than 8 levels")
            if inst.imm <= 0:
                raise MachineError(f"loop {inst.field3} with {inst.imm} iterations")
            pending_loops.append((inst.field3, inst.imm))
        elif func == LoopFunc.SET_INDEX:
            # Iterator binding metadata; address mapping is carried by the
            # iterator-table strides in this implementation.
            pass

    # -- loop-nest execution ------------------------------------------------------
    def _operand_entry(self, ns: Namespace, iter_idx: int):
        return self.iter_tables[ns].lookup(iter_idx)

    @staticmethod
    def _is_unary(inst: Instruction) -> bool:
        if inst.opcode == Opcode.CALCULUS:
            return True
        return inst.opcode == Opcode.ALU and inst.func in (
            int(AluFunc.MOVE), int(AluFunc.NOT))

    def _body_meta(self, body: List[Instruction]) -> List[BodyOpMeta]:
        metas = []
        for inst in body:
            dst_entry = self._operand_entry(inst.dst.ns, inst.dst.iter_idx)
            sources = (inst.src1,) if self._is_unary(inst) else (inst.src1,
                                                                 inst.src2)
            src_strides = []
            mem_reads = 0
            for src in sources:
                if src is None:
                    continue
                entry = self._operand_entry(src.ns, src.iter_idx)
                src_strides.append(entry.innermost_stride)
                if src.ns != Namespace.IMM:
                    mem_reads += 1
            metas.append(BodyOpMeta(
                dst_inner_stride=dst_entry.innermost_stride,
                src_inner_strides=tuple(src_strides),
                mem_reads=mem_reads,
                mem_writes=1,
            ))
        return metas

    def _run_nest(self, loops: List[Tuple[int, int]], body: List[Instruction],
                  result: MachineResult) -> None:
        counts = [count for _, count in loops] or [1]
        executed_fast = False
        if self.fast:
            from .fastexec import FastNestExecutor
            executor = FastNestExecutor(self, loops or [(0, 1)], body)
            if executor.supported():
                executor.run()
                executed_fast = True
        if not executed_fast:
            # Functional execution: point-major order, exactly the order
            # the Code Repeater replays the body.
            for point in iter_product(*(range(c) for c in counts)):
                for inst in body:
                    self._execute_point(inst, point)
        # Timing + energy via the shared model.
        metas = self._body_meta(body)
        timing = nest_timing(counts, metas, self.params.tandem,
                             self.params.overlay)
        charge_nest(timing, self.params, result)
        if self._tel is not None:
            self._count_nest(body, counts, timing)

    def _execute_point(self, inst: Instruction, point: Tuple[int, ...]) -> None:
        src1 = self._read_operand(inst.src1, point)
        if inst.opcode == Opcode.ALU:
            func = AluFunc(inst.func)
            if func == AluFunc.MACC:
                src2 = self._read_operand(inst.src2, point)
                acc = self._read_operand(inst.dst, point)
                value = acc + src1 * src2
            elif func == AluFunc.COND_MOVE:
                src2 = self._read_operand(inst.src2, point)
                if not src2:
                    return
                value = src1
            elif func in (AluFunc.NOT, AluFunc.MOVE):
                value = ALU_OPS[func](src1, 0)
            else:
                src2 = self._read_operand(inst.src2, point)
                value = ALU_OPS[func](src1, src2)
        elif inst.opcode == Opcode.CALCULUS:
            value = CALCULUS_OPS[CalculusFunc(inst.func)](src1)
        elif inst.opcode == Opcode.COMPARISON:
            src2 = self._read_operand(inst.src2, point)
            value = COMPARISON_OPS[ComparisonFunc(inst.func)](src1, src2)
        else:  # pragma: no cover
            raise MachineError(f"not a compute opcode: {inst.opcode}")
        if self.cast_mode is not None:
            value = cast_value(value, self.cast_mode)
        self._write_operand(inst.dst, point, value)

    def _read_operand(self, operand, point: Tuple[int, ...]) -> int:
        entry = self._operand_entry(operand.ns, operand.iter_idx)
        return self.pads[operand.ns].read(entry.address(point))

    def _write_operand(self, operand, point: Tuple[int, ...], value: int) -> None:
        entry = self._operand_entry(operand.ns, operand.iter_idx)
        self.pads[operand.ns].write(entry.address(point), value)

    # -- permute engine ----------------------------------------------------------
    def _permute(self, inst: Instruction, result: MachineResult,
                 permute_queue: Deque[PermuteBinding]) -> None:
        func = PermuteFunc(inst.func)
        if func != PermuteFunc.START:
            result.cycles += 1
            result.config_cycles += 1
            return
        if not permute_queue:
            raise MachineError("PERMUTE.START without a bound permutation")
        binding = permute_queue.popleft()
        src = self.pads[binding.src_ns].store_block(
            binding.src_base, int(np.prod(binding.shape)))
        permuted = np.ascontiguousarray(
            src.reshape(binding.shape).transpose(binding.perm))
        self.pads[binding.dst_ns].load_block(binding.dst_base, permuted)
        lanes = self.params.tandem.lanes
        words = permuted.size
        cycles = math.ceil(words / lanes) * (2 if binding.cross_lane else 1)
        cycles += self.params.tandem.pipeline_depth
        result.cycles += cycles
        result.permute_cycles += cycles
        if self._tel is not None:
            self._tel.count("sim.permute.starts")
            self._tel.count("sim.permute.words", words)
        energy = self.params.energy
        result.energy.spad_pj += 2 * words * energy.spad_pj_per_word
        result.energy.loop_addr_pj += (math.ceil(words / lanes) *
                                       energy.loop_addr_pj_per_issue)

    # -- Data Access Engine --------------------------------------------------------
    def _tile_ldst(self, inst: Instruction, result: MachineResult,
                   transfer_queue: Deque[TileTransfer]) -> None:
        func = LdStFunc(inst.func)
        if func not in (LdStFunc.LD_START, LdStFunc.ST_START):
            result.cycles += 1
            result.config_cycles += 1
            return
        if not transfer_queue:
            raise MachineError(f"{func.name} without a bound tile transfer")
        transfer = transfer_queue.popleft()
        expected = "ld" if func == LdStFunc.LD_START else "st"
        if transfer.direction != expected:
            raise MachineError(
                f"{func.name} bound to a {transfer.direction!r} transfer")
        cycles, energy_pj = self.dae.execute(transfer, self._first_transfer)
        self._first_transfer = False
        result.cycles += cycles
        result.dae_cycles += cycles
        result.energy.dram_pj += energy_pj
        if self._tel is not None:
            self._tel.count("sim.dae.loads" if func == LdStFunc.LD_START
                            else "sim.dae.stores")
