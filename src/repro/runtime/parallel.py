"""Parallel sweep executor: deterministic fan-out over work items.

Experiments, DSE sweeps and the harness all map a pure function over a
list of (model x design-point) work items. ``parallel_map`` runs that
map across a process pool (the work is CPU-bound Python, so threads
would serialize on the GIL) while keeping the output order identical to
the input order — ``--jobs N`` output is byte-for-byte the serial
output. ``jobs=1`` short-circuits to a plain loop, and any pool
infrastructure failure (sandboxes without fork, unpicklable work items)
silently degrades to the serial path.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Job count from ``REPRO_JOBS`` (default: serial)."""
    value = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(value))
    except ValueError:
        return 1


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: int = 1) -> List[R]:
    """Map ``fn`` over ``items`` with results in input order."""
    work: Sequence[T] = list(items)
    jobs = min(max(1, jobs or 1), len(work)) if work else 1
    if jobs <= 1:
        return [fn(item) for item in work]
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - stdlib always has it
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # executor.map preserves input order regardless of
            # completion order, which keeps output deterministic.
            return list(pool.map(fn, work))
    except (BrokenProcessPool, pickle.PicklingError, PermissionError,
            OSError):
        return [fn(item) for item in work]
