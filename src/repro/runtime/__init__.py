"""Evaluation runtime: caching and fan-out shared by every entry point.

The paper's evaluation is a 22-figure sweep over 7 DNNs x ~6 design
points; without help it recompiles and re-estimates identical work in
every experiment and every process. This package supplies the serving
disciplines the ROADMAP asks for:

* :mod:`repro.runtime.cache` — a content-addressed, two-tier
  (in-memory + on-disk) cache of compiled models and run results, keyed
  by structural fingerprints of the graph and the design parameters.
* :mod:`repro.runtime.parallel` — a deterministic ``concurrent.futures``
  fan-out over (model x design-point) work items with a serial fallback.
* :mod:`repro.runtime.seed` — the ``REPRO_SEED`` discipline: every RNG
  in the repository derives from one environment seed plus stable
  stream labels, so stochastic runs replay exactly.
"""

from .cache import (
    CACHE_EPOCH,
    CacheStats,
    EvalCache,
    cached_evaluate,
    fingerprint,
    get_cache,
    graph_fingerprint,
    object_fingerprint,
    set_cache,
)
from .parallel import default_jobs, parallel_map
from .seed import DEFAULT_SEED, repro_seed, seeded_rng

__all__ = [
    "CACHE_EPOCH",
    "CacheStats",
    "DEFAULT_SEED",
    "EvalCache",
    "cached_evaluate",
    "default_jobs",
    "fingerprint",
    "get_cache",
    "graph_fingerprint",
    "object_fingerprint",
    "parallel_map",
    "repro_seed",
    "seeded_rng",
    "set_cache",
]
