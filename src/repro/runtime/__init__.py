"""Evaluation runtime: caching and fan-out shared by every entry point.

The paper's evaluation is a 22-figure sweep over 7 DNNs x ~6 design
points; without help it recompiles and re-estimates identical work in
every experiment and every process. This package supplies the serving
disciplines the ROADMAP asks for:

* :mod:`repro.runtime.cache` — a content-addressed, two-tier
  (in-memory + on-disk) cache of compiled models and run results, keyed
  by structural fingerprints of the graph and the design parameters.
* :mod:`repro.runtime.parallel` — a deterministic ``concurrent.futures``
  fan-out over (model x design-point) work items with a serial fallback.
"""

from .cache import (
    CACHE_EPOCH,
    CacheStats,
    EvalCache,
    cached_evaluate,
    fingerprint,
    get_cache,
    graph_fingerprint,
    object_fingerprint,
    set_cache,
)
from .parallel import default_jobs, parallel_map

__all__ = [
    "CACHE_EPOCH",
    "CacheStats",
    "EvalCache",
    "cached_evaluate",
    "default_jobs",
    "fingerprint",
    "get_cache",
    "graph_fingerprint",
    "object_fingerprint",
    "parallel_map",
    "set_cache",
]
