"""Reproducibility discipline: one ``REPRO_SEED`` feeds every RNG.

Every stochastic component in the repository — the fuzz suite's value
tensors, the example scripts, the serving load generators — derives its
``numpy.random.Generator`` from :func:`seeded_rng`. The generator is
seeded by the process-wide ``REPRO_SEED`` environment variable (default
12345) combined with a stable hash of caller-supplied stream labels:

* distinct labels give statistically independent streams, and
* identical ``(REPRO_SEED, labels)`` pairs give identical draws in any
  process — which is what keeps ``--jobs N`` sweeps byte-identical to
  their serial runs.

Labels may be any mix of strings, ints, floats and tuples; they are
hashed structurally (sha256 over the repr), never with Python's
per-process-randomized ``hash()``.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

#: Seed used when ``REPRO_SEED`` is unset or unparseable.
DEFAULT_SEED = 12345

_MASK64 = (1 << 64) - 1


def repro_seed() -> int:
    """The process-wide base seed, from ``$REPRO_SEED`` (default 12345)."""
    value = os.environ.get("REPRO_SEED", "")
    try:
        return int(value)
    except ValueError:
        return DEFAULT_SEED


def _entropy(stream) -> int:
    """A stable non-negative 64-bit word for one stream label."""
    if isinstance(stream, (bool, int, np.integer)):
        return int(stream) & _MASK64
    digest = hashlib.sha256(repr(stream).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def seeded_rng(*streams) -> np.random.Generator:
    """A Generator derived from ``REPRO_SEED`` plus the stream labels."""
    entropy = [_entropy(repro_seed())] + [_entropy(s) for s in streams]
    return np.random.default_rng(np.random.SeedSequence(entropy))
