"""Content-addressed compile/result cache (in-memory + on-disk).

Keys are structural fingerprints: a sha256 over the canonical JSON form
of the graph (names, tensor specs, nodes, attributes) and of the
parameter dataclasses (``SimParams``, ``SystolicParams``, compiler
options). Two structurally identical inputs therefore share one cache
entry, and any change to the graph or the configuration changes the key
— invalidation is by construction, never by timestamp.

Two tiers back each key:

* an in-memory dict (process-local, always on while the cache is
  enabled), and
* a JSON file per entry under ``.repro_cache/<kind>/<key>.json``
  (cross-process; survives interpreter restarts), written atomically so
  concurrent ``--jobs`` workers never observe torn entries.

Environment controls: ``REPRO_CACHE=0`` disables caching entirely,
``REPRO_CACHE_DIR`` moves the on-disk tier (default ``.repro_cache`` in
the working directory). ``EvalCache.stats`` counts hits, misses, stores
and invalidations (disk entries discarded because their schema or
payload no longer decodes).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from ..telemetry import get_telemetry

#: Bump when the meaning of cached values changes (estimator semantics,
#: result fields, serialized-artifact layout) so stale on-disk entries
#: from older code versions miss instead of resurfacing.
CACHE_EPOCH = 1


def _json_scalar(value):
    """JSON fallback for numpy scalars riding inside result payloads."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


# ---------------------------------------------------------------------------
# Structural fingerprints
# ---------------------------------------------------------------------------
def _canonical(obj: Any, depth: int = 0) -> Any:
    """Reduce ``obj`` to JSON-able primitives, deterministically."""
    if depth > 12:
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__class__": type(obj).__name__,
            **{f.name: _canonical(getattr(obj, f.name), depth + 1)
               for f in dataclasses.fields(obj)},
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(v, depth + 1) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(_canonical(v, depth + 1)) for v in obj)
    if isinstance(obj, dict):
        return {str(k): _canonical(obj[k], depth + 1)
                for k in sorted(obj, key=str)}
    if hasattr(obj, "__dict__"):
        state = {k: _canonical(v, depth + 1)
                 for k, v in sorted(vars(obj).items())
                 if not k.startswith("_") and not callable(v)}
        return {"__class__": type(obj).__name__, **state}
    return repr(obj)


def fingerprint(*parts: Any) -> str:
    """Stable hex digest of the canonical form of ``parts``."""
    payload = json.dumps([CACHE_EPOCH] + [_canonical(p) for p in parts],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def graph_fingerprint(graph) -> str:
    """Structural hash of a :class:`~repro.graph.Graph` (memoized)."""
    cached = graph.__dict__.get("_fingerprint")
    if cached is not None:
        return cached
    desc = {
        "name": graph.name,
        "tensors": {name: [spec.dtype, list(spec.shape)]
                    for name, spec in sorted(graph.tensors.items())},
        "nodes": [[n.name, n.op_type, list(n.inputs), list(n.outputs),
                   _canonical(n.attrs), list(n.params)]
                  for n in graph.nodes],
        "inputs": list(graph.graph_inputs),
        "outputs": list(graph.graph_outputs),
    }
    fp = fingerprint(desc)
    graph.__dict__["_fingerprint"] = fp
    return fp


def object_fingerprint(obj: Any) -> str:
    """Fingerprint an arbitrary design object by its public state."""
    return fingerprint(_canonical(obj))


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class EvalCache:
    """Two-tier (memory + disk) cache of evaluation artifacts.

    ``kind`` namespaces entries (``"compiled"``, ``"results"``); values
    cross tiers as JSON via the ``encode``/``decode`` callables the
    caller supplies, so this class stays ignorant of compiler and
    simulator types.
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 enabled: bool = True, persist: bool = True):
        self.enabled = enabled
        self.persist = persist and directory is not None
        self.directory = Path(directory) if directory is not None else None
        self.stats = CacheStats()
        self._memory: Dict[Tuple[str, str], Any] = {}

    # -- tier plumbing -----------------------------------------------------
    def _path(self, kind: str, key: str) -> Path:
        return self.directory / kind / f"{key}.json"

    def get(self, kind: str, key: str,
            decode: Optional[Callable[[Any], Any]] = None) -> Optional[Any]:
        """Look up ``key``; memory first, then disk (re-encoding to memory)."""
        if not self.enabled:
            return None
        tel = get_telemetry()
        tel = tel if tel.enabled else None
        slot = (kind, key)
        if slot in self._memory:
            self.stats.hits += 1
            if tel is not None:
                tel.count(f"cache.{kind}.hits")
            return self._memory[slot]
        if self.persist:
            path = self._path(kind, key)
            if path.exists():
                try:
                    text = path.read_text()
                    payload = json.loads(text)
                    value = decode(payload) if decode else payload
                except (ValueError, KeyError, TypeError, OSError):
                    # Stale or corrupt artifact from an older code version.
                    self.stats.invalidations += 1
                    if tel is not None:
                        tel.count(f"cache.{kind}.invalidations")
                    try:
                        path.unlink()
                    except OSError:
                        pass
                else:
                    self._memory[slot] = value
                    self.stats.hits += 1
                    if tel is not None:
                        tel.count(f"cache.{kind}.hits")
                        tel.count(f"cache.{kind}.bytes_read", len(text))
                    return value
        self.stats.misses += 1
        if tel is not None:
            tel.count(f"cache.{kind}.misses")
        return None

    def has(self, kind: str, key: str) -> bool:
        """True when ``key`` is present in either tier.

        A pure presence probe: no decode, no memory-tier promotion and
        no hit/miss accounting, so callers (e.g. the autotuner's
        cache-hit counters) can test for warmth without disturbing the
        stats or pre-empting a later :meth:`get`.
        """
        if not self.enabled:
            return False
        if (kind, key) in self._memory:
            return True
        return self.persist and self._path(kind, key).exists()

    def put(self, kind: str, key: str, value: Any,
            encode: Optional[Callable[[Any], Any]] = None) -> None:
        if not self.enabled:
            return
        tel = get_telemetry()
        tel = tel if tel.enabled else None
        self._memory[(kind, key)] = value
        self.stats.stores += 1
        if tel is not None:
            tel.count(f"cache.{kind}.stores")
        if self.persist:
            payload = encode(value) if encode else value
            path = self._path(kind, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: parallel workers may race on the same key.
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                text = json.dumps(payload, default=_json_scalar)
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
                if tel is not None:
                    tel.count(f"cache.{kind}.bytes_written", len(text))
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def clear(self) -> None:
        """Drop both tiers (and every on-disk entry)."""
        self._memory.clear()
        if self.persist and self.directory is not None and \
                self.directory.exists():
            for path in self.directory.glob("*/*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def entry_counts(self) -> Dict[str, int]:
        """On-disk entries per kind (for ``repro cache stats``)."""
        counts: Dict[str, int] = {}
        if self.persist and self.directory is not None and \
                self.directory.exists():
            for sub in self.directory.iterdir():
                if sub.is_dir():
                    counts[sub.name] = sum(1 for _ in sub.glob("*.json"))
        return counts


# ---------------------------------------------------------------------------
# Process-wide singleton
# ---------------------------------------------------------------------------
_cache: Optional[EvalCache] = None


def get_cache() -> EvalCache:
    global _cache
    if _cache is None:
        enabled = os.environ.get("REPRO_CACHE", "1").lower() not in (
            "0", "off", "false", "no")
        directory = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        _cache = EvalCache(directory=directory, enabled=enabled)
    return _cache


def set_cache(cache: Optional[EvalCache]) -> None:
    """Install (or with ``None``, reset) the process-wide cache."""
    global _cache
    _cache = cache


# ---------------------------------------------------------------------------
# RunResult-level convenience
# ---------------------------------------------------------------------------
def _result_decode(payload: Dict) -> "object":
    from ..results import RunResult
    # Copy the nested breakdown dicts so callers can mutate their result
    # without polluting the cached payload.
    return RunResult(**{k: dict(v) if isinstance(v, dict) else v
                        for k, v in payload.items()})


def result_key(design_desc: Any, graph) -> str:
    graph_fp = graph if isinstance(graph, str) else graph_fingerprint(graph)
    return fingerprint("run-result", _canonical(design_desc), graph_fp)


def get_result(key: str):
    """Cached :class:`RunResult` for ``key``; always a fresh object."""
    cache = get_cache()
    payload = cache.get("results", key)
    if payload is None:
        return None
    return _result_decode(payload)


def put_result(key: str, result) -> None:
    get_cache().put("results", key, dataclasses.asdict(result))


def cached_evaluate(design, model):
    """``design.evaluate(model)`` through the shared result cache.

    ``design`` is fingerprinted by its public state (parameters,
    nested dataclasses); ``model`` is a zoo name or a Graph. Hits
    rehydrate a fresh :class:`RunResult`, so callers may freely mutate
    what they get back.
    """
    if not get_cache().enabled:
        return design.evaluate(model)
    if isinstance(model, str):
        from ..models import build_model
        graph = build_model(model)
    else:
        graph = model
    key = result_key(design, graph)
    hit = get_result(key)
    if hit is not None:
        return hit
    result = design.evaluate(model)
    put_result(key, result)
    return result
