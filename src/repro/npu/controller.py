"""Execution controller (Figure 11): block FSM + tile-level scheduling.

The controller walks the Figure 11 state machine per block and schedules
tiles with the double-buffering protocol of Section 4.2: the GEMM unit
starts tile *i+1* as soon as (a) it finished tile *i* and (b) the Tandem
Processor released the Output BUF for tile *i* (the SIMD_END_BUF sync);
the Tandem Processor starts tile *i* when the GEMM unit hands it over.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional


class FsmState(Enum):
    """Figure 11 states."""

    BLOCK_START = "block_start"
    INST_DISPATCH = "inst_dispatch"
    GEMM = "gemm"
    TANDEM = "tandem"
    GEMM_TANDEM = "gemm_tandem"
    BLOCK_DONE = "block_done"


@dataclass
class BlockSchedule:
    """Timing outcome of one block's tile loop."""

    total_cycles: int
    gemm_busy_cycles: int
    tandem_busy_cycles: int
    states: List[FsmState]

    @property
    def gemm_utilization(self) -> float:
        return self.gemm_busy_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def tandem_utilization(self) -> float:
        return (self.tandem_busy_cycles / self.total_cycles
                if self.total_cycles else 0.0)


class ExecutionController:
    """Schedules one block; pure timing logic, no data."""

    #: Instruction load + dispatch overhead per block (Step 1, Figure 10):
    #: a lightweight decode pass over the block's instructions.
    DISPATCH_CYCLES_PER_INST = 1

    def state_sequence(self, kind: str) -> List[FsmState]:
        execute = {
            "gemm": FsmState.GEMM,
            "tandem": FsmState.TANDEM,
            "gemm_tandem": FsmState.GEMM_TANDEM,
        }[kind]
        return [FsmState.BLOCK_START, FsmState.INST_DISPATCH, execute,
                FsmState.BLOCK_DONE]

    def schedule(self, kind: str, tiles: int,
                 gemm_tile_cycles: int = 0,
                 tandem_tile_cycles: int = 0,
                 obuf_release_cycles: Optional[int] = None,
                 dispatch_insts: int = 0,
                 overlap: bool = True) -> BlockSchedule:
        """Schedule ``tiles`` tiles through the block's FSM state.

        ``obuf_release_cycles`` is the offset of SIMD_END_BUF within the
        Tandem tile program; until then the GEMM unit cannot write the
        next tile. ``overlap=False`` models layer-granularity
        coordination (Figure 8's baseline): the GEMM unit runs all tiles,
        then the Tandem Processor runs all tiles.
        """
        states = self.state_sequence(kind)
        dispatch = dispatch_insts * self.DISPATCH_CYCLES_PER_INST
        g = int(gemm_tile_cycles)
        t = int(tandem_tile_cycles)
        release = t if obuf_release_cycles is None else min(int(obuf_release_cycles), t)

        if kind == "gemm" or t == 0:
            total = dispatch + tiles * g
            return BlockSchedule(total, tiles * g, 0, states)
        if kind == "tandem" or g == 0:
            total = dispatch + tiles * t
            return BlockSchedule(total, 0, tiles * t, states)
        if not overlap:
            total = dispatch + tiles * g + tiles * t
            return BlockSchedule(total, tiles * g, tiles * t, states)

        # Software-pipelined tile loop with a double-buffered Output BUF:
        # the GEMM unit writes buffer i%2, so tile i+2 must wait for the
        # Tandem Processor to release tile i's half (SIMD_END_BUF). Cap
        # the explicit walk and use the steady-state period for very
        # large tile counts.
        walk = min(tiles, 4096)
        gemm_done = 0
        tandem_done = 0
        release_two_back = 0  # release time of tile i-2 (same OBUF half)
        release_one_back = 0
        for _ in range(walk):
            gemm_start = max(gemm_done, release_two_back)
            gemm_done = gemm_start + g
            tandem_start = max(tandem_done, gemm_done)
            release_two_back = release_one_back
            release_one_back = tandem_start + release
            tandem_done = tandem_start + t
        total = tandem_done
        if tiles > walk:
            # With release <= t, double buffering settles to one tile per
            # max(g, t) cycles.
            period = max(g, t)
            total += (tiles - walk) * period
        total += dispatch
        return BlockSchedule(total, tiles * g, tiles * t, states)
