"""NPU-Tandem end-to-end evaluator (analytic mode).

Walks the compiled blocks through the execution controller, scaling
per-tile Tandem estimates by tile counts and overlapping them with the
GEMM unit per the Section 4.2 double-buffering protocol.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, Optional, Union

from ..compiler import CompiledModel, compile_model
from ..graph import Graph
from ..models import build_model
from ..results import RunResult
from ..simulator import EnergyLedger, MachineResult, estimate, scale_result
from ..telemetry import get_telemetry
from .config import NPUConfig, table3_config
from .controller import ExecutionController


class NPUTandem:
    """The proposed design: GEMM unit + Tandem Processor, in tandem."""

    def __init__(self, config: Optional[NPUConfig] = None,
                 overlap: bool = True, fifo_coupling: bool = False,
                 special_functions: bool = False,
                 autotune: Optional[bool] = None):
        self.config = config or table3_config()
        self.overlap = overlap
        #: VPU emulation: GEMM outputs are forwarded through FIFOs to the
        #: vector unit's scratchpads instead of the Tandem Processor's
        #: fluid Output BUF ownership.
        self.fifo_coupling = fifo_coupling
        self.special_functions = special_functions
        #: Pipeline autotuning: ``True``/``False`` force it; ``None``
        #: follows ``REPRO_AUTOTUNE`` at compile time (default off, so
        #: existing figures/serving flows stay bit-identical).
        self.autotune = autotune
        self.controller = ExecutionController()

    @property
    def name(self) -> str:
        mode = "" if self.overlap else "-layerwise"
        return self.config.name + mode

    def _autotune_active(self) -> bool:
        """Whether compiles should search the pass pipeline."""
        from ..compiler import autotune_enabled
        return (self.autotune if self.autotune is not None
                else autotune_enabled())

    def compile(self, graph: Union[str, Graph]) -> CompiledModel:
        """Compile for this design; autotunes the pipeline when opted in."""
        if isinstance(graph, str):
            graph = build_model(graph)
        pipeline = None
        if self._autotune_active():
            from ..compiler import autotune_model
            from ..runtime.parallel import default_jobs
            report = autotune_model(graph, self.config,
                                    jobs=default_jobs(),
                                    special_functions=self.special_functions)
            pipeline = report.best_pipeline()
        return compile_model(graph, self.config.sim, self.config.gemm,
                             special_functions=self.special_functions,
                             pipeline=pipeline)

    def verify_record(self, graph: Union[str, Graph]) -> Dict:
        """Static-verification record for ``graph`` under this design.

        Resolves through the content-addressed cache (kind
        ``"verified"``), compiling + verifying on a miss; see
        :func:`repro.compiler.compiler.verify_record_for`.
        """
        from ..compiler import verify_record_for
        if isinstance(graph, str):
            graph = build_model(graph)
        return verify_record_for(graph, self.config.sim, self.config.gemm,
                                 special_functions=self.special_functions)

    def evaluate(self, graph: Union[str, Graph, CompiledModel]) -> RunResult:
        """End-to-end latency/energy; results are content-cached.

        Evaluations of a zoo model name or a Graph go through the shared
        :mod:`repro.runtime.cache` result tier keyed on (design state,
        graph structure). Pre-compiled :class:`CompiledModel` inputs are
        evaluated directly — the caller may have customized the blocks.
        """
        from ..runtime import cache as runtime_cache
        key = None
        if not isinstance(graph, CompiledModel) and \
                runtime_cache.get_cache().enabled:
            g = build_model(graph) if isinstance(graph, str) else graph
            desc = ("npu-tandem",
                    runtime_cache.object_fingerprint(self.config),
                    self.overlap, self.fifo_coupling, self.special_functions)
            if self._autotune_active():
                # Autotuned programs depend on the search budget and the
                # seed; default-flow keys stay exactly as before.
                from ..compiler import autotune_budget
                from ..runtime.seed import repro_seed
                desc = desc + ("autotune", autotune_budget(), repro_seed())
            key = runtime_cache.result_key(desc, g)
            hit = runtime_cache.get_result(key)
            if hit is not None:
                return hit
        result = self._evaluate(graph)
        if key is not None:
            runtime_cache.put_result(key, result)
        return result

    def _evaluate(self, graph: Union[str, Graph, CompiledModel]) -> RunResult:
        tel = get_telemetry()
        tel = tel if tel.enabled else None
        model = graph if isinstance(graph, CompiledModel) else self.compile(graph)
        freq = self.config.frequency_hz

        total_cycles = 0
        gemm_busy = 0
        tandem_busy = 0
        gemm_energy_pj = 0.0
        tandem_energy = EnergyLedger()
        per_op_cycles: Dict[str, float] = {}

        for cb in model.blocks:
            tile_result: Optional[MachineResult] = None
            release = None
            dispatch_insts = 0
            if cb.tile is not None:
                tile_result = estimate(cb.tile.meta, model.sim_params)
                release = int(tile_result.pipelined_cycles
                              * cb.tile.obuf_release_fraction)
                dispatch_insts = len(cb.tile.program)
            g_total = cb.gemm_cost.cycles if cb.gemm_cost is not None else 0
            g_tile = ceil(g_total / cb.tiles) if g_total else 0
            t_tile = (tile_result.pipelined_cycles
                      if tile_result is not None else 0)
            units = min(self.config.tandem_units, cb.tiles)
            if units > 1 and tile_result is not None:
                # Tiles fan out across parallel Tandem units; the shared
                # HBM interface still bounds the per-tile transfer rate.
                compute = (tile_result.compute_cycles
                           + tile_result.config_cycles
                           + tile_result.permute_cycles)
                t_tile = max(ceil(compute / units), tile_result.dae_cycles)
                release = int(t_tile * cb.tile.obuf_release_fraction)
            if (self.fifo_coupling and cb.kind == "gemm_tandem"
                    and t_tile):
                # FIFO copy of the GEMM tile into the vector unit's
                # scratchpad; the Output BUF itself is never blocked.
                tile_words = ceil(
                    model.graph.out_spec(cb.block.gemm).numel / cb.tiles)
                t_tile += ceil(tile_words / model.sim_params.tandem.lanes)
                release = 0

            schedule = self.controller.schedule(
                cb.kind, cb.tiles,
                gemm_tile_cycles=g_tile,
                tandem_tile_cycles=t_tile,
                obuf_release_cycles=release,
                dispatch_insts=dispatch_insts,
                overlap=self.overlap)
            total_cycles += schedule.total_cycles
            gemm_busy += schedule.gemm_busy_cycles
            tandem_busy += schedule.tandem_busy_cycles
            if tel is not None:
                tel.count("npu.blocks")
                tel.count("npu.tiles", cb.tiles)

            if cb.gemm_cost is not None:
                gemm_energy_pj += cb.gemm_cost.energy_pj
            if tile_result is not None:
                tandem_energy = tandem_energy.add(
                    tile_result.energy.scaled(cb.tiles))
                for op_type, meta in cb.tile.op_metas:
                    op_result = estimate(meta, model.sim_params)
                    per_op_cycles[op_type] = (
                        per_op_cycles.get(op_type, 0.0)
                        + op_result.pipelined_cycles * cb.tiles)

        if tel is not None:
            tel.count("npu.total_cycles", total_cycles)
            tel.count("npu.gemm.busy_cycles", gemm_busy)
            tel.count("npu.gemm.idle_cycles", total_cycles - gemm_busy)
            tel.count("npu.tandem.busy_cycles", tandem_busy)
            tel.count("npu.tandem.idle_cycles", total_cycles - tandem_busy)
            for op_type, cycles in per_op_cycles.items():
                tel.count(f"npu.op_cycles.{op_type}", cycles)

        total_seconds = total_cycles / freq
        static_j = total_seconds * self.config.static_watts
        energy_j = (gemm_energy_pj * 1e-12 + tandem_energy.total_joules()
                    + static_j)
        breakdown = {name: value * 1e-12 for name, value in {
            "dram": tandem_energy.dram_pj,
            "on_chip_sram": tandem_energy.spad_pj,
            "alu": tandem_energy.alu_pj,
            "loop_addr": tandem_energy.loop_addr_pj,
            "other": tandem_energy.other_pj,
            "regfile": tandem_energy.regfile_pj,
        }.items()}
        breakdown["gemm_unit"] = gemm_energy_pj * 1e-12
        breakdown["static"] = static_j
        return RunResult(
            design=self.name,
            model=model.name,
            total_seconds=total_seconds,
            gemm_seconds=gemm_busy / freq,
            nongemm_seconds=tandem_busy / freq,
            energy_joules=energy_j,
            energy_breakdown=breakdown,
            per_op_seconds={op: c / freq for op, c in per_op_cycles.items()},
            gemm_utilization=gemm_busy / total_cycles if total_cycles else 0.0,
            nongemm_utilization=(tandem_busy / total_cycles
                                 if total_cycles else 0.0),
        )
