"""NPU-Tandem: GEMM unit + Tandem Processor integration."""

from .config import NPUConfig, iso_a100_config, table3_config
from .controller import BlockSchedule, ExecutionController, FsmState
from .npu import NPUTandem
from .runner import FunctionalRunner, to_permute_binding, to_tile_transfer
from .trace import TraceEvent, overlap_fraction, render_timeline, trace_block, trace_model

__all__ = [
    "TraceEvent",
    "overlap_fraction",
    "render_timeline",
    "trace_block",
    "trace_model",
    "BlockSchedule",
    "ExecutionController",
    "FsmState",
    "FunctionalRunner",
    "NPUConfig",
    "NPUTandem",
    "iso_a100_config",
    "table3_config",
    "to_permute_binding",
    "to_tile_transfer",
]
