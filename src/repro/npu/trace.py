"""Execution traces: the Figure 10 timeline, reconstructed per block.

``trace_model`` replays the controller's tile schedule and records when
each unit works on each tile, producing the software-pipelining picture
(GEMM on tile i+1 while the Tandem Processor consumes tile i) as data
and as ASCII art.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Union

from ..compiler import CompiledModel
from ..graph import Graph
from ..simulator import estimate
from .npu import NPUTandem


@dataclass(frozen=True)
class TraceEvent:
    block: str
    unit: str          # "gemm" | "tandem"
    tile: int
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle


def trace_block(name: str, tiles: int, g: int, t: int, release: int,
                origin: int = 0, max_tiles: int = 64) -> List[TraceEvent]:
    """Replay the double-buffered tile recurrence into events."""
    events: List[TraceEvent] = []
    gemm_done = origin
    tandem_done = origin
    release_two_back = origin
    release_one_back = origin
    for i in range(min(tiles, max_tiles)):
        if g:
            gemm_start = max(gemm_done, release_two_back)
            gemm_done = gemm_start + g
            events.append(TraceEvent(name, "gemm", i, gemm_start, gemm_done))
        if t:
            tandem_start = max(tandem_done, gemm_done if g else tandem_done)
            release_two_back = release_one_back
            release_one_back = tandem_start + release
            tandem_done = tandem_start + t
            events.append(TraceEvent(name, "tandem", i, tandem_start,
                                     tandem_done))
    return events


def trace_model(graph: Union[str, Graph, CompiledModel],
                npu: Optional[NPUTandem] = None,
                max_tiles_per_block: int = 64) -> List[TraceEvent]:
    npu = npu or NPUTandem()
    model = graph if isinstance(graph, CompiledModel) else npu.compile(graph)
    events: List[TraceEvent] = []
    origin = 0
    for cb in model.blocks:
        g_total = cb.gemm_cost.cycles if cb.gemm_cost is not None else 0
        g = ceil(g_total / cb.tiles) if g_total else 0
        t = 0
        release = 0
        if cb.tile is not None:
            result = estimate(cb.tile.meta, model.sim_params)
            t = result.pipelined_cycles
            release = int(t * cb.tile.obuf_release_fraction)
        block_events = trace_block(cb.name, cb.tiles, g, t, release,
                                   origin=origin,
                                   max_tiles=max_tiles_per_block)
        events.extend(block_events)
        if block_events:
            origin = max(e.end_cycle for e in block_events)
    return events


def render_timeline(events: List[TraceEvent], width: int = 72) -> str:
    """ASCII Gantt view: one row per unit, '#' where the unit is busy."""
    if not events:
        return "(empty trace)"
    start = min(e.start_cycle for e in events)
    end = max(e.end_cycle for e in events)
    span = max(end - start, 1)
    rows = {"gemm": [" "] * width, "tandem": [" "] * width}
    for event in events:
        lo = int((event.start_cycle - start) / span * (width - 1))
        hi = max(lo + 1, int((event.end_cycle - start) / span * (width - 1)))
        for i in range(lo, min(hi, width)):
            rows[event.unit][i] = "#"
    lines = [f"cycles {start}..{end}"]
    for unit in ("gemm", "tandem"):
        lines.append(f"{unit:>6s} |{''.join(rows[unit])}|")
    return "\n".join(lines)


def overlap_fraction(events: List[TraceEvent]) -> float:
    """Fraction of busy cycles where both units work simultaneously."""
    points = sorted({e.start_cycle for e in events}
                    | {e.end_cycle for e in events})
    overlap = 0
    busy = 0
    for lo, hi in zip(points, points[1:]):
        mid = (lo + hi) / 2
        active = {e.unit for e in events
                  if e.start_cycle <= mid < e.end_cycle}
        if active:
            busy += hi - lo
        if len(active) == 2:
            overlap += hi - lo
    return overlap / busy if busy else 0.0
