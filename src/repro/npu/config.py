"""NPU-Tandem configurations (Table 3 + the iso-TOPs A100 scale-up)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..gemm import SystolicParams
from ..simulator.params import DramParams, SimParams, TandemParams


@dataclass(frozen=True)
class NPUConfig:
    """One NPU-Tandem design point: GEMM unit + Tandem Processor."""

    name: str = "npu-tandem"
    sim: SimParams = field(default_factory=SimParams)
    gemm: SystolicParams = field(default_factory=SystolicParams)
    #: Tandem Processor core power (Section 8: 2.7 W at 65 nm, 1 GHz).
    tandem_tdp_watts: float = 2.7
    #: Always-on power of the rest of the NPU (clock tree, SRAM leakage,
    #: controller) charged against wall-clock time.
    static_watts: float = 1.0
    #: Parallel Tandem Processor instances (iso-TOPs scale-up): tiles are
    #: distributed across units, each a Table 3 32-lane core.
    tandem_units: int = 1

    @property
    def frequency_hz(self) -> float:
        return self.gemm.frequency_hz


def table3_config() -> NPUConfig:
    """The paper's evaluation configuration (Table 3)."""
    return NPUConfig()


def iso_a100_config(scale: int = 216) -> NPUConfig:
    """Iso-TOPs scale-up (Section 7): 216x MACs and 216x SIMD lanes.

    The scaled design is paired with an HBM-class memory system like the
    A100's (the paper notes the scaled-up Tandem Processor becomes
    memory-bandwidth-bound on GPT-2, which requires a finite but large
    bandwidth).
    """
    base = NPUConfig()
    hbm = DramParams(bandwidth_bytes_per_s=1555.0e9, latency_cycles=200,
                     energy_pj_per_byte=7.0)
    # Each unit keeps the Table 3 shape (32 lanes, same buffers), so the
    # compiler's tiling is unchanged and tiles fan out across units.
    sim = SimParams(tandem=base.sim.tandem, dram=hbm, energy=base.sim.energy,
                    overlay=base.sim.overlay)
    return NPUConfig(name=f"npu-tandem-x{scale}", sim=sim,
                     gemm=base.gemm.scaled(scale),
                     tandem_tdp_watts=base.tandem_tdp_watts * scale,
                     static_watts=base.static_watts * scale,
                     tandem_units=scale)
