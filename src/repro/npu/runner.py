"""Functional runner: executes a compiled model on real integer tensors.

Mirrors the paper's validation flow (Section 7): the compiled programs
run on the detailed :class:`~repro.simulator.TandemMachine`, the GEMM
unit's functional semantics produce the Output BUF contents, and the
result is compared against :class:`~repro.compiler.ReferenceExecutor`.

Intended for small models/tiles (tests and the quickstart example): the
detailed interpreter is exact but slow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler import CompiledBlock, CompiledModel, PermuteSlot, TransferSlot
from ..gemm import SystolicArray
from ..graph import Graph, Node
from ..isa import Namespace
from ..simulator import (
    DramStore,
    MachineResult,
    PermuteBinding,
    TandemMachine,
    TileTransfer,
)


def _w32(values: np.ndarray) -> np.ndarray:
    """GEMM accumulators are 32 bits wide (Table 3)."""
    wrapped = np.asarray(values, dtype=np.int64) & 0xFFFFFFFF
    return np.where(wrapped >= 1 << 31, wrapped - (1 << 32), wrapped)


def to_tile_transfer(slot: TransferSlot) -> TileTransfer:
    region = None
    if slot.region is not None:
        region = tuple(slice(a, b) for a, b in slot.region)
    return TileTransfer(
        direction=slot.direction,
        dram_tensor=slot.tensor,
        ns=slot.ns,
        spad_base=slot.base,
        region=region,
        pre_reshape=slot.pre_reshape,
        perm=slot.perm,
        pad=slot.pad,
        pad_value=slot.pad_value,
        element_bytes=slot.element_bytes,
    )


def to_permute_binding(slot: PermuteSlot) -> PermuteBinding:
    return PermuteBinding(
        src_ns=slot.src_ns, src_base=slot.src_base,
        dst_ns=slot.dst_ns, dst_base=slot.dst_base,
        shape=slot.shape, perm=slot.perm, cross_lane=slot.cross_lane)


class FunctionalRunner:
    """Runs every block of a compiled model through the detailed machine."""

    def __init__(self, model: CompiledModel, fast: bool = False):
        if any(cb.tiles != 1 for cb in model.blocks):
            raise ValueError(
                "functional execution supports single-tile compilations; "
                "recompile the model with small enough tensors")
        self.model = model
        self.dram = DramStore()
        self.machine = TandemMachine(model.sim_params, self.dram, fast=fast)
        self.block_results: List[Tuple[str, MachineResult]] = []

    def bind(self, values: Dict[str, np.ndarray]) -> None:
        for name, value in values.items():
            self.dram.bind(name, value)

    def _ensure_allocated(self) -> None:
        for name, spec in self.model.graph.tensors.items():
            if name not in self.dram:
                self.dram.allocate(name, spec.shape)

    def _alias_caches(self) -> None:
        """Alias each CacheAppend output to its cache input's storage.

        The compiled program stores only the appended K/V slice; sharing
        the DRAM array makes that in-place slice update visible under the
        output's name (and keeps per-step traffic O(new tokens))."""
        for node in self.model.graph.topological_order():
            if node.op_type != "CacheAppend":
                continue
            cache_in = node.inputs[0]
            if cache_in not in self.dram:
                self.dram.allocate(
                    cache_in, self.model.graph.tensor(cache_in).shape)
            self.dram.alias(node.outputs[0], cache_in)

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute end-to-end; returns every DRAM tensor after the run.

        ``inputs`` must bind graph inputs; parameters must have been
        bound beforehand (:meth:`bind`), or they default to zeros.
        """
        self.bind(inputs)
        self._alias_caches()
        self._ensure_allocated()
        graph = self.model.graph
        array = SystolicArray(self.model.gemm_params)

        for cb in self.model.blocks:
            if cb.block.gemm is not None:
                out = _w32(self._run_gemm(cb.block.gemm, graph, array))
                # The GEMM unit fills the Output BUF; its own store path
                # also drains it to DRAM for consumers in later blocks.
                self.machine.pads[Namespace.OBUF].load_block(
                    0, out.reshape(-1))
                self.dram.bind(cb.block.gemm.outputs[0], out)
            if cb.tile is not None:
                transfers = [to_tile_transfer(s) for s in cb.tile.transfers]
                permutes = [to_permute_binding(s) for s in cb.tile.permutes]
                result = self.machine.run(cb.tile.program, transfers, permutes)
                self.block_results.append((cb.name, result))
        return dict(self.dram.tensors)

    def _run_gemm(self, node: Node, graph: Graph,
                  array: SystolicArray) -> np.ndarray:
        x = self.dram.get(node.inputs[0])
        if node.op_type == "Conv":
            w = self.dram.get(node.params[0])
            out = array.conv2d(x, w, stride=node.attrs["strides"][0],
                               pad=node.attrs["pads"][0])
            if len(node.params) > 1:
                out = out + self.dram.get(node.params[1]).reshape(1, -1, 1, 1)
            return out
        if node.op_type == "Gemm":
            w = self.dram.get(node.params[0])
            out = array.matmul(x, w)
            if len(node.params) > 1:
                out = out + self.dram.get(node.params[1])
            return out
        if node.op_type == "MatMul":
            if len(node.inputs) > 1:
                b = self.dram.get(node.inputs[1])
            else:
                b = self.dram.get(node.params[0])
            return array.matmul(x, b)
        raise ValueError(f"{node.op_type} is not a GEMM-class operator")

    def total_machine_result(self) -> MachineResult:
        merged = MachineResult()
        for _name, result in self.block_results:
            merged.merge(result)
        return merged
