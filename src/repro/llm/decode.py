"""Autoregressive decode-step graphs with an explicit KV-cache.

One :func:`build_step` call emits the graph for a single forward step of
a LLaMA-style decoder (RMSNorm / SwiGLU / RoPE / fused CausalSoftmax)
over ``n_new`` fresh tokens with ``past_len`` tokens already resident in
the KV-cache:

* **Prefill** is ``build_step(config, past_len=0, n_new=prompt_len)``.
* **Decode** is ``build_step(config, past_len=t, n_new=1)`` per token.

The KV-cache is a first-class DRAM tensor pair per layer. Each step
takes ``k_cache_L`` / ``v_cache_L`` as graph *inputs* sized to the full
context window, appends the new keys/values with ``CacheAppend`` (the
compiled program stores only the O(n_new) slice; the DRAM tensors are
aliased so the update lands in place — see
:meth:`repro.simulator.DramStore.alias`), and attends over the whole
window through the GEMM unit. Cache columns beyond ``past + n_new`` are
zero and masked off by ``CausalSoftmax``'s ``offset`` anyway, so the
incremental path is bit-exact against a full-context prefill — the
property ``tests/test_llm_decode.py`` pins.

:class:`DecodeSession` drives multi-step generation through either the
:class:`~repro.npu.FunctionalRunner` (detailed machine, tiny configs) or
the :class:`~repro.compiler.ReferenceExecutor`, feeding each step's
cache outputs forward as the next step's cache inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import Graph, GraphBuilder
from ..runtime import seeded_rng

#: Q-format fraction bits shared with the integer lowerings.
from ..compiler.integer_ops import FRAC_BITS


@dataclass(frozen=True)
class LLMConfig:
    """Shape of one autoregressive decoder, plus its context window."""
    name: str
    hidden: int
    heads: int
    layers: int
    intermediate: int
    vocab: int
    max_context: int

    def __post_init__(self):
        if self.hidden % self.heads:
            raise ValueError("hidden must divide evenly across heads")
        if (self.hidden // self.heads) % 2:
            raise ValueError("head_dim must be even for rotary embeddings")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    @property
    def kv_words_per_token(self) -> int:
        """KV-cache words appended per decoded token (K + V, all layers)."""
        return 2 * self.layers * self.hidden

    @property
    def kv_bytes_per_token(self) -> int:
        """DRAM bytes per cached token (int32 words)."""
        return 4 * self.kv_words_per_token


#: Decode-config registry. ``tinyllm`` is sized so every step compiles
#: at tiles == 1 and runs on the detailed machine; ``gpt2_rms`` matches
#: the zoo's GPT-2-RMS variant and anchors the serving cost model.
LLM_CONFIGS: Dict[str, LLMConfig] = {
    "tinyllm": LLMConfig("tinyllm", hidden=32, heads=2, layers=2,
                         intermediate=64, vocab=96, max_context=16),
    "gpt2_rms": LLMConfig("gpt2_rms", hidden=128, heads=4, layers=2,
                          intermediate=256, vocab=8192, max_context=128),
}


def available_llm_configs() -> List[str]:
    return sorted(LLM_CONFIGS)


def get_llm_config(name: str) -> LLMConfig:
    try:
        return LLM_CONFIGS[name]
    except KeyError:
        raise KeyError(f"unknown LLM config {name!r}; available: "
                       f"{', '.join(available_llm_configs())}") from None


@dataclass(frozen=True)
class DecodeStep:
    """One compiled-shape step: the graph plus its binding map."""
    graph: Graph
    config: LLMConfig
    past_len: int
    n_new: int
    x_name: str
    logits_name: str
    #: Per layer: (k_cache input, v_cache input) graph-input names.
    cache_inputs: Tuple[Tuple[str, str], ...]
    #: Per layer: (k_cache output, v_cache output) names, aligned with
    #: ``cache_inputs``.
    cache_outputs: Tuple[Tuple[str, str], ...]
    #: Rotary-table parameter names; every entry is bound to the
    #: ``[past_len, past_len + n_new)`` rows of the full table.
    rope_cos_names: Tuple[str, ...]
    rope_sin_names: Tuple[str, ...]


def _linear(b: GraphBuilder, x: str, features: int, bias: bool = True) -> str:
    y = b.linear_weights_matmul(x, features)
    if bias:
        param = b.param("b_proj", (features,), "int32")
        y = b.emit("Add", [y], b.spec(y).shape, "int32", {}, [param])
    return y


def build_step(config: LLMConfig, past_len: int, n_new: int) -> DecodeStep:
    """The decode-step graph for ``n_new`` tokens after ``past_len``."""
    if n_new < 1:
        raise ValueError("n_new must be >= 1")
    if past_len < 0 or past_len + n_new > config.max_context:
        raise ValueError(
            f"step [{past_len}, {past_len + n_new}) exceeds the "
            f"{config.max_context}-token context window")
    h, hd, ctx = config.heads, config.head_dim, config.max_context
    b = GraphBuilder(f"{config.name}_p{past_len}_n{n_new}")
    x_in = x = b.input("x", (1, n_new, config.hidden), dtype="int32")
    cache_inputs: List[Tuple[str, str]] = []
    cache_outputs: List[Tuple[str, str]] = []
    for layer in range(config.layers):
        # K is cached pre-transposed (1, h, hd, ctx) so the QK^T matmul
        # reads it directly; V keeps (1, h, ctx, hd) for probs @ V.
        k_in = b.input(f"k_cache_{layer}", (1, h, hd, ctx), dtype="int32")
        v_in = b.input(f"v_cache_{layer}", (1, h, ctx, hd), dtype="int32")
        cache_inputs.append((k_in, v_in))

        pre = b.rms_norm(x)
        q = _linear(b, pre, config.hidden)
        k = _linear(b, pre, config.hidden)
        v = _linear(b, pre, config.hidden)
        # Split heads: (1, n_new, hidden) -> (1, h, n_new, hd).
        q = b.transpose(b.reshape(q, (1, n_new, h, hd)), (0, 2, 1, 3))
        k = b.transpose(b.reshape(k, (1, n_new, h, hd)), (0, 2, 1, 3))
        v = b.transpose(b.reshape(v, (1, n_new, h, hd)), (0, 2, 1, 3))
        q = b.rope(q)
        k = b.rope(k)
        k_cache = b.cache_append(k_in, k, axis=3, offset=past_len,
                                 perm=(0, 1, 3, 2))
        v_cache = b.cache_append(v_in, v, axis=2, offset=past_len)
        cache_outputs.append((k_cache, v_cache))

        scores = b.matmul(q, k_cache)              # (1, h, n_new, ctx)
        scores = b.div_scalar(scores, sqrt(hd))
        probs = b.causal_softmax(scores, offset=past_len)
        context = b.matmul(probs, v_cache)         # (1, h, n_new, hd)
        context = b.reshape(b.transpose(context, (0, 2, 1, 3)),
                            (1, n_new, config.hidden))
        x = b.add(x, _linear(b, context, config.hidden))

        pre = b.rms_norm(x)
        gate = _linear(b, pre, config.intermediate)
        up = _linear(b, pre, config.intermediate)
        x = b.add(x, _linear(b, b.swiglu(gate, up), config.hidden))

    x = b.rms_norm(x)
    logits = b.linear_weights_matmul(x, config.vocab)
    outputs = [logits]
    for k_cache, v_cache in cache_outputs:
        outputs.extend((k_cache, v_cache))
    graph = b.finish(outputs)
    cos = tuple(t for t in graph.tensors if t.startswith("c_ropecos"))
    sin = tuple(t for t in graph.tensors if t.startswith("c_ropesin"))
    return DecodeStep(graph=graph, config=config, past_len=past_len,
                      n_new=n_new, x_name=x_in, logits_name=logits,
                      cache_inputs=tuple(cache_inputs),
                      cache_outputs=tuple(cache_outputs),
                      rope_cos_names=cos, rope_sin_names=sin)


# ---------------------------------------------------------------------------
# Deterministic parameters
# ---------------------------------------------------------------------------
def rope_tables(config: LLMConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Q8 rotary cos/sin tables for the full context window.

    Standard RoPE frequencies (theta = 10000); rows are absolute
    positions, so a step at ``past_len`` binds rows
    ``[past_len, past_len + n_new)``.
    """
    half = config.head_dim // 2
    inv_freq = 10000.0 ** (-np.arange(half) * 2.0 / config.head_dim)
    angles = np.arange(config.max_context)[:, None] * inv_freq[None, :]
    scale = 1 << FRAC_BITS
    cos = np.round(np.cos(angles) * scale).astype(np.int64)
    sin = np.round(np.sin(angles) * scale).astype(np.int64)
    return cos, sin


def embed_table(config: LLMConfig) -> np.ndarray:
    """Seeded token-embedding table (host-side lookup; Gather is
    cost-only in the compiled flow, so the step graph takes embedded
    activations as its input)."""
    rng = seeded_rng("llm-embed", config.name)
    return rng.integers(-128, 128, (config.vocab, config.hidden))


def step_weights(step: DecodeStep) -> Dict[str, np.ndarray]:
    """Weights for every parameter of a step graph, keyed by name.

    Values derive from ``seeded_rng("llm-weight", config, name)``: the
    builder uniquifies parameter names in emission order, and every step
    of one config emits the same layer structure, so the same logical
    weight gets the same name — and therefore the same values — at every
    ``(past_len, n_new)`` shape.
    """
    graph, config = step.graph, step.config
    rope = set(step.rope_cos_names) | set(step.rope_sin_names)
    cos, sin = rope_tables(config)
    rows = slice(step.past_len, step.past_len + step.n_new)
    weights: Dict[str, np.ndarray] = {}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is not None or name in graph.graph_inputs:
            continue
        if name in rope:
            table = cos if name in step.rope_cos_names else sin
            weights[name] = table[rows]
            continue
        rng = seeded_rng("llm-weight", config.name, name)
        weights[name] = rng.integers(-64, 64, spec.shape)
    return weights


@dataclass
class StepRecord:
    """What one executed step did (for tables, traces and tests)."""
    phase: str                 # "prefill" | "decode"
    past_len: int
    n_new: int
    tokens_in: Tuple[int, ...]
    next_token: int
    blocks: int = 0
    machine_cycles: int = 0


class DecodeSession:
    """Multi-step autoregressive generation over one config.

    ``executor="functional"`` runs every step's compiled program on the
    detailed Tandem machine (requires a config that compiles at
    tiles == 1, e.g. ``tinyllm``); ``executor="reference"`` uses the
    integer reference executor and works for any config. Both paths
    share the same seeded weights and the same KV-cache hand-off, and
    produce identical tokens.
    """

    def __init__(self, config, executor: str = "functional",
                 fast: bool = True):
        self.config = (config if isinstance(config, LLMConfig)
                       else get_llm_config(config))
        if executor not in ("functional", "reference"):
            raise ValueError(
                f"unknown executor {executor!r} "
                f"(expected 'functional' or 'reference')")
        self.executor = executor
        self.fast = fast
        self.embed = embed_table(self.config)
        cfg = self.config
        self.k_caches = [np.zeros((1, cfg.heads, cfg.head_dim,
                                   cfg.max_context), dtype=np.int64)
                         for _ in range(cfg.layers)]
        self.v_caches = [np.zeros((1, cfg.heads, cfg.max_context,
                                   cfg.head_dim), dtype=np.int64)
                         for _ in range(cfg.layers)]
        self.past_len = 0
        self.tokens: List[int] = []
        self.last_logits: Optional[np.ndarray] = None
        self.records: List[StepRecord] = []

    def _run_step(self, token_ids: Sequence[int], phase: str) -> np.ndarray:
        token_ids = [int(t) % self.config.vocab for t in token_ids]
        step = build_step(self.config, self.past_len, len(token_ids))
        graph = step.graph
        weights = step_weights(step)
        x = self.embed[token_ids][None, :, :]
        inputs: Dict[str, np.ndarray] = {step.x_name: x}
        for layer, (k_in, v_in) in enumerate(step.cache_inputs):
            inputs[k_in] = self.k_caches[layer]
            inputs[v_in] = self.v_caches[layer]
        blocks = 0
        cycles = 0
        if self.executor == "functional":
            from ..compiler import compile_model
            from ..npu import FunctionalRunner
            model = compile_model(graph)
            runner = FunctionalRunner(model, fast=self.fast)
            runner.bind(weights)
            outs = runner.run(inputs)
            blocks = len(model.blocks)
            cycles = runner.total_machine_result().cycles
        else:
            from ..compiler import ReferenceExecutor
            outs = ReferenceExecutor(graph).run({**weights, **inputs})
        for layer, (k_out, v_out) in enumerate(step.cache_outputs):
            self.k_caches[layer] = np.array(outs[k_out], dtype=np.int64)
            self.v_caches[layer] = np.array(outs[v_out], dtype=np.int64)
        logits = np.asarray(outs[step.logits_name])
        self.past_len += len(token_ids)
        self.tokens.extend(token_ids)
        self.last_logits = logits
        self.records.append(StepRecord(
            phase=phase, past_len=step.past_len, n_new=step.n_new,
            tokens_in=tuple(token_ids),
            next_token=int(np.argmax(logits[0, -1])),
            blocks=blocks, machine_cycles=int(cycles)))
        return logits

    def prefill(self, prompt_tokens: Sequence[int]) -> np.ndarray:
        """Run the whole prompt as one step; returns its logits."""
        if self.past_len:
            raise RuntimeError("prefill must be the session's first step")
        if not len(prompt_tokens):
            raise ValueError("prompt must be non-empty")
        return self._run_step(prompt_tokens, "prefill")

    def decode(self, n_tokens: int) -> List[int]:
        """Greedy-decode ``n_tokens`` single-token steps; returns them."""
        if self.last_logits is None:
            raise RuntimeError("call prefill() before decode()")
        generated: List[int] = []
        for _ in range(n_tokens):
            next_token = int(np.argmax(self.last_logits[0, -1]))
            generated.append(next_token)
            self._run_step([next_token], "decode")
        return generated


# ---------------------------------------------------------------------------
# Analytic step costs (feeds the serving layer)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DecodeStepCosts:
    """NPU-Tandem latencies for one config's prefill/decode shapes."""
    config: str
    prefill_tokens: int
    prefill_s: float         # one prefill step over ``prefill_tokens``
    decode_step_s: float     # one single-token decode step
    kv_bytes_per_token: int
    max_context: int

    @property
    def prefill_token_s(self) -> float:
        return self.prefill_s / self.prefill_tokens


def decode_step_costs(config, prefill_tokens: int = 32,
                      decode_past: Optional[int] = None,
                      npu=None) -> DecodeStepCosts:
    """Evaluate representative prefill/decode steps on the NPU model.

    Both evaluations flow through :meth:`repro.npu.NPUTandem.evaluate`
    and are content-cached, so serving sweeps resolve them once.
    """
    from ..npu import NPUTandem
    cfg = config if isinstance(config, LLMConfig) else get_llm_config(config)
    npu = npu or NPUTandem()
    prefill_tokens = min(prefill_tokens, cfg.max_context)
    past = (cfg.max_context // 2 if decode_past is None
            else min(decode_past, cfg.max_context - 1))
    prefill_s = npu.evaluate(
        build_step(cfg, 0, prefill_tokens).graph).total_seconds
    decode_s = npu.evaluate(build_step(cfg, past, 1).graph).total_seconds
    return DecodeStepCosts(config=cfg.name, prefill_tokens=prefill_tokens,
                           prefill_s=prefill_s, decode_step_s=decode_s,
                           kv_bytes_per_token=cfg.kv_bytes_per_token,
                           max_context=cfg.max_context)
