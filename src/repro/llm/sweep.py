"""The LLM serving sweep: scheduler x arrival-rate, schema-tagged.

``repro serve --llm`` runs a grid of one-shot vs continuous batching
points over an offered-rate ladder and reduces the per-point
:class:`~repro.serving.metrics.LLMServingReport` rows to the headline
the continuous-batching literature predicts: at equal SLO, continuous
batching sustains strictly more goodput than one-shot dynamic batching,
because slots freed by short requests are refilled immediately instead
of decoding padding until the longest member finishes.

Work items follow the :mod:`repro.serving.sweep` discipline: frozen,
picklable points carrying their own :class:`LLMServiceCosts`, fanned
out through :func:`repro.runtime.parallel.parallel_map`, every point a
pure function of ``(REPRO_SEED, point)`` — serial and ``--jobs N``
sweeps produce byte-identical reports.

The JSON report carries a ``schema`` tag (``repro-llm-report-v1``) and
passes :func:`validate_llm_report`, which CI's llm-smoke job runs
against a fresh sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..runtime import parallel_map
from ..runtime.seed import repro_seed
from ..serving.continuous import (
    LLM_SCHEDULERS,
    LLMServiceCosts,
    llm_poisson_requests,
    make_llm_batcher,
)
from ..serving.metrics import LLMServingReport

LLM_SCHEMA = "repro-llm-report-v1"

#: Rate ladder as fractions of the estimated saturation throughput.
DEFAULT_LOAD_FRACTIONS = (0.1, 0.25, 0.5, 0.8)
DEFAULT_SLO_ATTAINMENT = 0.95


@dataclass(frozen=True)
class LLMSweepPoint:
    """One (scheduler, rate) cell; self-contained and picklable."""
    costs: LLMServiceCosts
    scheduler: str             # one of LLM_SCHEDULERS
    rate_rps: float
    duration_s: float = 10.0
    max_slots: int = 8
    prompt_range: Tuple[int, int] = (8, 64)
    output_range: Tuple[int, int] = (4, 64)
    stream: int = 0


def run_llm_point(point: LLMSweepPoint) -> LLMServingReport:
    """Simulate one cell (module-level so process pools can pickle)."""
    requests = llm_poisson_requests(point.rate_rps, point.duration_s,
                                    point.prompt_range,
                                    point.output_range, point.stream)
    batcher = make_llm_batcher(point.scheduler, point.costs,
                               max_slots=point.max_slots)
    return batcher.run(requests, rate_rps=point.rate_rps,
                       duration_s=point.duration_s)


def llm_grid(costs: Optional[LLMServiceCosts] = None,
             config: str = "gpt2_rms",
             schedulers: Sequence[str] = LLM_SCHEDULERS,
             rates: Optional[Sequence[float]] = None,
             duration_s: float = 10.0,
             max_slots: int = 8,
             prompt_range: Tuple[int, int] = (8, 64),
             output_range: Tuple[int, int] = (4, 64)) -> List[LLMSweepPoint]:
    """The scheduler x rate grid, in a stable order.

    With no explicit ``rates``, the ladder is anchored to the costs'
    estimated saturation throughput (:data:`DEFAULT_LOAD_FRACTIONS` of
    it), so the sweep stays meaningful when the underlying cycle model
    shifts.
    """
    costs = costs or LLMServiceCosts.resolve(config)
    unknown = [s for s in schedulers if s not in LLM_SCHEDULERS]
    if unknown:
        raise ValueError(f"unknown LLM schedulers {', '.join(unknown)}; "
                         f"known: {', '.join(LLM_SCHEDULERS)}")
    if rates is None:
        mean_prompt = sum(prompt_range) / 2.0
        mean_output = sum(output_range) / 2.0
        saturation = costs.saturation_rps(max_slots, mean_prompt,
                                          mean_output)
        rates = tuple(round(saturation * f, 2)
                      for f in DEFAULT_LOAD_FRACTIONS)
    base = LLMSweepPoint(costs=costs, scheduler="continuous", rate_rps=0.0,
                         duration_s=duration_s, max_slots=max_slots,
                         prompt_range=tuple(prompt_range),
                         output_range=tuple(output_range))
    return [replace(base, scheduler=scheduler, rate_rps=rate)
            for scheduler in schedulers
            for rate in rates]


def run_llm_sweep(points: Sequence[LLMSweepPoint],
                  jobs: int = 1) -> List[LLMServingReport]:
    """All cells, in input order; ``jobs`` fans out across processes."""
    return parallel_map(run_llm_point, list(points), jobs=jobs)


def goodput_at_slo(rows: Sequence[Dict[str, Any]],
                   attainment: float = DEFAULT_SLO_ATTAINMENT) -> float:
    """Highest goodput among rows meeting the SLO-attainment bar."""
    eligible = [row["goodput_rps"] for row in rows
                if row["slo_attainment"] >= attainment]
    return max(eligible, default=0.0)


def llm_report(points: Sequence[LLMSweepPoint],
               reports: Sequence[LLMServingReport]) -> Dict[str, Any]:
    """Reduce a sweep to the schema-tagged LLM serving report.

    The summary keeps, per scheduler, the best goodput among points
    with >= 95 % SLO attainment — the "req/s at SLO" headline — plus
    the cross-scheduler comparison the benchmark asserts on.
    """
    if len(points) != len(reports):
        raise ValueError("points and reports must pair up")
    if not points:
        raise ValueError("empty LLM sweep")
    rows = [report.as_dict() for report in reports]
    summary: Dict[str, Any] = {}
    for scheduler in dict.fromkeys(p.scheduler for p in points):
        mine = [r for r in rows if r["scheduler"] == scheduler]
        summary[scheduler] = {
            "goodput_at_slo_rps": goodput_at_slo(mine),
            "best_goodput_rps": max(r["goodput_rps"] for r in mine),
            "ttft_p95_ms_at_min_rate": mine[0]["ttft_p95_ms"],
            "itl_p95_ms_at_min_rate": mine[0]["itl_p95_ms"],
        }
    if {"continuous", "oneshot"} <= set(summary):
        summary["continuous_beats_oneshot"] = bool(
            summary["continuous"]["goodput_at_slo_rps"]
            > summary["oneshot"]["goodput_at_slo_rps"])
    first = points[0]
    return {
        "schema": LLM_SCHEMA,
        "seed": repro_seed(),
        "config": first.costs.config,
        "max_slots": first.max_slots,
        "kv_budget_tokens": first.costs.kv_budget_tokens,
        "slo_multiplier": first.costs.slo_multiplier,
        "slo_attainment_bar": DEFAULT_SLO_ATTAINMENT,
        "duration_s": first.duration_s,
        "rows": rows,
        "summary": summary,
    }


def llm_report_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


#: Required row fields and their types.
_ROW_FIELDS = {
    "scheduler": str, "config": str, "max_slots": int,
    "kv_budget_tokens": int, "rate_rps": (int, float),
    "duration_s": (int, float), "slo_multiplier": (int, float),
    "offered": int, "completed": int, "rejected": int,
    "makespan_s": (int, float), "throughput_rps": (int, float),
    "goodput_rps": (int, float), "slo_attainment": (int, float),
    "tokens_generated": int, "tokens_per_s": (int, float),
    "mean_batch_size": (int, float), "kv_peak_tokens": int,
    "ttft_p50_ms": (int, float), "ttft_p95_ms": (int, float),
    "ttft_p99_ms": (int, float), "itl_p50_ms": (int, float),
    "itl_p95_ms": (int, float), "itl_p99_ms": (int, float),
}


def validate_llm_report(payload: Any) -> List[str]:
    """Structural problems with an LLM report (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != LLM_SCHEMA:
        problems.append(f"schema must be {LLM_SCHEMA!r}, "
                        f"got {payload.get('schema')!r}")
    for key, kind in (("seed", int), ("config", str), ("max_slots", int),
                      ("kv_budget_tokens", int),
                      ("slo_multiplier", (int, float)),
                      ("slo_attainment_bar", (int, float)),
                      ("duration_s", (int, float)), ("rows", list),
                      ("summary", dict)):
        if not isinstance(payload.get(key), kind):
            problems.append(f"missing or mistyped field {key!r}")
    rows = payload.get("rows")
    if isinstance(rows, list):
        if not rows:
            problems.append("rows must be non-empty")
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"rows[{i}] must be an object")
                continue
            for key, kind in _ROW_FIELDS.items():
                if not isinstance(row.get(key), kind) or \
                        isinstance(row.get(key), bool):
                    problems.append(f"rows[{i}].{key} missing or mistyped")
            if row.get("scheduler") not in LLM_SCHEDULERS:
                problems.append(f"rows[{i}].scheduler not a known scheduler")
    summary = payload.get("summary")
    if isinstance(summary, dict):
        for scheduler in LLM_SCHEDULERS:
            entry = summary.get(scheduler)
            if entry is None:
                continue
            if not isinstance(entry, dict) or not isinstance(
                    entry.get("goodput_at_slo_rps"), (int, float)):
                problems.append(
                    f"summary[{scheduler!r}].goodput_at_slo_rps missing")
    return problems


def llm_table(payload: Dict[str, Any]) -> str:
    """Fixed-width rendering of one LLM serving report."""
    from ..harness.report import render_table
    rows = [(r["scheduler"], r["rate_rps"], r["offered"], r["completed"],
             round(r["goodput_rps"], 2), round(r["slo_attainment"], 4),
             round(r["mean_batch_size"], 2), round(r["ttft_p95_ms"], 3),
             round(r["itl_p95_ms"], 3), r["kv_peak_tokens"])
            for r in payload["rows"]]
    title = (f"llm serving: {payload['config']}, {payload['max_slots']} "
             f"slot(s), KV budget {payload['kv_budget_tokens']} tokens")
    return render_table(
        ("scheduler", "rate", "offered", "done", "goodput", "SLO",
         "batch", "ttft p95", "itl p95", "kv peak"),
        rows, title=title)
