"""Autoregressive LLM serving: KV-cache decode steps + batching sweeps.

``repro.llm`` makes single-token decoding a first-class citizen of the
compiled flow: :func:`build_step` emits prefill/decode graphs whose
KV-cache residency is explicit (``CacheAppend`` stores only the new
tokens' K/V slice; the cache tensors alias in DRAM),
:class:`DecodeSession` drives multi-step generation through the
detailed machine or the integer reference, and :mod:`repro.llm.sweep`
reduces continuous-vs-one-shot batching simulations to the
``repro-llm-report-v1`` schema. Entry points: ``repro decode`` and
``repro serve --llm``.
"""

from .decode import (
    LLM_CONFIGS,
    DecodeSession,
    DecodeStep,
    DecodeStepCosts,
    LLMConfig,
    StepRecord,
    available_llm_configs,
    build_step,
    decode_step_costs,
    embed_table,
    get_llm_config,
    rope_tables,
    step_weights,
)
from .sweep import (
    DEFAULT_SLO_ATTAINMENT,
    LLM_SCHEMA,
    LLMSweepPoint,
    goodput_at_slo,
    llm_grid,
    llm_report,
    llm_report_json,
    llm_table,
    run_llm_point,
    run_llm_sweep,
    validate_llm_report,
)

__all__ = [
    "DEFAULT_SLO_ATTAINMENT",
    "LLM_CONFIGS",
    "LLM_SCHEMA",
    "DecodeSession",
    "DecodeStep",
    "DecodeStepCosts",
    "LLMConfig",
    "LLMSweepPoint",
    "StepRecord",
    "available_llm_configs",
    "build_step",
    "decode_step_costs",
    "embed_table",
    "get_llm_config",
    "goodput_at_slo",
    "llm_grid",
    "llm_report",
    "llm_report_json",
    "llm_table",
    "rope_tables",
    "run_llm_point",
    "run_llm_sweep",
    "step_weights",
    "validate_llm_report",
]
