"""Common result types shared by the NPU-Tandem and every baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class RunResult:
    """End-to-end outcome of running one model on one design point.

    ``gemm_seconds``/``nongemm_seconds``/``comm_seconds`` are *busy*
    attributions (they can sum to more than ``total_seconds`` on designs
    that overlap units, and to ``total_seconds`` on serialized ones).
    ``per_op_seconds`` attributes non-GEMM time per operator type
    (Figure 24); ``energy_breakdown`` is joules per component
    (Figure 25).
    """

    design: str
    model: str
    total_seconds: float
    gemm_seconds: float = 0.0
    nongemm_seconds: float = 0.0
    comm_seconds: float = 0.0
    energy_joules: float = 0.0
    energy_breakdown: Dict[str, float] = field(default_factory=dict)
    per_op_seconds: Dict[str, float] = field(default_factory=dict)
    gemm_utilization: float = 0.0
    nongemm_utilization: float = 0.0

    @property
    def average_power_watts(self) -> float:
        """Mean power: energy over total runtime."""
        if self.total_seconds == 0:
            return 0.0
        return self.energy_joules / self.total_seconds

    @property
    def throughput_per_second(self) -> float:
        """Inferences per second (1 / latency)."""
        return 1.0 / self.total_seconds if self.total_seconds else 0.0

    def speedup_over(self, other: "RunResult") -> float:
        """This result's latency advantage over ``other`` (x)."""
        return other.total_seconds / self.total_seconds

    def energy_reduction_over(self, other: "RunResult") -> float:
        """Energy advantage over ``other`` (x less energy)."""
        return other.energy_joules / self.energy_joules

    def perf_per_watt(self) -> float:
        """Throughput per watt (the Fig. 20 metric)."""
        power = self.average_power_watts
        return self.throughput_per_second / power if power else 0.0


def geomean(values) -> float:
    """Geometric mean of a sequence of positive values."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
