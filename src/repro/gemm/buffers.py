"""Capacity model for the GEMM unit's on-chip buffers.

Used by the tiling optimizer: a fused block's tile must fit the weight /
input scratchpads on the GEMM side and the Output BUF + Interim BUFs on
the Tandem side simultaneously (Section 6, "Tiling optimization").
"""

from __future__ import annotations

from dataclasses import dataclass

from .systolic import SystolicParams


@dataclass(frozen=True)
class BufferBudget:
    """Byte budgets relevant to one fused block's tile."""

    weight_bytes: int
    input_bytes: int
    output_buf_bytes: int

    def fits_outputs(self, tile_output_bytes: int) -> bool:
        # Double buffering halves the usable Output BUF (Section 4.2).
        return tile_output_bytes <= self.output_buf_bytes // 2


def budget_from_params(params: SystolicParams) -> BufferBudget:
    spad_bytes = params.weight_spad_kb * 1024
    return BufferBudget(
        weight_bytes=spad_bytes // 2,
        input_bytes=spad_bytes // 2,
        output_buf_bytes=params.accumulator_kb * 1024,
    )
