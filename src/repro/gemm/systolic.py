"""Systolic-array GEMM unit: functional semantics + cycle/energy model.

Models the Table 3 left column: a 32x32 output-stationary systolic array
with INT8 multipliers and INT32 accumulators, 384 KB input/weight
scratchpads and a 128 KB accumulator buffer (the Output BUF the Tandem
Processor takes fluid ownership of). The cycle model follows the
standard systolic accounting used by SCALE-Sim-style simulators the
paper cites for its own GEMM-unit simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graph import Node, TensorSpec


@dataclass(frozen=True)
class SystolicParams:
    """GEMM-unit configuration (Table 3, left column)."""

    rows: int = 32
    cols: int = 32
    frequency_hz: float = 1.0e9
    weight_spad_kb: int = 384
    accumulator_kb: int = 128
    mac_energy_pj: float = 0.9        # INT8 multiply + INT32 accumulate, 65 nm
    spad_pj_per_byte: float = 1.2     # operand staging buffers
    dram_pj_per_byte: float = 40.0
    dram_bandwidth_bytes_per_s: float = 32.0e9

    @property
    def macs_per_cycle(self) -> int:
        return self.rows * self.cols

    @property
    def peak_ops_per_s(self) -> float:
        return 2.0 * self.macs_per_cycle * self.frequency_hz

    def scaled(self, factor: float) -> "SystolicParams":
        """Iso-TOPs scaling (Section 7: 216x to match an A100)."""
        side = int(round(math.sqrt(factor)))
        return SystolicParams(
            rows=self.rows * side,
            cols=self.cols * side,
            frequency_hz=self.frequency_hz,
            weight_spad_kb=self.weight_spad_kb * side,
            accumulator_kb=self.accumulator_kb * side,
            mac_energy_pj=self.mac_energy_pj,
            spad_pj_per_byte=self.spad_pj_per_byte,
            dram_pj_per_byte=self.dram_pj_per_byte,
            dram_bandwidth_bytes_per_s=self.dram_bandwidth_bytes_per_s * side,
        )


@dataclass
class GemmCost:
    """Cycles and energy for one GEMM-class layer (or one tile of it)."""

    compute_cycles: int
    dram_cycles: int
    macs: int
    dram_bytes: int
    energy_pj: float

    @property
    def cycles(self) -> int:
        # Weight/input streaming is double-buffered against compute; the
        # unit is bound by whichever is slower.
        return max(self.compute_cycles, self.dram_cycles)

    def utilization(self, params: SystolicParams) -> float:
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * params.macs_per_cycle)


def gemm_dims(node: Node, out_spec: TensorSpec,
              in_spec: TensorSpec) -> Tuple[int, int, int]:
    """(M, N, K) of the equivalent matrix multiplication."""
    if node.op_type == "Conv":
        n, oc, oh, ow = out_spec.shape
        kh, kw = node.attrs["kernel_shape"]
        groups = node.attrs.get("groups", 1)
        ic = node.attrs["in_channels"] // groups
        return n * oh * ow, oc, kh * kw * ic
    if node.op_type in ("MatMul", "Gemm"):
        k = node.attrs.get("k", in_spec.shape[-1])
        m = out_spec.numel // out_spec.shape[-1]
        return m, out_spec.shape[-1], k
    raise ValueError(f"{node.op_type} is not a GEMM-class operator")


class SystolicArray:
    """Cost + functional model of the GEMM unit."""

    def __init__(self, params: Optional[SystolicParams] = None):
        self.params = params or SystolicParams()

    # -- timing ----------------------------------------------------------------
    def matmul_cycles(self, m: int, n: int, k: int) -> int:
        p = self.params
        tiles = math.ceil(m / p.rows) * math.ceil(n / p.cols)
        # Per output tile: K accumulation cycles plus array fill/drain.
        return tiles * (k + p.rows + p.cols)

    def layer_cost(self, m: int, n: int, k: int,
                   input_bytes: int, weight_bytes: int,
                   output_bytes: int) -> GemmCost:
        p = self.params
        compute = self.matmul_cycles(m, n, k)
        dram_bytes = input_bytes + weight_bytes + output_bytes
        bytes_per_cycle = p.dram_bandwidth_bytes_per_s / p.frequency_hz
        dram_cycles = math.ceil(dram_bytes / bytes_per_cycle)
        macs = m * n * k
        energy = (macs * p.mac_energy_pj
                  + dram_bytes * p.dram_pj_per_byte
                  + (input_bytes + weight_bytes + 2 * output_bytes)
                  * p.spad_pj_per_byte)
        return GemmCost(compute_cycles=compute, dram_cycles=dram_cycles,
                        macs=macs, dram_bytes=dram_bytes, energy_pj=energy)

    # -- functional semantics -----------------------------------------------------
    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """INT8 x INT8 -> INT32 accumulate (wider accumulation is exact)."""
        return (a.astype(np.int64) @ b.astype(np.int64))

    @staticmethod
    def conv2d(x: np.ndarray, w: np.ndarray, stride: int = 1,
               pad: int = 0) -> np.ndarray:
        """Integer NCHW convolution (reference semantics for the OBUF)."""
        n, c, h, width = x.shape
        oc, ic, kh, kw = w.shape
        if ic != c:
            raise ValueError(f"channel mismatch: input {c}, weight {ic}")
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        oh = (h + 2 * pad - kh) // stride + 1
        ow = (width + 2 * pad - kw) // stride + 1
        out = np.zeros((n, oc, oh, ow), dtype=np.int64)
        for i in range(kh):
            for j in range(kw):
                patch = xp[:, :, i:i + stride * oh:stride, j:j + stride * ow:stride]
                # (n, c, oh, ow) x (oc, c) contraction over c.
                out += np.einsum("nchw,oc->nohw", patch.astype(np.int64),
                                 w[:, :, i, j].astype(np.int64))
        return out
