"""Systolic-array GEMM unit simulator."""

from .buffers import BufferBudget, budget_from_params
from .systolic import GemmCost, SystolicArray, SystolicParams, gemm_dims

__all__ = [
    "BufferBudget",
    "GemmCost",
    "SystolicArray",
    "SystolicParams",
    "budget_from_params",
    "gemm_dims",
]
