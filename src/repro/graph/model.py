"""Model graph container: tensors + nodes + dataflow queries."""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass
from math import prod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .node import Node, conv_macs
from .ops import NON_GEMM_CLASSES, OpClass
from .tensor import TensorSpec


class GraphError(ValueError):
    """Raised when a graph is malformed (dangling edges, cycles, ...)."""


@dataclass(frozen=True)
class NodeCost:
    """Arithmetic and memory-traffic cost of one node.

    ``flops`` counts scalar arithmetic operations (2 per MAC).
    ``bytes_in``/``bytes_out`` count activation + parameter traffic,
    assuming no on-chip reuse (the roofline's streaming assumption for
    non-GEMM operators; GEMM reuse is handled by the GEMM-unit model).
    """

    flops: int
    bytes_in: int
    bytes_out: int

    @property
    def bytes_total(self) -> int:
        """All bytes moved: inputs + outputs + weights."""
        return self.bytes_in + self.bytes_out

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per byte moved (the roofline x-axis)."""
        return self.flops / max(self.bytes_total, 1)


class Graph:
    """A DNN inference graph in ONNX-like form.

    Nodes reference tensors by name; every referenced tensor must have a
    registered :class:`TensorSpec`. Node order as inserted must be a valid
    topological order (builders construct graphs forward), which
    :meth:`validate` checks along with edge integrity.
    """

    def __init__(self, name: str):
        self.name = name
        self.tensors: Dict[str, TensorSpec] = {}
        self.nodes: List[Node] = []
        self.graph_inputs: List[str] = []
        self.graph_outputs: List[str] = []
        self._producer: Dict[str, str] = {}

    # -- construction ------------------------------------------------------
    def add_tensor(self, spec: TensorSpec) -> TensorSpec:
        """Register a tensor spec under its name."""
        if spec.name in self.tensors:
            raise GraphError(f"tensor {spec.name!r} already defined in {self.name}")
        self.tensors[spec.name] = spec
        return spec

    def add_node(self, node: Node) -> Node:
        """Append an operation node to the graph."""
        for out in node.outputs:
            if out in self._producer:
                raise GraphError(f"tensor {out!r} produced twice")
            self._producer[out] = node.name
        self.nodes.append(node)
        return node

    def mark_input(self, name: str) -> None:
        """Declare a tensor as a graph input."""
        self.graph_inputs.append(name)

    def mark_output(self, name: str) -> None:
        """Declare a tensor as a graph output."""
        self.graph_outputs.append(name)

    # -- queries -----------------------------------------------------------
    def tensor(self, name: str) -> TensorSpec:
        """The spec registered under ``name``."""
        try:
            return self.tensors[name]
        except KeyError:
            raise GraphError(f"tensor {name!r} not defined in graph {self.name}") from None

    def producer(self, tensor_name: str) -> Optional[Node]:
        """The node producing ``tensor`` (None for inputs)."""
        node_name = self._producer.get(tensor_name)
        if node_name is None:
            return None
        return self.node(node_name)

    def node(self, name: str) -> Node:
        """The node with the given name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise GraphError(f"node {name!r} not in graph {self.name}")

    def consumers(self, tensor_name: str) -> List[Node]:
        """Every node reading ``tensor``."""
        return [n for n in self.nodes if tensor_name in n.inputs]

    def out_spec(self, node: Node) -> TensorSpec:
        """The spec of a node's first output."""
        return self.tensor(node.outputs[0])

    # -- integrity ---------------------------------------------------------
    def validate(self) -> None:
        """Check edge integrity and that insertion order is topological."""
        available = set(self.graph_inputs)
        for node in self.nodes:
            for name in list(node.inputs) + list(node.outputs) + list(node.params):
                if name not in self.tensors:
                    raise GraphError(
                        f"node {node.name!r} references undefined tensor {name!r}"
                    )
            for name in node.inputs:
                if name not in available and self._producer.get(name) is None:
                    raise GraphError(
                        f"node {node.name!r} input {name!r} has no producer and is "
                        "not a graph input"
                    )
            for name in node.inputs:
                if name not in available:
                    raise GraphError(
                        f"node {node.name!r} consumes {name!r} before it is produced "
                        "(insertion order is not topological)"
                    )
            available.update(node.outputs)
        for name in self.graph_outputs:
            if name not in available:
                raise GraphError(f"graph output {name!r} is never produced")

    def topological_order(self) -> List[Node]:
        """Kahn's algorithm over activation edges; detects cycles."""
        indegree: Dict[str, int] = {n.name: 0 for n in self.nodes}
        dependents: Dict[str, List[str]] = defaultdict(list)
        by_name = {n.name: n for n in self.nodes}
        for node in self.nodes:
            for inp in node.inputs:
                producer = self._producer.get(inp)
                if producer is not None:
                    indegree[node.name] += 1
                    dependents[producer].append(node.name)
        ready = deque(n.name for n in self.nodes if indegree[n.name] == 0)
        order: List[Node] = []
        while ready:
            name = ready.popleft()
            order.append(by_name[name])
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self.nodes):
            raise GraphError(f"cycle detected in graph {self.name}")
        return order

    # -- census (Figures 1 and 2) -------------------------------------------
    def op_counts(self) -> Counter:
        """Node count per operator type."""
        return Counter(node.op_type for node in self.nodes)

    def class_counts(self) -> Counter:
        """Node count per operator class (gemm / non-gemm groups)."""
        return Counter(node.op_class for node in self.nodes)

    def gemm_fraction(self) -> float:
        """Fraction of MACs spent in GEMM-class nodes."""
        counts = self.class_counts()
        gemm = counts.get(OpClass.GEMM, 0)
        total = sum(counts.values())
        return gemm / total if total else 0.0

    def non_gemm_operator_types(self) -> set:
        """The distinct non-GEMM operator types used."""
        return {
            node.op_type for node in self.nodes if node.op_class in NON_GEMM_CLASSES
        }

    # -- cost model ----------------------------------------------------------
    def node_cost(self, node: Node) -> NodeCost:
        """MACs and bytes moved for one node."""
        out = self.out_spec(node)
        bytes_out = sum(self.tensor(t).nbytes for t in node.outputs)
        bytes_in = sum(self.tensor(t).nbytes for t in node.inputs)
        if node.op_type == "Gather":
            # An embedding lookup streams one table row per output row, not
            # the whole table; count the gathered bytes, not the parameter.
            bytes_in += bytes_out
        else:
            bytes_in += sum(self.tensor(t).nbytes for t in node.params)

        if node.op_type in ("Conv", "DepthwiseConv"):
            flops = 2 * conv_macs(node, out.shape)
        elif node.op_type in ("MatMul", "Gemm"):
            k = node.attrs.get("k")
            if k is None:
                k = self.tensor(node.inputs[0]).shape[-1]
            flops = 2 * out.numel * k
        elif node.op_type in ("MaxPool", "AveragePool"):
            kh, kw = node.attrs["kernel_shape"]
            flops = out.numel * kh * kw
        elif node.op_type in ("GlobalAveragePool", "ReduceMean"):
            flops = sum(self.tensor(t).numel for t in node.inputs)
        elif node.op_type == "Softmax":
            flops = int(node.info.ops_per_element * out.numel)
        elif node.info.is_layout_only:
            flops = 0
        else:
            flops = int(node.info.ops_per_element * out.numel)
        return NodeCost(flops=flops, bytes_in=bytes_in, bytes_out=bytes_out)

    def total_cost(self) -> NodeCost:
        """Summed cost over every node."""
        flops = bytes_in = bytes_out = 0
        for node in self.nodes:
            cost = self.node_cost(node)
            flops += cost.flops
            bytes_in += cost.bytes_in
            bytes_out += cost.bytes_out
        return NodeCost(flops=flops, bytes_in=bytes_in, bytes_out=bytes_out)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"Graph({self.name!r}, nodes={len(self.nodes)})"
