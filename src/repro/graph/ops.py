"""Operator registry.

Mirrors Table 1 of the paper: every operator the seven benchmark DNNs use,
classified as GEMM or one of the five non-GEMM classes. Each registered
operator also carries a cost descriptor (arithmetic ops per output
element, arity, whether it reduces) used by the roofline analysis and the
baseline performance models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class OpClass(Enum):
    """Operator classes from Table 1 (plus GEMM)."""

    GEMM = "gemm"
    ELEMENTWISE_MATH = "element-wise mathematical"
    ACTIVATION = "element-wise activation"
    REDUCTION = "reduction-based"
    LAYOUT = "data layout transformation"
    TYPE_CONVERSION = "type conversion"


#: Non-GEMM classes in Table 1 order (used by the operator-census figures).
NON_GEMM_CLASSES = (
    OpClass.ELEMENTWISE_MATH,
    OpClass.ACTIVATION,
    OpClass.REDUCTION,
    OpClass.LAYOUT,
    OpClass.TYPE_CONVERSION,
)


@dataclass(frozen=True)
class OpInfo:
    """Static description of one operator type.

    ``ops_per_element`` is the count of primitive arithmetic operations a
    scalar machine performs per *output* element (used for roofline
    arithmetic intensity and CPU/GPU cost models). For reductions it is
    the amortized per-output cost and ``reduction_factor_attr`` names the
    node attribute holding the number of inputs folded into each output.
    """

    name: str
    op_class: OpClass
    arity: int = 1
    ops_per_element: float = 1.0
    is_reduction: bool = False
    is_layout_only: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def is_gemm(self) -> bool:
        return self.op_class is OpClass.GEMM


_REGISTRY: Dict[str, OpInfo] = {}


def register(info: OpInfo) -> OpInfo:
    if info.name in _REGISTRY:
        raise ValueError(f"operator {info.name!r} registered twice")
    _REGISTRY[info.name] = info
    return info


def op_info(name: str) -> OpInfo:
    """Look up an operator; raises KeyError with a helpful message."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown operator {name!r}; known: {known}") from None


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def all_ops() -> Dict[str, OpInfo]:
    return dict(_REGISTRY)


# --------------------------------------------------------------------------
# GEMM-class operators
# --------------------------------------------------------------------------
register(OpInfo("Conv", OpClass.GEMM, arity=2, ops_per_element=2.0))
register(OpInfo("MatMul", OpClass.GEMM, arity=2, ops_per_element=2.0))
register(OpInfo("Gemm", OpClass.GEMM, arity=2, ops_per_element=2.0))

# --------------------------------------------------------------------------
# Element-wise mathematical operators (Table 1, row 1)
# --------------------------------------------------------------------------
register(OpInfo("Add", OpClass.ELEMENTWISE_MATH, arity=2))
register(OpInfo("Sub", OpClass.ELEMENTWISE_MATH, arity=2))
register(OpInfo("Mul", OpClass.ELEMENTWISE_MATH, arity=2))
register(OpInfo("Div", OpClass.ELEMENTWISE_MATH, arity=2, ops_per_element=4.0))
register(OpInfo("Exp", OpClass.ELEMENTWISE_MATH, ops_per_element=8.0))
register(OpInfo("Sqrt", OpClass.ELEMENTWISE_MATH, ops_per_element=6.0))
register(OpInfo("Floor", OpClass.ELEMENTWISE_MATH))
register(OpInfo("Ceil", OpClass.ELEMENTWISE_MATH))
register(OpInfo("Greater", OpClass.ELEMENTWISE_MATH, arity=2))
register(OpInfo("Equal", OpClass.ELEMENTWISE_MATH, arity=2))
register(OpInfo("Less", OpClass.ELEMENTWISE_MATH, arity=2))
register(OpInfo("Pow", OpClass.ELEMENTWISE_MATH, arity=2, ops_per_element=4.0))
register(OpInfo("Reciprocal", OpClass.ELEMENTWISE_MATH, ops_per_element=4.0))
register(OpInfo("Erf", OpClass.ELEMENTWISE_MATH, ops_per_element=10.0))
register(OpInfo("Sign", OpClass.ELEMENTWISE_MATH))
register(OpInfo("Abs", OpClass.ELEMENTWISE_MATH))
register(OpInfo("Min", OpClass.ELEMENTWISE_MATH, arity=2))
register(OpInfo("Max", OpClass.ELEMENTWISE_MATH, arity=2))
register(OpInfo("Where", OpClass.ELEMENTWISE_MATH, arity=3))

# --------------------------------------------------------------------------
# Element-wise activation functions (Table 1, row 2)
# --------------------------------------------------------------------------
register(OpInfo("Relu", OpClass.ACTIVATION))
register(OpInfo("LeakyRelu", OpClass.ACTIVATION, ops_per_element=2.0))
register(OpInfo("Clip", OpClass.ACTIVATION, ops_per_element=2.0))
register(OpInfo("Tanh", OpClass.ACTIVATION, ops_per_element=12.0))
register(OpInfo("Sigmoid", OpClass.ACTIVATION, ops_per_element=10.0))
register(OpInfo("Gelu", OpClass.ACTIVATION, ops_per_element=11.0))

# --------------------------------------------------------------------------
# Reduction-based operators (Table 1, row 3)
# --------------------------------------------------------------------------
register(
    OpInfo(
        "DepthwiseConv",
        OpClass.REDUCTION,
        arity=2,
        ops_per_element=2.0,
        is_reduction=True,
    )
)
register(OpInfo("MaxPool", OpClass.REDUCTION, ops_per_element=1.0, is_reduction=True))
register(
    OpInfo("AveragePool", OpClass.REDUCTION, ops_per_element=1.0, is_reduction=True)
)
register(
    OpInfo(
        "GlobalAveragePool", OpClass.REDUCTION, ops_per_element=1.0, is_reduction=True
    )
)
register(OpInfo("ReduceMean", OpClass.REDUCTION, ops_per_element=1.0, is_reduction=True))
register(OpInfo("Softmax", OpClass.REDUCTION, ops_per_element=12.0, is_reduction=True))

# --------------------------------------------------------------------------
# Emerging LLM operators (not in Table 1 — the decode-time operator set
# the Tensix fusion paper highlights; lowered natively by the Tandem
# Processor like every other non-GEMM class).
# --------------------------------------------------------------------------
register(OpInfo("Silu", OpClass.ACTIVATION, ops_per_element=11.0))
register(OpInfo("SwiGLU", OpClass.ACTIVATION, arity=2, ops_per_element=13.0))
register(OpInfo("Rope", OpClass.ELEMENTWISE_MATH, ops_per_element=6.0))
register(OpInfo("RMSNorm", OpClass.REDUCTION, ops_per_element=5.0,
                is_reduction=True))
register(OpInfo("CausalSoftmax", OpClass.REDUCTION, ops_per_element=13.0,
                is_reduction=True))

# --------------------------------------------------------------------------
# Data layout transformation (Table 1, row 4)
# --------------------------------------------------------------------------
register(OpInfo("Transpose", OpClass.LAYOUT, is_layout_only=True))
register(OpInfo("Reshape", OpClass.LAYOUT, is_layout_only=True))
register(OpInfo("Concat", OpClass.LAYOUT, arity=2, is_layout_only=True))
register(OpInfo("Resize", OpClass.LAYOUT, is_layout_only=True))
register(OpInfo("Flatten", OpClass.LAYOUT, is_layout_only=True))
register(OpInfo("Split", OpClass.LAYOUT, is_layout_only=True))
register(OpInfo("Slice", OpClass.LAYOUT, is_layout_only=True))
register(OpInfo("Gather", OpClass.LAYOUT, is_layout_only=True))
# KV-cache slice append: pure DAE scatter of the new token's K/V into a
# preallocated max-context DRAM cache (O(new) traffic per decode step).
register(OpInfo("CacheAppend", OpClass.LAYOUT, arity=2, is_layout_only=True))

# --------------------------------------------------------------------------
# Type conversion (Table 1, row 5)
# --------------------------------------------------------------------------
register(OpInfo("Cast", OpClass.TYPE_CONVERSION))
register(OpInfo("BitShift", OpClass.TYPE_CONVERSION, arity=2))


def class_of(name: str) -> OpClass:
    return op_info(name).op_class


def is_gemm_op(name: str) -> bool:
    return op_info(name).is_gemm


#: The decode-time operator set added for autoregressive LLM serving
#: (kept out of ``TABLE1_EXAMPLES``, which mirrors the paper verbatim).
LLM_OPS = ("RMSNorm", "SwiGLU", "Silu", "Rope", "CausalSoftmax",
           "CacheAppend")

#: Table 1 verbatim: operator examples per class, for the Table 1 bench.
TABLE1_EXAMPLES: Dict[OpClass, tuple] = {
    OpClass.ELEMENTWISE_MATH: (
        "Add", "Sub", "Mul", "Exp", "Sqrt", "Floor", "Ceil", "Greater",
        "Equal", "Less", "Pow", "Reciprocal",
    ),
    OpClass.ACTIVATION: ("Relu", "LeakyRelu", "Clip", "Tanh", "Sigmoid", "Gelu"),
    OpClass.REDUCTION: (
        "DepthwiseConv", "MaxPool", "GlobalAveragePool", "ReduceMean", "Softmax",
    ),
    OpClass.LAYOUT: ("Transpose", "Reshape", "Concat"),
    OpClass.TYPE_CONVERSION: ("Cast", "BitShift"),
}
